open Cpr_ir
module A = Cpr_analysis
module S = Cpr_sched
module M = Cpr_machine.Descr
open Helpers

let schedule machine prog label =
  let l = A.Liveness.analyze prog in
  S.List_sched.schedule machine prog l (Prog.find_exn prog label)

let strcpy_lengths () =
  let prog, _ = profiled_strcpy () in
  (* sequential: one op per cycle, 30 ops *)
  checki "sequential length = op count" 30
    (schedule M.sequential prog "Loop").S.Schedule.length;
  (* paper: the unroll-4 superblock has height 8 on a wide machine *)
  checki "wide length = dependence height" 8
    (schedule M.wide prog "Loop").S.Schedule.length;
  checkb "narrow between" true
    (let l = (schedule M.narrow prog "Loop").S.Schedule.length in
     l >= 8 && l <= 30)

let checker_accepts_all_machines () =
  let prog, _ = profiled_strcpy () in
  let l = A.Liveness.analyze prog in
  List.iter
    (fun m ->
      List.iter
        (fun (r : Region.t) ->
          let g = A.Depgraph.build m prog l r in
          let s = S.List_sched.schedule m prog l r in
          check
            Alcotest.(list string)
            (Printf.sprintf "%s/%s valid" m.M.name r.Region.label)
            [] (S.Schedule.check m g s))
        (Prog.regions prog))
    M.all

let checker_rejects_tampering () =
  let prog, _ = profiled_strcpy () in
  let l = A.Liveness.analyze prog in
  let r = Prog.find_exn prog "Loop" in
  let m = M.wide in
  let g = A.Depgraph.build m prog l r in
  let s = S.List_sched.schedule m prog l r in
  (* pull the last op to cycle 0: must violate something *)
  let cycle = Array.copy s.S.Schedule.cycle in
  cycle.(Array.length cycle - 1) <- 0;
  let bad = { s with S.Schedule.cycle } in
  checkb "tampered schedule rejected" true (S.Schedule.check m g bad <> [])

let sequential_one_per_cycle () =
  let prog, _ = profiled_strcpy () in
  let s = schedule M.sequential prog "Loop" in
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun c ->
      checkb "one op per cycle" false (Hashtbl.mem seen c);
      Hashtbl.replace seen c ())
    s.S.Schedule.cycle

let narrow_respects_class_limits () =
  let prog, _ = profiled_strcpy () in
  let s = schedule M.narrow prog "Loop" in
  let per_cycle_class = Hashtbl.create 64 in
  Array.iteri
    (fun i op ->
      let key = (s.S.Schedule.cycle.(i), M.fu_of_op op) in
      Hashtbl.replace per_cycle_class key
        (1 + Option.value ~default:0 (Hashtbl.find_opt per_cycle_class key)))
    s.S.Schedule.ops;
  Hashtbl.iter
    (fun (_, fu) n ->
      checkb "class limit respected" true (n <= M.slots M.narrow fu))
    per_cycle_class

let branch_issue_lookup () =
  let prog, _ = profiled_strcpy () in
  let s = schedule M.wide prog "Loop" in
  let br = List.hd (Region.branches (Prog.find_exn prog "Loop")) in
  checkb "branch issue found" true (S.Schedule.branch_issue s br.Op.id <> None);
  checkb "unknown op" true (S.Schedule.branch_issue s 99999 = None)

let cpr_code_schedules_shorter_on_wide () =
  let prog, inputs, baseline = paper_transformed_strcpy () in
  Cpr_pipeline.Passes.profile prog inputs;
  let before = (schedule M.wide baseline "Loop").S.Schedule.length in
  let after = (schedule M.wide prog "Loop").S.Schedule.length in
  checkb
    (Printf.sprintf "wide loop length shrinks (%d -> %d; paper 8 -> 7)" before
       after)
    true
    (after < before)

(* property: every schedule of every machine on random programs passes the
   checker *)
let prop_schedules_valid =
  QCheck2.Test.make ~name:"list schedules respect deps and resources" ~count:40
    QCheck2.Gen.(int_range 0 400)
    (fun seed ->
      let prog = Cpr_workloads.Gen.prog_of_seed seed in
      let l = A.Liveness.analyze prog in
      List.for_all
        (fun m ->
          List.for_all
            (fun (r : Region.t) ->
              let g = A.Depgraph.build m prog l r in
              let s = S.List_sched.schedule m prog l r in
              S.Schedule.check m g s = [])
            (Prog.regions prog))
        [ M.sequential; M.narrow; M.medium; M.wide; M.infinite ])

(* Equivalence oracle for the ready-queue rewrite: the production
   scheduler and the kept-for-test reference must emit identical cycle
   arrays (hence lengths) for every region, on every machine, across the
   whole workload registry and a fuzz battery. *)
let oracle_agrees name machine prog =
  let l = A.Liveness.analyze prog in
  List.iter
    (fun (r : Region.t) ->
      let s_new = S.List_sched.schedule machine prog l r in
      let s_ref = S.List_sched.schedule_reference machine prog l r in
      let where =
        Printf.sprintf "%s/%s/%s" name machine.M.name r.Region.label
      in
      checki (where ^ " length") s_ref.S.Schedule.length
        s_new.S.Schedule.length;
      check
        Alcotest.(array int)
        (where ^ " cycles") s_ref.S.Schedule.cycle s_new.S.Schedule.cycle)
    (Prog.regions prog)

let oracle_on_workloads () =
  List.iter
    (fun (w : Cpr_workloads.Workload.t) ->
      let prog = w.Cpr_workloads.Workload.build () in
      List.iter
        (fun m -> oracle_agrees w.Cpr_workloads.Workload.name m prog)
        M.all)
    Cpr_workloads.Registry.all

let oracle_on_fuzz_programs () =
  for seed = 0 to 199 do
    let prog = Cpr_workloads.Gen.prog_of_seed seed in
    List.iter
      (fun m -> oracle_agrees (Printf.sprintf "seed%d" seed) m prog)
      M.all
  done

let suite =
  ( "scheduler",
    [
      case "strcpy schedule lengths" strcpy_lengths;
      case "checker accepts our schedules" checker_accepts_all_machines;
      case "checker rejects tampering" checker_rejects_tampering;
      case "sequential issues one op per cycle" sequential_one_per_cycle;
      case "narrow class limits" narrow_respects_class_limits;
      case "branch issue lookup" branch_issue_lookup;
      case "CPR shortens the wide loop" cpr_code_schedules_shorter_on_wide;
      case "ready-queue = reference on all workloads" oracle_on_workloads;
      case "ready-queue = reference on 200 fuzz programs"
        oracle_on_fuzz_programs;
      QCheck_alcotest.to_alcotest prop_schedules_valid;
    ] )
