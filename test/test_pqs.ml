open Cpr_analysis
open Helpers

let l1 = Pqs.cond_lit 1
let l2 = Pqs.cond_lit 2
let not_ = Pqs.not_
let ( &&& ) = Pqs.and_
let ( ||| ) = Pqs.or_

let constants () =
  checkb "true" true (Pqs.is_const_true Pqs.tru);
  checkb "false" true (Pqs.is_const_false Pqs.fls);
  checkb "const true" true (Pqs.is_const_true (Pqs.const true));
  checkb "and with false" true (Pqs.is_const_false (l1 &&& Pqs.fls));
  checkb "or with true" true (Pqs.is_const_true (l1 ||| Pqs.tru));
  checkb "unknown poisons" true (Pqs.is_unknown (l1 &&& Pqs.unknown))

let contradiction_and_negation () =
  checkb "x & ~x = false" true (Pqs.is_const_false (l1 &&& not_ l1));
  checkb "~~x = x syntactically implies both ways" true
    (Pqs.implies (not_ (not_ l1)) l1 && Pqs.implies l1 (not_ (not_ l1)));
  checkb "x | ~x is not reduced but implied by true only via eval" true
    (Pqs.eval (fun _ -> true) (l1 ||| not_ l1) = Some true)

let disjointness () =
  checkb "complementary literals" true (Pqs.disjoint l1 (not_ l1));
  checkb "independent literals not provably disjoint" false
    (Pqs.disjoint l1 l2);
  checkb "conjunction extension stays disjoint" true
    (Pqs.disjoint (l1 &&& l2) (not_ l1 &&& l2));
  checkb "or distributes over disjointness" true
    (Pqs.disjoint (l1 ||| (l1 &&& l2)) (not_ l1));
  checkb "false disjoint from anything" true (Pqs.disjoint Pqs.fls l1);
  checkb "unknown never disjoint" false (Pqs.disjoint Pqs.unknown Pqs.fls);
  (* FRP pattern: block predicates vs the taken predicate of an earlier
     branch (the property that lets the scheduler overlap branches) *)
  let taken1 = l1 in
  let fall1 = not_ l1 in
  let taken2 = fall1 &&& l2 in
  let fall2 = fall1 &&& not_ l2 in
  checkb "taken1 # taken2" true (Pqs.disjoint taken1 taken2);
  checkb "taken1 # fall2" true (Pqs.disjoint taken1 fall2);
  checkb "taken2 # fall2" true (Pqs.disjoint taken2 fall2);
  checkb "fall1 not # taken2" false (Pqs.disjoint fall1 taken2)

let implication () =
  checkb "conj implies its part" true (Pqs.implies (l1 &&& l2) l1);
  checkb "part does not imply conj" false (Pqs.implies l1 (l1 &&& l2));
  checkb "or implies only if all branches do" false
    (Pqs.implies (l1 ||| l2) l1);
  checkb "both branches imply" true (Pqs.implies ((l1 &&& l2) ||| l1) l1);
  checkb "false implies anything" true (Pqs.implies Pqs.fls l2);
  checkb "anything implies true" true (Pqs.implies (l1 &&& not_ l2) Pqs.tru);
  checkb "unknown implies nothing" false (Pqs.implies Pqs.unknown Pqs.tru)

let entry_literals () =
  let p = Pqs.entry_lit (Cpr_ir.Reg.pred 4) in
  checkb "p # ~p" true (Pqs.disjoint p (not_ p));
  checkb "entry and cond literals independent" false (Pqs.disjoint p l1)

(* --- property tests: syntactic answers are sound w.r.t. brute force --- *)

(* random expression trees over 4 condition literals *)
let gen_expr =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           if n = 0 then
             oneof
               [
                 return Pqs.tru;
                 return Pqs.fls;
                 map (fun i -> Pqs.cond_lit (i mod 4)) small_nat;
                 map (fun i -> Pqs.not_ (Pqs.cond_lit (i mod 4))) small_nat;
               ]
           else
             oneof
               [
                 map2 Pqs.and_ (self (n / 2)) (self (n / 2));
                 map2 Pqs.or_ (self (n / 2)) (self (n / 2));
                 map Pqs.not_ (self (n - 1));
               ]))

let all_assignments keys =
  let keys = List.sort_uniq compare keys in
  let rec go = function
    | [] -> [ (fun _ -> false) ]
    | k :: rest ->
      List.concat_map
        (fun f -> [ (fun q -> if q = k then false else f q);
                    (fun q -> if q = k then true else f q) ])
        (go rest)
  in
  go keys

let semantically agg f a b =
  let keys = Pqs.keys a @ Pqs.keys b in
  agg
    (fun assign ->
      match (Pqs.eval assign a, Pqs.eval assign b) with
      | Some va, Some vb -> f va vb
      | _ -> true)
    (all_assignments keys)

let prop_disjoint_sound =
  QCheck2.Test.make ~name:"disjoint answers are sound" ~count:300
    QCheck2.Gen.(pair gen_expr gen_expr)
    (fun (a, b) ->
      (not (Pqs.disjoint a b))
      || semantically List.for_all (fun va vb -> not (va && vb)) a b)

let prop_implies_sound =
  QCheck2.Test.make ~name:"implies answers are sound" ~count:300
    QCheck2.Gen.(pair gen_expr gen_expr)
    (fun (a, b) ->
      (not (Pqs.implies a b))
      || semantically List.for_all (fun va vb -> (not va) || vb) a b)

let prop_eval_homomorphic =
  QCheck2.Test.make ~name:"and/or/not evaluate pointwise" ~count:300
    QCheck2.Gen.(pair gen_expr gen_expr)
    (fun (a, b) ->
      let keys = Pqs.keys a @ Pqs.keys b in
      List.for_all
        (fun assign ->
          match
            ( Pqs.eval assign a,
              Pqs.eval assign b,
              Pqs.eval assign (Pqs.and_ a b),
              Pqs.eval assign (Pqs.or_ a b),
              Pqs.eval assign (Pqs.not_ a) )
          with
          | Some va, Some vb, Some vand, Some vor, Some vnot ->
            vand = (va && vb) && vor = (va || vb) && vnot = not va
          | _ -> true)
        (all_assignments keys))

(* --- hash-consing layer: sharing, uid shortcuts, invalidation --- *)

let hash_consing () =
  Pqs.invalidate ();
  checkb "same construction interns to one node" true
    (Pqs.equal (l1 &&& l2) (l1 &&& l2));
  checkb "self-implication (uid shortcut)" true
    (Pqs.implies (l1 ||| l2) (l1 ||| l2));
  checkb "satisfiable node not self-disjoint" false
    (Pqs.disjoint (l1 &&& l2) (l1 &&& l2));
  let before = l1 &&& l2 in
  Pqs.invalidate ();
  (* handles are self-contained: an outstanding value stays correct
     across invalidation, it only loses sharing with newer nodes *)
  checkb "outstanding handle answers after invalidate" true
    (Pqs.implies before l1);
  let after = l1 &&& l2 in
  checkb "re-built node structurally equal across generations" true
    (Pqs.to_reference before = Pqs.to_reference after);
  checkb "cross-generation queries still exact" true
    (Pqs.implies before after && Pqs.implies after before)

(* --- the equivalence oracle: hash-consed engine vs Pqs_reference --- *)

module R = Cpr_analysis.Pqs_reference
module RefEnv = Cpr_analysis.Pred_env.Make (Cpr_analysis.Pqs_reference)
module W = Cpr_workloads

(* A neutral expression AST replayed through both engines, so the
   property pins the caching layer itself: identical construction calls
   must yield structurally identical nodes and identical answers. *)
type ast =
  | T
  | F
  | U
  | L of int
  | And of ast * ast
  | Or of ast * ast
  | Not of ast

let gen_ast =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           if n = 0 then
             oneof
               [
                 return T;
                 return F;
                 return U;
                 map (fun i -> L (i mod 4)) small_nat;
               ]
           else
             oneof
               [
                 map2 (fun a b -> And (a, b)) (self (n / 2)) (self (n / 2));
                 map2 (fun a b -> Or (a, b)) (self (n / 2)) (self (n / 2));
                 map (fun a -> Not a) (self (n - 1));
               ]))

let rec build_hc = function
  | T -> Pqs.tru
  | F -> Pqs.fls
  | U -> Pqs.unknown
  | L i -> Pqs.cond_lit i
  | And (a, b) -> Pqs.and_ (build_hc a) (build_hc b)
  | Or (a, b) -> Pqs.or_ (build_hc a) (build_hc b)
  | Not a -> Pqs.not_ (build_hc a)

let rec build_ref = function
  | T -> R.tru
  | F -> R.fls
  | U -> R.unknown
  | L i -> R.cond_lit i
  | And (a, b) -> R.and_ (build_ref a) (build_ref b)
  | Or (a, b) -> R.or_ (build_ref a) (build_ref b)
  | Not a -> R.not_ (build_ref a)

let prop_engines_agree =
  QCheck2.Test.make ~name:"hash-consed engine agrees with reference"
    ~count:500
    QCheck2.Gen.(pair gen_ast gen_ast)
    (fun (x, y) ->
      let a = build_hc x and b = build_hc y in
      let ra = build_ref x and rb = build_ref y in
      Pqs.to_reference a = ra
      && Pqs.to_reference b = rb
      && Pqs.disjoint a b = R.disjoint ra rb
      && Pqs.implies a b = R.implies ra rb
      && Format.asprintf "%a" Pqs.pp a = Format.asprintf "%a" R.pp ra
      && List.for_all
           (fun assign -> Pqs.eval assign a = R.eval assign ra)
           (all_assignments (Pqs.keys a)))

(* Real programs: run [Pred_env] under both engines over every workload
   and a batch of fuzz programs (raw and ICBM-transformed), and require
   identical guard/path-condition structure and identical query answers
   — the [schedule_reference]-style oracle for the predicate engine. *)
let oracle_region name (r : Cpr_ir.Region.t) =
  let ep = Cpr_analysis.Pred_env.analyze r in
  let er = RefEnv.analyze r in
  let n = Array.length (Cpr_analysis.Pred_env.ops ep) in
  let gp = Array.init n (Cpr_analysis.Pred_env.guard_expr ep) in
  let gr = Array.init n (RefEnv.guard_expr er) in
  for i = 0 to n - 1 do
    if Pqs.to_reference gp.(i) <> gr.(i) then
      Alcotest.failf "%s/%s op %d: guard construction diverged" name
        r.Cpr_ir.Region.label i
  done;
  let pp = Cpr_analysis.Pred_env.path_conds ep in
  let pr = RefEnv.path_conds er in
  Array.iteri
    (fun i p ->
      if Pqs.to_reference p <> pr.(i) then
        Alcotest.failf "%s/%s op %d: path condition diverged" name
          r.Cpr_ir.Region.label i)
    pp;
  (* pairwise queries over a sliding window — the locality the scheduler
     and depgraph builder actually exercise *)
  for i = 0 to n - 1 do
    for j = i + 1 to min (n - 1) (i + 20) do
      if Pqs.disjoint gp.(i) gp.(j) <> R.disjoint gr.(i) gr.(j) then
        Alcotest.failf "%s/%s ops %d,%d: disjoint diverged" name
          r.Cpr_ir.Region.label i j;
      if Pqs.implies gp.(i) gp.(j) <> R.implies gr.(i) gr.(j) then
        Alcotest.failf "%s/%s ops %d,%d: implies diverged" name
          r.Cpr_ir.Region.label i j
    done
  done

let oracle_prog name prog =
  List.iter (oracle_region name) (Cpr_ir.Prog.regions prog)

let engines_agree_on_programs () =
  List.iter
    (fun (w : W.Workload.t) ->
      oracle_prog w.W.Workload.name (w.W.Workload.build ()))
    W.Registry.all;
  (* transformed code is where predicates abound (FRP columns, guarded
     compensation): oracle the ICBM pipeline output of the quick set *)
  List.iter
    (fun name ->
      let w = Option.get (W.Registry.find name) in
      let compiled =
        Cpr_pipeline.Passes.height_reduce ~verify:false
          (w.W.Workload.build ()) (w.W.Workload.inputs ())
      in
      oracle_prog (name ^ "-icbm") compiled.Cpr_pipeline.Passes.prog)
    [ "strcpy"; "grep"; "099.go" ];
  let stage = Option.get (Cpr_fuzz.Stage.find "icbm") in
  for seed = 0 to 59 do
    let name = Printf.sprintf "fuzz-%d" seed in
    oracle_prog name (W.Gen.prog_of_seed seed);
    if seed < 20 then
      oracle_prog (name ^ "-icbm")
        (stage.Cpr_fuzz.Stage.apply (W.Gen.prog_of_seed seed)
           (W.Gen.inputs_of_seed seed))
  done

let suite =
  ( "pqs",
    [
      case "constants" constants;
      case "contradiction and negation" contradiction_and_negation;
      case "disjointness" disjointness;
      case "implication" implication;
      case "entry literals" entry_literals;
      case "hash-consing" hash_consing;
      case "engines agree on programs" engines_agree_on_programs;
      QCheck_alcotest.to_alcotest prop_disjoint_sound;
      QCheck_alcotest.to_alcotest prop_implies_sound;
      QCheck_alcotest.to_alcotest prop_eval_homomorphic;
      QCheck_alcotest.to_alcotest prop_engines_agree;
    ] )
