(* The domain pool: ordering, exception propagation, reuse, stress. *)

open Helpers
module Pool = Cpr_par.Pool

let sequential_map () =
  Pool.with_pool ~domains:1 (fun pool ->
      checki "parallelism" 1 (Pool.domains pool);
      check
        Alcotest.(list int)
        "identity on the sequential path" [ 2; 3; 4 ]
        (Pool.map pool succ [ 1; 2; 3 ]))

let ordering () =
  Pool.with_pool ~domains:4 (fun pool ->
      let xs = List.init 1000 Fun.id in
      check
        Alcotest.(list int)
        "results in submission order"
        (List.map (fun x -> x * x) xs)
        (Pool.map pool (fun x -> x * x) xs))

let empty_and_singleton () =
  Pool.with_pool ~domains:3 (fun pool ->
      check Alcotest.(list int) "empty" [] (Pool.map pool succ []);
      check
        Alcotest.(list int)
        "singleton" [ 42 ]
        (Pool.map pool succ [ 41 ]))

let exception_propagation () =
  Pool.with_pool ~domains:3 (fun pool ->
      (match
         Pool.map pool
           ~label:(fun x -> "task-" ^ string_of_int x)
           (fun x ->
             if x = 7 then failwith "boom7"
             else if x = 5 then failwith "boom5"
             else x)
           (List.init 20 Fun.id)
       with
      | _ -> Alcotest.fail "expected the batch to raise"
      | exception Pool.Task_failed { index; label; cause; _ } ->
        checki "earliest failing task wins" 5 index;
        check Alcotest.string "task label attributed" "task-5" label;
        check Alcotest.string "underlying exception preserved" "boom5"
          (match cause with Failure m -> m | e -> Printexc.to_string e));
      (* The failed batch must leave the pool usable. *)
      check
        Alcotest.(list int)
        "pool reusable after a failed batch" [ 2; 3; 4 ]
        (Pool.map pool succ [ 1; 2; 3 ]))

let repeated_batches () =
  Pool.with_pool ~domains:2 (fun pool ->
      for round = 0 to 24 do
        let xs =
          List.init (1 + (round * 7 mod 40)) (fun i -> (round * 100) + i)
        in
        check
          Alcotest.(list int)
          (Printf.sprintf "round %d" round)
          (List.map (fun x -> x - 1) xs)
          (Pool.map pool pred xs)
      done)

(* Tasks vastly outnumbering domains, with non-uniform cost so claim
   order genuinely interleaves. *)
let stress () =
  Pool.with_pool ~domains:4 (fun pool ->
      let n = 5000 in
      let f x =
        let acc = ref x in
        for _ = 1 to 1 + (x mod 37) do
          acc := (!acc * 131) land 0xFFFF
        done;
        !acc
      in
      let xs = List.init n Fun.id in
      let expect = List.map f xs in
      check Alcotest.(list int) "5000 tasks on 4 domains" expect
        (Pool.map pool f xs))

let default_capped () =
  let d = Pool.default_domains () in
  checkb "default >= 1" true (d >= 1);
  checkb "default <= 8" true (d <= 8)

let suite =
  ( "domain pool",
    [
      case "domains=1 is plain map" sequential_map;
      case "ordering" ordering;
      case "empty and singleton batches" empty_and_singleton;
      case "exception propagation and reuse" exception_propagation;
      case "repeated batches" repeated_batches;
      case "stress: tasks >> domains" stress;
      case "default domain count is capped" default_capped;
    ] )
