open Cpr_ir
module A = Cpr_analysis
module D = Cpr_analysis.Depgraph
open Helpers
module B = Builder

let build_graph ?(machine = Cpr_machine.Descr.wide) prog label =
  let l = A.Liveness.analyze prog in
  D.build machine prog l (Prog.find_exn prog label)

let has_edge g ~src ~dst pred =
  List.exists
    (fun (e : D.edge) ->
      (D.op g e.D.src).Op.id = src
      && (D.op g e.D.dst).Op.id = dst
      && pred e.D.kind)
    (D.edges g)

let is_ctrl = function D.Ctrl -> true | _ -> false
let is_flow = function D.Flow _ -> true | _ -> false
let is_anticipation = function D.Br_anticipation -> true | _ -> false
let is_exit_live = function D.Exit_live _ -> true | _ -> false

(* The headline property: the strcpy baseline has dependence height 8
   (the paper's number for Figure 6(b)) and the branches form a control
   chain; after FRP conversion the branch predicates are disjoint and the
   control chain dissolves. *)
let strcpy_heights () =
  let prog, _ = profiled_strcpy () in
  let g = build_graph prog "Loop" in
  checki "baseline dependence height (paper: 8)" 8 (D.height g);
  let branch_ids =
    List.map (fun (op : Op.t) -> op.Op.id) (Region.branches (loop_of prog))
  in
  (match branch_ids with
  | b1 :: b2 :: _ ->
    checkb "baseline branch chain" true (has_edge g ~src:b1 ~dst:b2 is_ctrl)
  | _ -> Alcotest.fail "setup");
  (* FRP-converted: no ctrl edges between branches *)
  let loop = loop_of prog in
  assert (Cpr_core.Frp.convert_region prog loop);
  let (_ : Cpr_core.Spec.stats) = Cpr_core.Spec.speculate_region prog loop in
  let g' = build_graph prog "Loop" in
  let branch_pairs_chained =
    List.exists
      (fun (e : D.edge) ->
        is_ctrl e.D.kind
        && Op.is_branch (D.op g' e.D.src)
        && Op.is_branch (D.op g' e.D.dst))
      (D.edges g')
  in
  checkb "FRP-converted branches are unordered" false branch_pairs_chained

let store_behind_branch () =
  (* an unpredicated store below a branch carries a control edge with the
     branch latency, and the branch waits for preceding stores to land *)
  let ctx = B.create () in
  let base = B.gpr ctx and p = B.pred ctx and x = B.gpr ctx in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.store e ~base ~off:0 (Op.Reg x) in
        let (_ : Op.t) = B.cmpp1 e Op.Eq Op.Un p (Op.Reg x) (Op.Imm 0) in
        let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) "Exit" in
        let (_ : Op.t) = B.store e ~base ~off:1 (Op.Reg x) in
        ())
  in
  let prog = B.prog ctx ~entry:"Main" ~noalias_bases:[ base ] [ region ] in
  let g = build_graph prog "Main" in
  let ids = List.map (fun (op : Op.t) -> op.Op.id) (Prog.find_exn prog "Main").Region.ops in
  match ids with
  | [ s1; _cmp; _pbr; br; s2 ] ->
    checkb "branch -> later store (ctrl)" true (has_edge g ~src:br ~dst:s2 is_ctrl);
    checkb "earlier store -> branch (anticipation)" true
      (has_edge g ~src:s1 ~dst:br is_anticipation)
  | _ -> Alcotest.fail "setup"

let exit_live_constraint () =
  (* an op clobbering a register live at a branch target cannot move into
     the branch's shadow; a dead-dest op can *)
  let ctx = B.create () in
  let live = B.gpr ctx and dead = B.gpr ctx and p = B.pred ctx in
  let main =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.cmpp1 e Op.Eq Op.Un p (Op.Reg live) (Op.Imm 0) in
        let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) "Side" in
        let (_ : Op.t) = B.movi e live 1 in
        let (_ : Op.t) = B.movi e dead 2 in
        ())
  in
  let side =
    B.region ctx "Side" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.addi e live live 1 in
        ())
  in
  let prog = B.prog ctx ~entry:"Main" [ main; side ] in
  let g = build_graph prog "Main" in
  let ids = List.map (fun (op : Op.t) -> op.Op.id) (Prog.find_exn prog "Main").Region.ops in
  match ids with
  | [ _cmp; _pbr; br; def_live; def_dead ] ->
    checkb "live-at-target def is pinned" true
      (has_edge g ~src:br ~dst:def_live is_exit_live);
    checkb "dead def may speculate" false
      (has_edge g ~src:br ~dst:def_dead (fun _ -> true))
  | _ -> Alcotest.fail "setup"

let accumulators_unordered () =
  let ctx = B.create () in
  let p_on = B.pred ctx and p_off = B.pred ctx in
  let x = B.gpr ctx and y = B.gpr ctx and q = B.pred ctx in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.pred_init e [ (p_on, true); (p_off, false) ] in
        let (_ : Op.t) =
          B.cmpp2 e Op.Eq (Op.Ac, p_on) (Op.On, p_off) (Op.Reg x) (Op.Imm 0)
        in
        let (_ : Op.t) =
          B.cmpp2 e Op.Eq (Op.Ac, p_on) (Op.On, p_off) (Op.Reg y) (Op.Imm 0)
        in
        let (_ : Op.t) = B.cmpp1 e Op.Eq Op.Un q (Op.Imm 0) (Op.Imm 0) ~guard:(Op.If p_on) in
        ())
  in
  let prog = B.prog ctx ~entry:"Main" [ region ] in
  let g = build_graph prog "Main" in
  let ids = List.map (fun (op : Op.t) -> op.Op.id) region.Region.ops in
  match ids with
  | [ init; la1; la2; reader ] ->
    checkb "lookaheads unordered" false (has_edge g ~src:la1 ~dst:la2 (fun _ -> true));
    checkb "init feeds first lookahead" true (has_edge g ~src:init ~dst:la1 is_flow);
    checkb "init feeds second lookahead" true (has_edge g ~src:init ~dst:la2 is_flow);
    checkb "both lookaheads feed the reader" true
      (has_edge g ~src:la1 ~dst:reader is_flow
      && has_edge g ~src:la2 ~dst:reader is_flow)
  | _ -> Alcotest.fail "setup"

let disjoint_guards_relax_memory () =
  let ctx = B.create () in
  let base = B.gpr ctx and x = B.gpr ctx in
  let pt = B.pred ctx and pf = B.pred ctx in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) =
          B.cmpp2 e Op.Eq (Op.Un, pt) (Op.Uc, pf) (Op.Reg x) (Op.Imm 0)
        in
        (* same address, complementary guards: never both execute *)
        let (_ : Op.t) = B.store e ~guard:(Op.If pt) ~base ~off:0 (Op.Imm 1) in
        let (_ : Op.t) = B.store e ~guard:(Op.If pf) ~base ~off:0 (Op.Imm 2) in
        ())
  in
  let prog = B.prog ctx ~entry:"Main" [ region ] in
  let g = build_graph prog "Main" in
  let ids = List.map (fun (op : Op.t) -> op.Op.id) region.Region.ops in
  match ids with
  | [ _cmp; s1; s2 ] ->
    checkb "disjoint-guard stores unordered" false
      (has_edge g ~src:s1 ~dst:s2 (fun _ -> true))
  | _ -> Alcotest.fail "setup"

let latencies_in_asap () =
  let ctx = B.create () in
  let a = B.gpr ctx and b = B.gpr ctx and c = B.gpr ctx and base = B.gpr ctx in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.load e a ~base ~off:0 in
        let (_ : Op.t) = B.alu e Op.Mul b (Op.Reg a) (Op.Imm 3) in
        let (_ : Op.t) = B.addi e c b 1 in
        ())
  in
  let prog = B.prog ctx ~entry:"Main" ~live_out:[ c ] [ region ] in
  let g = build_graph prog "Main" in
  check Alcotest.(array int) "asap = load@0, mul@2, add@5"
    [| 0; 2; 5 |] (D.asap g);
  checki "height includes final latency" 6 (D.height g)

let priority_is_path_to_sink () =
  let prog, _ = profiled_strcpy () in
  let g = build_graph prog "Loop" in
  let p = Cpr_analysis.Height.priority g in
  let a = D.asap g in
  Array.iteri
    (fun i _ ->
      checkb "asap + priority bounded by height" true
        (a.(i) + p.(i) <= D.height g))
    p

let suite =
  ( "depgraph",
    [
      case "strcpy heights and branch chains" strcpy_heights;
      case "stores vs branches" store_behind_branch;
      case "exit-live speculation constraint" exit_live_constraint;
      case "wired accumulators unordered" accumulators_unordered;
      case "disjoint guards relax memory" disjoint_guards_relax_memory;
      case "latencies in asap" latencies_in_asap;
      case "priority bounded" priority_is_path_to_sink;
    ] )
