(* The resilience layer: deadlines, recovery, crash bundles, chaos.

   The load-bearing invariants:
   - a poisoned or overdue deadline token unwinds at the next checkpoint,
     never asynchronously;
   - [Recover.protect] retries transient faults once, falls back
     immediately on deterministic verifier rejections, and never lets an
     exception escape the protected region;
   - every corpus reproducer with an injected fault ends in [Fell_back]
     (when the verifier catches the fault) or [Committed] (when the
     fault is inapplicable) — never an escaped exception;
   - crash bundles round-trip through the fuzz corpus loader;
   - the chaos harness's sweep holds the never-crash invariant. *)

open Helpers
module Deadline = Cpr_deadline.Deadline
module Recover = Cpr_resilience.Recover
module Bundle = Cpr_resilience.Bundle
module Chaos = Cpr_resilience.Chaos
module Pool = Cpr_par.Pool
module F = Cpr_fuzz
module P = Cpr_pipeline
module Obs = Cpr_obs.Obs

let fresh_dir prefix =
  let base = Filename.get_temp_dir_name () in
  let rec pick k =
    let d = Filename.concat base (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) k) in
    if Sys.file_exists d then pick (k + 1) else d
  in
  pick 0

(* ------------------------------------------------------------------ *)
(* Deadlines                                                           *)

let deadline_overdue () =
  let d = Deadline.of_ms ~label:"t" 0.01 in
  Deadline.start d;
  while not (Deadline.overdue d) do () done;
  (match Deadline.check d with
  | () -> Alcotest.fail "overdue token did not trip"
  | exception Deadline.Deadline_exceeded { label; _ } ->
    check Alcotest.string "label attributed" "t" label);
  Deadline.finish d;
  checkb "finished token no longer runs" false (Deadline.running d)

let deadline_poison () =
  let d = Deadline.of_ms ~label:"p" 1e9 in
  Deadline.start d;
  Deadline.check d;
  Deadline.poison d;
  (match Deadline.check d with
  | () -> Alcotest.fail "poisoned token did not trip"
  | exception Deadline.Deadline_exceeded _ -> ());
  Deadline.finish d

let deadline_ambient () =
  Deadline.check_current ();
  let saw = ref [] in
  Deadline.with_budget ~label:"outer" ~ms:1e9 (fun () ->
      (match Deadline.current () with
      | Some _ -> saw := "outer" :: !saw
      | None -> Alcotest.fail "no ambient token inside with_budget");
      Deadline.with_budget ~label:"inner" ~ms:1e9 (fun () ->
          Deadline.check_current ();
          saw := "inner" :: !saw);
      match Deadline.current () with
      | Some _ -> saw := "restored" :: !saw
      | None -> Alcotest.fail "outer token not restored after inner");
  checkb "ambient cleared at exit" true (Deadline.current () = None);
  check Alcotest.(list string) "nesting order" [ "restored"; "inner"; "outer" ]
    !saw

let deadline_budget_trips () =
  match
    Deadline.with_budget ~label:"spin" ~ms:1.0 (fun () ->
        let t0 = Unix.gettimeofday () in
        while Unix.gettimeofday () -. t0 < 2.0 do
          Deadline.check_current ()
        done)
  with
  | () -> Alcotest.fail "budget never tripped the checkpoint loop"
  | exception Deadline.Deadline_exceeded { label; _ } ->
    check Alcotest.string "label" "spin" label

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)

let recover_commits () =
  match Recover.protect ~stage:"s" ~fallback:(fun () -> 0) (fun () -> 42) with
  | Recover.Committed 42 -> ()
  | _ -> Alcotest.fail "clean run must commit"

let recover_retries_transient () =
  let attempts = ref 0 in
  match
    Recover.protect ~stage:"s" ~fallback:(fun () -> 0) (fun () ->
        incr attempts;
        if !attempts = 1 then failwith "transient glitch";
        7)
  with
  | Recover.Committed 7 -> checki "one retry absorbed the glitch" 2 !attempts
  | _ -> Alcotest.fail "transient fault must commit after the retry"

let recover_falls_back_persistent () =
  let attempts = ref 0 in
  match
    Recover.protect ~stage:"s" ~fallback:(fun () -> 9) (fun () ->
        incr attempts;
        failwith "persistent")
  with
  | Recover.Fell_back (9, f) ->
    checki "retried once before giving up" 2 !attempts;
    checki "failure records the retry" 1 f.Recover.retries;
    check Alcotest.string "stage recorded" "s" f.Recover.stage
  | _ -> Alcotest.fail "persistent fault must fall back"

let recover_verify_error_no_retry () =
  let attempts = ref 0 in
  match
    Recover.protect ~stage:"s" ~fallback:(fun () -> 1) (fun () ->
        incr attempts;
        raise (Cpr_verify.Verify.Verify_error []))
  with
  | Recover.Fell_back (1, f) ->
    checki "verifier rejection is deterministic: no retry" 1 !attempts;
    checki "no retries recorded" 0 f.Recover.retries
  | _ -> Alcotest.fail "verifier rejection must fall back"

let recover_on_failure_swallowed () =
  match
    Recover.protect ~stage:"s"
      ~on_failure:(fun _ -> failwith "bundle writer exploded")
      ~fallback:(fun () -> 3)
      (fun () -> raise (Cpr_verify.Verify.Verify_error []))
  with
  | Recover.Fell_back (3, f) ->
    checkb "hook failure leaves bundle unset" true (f.Recover.bundle = None)
  | _ -> Alcotest.fail "hook exception must not escape recovery"

let recover_counters () =
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled was)
    (fun () ->
      ignore
        (Recover.protect ~stage:"s" ~fallback:(fun () -> 0) (fun () ->
             failwith "boom")
          : int Recover.protected);
      checki "fallback counted" 1
        (Obs.counter_value (Obs.counter "recover.fallbacks"));
      checki "retry counted" 1
        (Obs.counter_value (Obs.counter "recover.retries")))

(* ------------------------------------------------------------------ *)
(* Crash bundles                                                       *)

let bundle_roundtrip () =
  let prog, inputs = profiled_strcpy () in
  let dir = fresh_dir "cpr-bundle" in
  match
    Bundle.write ~dir ~machine:"Med" ~retries:1 ~inputs ~stage:"icbm"
      ~reason:"unit-test reason" ~prog ()
  with
  | Error msg -> Alcotest.failf "bundle write failed: %s" msg
  | Ok bdir -> (
    checkb "bundle under requested dir" true
      (String.length bdir > String.length dir);
    match F.Corpus.load (Bundle.input_file bdir) with
    | Error msg -> Alcotest.failf "corpus loader rejected bundle: %s" msg
    | Ok entry ->
      check Alcotest.string "stage round-trips" "icbm" entry.F.Corpus.stage;
      check Alcotest.string "reason round-trips" "unit-test reason"
        entry.F.Corpus.reason;
      checki "inputs round-trip" (List.length inputs)
        (List.length entry.F.Corpus.inputs);
      check Alcotest.string "program text round-trips"
        (Cpr_ir.Printer.to_text prog)
        (Cpr_ir.Printer.to_text entry.F.Corpus.prog);
      (* Same failure -> same content digest -> same directory. *)
      (match
         Bundle.write ~dir ~machine:"Med" ~retries:1 ~inputs ~stage:"icbm"
           ~reason:"unit-test reason" ~prog ()
       with
      | Ok bdir2 -> check Alcotest.string "idempotent id" bdir bdir2
      | Error msg -> Alcotest.failf "rewrite failed: %s" msg))

let bundle_via_protected () =
  let prog, inputs = profiled_strcpy () in
  let dir = fresh_dir "cpr-bundle-prot" in
  Chaos.arm ~stage:"icbm" Chaos.Corrupt;
  let result =
    Fun.protect ~finally:Chaos.disarm (fun () ->
        P.Passes.protected ~bundle_dir:dir ~stage:"icbm" prog inputs)
  in
  match result with
  | Recover.Fell_back (c, f) -> (
    checkb "fallback is the pre-pass program (no icbm stats)" true
      (c.P.Passes.icbm = None);
    match f.Recover.bundle with
    | None -> Alcotest.fail "degraded run must quarantine a bundle"
    | Some bdir ->
      checkb "bundle dir exists" true (Sys.file_exists bdir);
      checkb "meta.json written" true
        (Sys.file_exists (Filename.concat bdir "meta.json"));
      (match F.Corpus.load (Bundle.input_file bdir) with
      | Ok entry ->
        check Alcotest.string "bundle replays at the failing stage" "icbm"
          entry.F.Corpus.stage
      | Error msg -> Alcotest.failf "bundle not loadable: %s" msg))
  | Recover.Committed _ ->
    Alcotest.fail "corrupting fault must degrade the icbm stage"

(* ------------------------------------------------------------------ *)
(* Pool watchdog                                                       *)

let pool_deadline_trips () =
  Pool.with_pool ~domains:2 (fun pool ->
      match
        Pool.map pool ~budget_ms:25.0
          ~label:(fun i -> "task-" ^ string_of_int i)
          (fun i ->
            if i = 1 then begin
              (* Cooperative spin: finishes only if the watchdog never
                 poisons the token (bounded so a broken watchdog fails
                 the test instead of hanging it). *)
              let t0 = Unix.gettimeofday () in
              while Unix.gettimeofday () -. t0 < 5.0 do
                Deadline.check_current ()
              done
            end;
            i)
          [ 0; 1; 2 ]
      with
      | _ -> Alcotest.fail "overlong task must trip its deadline"
      | exception Pool.Task_failed { index; label; cause; _ } -> (
        checki "failing task attributed" 1 index;
        check Alcotest.string "task label" "task-1" label;
        match cause with
        | Deadline.Deadline_exceeded _ -> ()
        | e -> Alcotest.failf "expected Deadline_exceeded, got %s"
                 (Printexc.to_string e)))

let pool_budget_clean_path () =
  Pool.with_pool ~domains:2 (fun pool ->
      check
        Alcotest.(list int)
        "fast tasks unaffected by a budget" [ 1; 2; 3 ]
        (Pool.map pool ~budget_ms:10_000.0 succ [ 0; 1; 2 ]))

let sched_budget_trips () =
  (* The scheduler checkpoints once per cycle of its main loop; a
     poisoned ambient token must unwind it. *)
  let prog, _ = profiled_strcpy () in
  let d = Deadline.of_ms ~label:"sched" 1e9 in
  Deadline.start d;
  Deadline.poison d;
  Deadline.set_current (Some d);
  Fun.protect
    ~finally:(fun () -> Deadline.set_current None)
    (fun () ->
      match
        Cpr_sched.List_sched.schedule_prog Cpr_machine.Descr.medium prog
      with
      | _ -> Alcotest.fail "poisoned token must unwind the scheduler"
      | exception Deadline.Deadline_exceeded _ -> ())

(* ------------------------------------------------------------------ *)
(* Corpus reproducers under injected faults                            *)

(* For every corpus artifact and every applicable injectable fault, a
   protected stage whose transform produces the faulted candidate must
   end in [Fell_back] when the static verifier catches the fault
   ([Caught]) and [Committed] when the fault does not apply — and no
   exception may escape in either case.  This pins the recovery wrapper
   to the verifier's fault battery: anything the verifier can catch, the
   pipeline can survive. *)
let corpus_faults_recover () =
  let entries = F.Corpus.load_dir "corpus" in
  checkb "corpus present" true (entries <> []);
  List.iter
    (fun (path, loaded) ->
      match loaded with
      | Error msg -> Alcotest.failf "%s: %s" path msg
      | Ok entry -> (
        let stage =
          match F.Stage.find entry.F.Corpus.stage with
          | Some s -> s
          | None -> Alcotest.failf "%s: unknown stage" path
        in
        match F.Static_check.check_entry entry with
        | Error msg -> Alcotest.failf "%s: %s" path msg
        | Ok r ->
          let before =
            if stage.F.Stage.name = "superblock" then
              Cpr_ir.Prog.copy entry.F.Corpus.prog
            else P.Passes.prepare entry.F.Corpus.prog entry.F.Corpus.inputs
          in
          let protected_with fault =
            Recover.protect ~stage:entry.F.Corpus.stage
              ~fallback:(fun () -> Cpr_ir.Prog.copy entry.F.Corpus.prog)
              (fun () ->
                let cand =
                  stage.F.Stage.apply entry.F.Corpus.prog entry.F.Corpus.inputs
                in
                Option.iter (fun f -> F.Fault.inject f cand) fault;
                Cpr_verify.Verify.check_stage_exn
                  ~stage:entry.F.Corpus.stage ~before cand;
                cand)
          in
          (* Pre-fault: historical reproducers are fixed, so the clean
             path must commit. *)
          (match (r.F.Static_check.clean, protected_with None) with
          | Ok (), Recover.Committed _ -> ()
          | Ok (), Recover.Fell_back (_, f) ->
            Alcotest.failf "%s: clean artifact degraded: %s" path
              f.Recover.reason
          | Error _, Recover.Fell_back _ -> ()
          | Error msg, Recover.Committed _ ->
            Alcotest.failf "%s: verifier found %s but protect committed" path
              msg
          | exception e ->
            Alcotest.failf "%s: clean path escaped: %s" path
              (Printexc.to_string e));
          List.iter
            (fun (fault, res) ->
              match (res, protected_with (Some fault)) with
              | F.Static_check.Caught _, Recover.Fell_back (_, f) ->
                checkb
                  (Printf.sprintf "%s/%s: findings recorded" path
                     (F.Fault.name fault))
                  true
                  (f.Recover.findings <> [])
              | F.Static_check.Caught _, Recover.Committed _ ->
                Alcotest.failf "%s: caught fault %s did not fall back" path
                  (F.Fault.name fault)
              | F.Static_check.Inapplicable, Recover.Committed _ -> ()
              | F.Static_check.Inapplicable, Recover.Fell_back (_, f) ->
                Alcotest.failf "%s: inapplicable fault %s degraded: %s" path
                  (F.Fault.name fault) f.Recover.reason
              (* A missed fault commits corrupt output: the verifier gap
                 is Static_check's finding, not a recovery escape. *)
              | F.Static_check.Missed, _ -> ()
              | exception e ->
                Alcotest.failf "%s: fault %s escaped recovery: %s" path
                  (F.Fault.name fault) (Printexc.to_string e))
            r.F.Static_check.faults))
    entries

(* ------------------------------------------------------------------ *)
(* Chaos                                                               *)

let chaos_fires_once () =
  let prog, _ = profiled_strcpy () in
  Chaos.arm ~stage:"icbm" Chaos.Raise;
  Fun.protect ~finally:Chaos.disarm (fun () ->
      (match Chaos.trip ~stage:"ifconv" prog with
      | () -> ()
      | exception _ -> Alcotest.fail "wrong stage must not fire");
      (match Chaos.trip ~stage:"icbm" prog with
      | () -> Alcotest.fail "armed stage must fire"
      | exception Chaos.Chaos_fault _ -> ());
      match Chaos.trip ~stage:"icbm" prog with
      | () -> ()
      | exception _ -> Alcotest.fail "Raise fires only once")

let chaos_corrupt_refires () =
  let prog, _ = profiled_strcpy () in
  let ops0 = Cpr_ir.Prog.static_op_count prog in
  Chaos.arm ~stage:"icbm" Chaos.Corrupt;
  Fun.protect ~finally:Chaos.disarm (fun () ->
      Chaos.trip ~stage:"icbm" prog;
      let ops1 = Cpr_ir.Prog.static_op_count prog in
      checki "corrupt drops exactly one op" (ops0 - 1) ops1;
      Chaos.trip ~stage:"icbm" prog;
      checki "corrupt fires on every attempt" (ops0 - 2)
        (Cpr_ir.Prog.static_op_count prog))

let chaos_plan_deterministic () =
  let plans = List.init 64 F.Chaos_run.plan_of_seed in
  check
    Alcotest.(list (pair string string))
    "plan is a pure function of the seed"
    (List.map (fun (s, k) -> (s, Chaos.kind_name k)) plans)
    (List.map
       (fun seed ->
         let s, k = F.Chaos_run.plan_of_seed seed in
         (s, Chaos.kind_name k))
       (List.init 64 Fun.id));
  let kinds =
    List.sort_uniq compare (List.map (fun (_, k) -> Chaos.kind_name k) plans)
  in
  checki "sweep covers all fault kinds" (List.length Chaos.all_kinds)
    (List.length kinds)

let chaos_invariant () =
  let dir = fresh_dir "cpr-chaos" in
  let outcomes = F.Chaos_run.run ~bundle_dir:dir ~lo:0 ~hi:24 () in
  let summary = F.Chaos_run.summarize outcomes in
  checkb "no escaped exceptions" true (F.Chaos_run.ok summary);
  checki "every seed accounted for" 24 summary.F.Chaos_run.seeds;
  List.iter
    (fun (o : F.Chaos_run.outcome) ->
      match o.F.Chaos_run.status with
      | F.Chaos_run.Degraded f ->
        checkb
          (Printf.sprintf "seed %d degraded with a bundle" o.F.Chaos_run.seed)
          true
          (f.Recover.bundle <> None)
      | F.Chaos_run.Committed | F.Chaos_run.Escaped _ -> ())
    outcomes

let chaos_pool_isolated () =
  (* The same range through a pool must match the sequential sweep
     status-for-status: injection state is domain-local. *)
  let dir1 = fresh_dir "cpr-chaos-seq" in
  let dir2 = fresh_dir "cpr-chaos-par" in
  let status o =
    match o.F.Chaos_run.status with
    | F.Chaos_run.Committed -> "committed"
    | F.Chaos_run.Degraded _ -> "degraded"
    | F.Chaos_run.Escaped _ -> "escaped"
  in
  let seq = F.Chaos_run.run ~bundle_dir:dir1 ~lo:0 ~hi:16 () in
  let par =
    Pool.with_pool ~domains:3 (fun pool ->
        F.Chaos_run.run ~pool ~bundle_dir:dir2 ~lo:0 ~hi:16 ())
  in
  check
    Alcotest.(list string)
    "pooled sweep matches sequential" (List.map status seq)
    (List.map status par)

let suite =
  ( "resilience",
    [
      case "deadline: overdue trips at checkpoint" deadline_overdue;
      case "deadline: poisoning trips at checkpoint" deadline_poison;
      case "deadline: ambient token nests and restores" deadline_ambient;
      case "deadline: with_budget bounds a checkpoint loop"
        deadline_budget_trips;
      case "recover: clean run commits" recover_commits;
      case "recover: transient fault retried once" recover_retries_transient;
      case "recover: persistent fault falls back" recover_falls_back_persistent;
      case "recover: verifier rejection skips the retry"
        recover_verify_error_no_retry;
      case "recover: on_failure exceptions swallowed"
        recover_on_failure_swallowed;
      case "recover: fallback/retry counters" recover_counters;
      case "bundle: corpus-format round-trip, idempotent id" bundle_roundtrip;
      case "bundle: written by the protected pipeline" bundle_via_protected;
      case "pool: watchdog trips an overlong task" pool_deadline_trips;
      case "pool: budget leaves fast tasks alone" pool_budget_clean_path;
      case "sched: poisoned token unwinds the scheduler" sched_budget_trips;
      case "corpus: injected faults recover, never escape"
        corpus_faults_recover;
      case "chaos: raise fires once, stage-gated" chaos_fires_once;
      case "chaos: corrupt refires every attempt" chaos_corrupt_refires;
      case "chaos: plan deterministic, covers all kinds"
        chaos_plan_deterministic;
      case "chaos: sweep never crashes, degraded runs bundle"
        chaos_invariant;
      case "chaos: pooled sweep matches sequential" chaos_pool_isolated;
    ] )
