(* Predicate-aware register-pressure analysis (Pressure / Pressurecheck):
   the soundness battery pinning the sandwich (observed <= predicate-aware
   <= predicate-blind), the per-cycle consistency of schedule counts, the
   cmpp-sharing refinement, and the pressure gate's off-is-identity /
   on-stays-correct contract. *)

open Cpr_ir
module A = Cpr_analysis
module Pr = Cpr_analysis.Pressure
module P = Cpr_pipeline
module W = Cpr_workloads
module Descr = Cpr_machine.Descr
open Helpers
module B = Builder

let classes = [ Reg.Gpr; Reg.Pred; Reg.Btr ]
let cls_name = Cpr_verify.Pressurecheck.cls_name

(* ------------------------------------------------------------------ *)
(* Soundness battery.                                                  *)
(* ------------------------------------------------------------------ *)

(* Per-point/per-cycle consistency of one analysis result: the refined
   count never exceeds the blind one anywhere, and the reported MAXLIVE
   is exactly the maximum over points — so "no cycle's live count
   exceeds the static MAXLIVE" holds by checked construction. *)
let result_consistent where (t : Pr.t) =
  List.iter
    (fun cls ->
      let k = Reg.cls_rank cls in
      let s = Pr.stat t cls in
      let seen = ref 0 and seen_blind = ref 0 in
      for p = 0 to t.Pr.n_points - 1 do
        let pa = t.Pr.per_point.(k).(p) in
        let blind = t.Pr.per_point_blind.(k).(p) in
        if pa > blind then
          Alcotest.failf "%s: %s point %d: refined %d > blind %d" where
            (cls_name cls) p pa blind;
        if pa > s.Pr.maxlive then
          Alcotest.failf "%s: %s point %d: count %d exceeds maxlive %d" where
            (cls_name cls) p pa s.Pr.maxlive;
        seen := max !seen pa;
        seen_blind := max !seen_blind blind
      done;
      checki
        (Printf.sprintf "%s: %s maxlive is the per-point max" where
           (cls_name cls))
        !seen s.Pr.maxlive;
      checki
        (Printf.sprintf "%s: %s blind maxlive is the per-point max" where
           (cls_name cls))
        !seen_blind s.Pr.maxlive_blind;
      checkb
        (Printf.sprintf "%s: %s refined <= blind overall" where (cls_name cls))
        true
        (s.Pr.maxlive <= s.Pr.maxlive_blind))
    classes

let prog_sound machine prog =
  let live = A.Liveness.analyze prog in
  List.iter
    (fun (r : Region.t) ->
      if r.Region.ops <> [] then begin
        let sweep = Pr.sweep live prog r in
        result_consistent (r.Region.label ^ "/sweep") sweep;
        (* refine:false is the blind figure, exactly *)
        let blind = Pr.sweep ~refine:false live prog r in
        List.iter
          (fun cls ->
            checki
              (Printf.sprintf "%s: unrefined %s equals blind" r.Region.label
                 (cls_name cls))
              (Pr.maxlive_blind blind cls)
              (Pr.maxlive blind cls))
          classes;
        let s = Cpr_sched.List_sched.schedule machine prog live r in
        let sched =
          Pr.of_schedule live prog r ~ops:s.Cpr_sched.Schedule.ops
            ~cycle:s.Cpr_sched.Schedule.cycle
            ~length:s.Cpr_sched.Schedule.length
        in
        result_consistent (r.Region.label ^ "/schedule") sched
      end)
    (Prog.regions prog)

let gen_seed = QCheck2.Gen.int_range 0 5000

let prop_pressure_sound =
  QCheck2.Test.make
    ~name:"pressure counts consistent, refined <= blind (all machines)"
    ~count:500 gen_seed
    (fun seed ->
      let prog = W.Gen.prog_of_seed seed in
      List.iter (fun m -> prog_sound m prog) Descr.all;
      true)

let prop_pressure_sound_transformed =
  QCheck2.Test.make
    ~name:"pressure counts stay consistent after height reduction" ~count:120
    gen_seed
    (fun seed ->
      let prog = W.Gen.prog_of_seed seed in
      let inputs = W.Gen.inputs_of_seed seed in
      let red = P.Passes.height_reduce prog inputs in
      List.iter (fun m -> prog_sound m red.P.Passes.prog) Descr.all;
      true)

let workloads_sound () =
  List.iter
    (fun (w : W.Workload.t) ->
      let prog = w.W.Workload.build () in
      P.Passes.profile prog (w.W.Workload.inputs ());
      List.iter (fun m -> prog_sound m prog) Descr.all)
    W.Registry.all

(* ------------------------------------------------------------------ *)
(* The refinement: complementary cmpp guards share a slot.             *)
(* ------------------------------------------------------------------ *)

(* k values defined under [p] and k under its cmpp complement [q], all
   simultaneously live.  Blind MAXLIVE sees 2k registers; the
   predicate-aware count packs each p-value with a q-value into one
   slot, halving the figure.  Either concrete branch keeps exactly k
   values, so this also pins the sandwich from below: the observed
   per-path demand (k) never exceeds the refined count. *)
let k = 6

let forked_region () =
  let ctx = B.create () in
  let x = B.gpr ctx in
  let p = B.pred ctx and q = B.pred ctx in
  let rs = B.gprs ctx k and ss = B.gprs ctx k in
  let sink = B.gpr ctx in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.movi e x 0 in
        let (_ : Op.t) =
          B.cmpp2 e Op.Eq (Op.Un, p) (Op.Uc, q) (Op.Reg x) (Op.Imm 0)
        in
        Array.iteri
          (fun i r -> ignore (B.movi e ~guard:(Op.If p) r i : Op.t))
          rs;
        Array.iteri
          (fun i s -> ignore (B.movi e ~guard:(Op.If q) s i : Op.t))
          ss;
        Array.iter
          (fun r -> ignore (B.add e ~guard:(Op.If p) sink r r : Op.t))
          rs;
        Array.iter
          (fun s -> ignore (B.add e ~guard:(Op.If q) sink s s : Op.t))
          ss)
  in
  B.prog ctx ~entry:"Main" [ region ]

let disjoint_guards_share_slots () =
  let prog = forked_region () in
  let live = A.Liveness.analyze prog in
  let r = Prog.find_exn prog "Main" in
  let t = Pr.sweep live prog r in
  let blind = Pr.maxlive_blind t Reg.Gpr in
  let pa = Pr.maxlive t Reg.Gpr in
  checkb
    (Printf.sprintf "blind sweep sees both arms (%d >= %d)" blind (2 * k))
    true
    (blind >= 2 * k);
  checki "refined count is half the blind one" (blind / 2) pa;
  (* lower half of the sandwich: each arm alone demands k registers *)
  checkb
    (Printf.sprintf "refined covers the per-path demand (%d >= %d)" pa k)
    true (pa >= k);
  (* the schedule-level count refines the same way *)
  let s = Cpr_sched.List_sched.schedule Descr.wide prog live r in
  let sched =
    Pr.of_schedule live prog r ~ops:s.Cpr_sched.Schedule.ops
      ~cycle:s.Cpr_sched.Schedule.cycle ~length:s.Cpr_sched.Schedule.length
  in
  checkb "scheduled refined < scheduled blind" true
    (Pr.maxlive sched Reg.Gpr < Pr.maxlive_blind sched Reg.Gpr);
  checkb "scheduled refined covers per-path demand" true
    (Pr.maxlive sched Reg.Gpr >= k)

(* Sweep contributions: a def raises the blind count, the last use
   lowers it, and they telescope back to zero live registers across a
   straight-line region with no live-outs. *)
let contributions_telescope () =
  let ctx = B.create () in
  let a = B.gpr ctx and b = B.gpr ctx and c = B.gpr ctx in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.movi e a 1 in
        let (_ : Op.t) = B.movi e b 2 in
        let (_ : Op.t) = B.add e c a b in
        ())
  in
  let prog = B.prog ctx ~entry:"Main" [ region ] in
  let live = A.Liveness.analyze prog in
  let r = Prog.find_exn prog "Main" in
  let t = Pr.sweep live prog r in
  let total = ref 0 in
  for i = 0 to List.length r.Region.ops - 1 do
    total := !total + Pr.contribution t Reg.Gpr i
  done;
  (* a and b die at the add; c is dead (no live-out), so the defs' +1s
     and the uses' -2 cancel to c's lone +1 - 1 = 0... c is never used,
     so it is never live and the sum is the live count at exit: 0. *)
  checki "contributions sum to exit live count" 0 !total

(* ------------------------------------------------------------------ *)
(* Pressurecheck rows, findings, and severity split.                   *)
(* ------------------------------------------------------------------ *)

let pressurecheck_rows_and_findings () =
  let prog, inputs = profiled_strcpy () in
  let compiled = P.Passes.height_reduce prog inputs in
  let rows = Cpr_verify.Pressurecheck.rows compiled.P.Passes.prog in
  checkb "three rows per region" true
    (rows <> [] && List.length rows mod 3 = 0);
  List.iter
    (fun (r : Cpr_verify.Pressurecheck.row) ->
      checkb
        (Printf.sprintf "row %s/%s: margin is file size minus worst count"
           r.Cpr_verify.Pressurecheck.region
           (cls_name r.Cpr_verify.Pressurecheck.cls))
        true
        (r.Cpr_verify.Pressurecheck.margin
        = r.Cpr_verify.Pressurecheck.file_size
          - max r.Cpr_verify.Pressurecheck.sweep_maxlive
              r.Cpr_verify.Pressurecheck.sched_maxlive))
    rows;
  let summary = Cpr_verify.Pressurecheck.summary compiled.P.Passes.prog in
  checki "summary covers the three classes" 3 (List.length summary);
  (* Medium-machine files fit the paper workloads: no errors, all proved. *)
  let stats = Cpr_verify.Finding.new_stats () in
  let findings =
    Cpr_verify.Pressurecheck.check ~stats compiled.P.Passes.prog
  in
  checkb "no unallocatable findings on the medium machine" true
    (not (List.exists Cpr_verify.Finding.is_error findings));
  checkb "classes proved allocatable" true
    (stats.Cpr_verify.Finding.proved >= List.length rows);
  (* A starved machine turns the same code into hard errors — and the
     severity split the lint exit code relies on must classify them as
     errors, distinct from warnings. *)
  let tiny =
    {
      Descr.medium with
      Descr.name = "Tiny";
      files = { Descr.gprs = 2; preds = 1; btrs = 1 };
    }
  in
  let stats = Cpr_verify.Finding.new_stats () in
  let errors =
    Cpr_verify.Pressurecheck.check ~machine:tiny ~stats compiled.P.Passes.prog
  in
  checkb "starved machine is unallocatable" true
    (List.exists Cpr_verify.Finding.is_error errors);
  (* Growth against a baseline is a warning, never an error: lint must
     exit 0 on a warnings-only run (the PR 5 exit-code contract). *)
  let baseline = prog in
  let stats = Cpr_verify.Finding.new_stats () in
  let warnings =
    Cpr_verify.Pressurecheck.check ~growth_factor:0.0 ~baseline ~stats
      compiled.P.Passes.prog
  in
  let growth =
    List.filter
      (fun (f : Cpr_verify.Finding.t) ->
        not (Cpr_verify.Finding.is_error f))
      warnings
  in
  checkb "growth findings present under a zero-growth budget" true
    (growth <> []);
  checkb "growth findings are warnings, not errors" true
    (List.for_all
       (fun f -> not (Cpr_verify.Finding.is_error f))
       growth)

(* ------------------------------------------------------------------ *)
(* Pressure gate: off is byte-identical, on stays correct.             *)
(* ------------------------------------------------------------------ *)

let gate_off_is_identity () =
  List.iter
    (fun (w : W.Workload.t) ->
      let prog = w.W.Workload.build () in
      let inputs = w.W.Workload.inputs () in
      let default = P.Passes.height_reduce prog inputs in
      let explicit_off =
        P.Passes.height_reduce
          ~heur:
            { Cpr_core.Heur.default with Cpr_core.Heur.pressure_gate = false }
          prog inputs
      in
      check
        Alcotest.string
        (Printf.sprintf "%s: pressure gate off output unchanged"
           w.W.Workload.name)
        (Printer.to_text default.P.Passes.prog)
        (Printer.to_text explicit_off.P.Passes.prog))
    [ List.hd W.Registry.all; List.nth W.Registry.all 3 ]

let gate_on_stays_equivalent () =
  List.iter
    (fun (w : W.Workload.t) ->
      let prog = w.W.Workload.build () in
      let inputs = w.W.Workload.inputs () in
      let gated =
        P.Passes.height_reduce
          ~heur:
            {
              Cpr_core.Heur.default with
              Cpr_core.Heur.pressure_gate = true;
              pressure_margin = 8;
            }
          prog inputs
      in
      checkb
        (Printf.sprintf "%s: pressure-gated output validates"
           w.W.Workload.name)
        true
        (Validate.check gated.P.Passes.prog = []);
      expect_equiv
        ~msg:
          (Printf.sprintf "%s: pressure-gated output equivalent"
             w.W.Workload.name)
        prog gated.P.Passes.prog inputs)
    [ List.hd W.Registry.all; List.nth W.Registry.all 5 ]

let suite =
  ( "pressure",
    [
      QCheck_alcotest.to_alcotest prop_pressure_sound;
      QCheck_alcotest.to_alcotest prop_pressure_sound_transformed;
      case "all workloads consistent on all machines" workloads_sound;
      case "complementary cmpp guards share register slots"
        disjoint_guards_share_slots;
      case "sweep contributions telescope" contributions_telescope;
      case "pressurecheck rows, findings, severity split"
        pressurecheck_rows_and_findings;
      case "pressure gate off is the identity configuration"
        gate_off_is_identity;
      case "pressure gate on preserves semantics" gate_on_stays_equivalent;
    ] )
