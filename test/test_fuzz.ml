(* The fuzzing subsystem's own tests: corpus replay, determinism, and
   the oracle self-test (every injectable fault must be caught). *)

open Cpr_ir
module F = Cpr_fuzz
module W = Cpr_workloads
open Helpers

let corpus_dir = "corpus"

(* Every committed counterexample replays clean: an artifact records a
   historical miscompile, so a Fail here means the bug came back. *)
let corpus_replays_clean () =
  let entries = F.Corpus.load_dir corpus_dir in
  checkb "corpus is not empty" true (entries <> []);
  List.iter
    (fun (path, entry) ->
      match entry with
      | Error e -> Alcotest.failf "%s: unreadable artifact: %s" path e
      | Ok entry -> (
        match F.Corpus.replay entry with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s: regressed: %s" path e))
    entries

(* Artifacts round-trip through the printer/parser: loading and
   re-printing an artifact's program is a fixpoint. *)
let corpus_round_trips () =
  List.iter
    (fun (path, entry) ->
      match entry with
      | Error e -> Alcotest.failf "%s: unreadable artifact: %s" path e
      | Ok (entry : F.Corpus.entry) ->
        let text = Printer.to_text entry.F.Corpus.prog in
        let reparsed = Parser_.of_text text in
        check Alcotest.string path text (Printer.to_text reparsed))
    (F.Corpus.load_dir corpus_dir)

(* Same seed, same configuration => byte-identical program and the same
   verdict.  Generation and checking share no hidden state. *)
let determinism () =
  List.iter
    (fun seed ->
      let p1 = W.Gen.prog_of_seed seed and p2 = W.Gen.prog_of_seed seed in
      check Alcotest.string
        (Printf.sprintf "program of seed %d" seed)
        (Printer.to_text p1) (Printer.to_text p2);
      let stage = Option.get (F.Stage.find "icbm") in
      let verdict o =
        match o with
        | F.Driver.Pass -> "pass"
        | F.Driver.Fail r -> "fail: " ^ r
        | F.Driver.Skip r -> "skip: " ^ r
      in
      check Alcotest.string
        (Printf.sprintf "verdict of seed %d" seed)
        (verdict (F.Driver.run_stage F.Driver.default_check stage ~seed))
        (verdict (F.Driver.run_stage F.Driver.default_check stage ~seed)))
    [ 0; 7; 52; 113 ]

(* Mutation testing of the oracle: each injectable miscompile must
   produce at least one failure over a small seed range, and the
   shrinker must reduce one to a tiny reproducer. *)
let faults_are_caught () =
  let stage = Option.get (F.Stage.find "icbm") in
  List.iter
    (fun fault ->
      let check_ = { F.Driver.default_check with F.Driver.fault = Some fault } in
      let failing =
        List.find_opt
          (fun seed ->
            match F.Driver.run_stage check_ stage ~seed with
            | F.Driver.Fail _ -> true
            | F.Driver.Pass | F.Driver.Skip _ -> false)
          (List.init 40 Fun.id)
      in
      match failing with
      | None ->
        Alcotest.failf "fault %s: no failure in seeds 0..40 — oracle is blind"
          (F.Fault.name fault)
      | Some seed ->
        let shrunk = F.Shrink.minimize check_ stage ~seed in
        let blocks = shrunk.F.Shrink.shape.W.Gen.blocks in
        if blocks > 3 then
          Alcotest.failf "fault %s seed %d: shrunk to %d blocks (want <= 3)"
            (F.Fault.name fault) seed blocks)
    F.Fault.all

(* The regression the fuzzer caught in Offtrace/Icbm (a moved branch
   whose reaching pbr stayed behind) and in Superblock.prune_unreachable
   (a region referenced only by a dangling pbr label): seed 52 through
   the end-to-end pipeline exercised both. *)
let seed_52_fullpipe () =
  let stage = Option.get (F.Stage.find "fullpipe") in
  match F.Driver.run_stage F.Driver.default_check stage ~seed:52 with
  | F.Driver.Pass -> ()
  | F.Driver.Fail r -> Alcotest.failf "seed 52 regressed: %s" r
  | F.Driver.Skip r -> Alcotest.failf "seed 52 reference broke: %s" r

let suite =
  ( "fuzz",
    [
      case "corpus replays clean" corpus_replays_clean;
      case "corpus round-trips" corpus_round_trips;
      case "determinism" determinism;
      case "faults are caught" faults_are_caught;
      case "seed 52 fullpipe regression" seed_52_fullpipe;
    ] )
