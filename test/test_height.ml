(* Static height analysis (Height / Resbound / Heightcheck): soundness
   battery plus the structural invariants the profitability gate and the
   schedule-quality lint rely on. *)

open Cpr_ir
module A = Cpr_analysis
module H = Cpr_analysis.Height
module D = Cpr_analysis.Depgraph
module R = Cpr_analysis.Resbound
module P = Cpr_pipeline
module W = Cpr_workloads
module Descr = Cpr_machine.Descr
open Helpers
module B = Builder

let build_graph machine prog label =
  let l = A.Liveness.analyze prog in
  D.build machine prog l (Prog.find_exn prog label)

(* ------------------------------------------------------------------ *)
(* Soundness: bound <= every List_sched schedule length.              *)
(* ------------------------------------------------------------------ *)

let prog_sound machine prog =
  let live = A.Liveness.analyze prog in
  List.for_all
    (fun (r : Region.t) ->
      r.Region.ops = []
      ||
      let dg = D.build machine prog live r in
      let s = H.summarize machine dg in
      let sched = Cpr_sched.List_sched.schedule machine prog live r in
      s.H.bound <= sched.Cpr_sched.Schedule.length)
    (Prog.regions prog)

let gen_seed = QCheck2.Gen.int_range 0 5000

let prop_bound_sound =
  QCheck2.Test.make
    ~name:"static bound <= achieved schedule length (all machines)"
    ~count:500 gen_seed
    (fun seed ->
      let prog = W.Gen.prog_of_seed seed in
      List.for_all (fun m -> prog_sound m prog) Descr.all)

let prop_bound_sound_transformed =
  QCheck2.Test.make
    ~name:"static bound stays sound after height reduction" ~count:120
    gen_seed
    (fun seed ->
      let prog = W.Gen.prog_of_seed seed in
      let inputs = W.Gen.inputs_of_seed seed in
      let red = P.Passes.height_reduce prog inputs in
      List.for_all (fun m -> prog_sound m red.P.Passes.prog) Descr.all)

let workloads_sound () =
  List.iter
    (fun (w : W.Workload.t) ->
      let prog = w.W.Workload.build () in
      P.Passes.profile prog (w.W.Workload.inputs ());
      List.iter
        (fun m ->
          checkb
            (Printf.sprintf "%s sound on %s" w.W.Workload.name m.Descr.name)
            true (prog_sound m prog))
        Descr.all)
    W.Registry.all

(* ------------------------------------------------------------------ *)
(* Priority / slack invariants (the extracted list-sched priority).   *)
(* ------------------------------------------------------------------ *)

(* [Height.priority] must satisfy its defining recurrence
   [p i = max (latency i) (max over succ edges of edge-latency + p dst)]
   — the exact quantity List_sched ranked ops by before the extraction,
   so this pins the moved implementation to the scheduler's policy. *)
let priority_recurrence_on g =
  let p = H.priority g in
  let n = D.n_ops g in
  for i = 0 to n - 1 do
    let expect =
      List.fold_left
        (fun acc (e : D.edge) -> max acc (e.D.latency + p.(e.D.dst)))
        (D.latency g i) (D.succs g i)
    in
    checki (Printf.sprintf "priority recurrence at op %d" i) expect p.(i)
  done;
  let slack = H.slack g in
  Array.iteri
    (fun i s ->
      checkb (Printf.sprintf "slack non-negative at op %d" i) true (s >= 0))
    slack;
  if n > 0 then
    checkb "at least one op on the critical path" true
      (Array.exists (fun s -> s = 0) slack);
  (* dep_height is reachable through the asap+priority decomposition *)
  let a = H.asap g in
  if n > 0 then begin
    let via = ref 0 in
    for i = 0 to n - 1 do
      via := max !via (a.(i) + p.(i))
    done;
    checki "dep_height = max (asap + priority)" (H.dep_height g) !via
  end

let priority_invariants_all_workloads () =
  List.iter
    (fun (w : W.Workload.t) ->
      let prog = w.W.Workload.build () in
      P.Passes.profile prog (w.W.Workload.inputs ());
      let live = A.Liveness.analyze prog in
      List.iter
        (fun (r : Region.t) ->
          if r.Region.ops <> [] then
            priority_recurrence_on (D.build Descr.medium prog live r))
        (Prog.regions prog))
    W.Registry.all

(* ------------------------------------------------------------------ *)
(* Branch height is predicate-aware.                                  *)
(* ------------------------------------------------------------------ *)

let two_branch_region ~disjoint =
  let ctx = B.create () in
  let x = B.gpr ctx in
  let p = B.pred ctx and q = B.pred ctx in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        if disjoint then
          (* complementary predicates from one cmpp2: Pqs proves the
             branches cannot both be taken, so no Ctrl chain *)
          let (_ : Op.t) =
            B.cmpp2 e Op.Eq (Op.Un, p) (Op.Uc, q) (Op.Reg x) (Op.Imm 0)
          in
          let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) "Exit" in
          let (_ : Op.t) = B.branch_to e ~guard:(Op.If q) "Exit" in
          ()
        else begin
          (* same predicate on both: compatible conditions serialize *)
          let (_ : Op.t) =
            B.cmpp1 e Op.Eq Op.Un p (Op.Reg x) (Op.Imm 0)
          in
          let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) "Exit" in
          let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) "Exit" in
          ()
        end)
  in
  B.prog ctx ~entry:"Main" [ region ]

let disjoint_branches_do_not_serialize () =
  let serial = build_graph Descr.wide (two_branch_region ~disjoint:false) "Main" in
  let par = build_graph Descr.wide (two_branch_region ~disjoint:true) "Main" in
  let bh_serial = H.branch_height serial in
  let bh_par = H.branch_height par in
  checkb
    (Printf.sprintf "disjoint guards lower branch height (%d < %d)" bh_par
       bh_serial)
    true (bh_par < bh_serial);
  (* strcpy, the paper's example: FRP conversion makes the exit guards
     disjoint and the branch height drops *)
  let prog, _ = profiled_strcpy () in
  let before = H.branch_height (build_graph Descr.wide prog "Loop") in
  let loop = loop_of prog in
  assert (Cpr_core.Frp.convert_region prog loop);
  let (_ : Cpr_core.Spec.stats) = Cpr_core.Spec.speculate_region prog loop in
  let after = H.branch_height (build_graph Descr.wide prog "Loop") in
  checkb
    (Printf.sprintf "FRP lowers strcpy branch height (%d < %d)" after before)
    true (after < before)

(* ------------------------------------------------------------------ *)
(* Resource bound arithmetic.                                         *)
(* ------------------------------------------------------------------ *)

let resbound_arithmetic () =
  (* k independent movi ops: dep height is one op latency; the resource
     bound is ceil(k / I-slots) - 1 + latency *)
  let k = 9 in
  let ctx = B.create () in
  let rs = B.gprs ctx k in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        Array.iter (fun r -> ignore (B.movi e r 1)) rs)
  in
  let prog = B.prog ctx ~entry:"Main" [ region ] in
  let r = Prog.find_exn prog "Main" in
  let lat =
    Descr.latency_of Descr.medium (List.hd r.Region.ops)
  in
  let check_on machine =
    let rb = R.of_region machine r in
    checki
      (Printf.sprintf "total ops on %s" machine.Descr.name)
      k rb.R.total_ops;
    let slots = Descr.slots machine Descr.I in
    let expect = (((k + slots - 1) / slots) - 1) + lat in
    checkb
      (Printf.sprintf "resource bound on %s at least class bound"
         machine.Descr.name)
      true (rb.R.bound >= expect);
    (* and it is achieved: the scheduler meets the bound exactly for
       independent same-class ops *)
    let live = A.Liveness.analyze prog in
    let sched = Cpr_sched.List_sched.schedule machine prog live r in
    checkb
      (Printf.sprintf "bound tight on %s" machine.Descr.name)
      true (rb.R.bound <= sched.Cpr_sched.Schedule.length)
  in
  List.iter check_on [ Descr.narrow; Descr.medium; Descr.wide ];
  (* the sequential machine issues one op per cycle regardless of class *)
  let rb_seq = R.of_region Descr.sequential r in
  checkb "sequential bound covers total issue width" true
    (rb_seq.R.bound >= k - 1 + lat);
  (* empty region *)
  let rb_empty = R.of_ops Descr.medium [||] in
  checki "empty region bound" 0 rb_empty.R.bound;
  checki "empty region ops" 0 rb_empty.R.total_ops

(* ------------------------------------------------------------------ *)
(* Profitability gate: off is byte-identical, on stays correct.       *)
(* ------------------------------------------------------------------ *)

let gate_off_is_identity () =
  List.iter
    (fun (w : W.Workload.t) ->
      let prog = w.W.Workload.build () in
      let inputs = w.W.Workload.inputs () in
      let default = P.Passes.height_reduce prog inputs in
      let explicit_off =
        P.Passes.height_reduce
          ~heur:{ Cpr_core.Heur.default with Cpr_core.Heur.height_gate = false }
          prog inputs
      in
      check
        Alcotest.string
        (Printf.sprintf "%s: gate off output unchanged" w.W.Workload.name)
        (Printer.to_text default.P.Passes.prog)
        (Printer.to_text explicit_off.P.Passes.prog))
    [ List.hd W.Registry.all; List.nth W.Registry.all 3 ]

let gate_on_stays_equivalent () =
  List.iter
    (fun (w : W.Workload.t) ->
      let prog = w.W.Workload.build () in
      let inputs = w.W.Workload.inputs () in
      let gated =
        P.Passes.height_reduce
          ~heur:
            {
              Cpr_core.Heur.default with
              Cpr_core.Heur.height_gate = true;
              height_slack_min = 1;
            }
          prog inputs
      in
      checkb
        (Printf.sprintf "%s: gated output validates" w.W.Workload.name)
        true
        (Validate.check gated.P.Passes.prog = []);
      expect_equiv
        ~msg:(Printf.sprintf "%s: gated output equivalent" w.W.Workload.name)
        prog gated.P.Passes.prog inputs)
    [ List.hd W.Registry.all; List.nth W.Registry.all 5 ]

(* ------------------------------------------------------------------ *)
(* Heightcheck lint plumbing.                                         *)
(* ------------------------------------------------------------------ *)

let heightcheck_rows_and_findings () =
  let prog, inputs = profiled_strcpy () in
  let compiled = P.Passes.height_reduce prog inputs in
  let rows = Cpr_verify.Heightcheck.rows compiled.P.Passes.prog in
  checkb "at least one row" true (rows <> []);
  List.iter
    (fun (r : Cpr_verify.Heightcheck.row) ->
      checkb
        (Printf.sprintf "row %s: bound = max(dep, res)" r.region)
        true
        (r.Cpr_verify.Heightcheck.bound
        = max r.Cpr_verify.Heightcheck.dep_height
            r.Cpr_verify.Heightcheck.res_bound);
      checkb
        (Printf.sprintf "row %s: bound <= achieved" r.region)
        true
        (r.Cpr_verify.Heightcheck.bound <= r.Cpr_verify.Heightcheck.achieved);
      checkb
        (Printf.sprintf "row %s: branch height <= dep height" r.region)
        true
        (r.Cpr_verify.Heightcheck.branch_height
        <= r.Cpr_verify.Heightcheck.dep_height))
    rows;
  let stats = Cpr_verify.Finding.new_stats () in
  let findings =
    Cpr_verify.Heightcheck.check ~missed:true ~stats compiled.P.Passes.prog
  in
  checkb "no height-bound errors" true
    (not (List.exists Cpr_verify.Finding.is_error findings));
  checkb "every region proved" true
    (stats.Cpr_verify.Finding.proved >= List.length rows)

let suite =
  ( "height",
    [
      QCheck_alcotest.to_alcotest prop_bound_sound;
      QCheck_alcotest.to_alcotest prop_bound_sound_transformed;
      case "all workloads sound on all machines" workloads_sound;
      case "priority recurrence and slack invariants (24 workloads)"
        priority_invariants_all_workloads;
      case "disjoint guards do not serialize branch height"
        disjoint_branches_do_not_serialize;
      case "resource bound arithmetic" resbound_arithmetic;
      case "height gate off is the identity configuration"
        gate_off_is_identity;
      case "height gate on preserves semantics" gate_on_stays_equivalent;
      case "heightcheck rows and findings" heightcheck_rows_and_findings;
    ] )
