(* Static verifier tests: handcrafted dataflow lints, translation
   validation units, the corpus fault-injection regression (no simulator
   runs), and a brute-force soundness property cross-checking every lint
   verdict against exhaustive [Pqs.eval] enumeration. *)

open Cpr_ir
module V = Cpr_verify
module F = Cpr_fuzz
module W = Cpr_workloads
module P = Cpr_pipeline
module Pqs = Cpr_analysis.Pqs
open Helpers

let corpus_dir = "corpus"
let checks fs = List.map (fun (f : V.Finding.t) -> f.V.Finding.check) fs
let has_check name fs = List.mem name (checks fs)
let errors_of (r : V.Verify.report) = V.Verify.errors r

(* A predicate read as a guard before the op that computes it. *)
let pred_use_before_def () =
  let prog =
    single_region (fun ctx e ->
        let p = Builder.pred ctx in
        let r = Builder.gprs ctx 2 in
        ignore (Builder.movi e r.(0) 1 : Op.t);
        ignore (Builder.addi e ~guard:(Op.If p) r.(1) r.(0) 1 : Op.t);
        ignore (Builder.cmpp1 e Op.Eq Op.Un p (Op.Reg r.(0)) (Op.Imm 0) : Op.t))
  in
  checkb "guard read before def is pred-undef" true
    (has_check "pred-undef" (errors_of (V.Verify.check_program prog)))

(* Wired-OR accumulators read their old value: without a [Pred_init]
   the first compare accumulates into garbage; with one, every query is
   proved and nothing is reported. *)
let accumulator_needs_init () =
  let build ~init ctx e =
    let p = Builder.pred ctx in
    let r = Builder.gpr ctx in
    if init then ignore (Builder.pred_init e [ (p, false) ] : Op.t);
    ignore (Builder.movi e r 1 : Op.t);
    ignore (Builder.cmpp1 e Op.Eq Op.On p (Op.Reg r) (Op.Imm 0) : Op.t);
    ignore (Builder.cmpp1 e Op.Eq Op.On p (Op.Reg r) (Op.Imm 1) : Op.t)
  in
  checkb "uninitialized accumulator is pred-undef" true
    (has_check "pred-undef"
       (errors_of (V.Verify.check_program (single_region (build ~init:false)))));
  check
    Alcotest.(list string)
    "initialized accumulator verifies clean" []
    (checks
       (V.Verify.check_program (single_region (build ~init:true))).V.Verify
         .findings)

(* The seed-0008 shape: a loop whose accumulator is defined on the
   back edge but not on the entry edge.  The merged may-analysis alone
   would miss it; the edge-wise refinement reports the first-iteration
   read. *)
let loop_first_iteration_undef () =
  let build ~init =
    let ctx = Builder.create () in
    let p = Builder.pred ctx in
    let r = Builder.gpr ctx in
    let start =
      Builder.region ctx "Start" ~fallthrough:"Loop" (fun e ->
          if init then ignore (Builder.pred_init e [ (p, false) ] : Op.t);
          ignore (Builder.movi e r 0 : Op.t))
    in
    let loop =
      Builder.region ctx "Loop" ~fallthrough:"Exit" (fun e ->
          ignore (Builder.cmpp1 e Op.Eq Op.On p (Op.Reg r) (Op.Imm 0) : Op.t);
          ignore (Builder.branch_to e ~guard:(Op.If p) "Loop" : Op.t))
    in
    Builder.prog ctx ~entry:"Start" [ start; loop ]
  in
  checkb "first-iteration accumulator read is pred-undef" true
    (has_check "pred-undef"
       (errors_of (V.Verify.check_program (build ~init:false))));
  check
    Alcotest.(list string)
    "initialized loop verifies clean" []
    (checks (V.Verify.check_program (build ~init:true)).V.Verify.findings)

(* Translation validation: swapping two flow-dependent ops inverts a
   dependence and is reported; the identity transformation is clean. *)
let tv_order_swap () =
  let prog =
    single_region (fun ctx e ->
        let r = Builder.gprs ctx 3 in
        ignore (Builder.movi e r.(0) 1 : Op.t);
        ignore (Builder.addi e r.(1) r.(0) 1 : Op.t);
        ignore (Builder.addi e r.(2) r.(1) 1 : Op.t))
  in
  let after = Prog.copy prog in
  let m = Prog.find_exn after "Main" in
  (match m.Region.ops with
  | [ a; b; c ] -> m.Region.ops <- [ a; c; b ]
  | _ -> Alcotest.fail "unexpected region shape");
  checkb "inverted dependence is tv-order" true
    (has_check "tv-order"
       (errors_of (V.Verify.check_stage ~stage:"icbm" ~before:prog after)));
  check
    Alcotest.(list string)
    "identity transformation verifies clean" []
    (checks
       (V.Verify.check_stage ~stage:"icbm" ~before:prog (Prog.copy prog))
         .V.Verify.findings)

(* End-to-end on the paper workload: the ICBM output verifies clean
   against its input, and every injectable historical miscompile is
   flagged by the verifier alone. *)
let strcpy_faults_caught () =
  let w = Option.get (W.Registry.find "strcpy") in
  let inputs = w.W.Workload.inputs () in
  let before = P.Passes.prepare (w.W.Workload.build ()) inputs in
  let transformed () =
    (P.Passes.height_reduce ~verify:false (w.W.Workload.build ()) inputs)
      .P.Passes.prog
  in
  check
    Alcotest.(list string)
    "unfaulted strcpy icbm verifies clean" []
    (checks
       (errors_of (V.Verify.check_stage ~stage:"icbm" ~before (transformed ()))));
  List.iter
    (fun fault ->
      let cand = transformed () in
      F.Fault.inject fault cand;
      checkb (F.Fault.name fault ^ " caught statically") true
        (errors_of (V.Verify.check_stage ~stage:"icbm" ~before cand) <> []))
    F.Fault.all

(* The corpus as a static regression: every shrunk counterexample's
   transform verifies clean, every artifact catches at least one
   injected miscompile, every historical fault class is caught on more
   than half the corpus, and the Set-3 sinking reproducer (seed 1921)
   catches all of them — with zero simulator invocations. *)
let corpus_static_regression () =
  let results = F.Static_check.check_dir corpus_dir in
  checkb "corpus is not empty" true (results <> []);
  let caught_per_class = Hashtbl.create 7 in
  List.iter
    (fun (path, res) ->
      match res with
      | Error e -> Alcotest.failf "%s: %s" path e
      | Ok (r : F.Static_check.entry_result) ->
        (match r.F.Static_check.clean with
        | Ok () -> ()
        | Error m ->
          Alcotest.failf "%s: transform no longer verifies clean: %s" path m);
        checkb
          (path ^ ": at least one injected miscompile caught")
          true
          (List.exists
             (fun (_, fr) ->
               match fr with F.Static_check.Caught _ -> true | _ -> false)
             r.F.Static_check.faults);
        List.iter
          (fun (fault, fr) ->
            match fr with
            | F.Static_check.Caught _ ->
              let k = F.Fault.name fault in
              Hashtbl.replace caught_per_class k
                (1 + Option.value ~default:0 (Hashtbl.find_opt caught_per_class k))
            | F.Static_check.Missed | F.Static_check.Inapplicable -> ())
          r.F.Static_check.faults)
    results;
  List.iter
    (fun fault ->
      let k = F.Fault.name fault in
      let n = Option.value ~default:0 (Hashtbl.find_opt caught_per_class k) in
      checkb (k ^ " caught on more than half the corpus") true
        (2 * n > List.length results))
    F.Fault.all;
  match
    List.assoc_opt (Filename.concat corpus_dir "icbm-seed1921.cpr") results
  with
  | Some (Ok r) ->
    List.iter
      (fun (fault, fr) ->
        checkb ("seed1921 catches " ^ F.Fault.name fault) true
          (match fr with F.Static_check.Caught _ -> true | _ -> false))
      r.F.Static_check.faults
  | _ -> Alcotest.fail "icbm-seed1921.cpr missing from corpus"

(* Soundness of the predicate algebra behind the lint: for every query
   the dataflow analysis poses, enumerate all assignments of the
   condition literals and check the verdict against ground truth —
   Undefined admits no assignment that defines the register at the use,
   Proved admits no assignment that leaves it undefined.  Runs over
   generated programs, their ICBM outputs, and fault-injected variants
   so all three verdicts are exercised. *)
let max_enum_keys = 10

module R = Cpr_analysis.Pqs_reference

let brute_force_check name prog counters =
  let proved, unknown, undef = counters in
  List.iter
    (fun (q : V.Dataflow.query) ->
      (match q.V.Dataflow.verdict with
      | V.Dataflow.Proved -> incr proved
      | V.Dataflow.Unknown -> incr unknown
      | V.Dataflow.Undefined -> incr undef);
      (* equivalence oracle: the memoized engine must answer the lint's
         own queries exactly as the reference engine does *)
      let ru = Pqs.to_reference q.V.Dataflow.use in
      let rd = Pqs.to_reference q.V.Dataflow.defined in
      if Pqs.disjoint q.V.Dataflow.use q.V.Dataflow.defined <> R.disjoint ru rd
      then
        Alcotest.failf "%s: op %d reg %s: disjoint diverges from reference"
          name q.V.Dataflow.op_id
          (Reg.to_string q.V.Dataflow.reg);
      if Pqs.implies q.V.Dataflow.use q.V.Dataflow.defined <> R.implies ru rd
      then
        Alcotest.failf "%s: op %d reg %s: implies diverges from reference"
          name q.V.Dataflow.op_id
          (Reg.to_string q.V.Dataflow.reg);
      let keys =
        List.sort_uniq compare
          (Pqs.keys q.V.Dataflow.use @ Pqs.keys q.V.Dataflow.defined)
      in
      let n = List.length keys in
      if n <= max_enum_keys then begin
        let arr = Array.of_list keys in
        for bits = 0 to (1 lsl n) - 1 do
          let sigma k =
            let rec find i =
              if i >= n then false
              else if arr.(i) = k then bits land (1 lsl i) <> 0
              else find (i + 1)
            in
            find 0
          in
          let u = Pqs.eval sigma q.V.Dataflow.use in
          let d = Pqs.eval sigma q.V.Dataflow.defined in
          match (q.V.Dataflow.verdict, u, d) with
          | V.Dataflow.Undefined, Some true, Some true ->
            Alcotest.failf
              "%s: op %d reg %s: verdict Undefined, but an assignment \
               reaches the use with the register defined"
              name q.V.Dataflow.op_id
              (Reg.to_string q.V.Dataflow.reg)
          | V.Dataflow.Proved, Some true, Some false ->
            Alcotest.failf
              "%s: op %d reg %s: verdict Proved, but an assignment reaches \
               the use with the register undefined"
              name q.V.Dataflow.op_id
              (Reg.to_string q.V.Dataflow.reg)
          | _ -> ()
        done
      end)
    (V.Dataflow.queries prog)

(* A register defined only under a guard and then read unconditionally:
   neither provably defined nor provably undefined, so the verdict must
   degrade to Unknown rather than claim either way. *)
let partially_defined_prog () =
  single_region (fun ctx e ->
      let q = Builder.pred ctx in
      let p = Builder.pred ctx in
      let r = Builder.gprs ctx 2 in
      ignore (Builder.cmpp1 e Op.Eq Op.Un q (Op.Reg r.(0)) (Op.Imm 0) : Op.t);
      ignore (Builder.pred_init e ~guard:(Op.If q) [ (p, false) ] : Op.t);
      ignore (Builder.addi e ~guard:(Op.If p) r.(1) r.(0) 1 : Op.t))

let lint_matches_brute_force () =
  let counters = (ref 0, ref 0, ref 0) in
  let stage = Option.get (F.Stage.find "icbm") in
  brute_force_check "partial-def" (partially_defined_prog ()) counters;
  for seed = 0 to 399 do
    brute_force_check
      (Printf.sprintf "seed %d" seed)
      (W.Gen.prog_of_seed seed) counters;
    if seed < 50 then begin
      let t =
        stage.F.Stage.apply (W.Gen.prog_of_seed seed)
          (W.Gen.inputs_of_seed seed)
      in
      brute_force_check (Printf.sprintf "seed %d icbm" seed) t counters;
      F.Fault.inject F.Fault.Drop_pred_init t;
      brute_force_check (Printf.sprintf "seed %d icbm faulted" seed) t counters
    end
  done;
  let proved, unknown, undef = counters in
  checkb "some queries proved" true (!proved > 0);
  checkb "some queries unknown" true (!unknown > 0);
  checkb "some queries undefined (fault-injected)" true (!undef > 0)

let suite =
  ( "verify",
    [
      case "pred use before def" pred_use_before_def;
      case "accumulator needs init" accumulator_needs_init;
      case "loop first-iteration undef" loop_first_iteration_undef;
      case "tv-order swap" tv_order_swap;
      case "strcpy faults caught" strcpy_faults_caught;
      case "corpus static regression" corpus_static_regression;
      case "lint matches brute force" lint_matches_brute_force;
    ] )
