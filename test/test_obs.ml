(* The observability subsystem: span nesting and ordering, counter
   monotonicity, the disabled-mode zero-allocation fast path, and the
   Chrome-trace export round-trip.  Also covers Bench_io, the bench
   harness's JSON writer/reader and perf-regression gate. *)

module Obs = Cpr_obs.Obs
module B = Cpr_pipeline.Bench_io

(* Telemetry state is process-global; leave it disabled and empty for
   whatever test runs next, even when this one fails. *)
let with_obs f () =
  Obs.set_enabled false;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

let test_span_nesting () =
  Obs.set_enabled true;
  Obs.span "outer" (fun () ->
      Obs.span "inner-a" (fun () -> ignore (Sys.opaque_identity 1 : int));
      Obs.span "inner-b" (fun () -> ignore (Sys.opaque_identity 2 : int)));
  let evs = Obs.events () in
  Alcotest.(check (list string))
    "start order"
    [ "outer"; "inner-a"; "inner-b" ]
    (List.map (fun (e : Obs.event) -> e.Obs.name) evs);
  Alcotest.(check (list int))
    "depths" [ 0; 1; 1 ]
    (List.map (fun (e : Obs.event) -> e.Obs.depth) evs);
  let outer = List.hd evs in
  List.iter
    (fun (e : Obs.event) ->
      Alcotest.(check int) "same track" outer.Obs.track e.Obs.track;
      Alcotest.(check bool)
        "child within parent" true
        (Int64.compare e.Obs.start_ns outer.Obs.start_ns >= 0
        && Int64.compare
             (Int64.add e.Obs.start_ns e.Obs.dur_ns)
             (Int64.add outer.Obs.start_ns outer.Obs.dur_ns)
           <= 0))
    (List.tl evs)

let test_span_summary_merge () =
  Obs.set_enabled true;
  for _ = 1 to 3 do
    Obs.span "outer" (fun () -> Obs.span "inner" (fun () -> ()))
  done;
  match Obs.Summary.tree () with
  | [ root ] ->
    Alcotest.(check string) "root name" "outer" root.Obs.Summary.name;
    Alcotest.(check int) "root count" 3 root.Obs.Summary.count;
    (match root.Obs.Summary.children with
    | [ child ] ->
      Alcotest.(check string) "child name" "inner" child.Obs.Summary.name;
      Alcotest.(check int) "child count" 3 child.Obs.Summary.count;
      Alcotest.(check bool)
        "child time within root" true
        (Int64.compare child.Obs.Summary.total_ns root.Obs.Summary.total_ns
        <= 0)
    | cs -> Alcotest.failf "expected 1 child, got %d" (List.length cs))
  | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots)

let test_span_exception () =
  Obs.set_enabled true;
  (try Obs.span "boom" (fun () -> failwith "expected") with
  | Failure _ -> ());
  match Obs.events () with
  | [ e ] -> Alcotest.(check string) "recorded anyway" "boom" e.Obs.name
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                 *)

let test_counter_monotonic () =
  Obs.set_enabled true;
  let c = Obs.counter "t.mono" in
  let last = ref 0 in
  for i = 1 to 20 do
    if i mod 3 = 0 then Obs.add c 5 else Obs.incr c;
    let v = Obs.counter_value c in
    Alcotest.(check bool) "monotonic" true (v > !last);
    last := v
  done;
  (* Interned: a second lookup is the same counter, not a shadow. *)
  Obs.incr (Obs.counter "t.mono");
  Alcotest.(check int) "interned handle" (!last + 1) (Obs.counter_value c);
  Alcotest.(check bool)
    "listed" true
    (List.mem_assoc "t.mono" (Obs.counters ()))

let test_counter_reset () =
  Obs.set_enabled true;
  let c = Obs.counter "t.reset" in
  Obs.add c 7;
  Obs.reset ();
  Alcotest.(check int) "zeroed" 0 (Obs.counter_value c);
  Obs.set_enabled true;
  Obs.incr c;
  Alcotest.(check int) "handle survives reset" 1 (Obs.counter_value c)

let test_gauge_last_write_wins () =
  Obs.set_enabled true;
  Obs.gauge "t.g" 1.5;
  Obs.gauge "t.g" 2.5;
  Alcotest.(check (float 1e-9))
    "last value" 2.5
    (List.assoc "t.g" (Obs.gauges ()))

(* ------------------------------------------------------------------ *)
(* Disabled fast path                                                  *)

let test_disabled_no_effect () =
  let c = Obs.counter "t.off" in
  Obs.incr c;
  Obs.add c 100;
  Alcotest.(check int) "counter untouched" 0 (Obs.counter_value c);
  let r = Obs.span "off" (fun () -> 42) in
  Alcotest.(check int) "span is identity" 42 r;
  Alcotest.(check int) "no events" 0 (List.length (Obs.events ()))

let test_disabled_zero_alloc () =
  let c = Obs.counter "t.off2" in
  let f () = 0 in
  (* Warm-up takes any one-time allocation out of the measurement. *)
  for _ = 1 to 100 do
    Obs.incr c;
    ignore (Obs.span "off2" f : int)
  done;
  let n = 10_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to n do
    Obs.incr c;
    Obs.add c 3;
    ignore (Obs.span "off2" f : int)
  done;
  let dw = Gc.minor_words () -. w0 in
  (* Even one boxed word per call would cost >= n words; allow slack for
     the Gc.minor_words calls themselves. *)
  if dw >= float_of_int n then
    Alcotest.failf "disabled path allocated %.0f minor words over %d calls" dw
      n

(* ------------------------------------------------------------------ *)
(* Trace export round-trip                                             *)

let test_trace_roundtrip () =
  Obs.set_enabled true;
  Obs.span
    ~args:[ ("k", "v\"with\\escapes\n") ]
    "outer"
    (fun () -> Obs.span "inner" (fun () -> ()));
  Obs.add (Obs.counter "t.rt") 7;
  Obs.gauge "t.rtg" 0.5;
  let s = Obs.Trace.to_string () in
  match Obs.Trace.parse s with
  | Error e -> Alcotest.failf "trace does not parse back: %s" e
  | Ok parsed ->
    let xs =
      List.filter (fun (p : Obs.Trace.parsed_event) -> p.Obs.Trace.pph = "X")
        parsed
    in
    Alcotest.(check (list string))
      "span events survive"
      [ "outer"; "inner" ]
      (List.map (fun (p : Obs.Trace.parsed_event) -> p.Obs.Trace.pname) xs);
    (* Timestamps and durations agree with the in-memory log to within
       the exporter's microsecond rounding. *)
    List.iter2
      (fun (e : Obs.event) (p : Obs.Trace.parsed_event) ->
        Alcotest.(check int) "tid is track" e.Obs.track p.Obs.Trace.ptid;
        let dur_us = Int64.to_float e.Obs.dur_ns /. 1000. in
        Alcotest.(check bool)
          "duration survives" true
          (Float.abs (p.Obs.Trace.pdur -. dur_us) <= 0.002))
      (Obs.events ()) xs;
    Alcotest.(check bool)
      "thread metadata present" true
      (List.exists
         (fun (p : Obs.Trace.parsed_event) -> p.Obs.Trace.pph = "M")
         parsed);
    Alcotest.(check bool)
      "counters exported" true
      (List.exists
         (fun (p : Obs.Trace.parsed_event) ->
           p.Obs.Trace.pph = "C" && p.Obs.Trace.pname = "t.rt")
         parsed)

let test_trace_parse_rejects_garbage () =
  (match Obs.Trace.parse "not json" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  match Obs.Trace.parse "{\"traceEvents\": [{\"name\": \"x\"" with
  | Ok _ -> Alcotest.fail "accepted truncated JSON"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Bench_io: escaping, --json target normalization, the perf gate      *)

let test_json_escape () =
  Alcotest.(check string)
    "quotes, backslashes, newlines" "a\\\"b\\\\c\\nd"
    (B.json_escape "a\"b\\c\nd");
  Alcotest.(check string)
    "control characters" "tab\\u0009bell\\u0007"
    (B.json_escape "tab\tbell\007")

let test_targets_bare_filename () =
  (* The historical bug: a bare --json filename went through
     Filename.dirname/concat and came back as "./BENCH_latest.json", so
     the dated = latest dedup failed and the file was written twice. *)
  let dated, latest =
    B.targets ~is_dir:false ~date:"2026-08-09" "BENCH_latest.json"
  in
  Alcotest.(check string) "dated is the given name" "BENCH_latest.json" dated;
  Alcotest.(check string) "latest not ./-prefixed" "BENCH_latest.json" latest

let test_targets_dir_and_nested () =
  let dated, latest = B.targets ~is_dir:true ~date:"2026-08-09" "_bench" in
  Alcotest.(check string)
    "dated under dir"
    (Filename.concat "_bench" "BENCH_2026-08-09.json")
    dated;
  Alcotest.(check string)
    "latest under dir"
    (Filename.concat "_bench" "BENCH_latest.json")
    latest;
  let dated, latest =
    B.targets ~is_dir:false ~date:"2026-08-09"
      (Filename.concat "out" "custom.json")
  in
  Alcotest.(check string)
    "explicit file kept"
    (Filename.concat "out" "custom.json")
    dated;
  Alcotest.(check string)
    "latest beside it"
    (Filename.concat "out" "BENCH_latest.json")
    latest

let bench_json entries =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\n  \"benchmarks\": [";
  List.iteri
    (fun i (name, verify_s, total_s) ->
      Buffer.add_string buf
        (Printf.sprintf
           "%s\n    { \"name\": \"%s\",\n      \"verify_s\": %.4f,\n      \
            \"total_s\": %.4f,\n      \"baseline_cycles\": { \"Seq\": 1 } }"
           (if i = 0 then "" else ",")
           name verify_s total_s))
    entries;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let test_read_workloads () =
  let s = bench_json [ ("w1", 0.1, 1.0); ("w2", 0.2, 2.0) ] in
  Alcotest.(check (list (triple string (float 1e-9) (float 1e-9))))
    "parsed back"
    [ ("w1", 0.1, 1.0); ("w2", 0.2, 2.0) ]
    (B.read_workloads s)

let test_check_passes_on_equal () =
  let entries = [ ("w1", 0.1, 1.0); ("w2", 0.2, 2.0) ] in
  let baseline = bench_json entries in
  let deltas =
    B.check ~tolerance:25.0 ~baseline
      ~current:(List.map (fun (n, v, t) -> (n, v, t)) entries)
  in
  Alcotest.(check int) "two workloads + suite row" 5 (List.length deltas);
  Alcotest.(check int) "no regressions" 0 (List.length (B.regressions deltas))

let test_check_fails_on_regression () =
  let baseline = bench_json [ ("w1", 0.1, 1.0) ] in
  let deltas =
    B.check ~tolerance:25.0 ~baseline ~current:[ ("w1", 0.1, 2.0) ]
  in
  let regs = B.regressions deltas in
  Alcotest.(check bool) "gate trips" true (regs <> []);
  Alcotest.(check bool)
    "total_s row tripped" true
    (List.exists (fun (d : B.delta) -> d.B.metric = "total_s") regs)

let test_check_noise_floor () =
  (* 10x relative regression but only 9ms absolute: below the 20ms
     floor, so a shared-runner blip does not fail CI. *)
  let baseline = bench_json [ ("w1", 0.0, 0.001) ] in
  let deltas =
    B.check ~tolerance:25.0 ~baseline ~current:[ ("w1", 0.0, 0.01) ]
  in
  Alcotest.(check int)
    "absolute floor holds" 0
    (List.length (B.regressions deltas))

let test_check_ignores_unmatched () =
  let baseline = bench_json [ ("w1", 0.1, 1.0) ] in
  let deltas =
    B.check ~tolerance:25.0 ~baseline
      ~current:[ ("w1", 0.1, 1.0); ("only-in-current", 9.0, 9.0) ]
  in
  Alcotest.(check bool)
    "unmatched workload not compared" true
    (not
       (List.exists
          (fun (d : B.delta) -> d.B.workload = "only-in-current")
          deltas));
  Alcotest.(check int) "still clean" 0 (List.length (B.regressions deltas))

let test_check_warns_missing_baseline () =
  (* The gate skips baseline workloads with no current row (a --quick
     run against a full-suite baseline must still pass), but the bench
     driver warns with this list so a workload that silently stopped
     running is visible. *)
  let baseline = bench_json [ ("w1", 0.1, 1.0); ("gone", 0.2, 2.0) ] in
  Alcotest.(check (list string))
    "baseline-only workload reported" [ "gone" ]
    (B.missing_from_current ~baseline ~current:[ ("w1", 0.1, 1.0) ]);
  Alcotest.(check (list string))
    "full match reports nothing" []
    (B.missing_from_current ~baseline
       ~current:[ ("w1", 0.1, 1.0); ("gone", 0.2, 2.0) ]);
  let deltas =
    B.check ~tolerance:25.0 ~baseline ~current:[ ("w1", 0.1, 1.0) ]
  in
  Alcotest.(check int)
    "missing workload never regresses the gate" 0
    (List.length (B.regressions deltas))

let quality_json =
  (* The single-line height/pressure objects exactly as render writes
     them, inside a benchmarks entry. *)
  String.concat "\n"
    [
      "{";
      "  \"benchmarks\": [";
      "    { \"name\": \"w1\",";
      "      \"verify_s\": 0.1,";
      "      \"total_s\": 1.0,";
      "      \"height\": { \"bound_cycles\": 100, \"achieved_cycles\": 110, \
       \"gap\": 0.1000 },";
      "      \"pressure\": { \"gpr_maxlive\": 14, \"pred_maxlive\": 5, \
       \"btr_maxlive\": 4 },";
      "      \"baseline_cycles\": { \"Seq\": 1 } },";
      "    { \"name\": \"w2\",";
      "      \"verify_s\": 0.2,";
      "      \"total_s\": 2.0,";
      "      \"height\": { \"bound_cycles\": 50, \"achieved_cycles\": 50, \
       \"gap\": 0.0000 },";
      "      \"baseline_cycles\": { \"Seq\": 1 } }";
      "  ]";
      "}";
    ]

let test_read_height_and_pressure () =
  (match B.read_height quality_json with
  | [ ("w1", h1); ("w2", h2) ] ->
    Alcotest.(check (float 1e-9)) "w1 gap" 0.1 h1.B.gap;
    Alcotest.(check int) "w1 bound" 100 h1.B.h_bound;
    Alcotest.(check int) "w1 achieved" 110 h1.B.h_achieved;
    Alcotest.(check int) "w2 abs gap" 0 (h2.B.h_achieved - h2.B.h_bound)
  | hs -> Alcotest.failf "expected 2 height entries, got %d" (List.length hs));
  match B.read_pressure quality_json with
  | [ ("w1", classes) ] ->
    Alcotest.(check (list (pair string int)))
      "w1 classes"
      [ ("gpr", 14); ("pred", 5); ("btr", 4) ]
      classes
  | ps ->
    Alcotest.failf "expected 1 pressure entry (w2 predates the object), \
                    got %d"
      (List.length ps)

let test_height_gap_floor () =
  let e gap h_bound h_achieved = { B.gap; h_bound; h_achieved } in
  (* The historical flap: a 1-cycle schedule blip on a tiny workload is
     a huge ratio move but must stay below the absolute floor. *)
  Alcotest.(check bool)
    "one cycle on a tiny workload is noise" false
    (B.height_regressed ~base:(e 0.0 10 10) ~cur:(e 0.1 10 11));
  Alcotest.(check bool)
    "two cycles past the ratio tolerance regresses" true
    (B.height_regressed ~base:(e 0.0 10 10) ~cur:(e 0.2 10 12));
  (* A large absolute move that barely changes the ratio on a big
     workload is below the percentage-point test. *)
  Alcotest.(check bool)
    "ratio within a point is not a regression" false
    (B.height_regressed ~base:(e 0.100 1000 1100) ~cur:(e 0.105 1000 1105));
  Alcotest.(check bool)
    "improvement never regresses" false
    (B.height_regressed ~base:(e 0.2 10 12) ~cur:(e 0.0 10 10))

let test_pressure_floor () =
  Alcotest.(check bool)
    "within the floor is noise" false
    (B.pressure_regressed ~base:10 ~cur:12);
  Alcotest.(check bool)
    "past the floor regresses" true
    (B.pressure_regressed ~base:10 ~cur:13);
  Alcotest.(check bool)
    "improvement never regresses" false
    (B.pressure_regressed ~base:12 ~cur:10)

let test_render_pqs_counters () =
  let contents =
    B.render
      ~pqs:
        [ ("pqs.memo_misses", 10); ("pqs.memo_hits", 90); ("pqs.queries", 55) ]
      ~date:"2026-08-09" ~domains:1 ~results:[] ~micro:[]
      ~par:((0., 0.), (0., 0.))
      ()
  in
  Alcotest.(check (option (float 1e-9)))
    "memo_hits read back" (Some 90.)
    (B.read_scalar contents "pqs.memo_hits");
  Alcotest.(check (option (float 1e-9)))
    "queries read back" (Some 55.)
    (B.read_scalar contents "pqs.queries");
  let without =
    B.render ~date:"2026-08-09" ~domains:1 ~results:[] ~micro:[]
      ~par:((0., 0.), (0., 0.))
      ()
  in
  Alcotest.(check (option (float 1e-9)))
    "absent when not provided" None
    (B.read_scalar without "pqs.memo_hits")

let suite =
  ( "obs",
    [
      Alcotest.test_case "span nesting and ordering" `Quick
        (with_obs test_span_nesting);
      Alcotest.test_case "summary merges by name path" `Quick
        (with_obs test_span_summary_merge);
      Alcotest.test_case "span records on exception" `Quick
        (with_obs test_span_exception);
      Alcotest.test_case "counter monotonicity" `Quick
        (with_obs test_counter_monotonic);
      Alcotest.test_case "reset zeroes, handles survive" `Quick
        (with_obs test_counter_reset);
      Alcotest.test_case "gauge last write wins" `Quick
        (with_obs test_gauge_last_write_wins);
      Alcotest.test_case "disabled mode records nothing" `Quick
        (with_obs test_disabled_no_effect);
      Alcotest.test_case "disabled mode does not allocate" `Quick
        (with_obs test_disabled_zero_alloc);
      Alcotest.test_case "trace JSON round-trip" `Quick
        (with_obs test_trace_roundtrip);
      Alcotest.test_case "trace parser rejects garbage" `Quick
        (with_obs test_trace_parse_rejects_garbage);
      Alcotest.test_case "bench json_escape" `Quick test_json_escape;
      Alcotest.test_case "bench --json bare filename" `Quick
        test_targets_bare_filename;
      Alcotest.test_case "bench --json dir and nested" `Quick
        test_targets_dir_and_nested;
      Alcotest.test_case "bench read_workloads" `Quick test_read_workloads;
      Alcotest.test_case "perf gate passes on equal" `Quick
        test_check_passes_on_equal;
      Alcotest.test_case "perf gate trips on regression" `Quick
        test_check_fails_on_regression;
      Alcotest.test_case "perf gate noise floor" `Quick test_check_noise_floor;
      Alcotest.test_case "perf gate ignores unmatched" `Quick
        test_check_ignores_unmatched;
      Alcotest.test_case "perf gate lists missing baseline workloads" `Quick
        test_check_warns_missing_baseline;
      Alcotest.test_case "bench read_height / read_pressure" `Quick
        test_read_height_and_pressure;
      Alcotest.test_case "height-gap warning absolute floor" `Quick
        test_height_gap_floor;
      Alcotest.test_case "pressure warning absolute floor" `Quick
        test_pressure_floor;
      Alcotest.test_case "bench json pqs counters" `Quick
        test_render_pqs_counters;
    ] )
