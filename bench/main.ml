(* Benchmark harness.

   Two roles, mirroring the deliverables:

   1. Reproduce the paper's evaluation artifacts: Table 1 (cmpp
      semantics), Table 2 (speedups per benchmark across the five
      processors), Table 3 (static/dynamic op-count ratios on the medium
      processor), and the Section 6 / Figures 6-7 strcpy walk-through
      numbers.  These are printed as the paper formats them.

   2. Bechamel micro-benchmarks of the compiler itself — one Test.make
      per table plus one per major pass — reporting ns/run for the
      machinery that regenerates each artifact.

   Usage:
     dune exec bench/main.exe              # everything (full suite)
     dune exec bench/main.exe -- --quick   # 3-workload subset
     dune exec bench/main.exe -- --tables  # skip the micro-benchmarks
     dune exec bench/main.exe -- --micro   # skip the tables
     dune exec bench/main.exe -- --json .  # also write BENCH_<date>.json
     dune exec bench/main.exe -- --trace t.json          # Chrome trace
     dune exec bench/main.exe -- --check BENCH_latest.json [--tolerance 25]
                                           # perf-regression gate       *)

open Bechamel
open Toolkit
module W = Cpr_workloads
module P = Cpr_pipeline
module Obs = Cpr_obs.Obs
open Cpr_ir

let quick = Array.exists (fun a -> a = "--quick") Sys.argv
let tables_only = Array.exists (fun a -> a = "--tables") Sys.argv
let micro_only = Array.exists (fun a -> a = "--micro") Sys.argv

let flag_value name =
  let rec find i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name && i + 1 < Array.length Sys.argv then
      Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

(* [--domains N]: domains for the workload-suite run.  Defaults to the
   runtime's recommendation capped at 8; results are identical for every
   N, only the wall clock changes. *)
let domains =
  match flag_value "--domains" with
  | None -> Cpr_par.Pool.default_domains ()
  | Some s -> (
    match int_of_string_opt s with
    | Some d when d >= 1 -> d
    | _ -> invalid_arg "--domains expects a positive integer")

(* Reproducible-build convention: SOURCE_DATE_EPOCH overrides the wall
   clock wherever a date lands in output. *)
let bench_date () =
  let epoch =
    match
      Option.bind (Sys.getenv_opt "SOURCE_DATE_EPOCH") float_of_string_opt
    with
    | Some t -> t
    | None -> Unix.time ()
  in
  let tm = Unix.gmtime epoch in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday

(* [--json PATH]: also dump the Table 2/3 numbers, the micro-bench
   ns/run figures, and the parallel wall-clock measurements as JSON.  A
   directory PATH gets a dated [BENCH_<yyyy-mm-dd>.json] inside it; a
   sibling [BENCH_latest.json] is always (re)written too, and the
   previous latest, if any, is compared against. *)
let json_target =
  Option.map
    (fun p ->
      P.Bench_io.targets
        ~is_dir:(Sys.file_exists p && Sys.is_directory p)
        ~date:(bench_date ()) p)
    (flag_value "--json")

(* [--check BASELINE.json [--tolerance PCT]]: after the suite, compare
   per-workload total_s/verify_s and suite wall time against the
   committed baseline; exit nonzero past the noise margin.  CI's
   bench-smoke job is the intended caller (with a generous tolerance
   for shared runners). *)
let check_target = flag_value "--check"

let tolerance =
  match flag_value "--tolerance" with
  | None -> 25.0
  | Some s -> (
    match float_of_string_opt s with
    | Some t when t >= 0.0 -> t
    | _ -> invalid_arg "--tolerance expects a non-negative percentage")

(* [--trace FILE]: enable Cpr_obs and export the run as a Chrome-trace
   JSON (chrome://tracing, Perfetto), plus a span summary on stderr. *)
let trace_target = flag_value "--trace"

(* Counters (pqs, pass, verify families) must accumulate whenever the
   run will be persisted, not just when a trace is requested: the JSON
   artifact reports predicate-engine cache effectiveness. *)
let () =
  if trace_target <> None || json_target <> None then Obs.set_enabled true

let suite () =
  if quick then
    List.filter_map W.Registry.find [ "strcpy"; "grep"; "099.go" ]
  else W.Registry.all

(* ------------------------------------------------------------------ *)
(* Table 1: cmpp semantics                                             *)

let print_table1 () =
  Format.printf "@.Table 1: behavior of compare operations@.@.";
  Format.printf "%-10s%-10s%6s%6s%6s%6s%6s%6s@." "input" "compare" "un" "uc"
    "on" "oc" "an" "ac";
  List.iter
    (fun (guard, cond) ->
      Format.printf "%-10d%-10d" (if guard then 1 else 0)
        (if cond then 1 else 0);
      List.iter
        (fun action ->
          match Op.cmpp_dest_update action ~guard ~cond with
          | Some v -> Format.printf "%6d" (if v then 1 else 0)
          | None -> Format.printf "%6s" "-")
        [ Op.Un; Op.Uc; Op.On; Op.Oc; Op.An; Op.Ac ];
      Format.printf "@.")
    [ (false, false); (false, true); (true, false); (true, true) ]

(* ------------------------------------------------------------------ *)
(* Tables 2 and 3 over the workload suite                              *)

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let suite_jobs () =
  List.map
    (fun (w : W.Workload.t) ->
      (w.W.Workload.name, w.W.Workload.build (), w.W.Workload.inputs ()))
    (suite ())

let run_suite ?(quiet = false) ~domains () =
  let results =
    Cpr_par.Pool.with_pool ~domains (fun pool ->
        P.Report.run_many ~pool
          ~bundle_dir:Cpr_resilience.Bundle.default_dir (suite_jobs ()))
  in
  if not quiet then
    List.iter
      (fun (r : P.Report.result) ->
        (match r.P.Report.equivalent with
        | Ok () -> ()
        | Error e ->
          Format.eprintf "WARNING %s equivalence: %s@." r.P.Report.name e);
        List.iter
          (fun f ->
            Format.eprintf "WARNING %s %a@." r.P.Report.name
              Cpr_resilience.Recover.pp_failure f)
          r.P.Report.failures;
        Format.eprintf "  [%s done%s]@.%!" r.P.Report.name
          (if P.Report.degraded r then ", DEGRADED" else ""))
      results;
  results

let print_table2 results =
  Format.printf
    "@.Table 2: the effectiveness of ICBM for processors with branch \
     latency 1 (speedups)@.@.";
  P.Report.print_table2 Format.std_formatter results;
  let spec95 =
    List.filter
      (fun (r : P.Report.result) ->
        List.mem r.P.Report.name W.Registry.spec95_names)
      results
  in
  if spec95 <> [] then begin
    Format.printf "%-14s" "Gmean-spec95";
    List.iter
      (fun (m : Cpr_machine.Descr.t) ->
        let col =
          List.map
            (fun (r : P.Report.result) ->
              List.assoc m.Cpr_machine.Descr.name r.P.Report.speedups)
            spec95
        in
        Format.printf "%8.2f" (P.Report.gmean col))
      Cpr_machine.Descr.all;
    Format.printf "@."
  end

let print_table3 results =
  Format.printf
    "@.Table 3: the effect of ICBM on static and dynamic operation counts \
     (medium processor)@.@.";
  P.Report.print_table3 Format.std_formatter results

(* ------------------------------------------------------------------ *)
(* Figures 6/7: the Section 6 walk-through numbers                     *)

let print_figure67 () =
  let prog = W.Strcpy.paper_example () in
  let inputs = W.Strcpy.inputs () in
  let base = P.Passes.baseline prog inputs in
  let red = P.Passes.height_reduce prog inputs in
  Format.printf "@.Figures 6-7 (Section 6): strcpy walk-through@.@.";
  Format.printf "loop ops: %d -> %d on-trace (paper: 30 -> 28 via the \
                 paper's blocking; the automatic heuristics pick one block)@."
    (Region.static_op_count (Prog.find_exn base.P.Passes.prog "Loop"))
    (Region.static_op_count (Prog.find_exn red.P.Passes.prog "Loop"));
  List.iter
    (fun m ->
      let lb = Cpr_sched.List_sched.schedule_prog m base.P.Passes.prog in
      let lr = Cpr_sched.List_sched.schedule_prog m red.P.Passes.prog in
      Format.printf "%s: loop schedule %d -> %d cycles@."
        m.Cpr_machine.Descr.name
        (List.assoc "Loop" lb).Cpr_sched.Schedule.length
        (List.assoc "Loop" lr).Cpr_sched.Schedule.length)
    [ Cpr_machine.Descr.medium; Cpr_machine.Descr.wide ]

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out                   *)

(* ICBM vs full (redundant) CPR — the trade-off motivating ICBM
   (Section 4: full CPR "aggressively accelerates all paths ... at the
   cost of a quadratic growth in the number of compares"; ICBM "is
   attractive for processors with limited parallelism"). *)
let ablation_full_cpr () =
  Format.printf "@.Ablation A: ICBM vs full (redundant) CPR, speedup over the baseline@.@.";
  Format.printf "%-12s%-10s%7s%7s%7s%7s%7s@." "bench" "variant" "Seq" "Nar"
    "Med" "Wid" "Inf";
  List.iter
    (fun name ->
      let w = Option.get (W.Registry.find name) in
      let inputs = w.W.Workload.inputs () in
      let base = P.Passes.baseline ~verify:false (w.W.Workload.build ()) inputs in
      let icbm =
        P.Passes.height_reduce ~verify:false (w.W.Workload.build ()) inputs
      in
      let full = Prog.copy base.P.Passes.prog in
      let loop = Prog.find_exn full "Loop" in
      let converted = Cpr_core.Frp.convert_region full loop in
      if converted then begin
        let (_ : Cpr_core.Spec.stats) =
          Cpr_core.Spec.speculate_region full loop
        in
        ignore (Cpr_core.Fullcpr.transform_region full loop : bool)
      end;
      P.Passes.profile full inputs;
      let speedups p =
        List.map
          (fun m ->
            P.Perf.speedup
              ~baseline:(P.Perf.estimate m base.P.Passes.prog)
              ~transformed:(P.Perf.estimate m p))
          Cpr_machine.Descr.all
      in
      List.iter
        (fun (variant, p) ->
          Format.printf "%-12s%-10s" name variant;
          List.iter (fun s -> Format.printf "%7.2f" s) (speedups p);
          Format.printf "@.")
        [ ("icbm", icbm.P.Passes.prog); ("full-cpr", full) ])
    [ "grep"; "cmp"; "023.eqntott" ]

(* Exit-weight threshold sweep: the single knob the paper identifies as
   the cause of sequential/narrow-machine losses (Section 7). *)
let ablation_exit_weight () =
  Format.printf
    "@.Ablation B: exit-weight threshold sweep (strcpy)@.@.";
  Format.printf "%-12s%7s%7s%7s%7s%7s@." "threshold" "Seq" "Nar" "Med" "Wid"
    "Inf";
  let w = Option.get (W.Registry.find "strcpy") in
  let inputs = w.W.Workload.inputs () in
  let base = P.Passes.baseline ~verify:false (w.W.Workload.build ()) inputs in
  List.iter
    (fun threshold ->
      let heur =
        { Cpr_core.Heur.default with
          Cpr_core.Heur.exit_weight_threshold = threshold }
      in
      let red =
        P.Passes.height_reduce ~heur ~verify:false (w.W.Workload.build ())
          inputs
      in
      Format.printf "%-12.2f" threshold;
      List.iter
        (fun m ->
          Format.printf "%7.2f"
            (P.Perf.speedup
               ~baseline:(P.Perf.estimate m base.P.Passes.prog)
               ~transformed:(P.Perf.estimate m red.P.Passes.prog)))
        Cpr_machine.Descr.all;
      Format.printf "@.")
    [ 0.05; 0.15; 0.30; 0.60; 0.95 ]

(* Estimator ablation: the paper's Sigma(length x frequency) vs the
   exit-aware refinement that charges side exits only up to the exit
   branch. *)
let ablation_estimator () =
  Format.printf
    "@.Ablation C: paper estimator vs exit-aware refinement (medium processor cycles)@.@.";
  Format.printf "%-14s%12s%12s@." "bench" "paper est" "exit-aware";
  List.iter
    (fun name ->
      let w = Option.get (W.Registry.find name) in
      let prog = w.W.Workload.build () in
      P.Passes.profile prog (w.W.Workload.inputs ());
      let m = Cpr_machine.Descr.medium in
      Format.printf "%-14s%12d%12d@." name (P.Perf.estimate m prog)
        (P.Perf.estimate_exit_aware m prog))
    [ "strcpy"; "grep"; "wc"; "023.eqntott" ]

(* Per-machine heuristics: the paper's stated future work ("the further
   development of distinct heuristics for each machine configuration
   would alleviate this problem", Section 7). *)
let ablation_per_machine () =
  Format.printf
    "@.Ablation D: uniform (medium-tuned) vs per-machine heuristics@.@.";
  let subset =
    List.filter_map W.Registry.find
      [ "strcpy"; "grep"; "cmp"; "023.eqntott"; "132.ijpeg"; "lex" ]
  in
  let gmean_for pick =
    List.map
      (fun (m : Cpr_machine.Descr.t) ->
        let speedups =
          List.map
            (fun (w : W.Workload.t) ->
              let inputs = w.W.Workload.inputs () in
              let base =
                P.Passes.baseline ~verify:false (w.W.Workload.build ()) inputs
              in
              let red =
                P.Passes.height_reduce ~heur:(pick m) ~verify:false
                  (w.W.Workload.build ()) inputs
              in
              P.Perf.speedup
                ~baseline:(P.Perf.estimate m base.P.Passes.prog)
                ~transformed:(P.Perf.estimate m red.P.Passes.prog))
            subset
        in
        (m.Cpr_machine.Descr.name, P.Report.gmean speedups))
      Cpr_machine.Descr.all
  in
  let uniform = gmean_for (fun _ -> Cpr_core.Heur.default) in
  let tuned = gmean_for Cpr_core.Heur.tuned_for in
  Format.printf "%-12s" "variant";
  List.iter (fun (n, _) -> Format.printf "%7s" n) uniform;
  Format.printf "@.%-12s" "uniform";
  List.iter (fun (_, g) -> Format.printf "%7.2f" g) uniform;
  Format.printf "@.%-12s" "per-machine";
  List.iter (fun (_, g) -> Format.printf "%7.2f" g) tuned;
  Format.printf "@."

let run_ablations () =
  ablation_full_cpr ();
  ablation_exit_weight ();
  ablation_estimator ();
  ablation_per_machine ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)

let strcpy_prog = lazy (W.Strcpy.build ~unroll:8 ())
let strcpy_inputs = lazy (W.Strcpy.inputs ())

let prepared_loop () =
  let prog = Prog.copy (Lazy.force strcpy_prog) in
  P.Passes.profile prog (Lazy.force strcpy_inputs);
  prog

let micro_tests =
  [
    (* Table 1 artifact: architectural cmpp execution *)
    Test.make ~name:"table1/cmpp-interp"
      (Staged.stage (fun () ->
           List.iter
             (fun action ->
               List.iter
                 (fun guard ->
                   ignore
                     (Op.cmpp_dest_update action ~guard ~cond:true : bool option))
                 [ true; false ])
             [ Op.Un; Op.Uc; Op.On; Op.Oc; Op.An; Op.Ac ]));
    (* Table 2 artifact: the full pipeline on one benchmark (transform
       only; the verifier has its own micro-benchmark below) *)
    Test.make ~name:"table2/pipeline-strcpy"
      (Staged.stage (fun () ->
           let prog = Lazy.force strcpy_prog in
           let inputs = Lazy.force strcpy_inputs in
           ignore
             (P.Passes.height_reduce ~verify:false prog inputs
               : P.Passes.compiled)));
    (* the static verifier itself *)
    Test.make ~name:"verify/check-program"
      (Staged.stage
         (let prog = lazy (prepared_loop ()) in
          fun () ->
            ignore
              (Cpr_verify.Verify.check_program (Lazy.force prog)
                : Cpr_verify.Verify.report)));
    (* Table 3 artifact: op-count statistics *)
    Test.make ~name:"table3/op-counts"
      (Staged.stage
         (let prog = lazy (prepared_loop ()) in
          fun () -> ignore (Stats_ir.of_prog (Lazy.force prog) : Stats_ir.t)));
    (* pass-level costs *)
    Test.make ~name:"pass/frp-convert"
      (Staged.stage (fun () ->
           let prog = prepared_loop () in
           ignore (Cpr_core.Frp.convert prog : int)));
    Test.make ~name:"pass/speculation"
      (Staged.stage (fun () ->
           let prog = prepared_loop () in
           let (_ : int) = Cpr_core.Frp.convert prog in
           ignore (Cpr_core.Spec.speculate prog : Cpr_core.Spec.stats)));
    Test.make ~name:"pass/icbm-full"
      (Staged.stage (fun () ->
           let prog = prepared_loop () in
           ignore (Cpr_core.Icbm.run prog : Cpr_core.Icbm.region_stats)));
    Test.make ~name:"pass/depgraph-medium"
      (Staged.stage
         (let prog = lazy (prepared_loop ()) in
          fun () ->
            let prog = Lazy.force prog in
            let l = Cpr_analysis.Liveness.analyze prog in
            ignore
              (Cpr_analysis.Depgraph.build Cpr_machine.Descr.medium prog l
                 (Prog.find_exn prog "Loop")
                : Cpr_analysis.Depgraph.t)));
    Test.make ~name:"pass/list-schedule-medium"
      (Staged.stage
         (let prog = lazy (prepared_loop ()) in
          fun () ->
            ignore
              (Cpr_sched.List_sched.schedule_prog Cpr_machine.Descr.medium
                 (Lazy.force prog)
                : (string * Cpr_sched.Schedule.t) list)));
    (* predicate engine: all-pairs guard queries over the prepared loop —
       after the first run every disjoint/implies answer is a memo hit,
       which is exactly the steady state the depgraph builder sees *)
    Test.make ~name:"analysis/pqs-queries"
      (Staged.stage
         (let env =
            lazy
              (let prog = prepared_loop () in
               Cpr_analysis.Pred_env.analyze (Prog.find_exn prog "Loop"))
          in
          fun () ->
            let env = Lazy.force env in
            let n = Array.length (Cpr_analysis.Pred_env.ops env) in
            let proved = ref 0 in
            for i = 0 to n - 1 do
              let gi = Cpr_analysis.Pred_env.guard_expr env i in
              for j = i + 1 to n - 1 do
                let gj = Cpr_analysis.Pred_env.guard_expr env j in
                if Cpr_analysis.Pqs.disjoint gi gj then incr proved;
                if Cpr_analysis.Pqs.implies gi gj then incr proved
              done
            done;
            ignore !proved));
    Test.make ~name:"sim/interp-strcpy-400"
      (Staged.stage
         (let prog = lazy (Lazy.force strcpy_prog) in
          let input =
            lazy (W.Strcpy.string_input (List.init 400 (fun i -> 1 + (i mod 200))))
          in
          fun () ->
            ignore
              (Cpr_sim.Equiv.run_on (Lazy.force prog) (Lazy.force input)
                : Cpr_sim.Interp.outcome)));
  ]

let run_micro () =
  Format.printf "@.Micro-benchmarks (Bechamel, monotonic clock)@.@.";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None
      ~stabilize:false ()
  in
  List.concat_map
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.fold
        (fun name ols_result acc ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
            Format.printf "%-28s %12.0f ns/run@." name est;
            (name, Some est) :: acc
          | _ ->
            Format.printf "%-28s %12s@." name "n/a";
            (name, None) :: acc)
        results [])
    (List.map (fun t -> Test.make_grouped ~name:"bench" [ t ]) micro_tests)

(* ------------------------------------------------------------------ *)
(* JSON dump (--json)                                                  *)

(* Wall-clock behavior of the two pooled paths at one domain vs the
   requested count — the numbers the "Performance" section of the README
   tracks.  On a single-core host the pairs coincide (modulo noise);
   multi-core CI is where the spread shows. *)
let measure_parallel () =
  let suite_wall d =
    snd
      (timed (fun () ->
           ignore
             (run_suite ~quiet:true ~domains:d () : P.Report.result list)))
  in
  let fuzz_rate d =
    let stages =
      match Cpr_fuzz.Stage.parse "all" with
      | Ok s -> s
      | Error m -> failwith m
    in
    let n = 200 in
    let _, dt =
      timed (fun () ->
          Cpr_par.Pool.with_pool ~domains:d (fun pool ->
              ignore
                (Cpr_fuzz.Driver.run_seeds ~pool Cpr_fuzz.Driver.default_check
                   stages ~lo:0 ~hi:n
                  : (int * (Cpr_fuzz.Stage.t * Cpr_fuzz.Driver.outcome) list)
                    list)))
    in
    float_of_int n /. dt
  in
  let s1 = suite_wall 1 and sn = suite_wall domains in
  let f1 = fuzz_rate 1 and fn = fuzz_rate domains in
  ((s1, sn), (f1, fn))

let pqs_counter_names =
  [
    "pqs.queries";
    "pqs.fast_path_hits";
    "pqs.interned";
    "pqs.memo_hits";
    "pqs.memo_misses";
    (* Height-analysis telemetry rides in the same counters object:
       bound queries answered, and CPR candidates the profitability
       gate skipped (0 unless a run opts into Heur.height_gate). *)
    "height.bound_queries";
    "height.candidates_skipped";
    (* Register-pressure telemetry, same arrangement: disjointness
       queries the analyzer issued, and CPR candidates the pressure
       gate skipped (0 unless a run opts into Heur.pressure_gate). *)
    "pressure.queries";
    "pressure.candidates_skipped";
  ]

let write_json ~dated ~latest results micro par =
  let prev = Option.value ~default:"" (P.Bench_io.read_file latest) in
  let prev_micro = P.Bench_io.read_micro prev in
  let prev_verify = P.Bench_io.read_scalar prev "verify_total_s" in
  let pqs =
    List.filter
      (fun (name, _) -> List.mem name pqs_counter_names)
      (Obs.counters ())
  in
  let contents =
    P.Bench_io.render ~pqs ~date:(bench_date ()) ~domains ~results ~micro ~par
      ()
  in
  List.iter
    (fun path ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      Format.printf "@.wrote %s@." path)
    (if dated = latest then [ dated ] else [ dated; latest ]);
  if prev_micro <> [] then begin
    Format.printf "@.micro-bench vs previous %s:@." latest;
    List.iter
      (fun (name, est) ->
        match (est, List.assoc_opt name prev_micro) with
        | Some e, Some p when p > 0. ->
          Format.printf "  %-28s %12.0f -> %12.0f ns/run (x%.2f)@." name p e
            (e /. p)
        | _ -> ())
      (List.sort compare micro)
  end;
  (match (prev_verify, results) with
  | Some p, _ :: _ when p > 0. ->
    let v, _ = P.Bench_io.suite_seconds results in
    Format.printf "@.static verifier vs previous: %.3fs -> %.3fs (x%.2f)@." p
      v (v /. p)
  | _ -> ());
  (* Predicate-engine cache effectiveness, against the previous run when
     one is on disk.  Counts are workload-dependent, so only the hit
     rate is comparable across differently-sized runs. *)
  let rate hits misses =
    let total = hits +. misses in
    if total > 0. then 100. *. hits /. total else 0.
  in
  let cur = function
    | name -> (
      match List.assoc_opt name pqs with Some v -> float_of_int v | None -> 0.)
  in
  if pqs <> [] then begin
    Format.printf
      "@.pqs: %.0f queries, %.0f interned, memo hit rate %.1f%%"
      (cur "pqs.queries") (cur "pqs.interned")
      (rate (cur "pqs.memo_hits") (cur "pqs.memo_misses"));
    (match
       ( P.Bench_io.read_scalar prev "pqs.memo_hits",
         P.Bench_io.read_scalar prev "pqs.memo_misses" )
     with
    | Some h, Some m when h +. m > 0. ->
      Format.printf " (previous %.1f%%)" (rate h m)
    | _ -> ());
    Format.printf "@."
  end

(* ------------------------------------------------------------------ *)
(* Baseline gate (--check)                                             *)

(* Snapshot the baseline before anything runs: --json may rewrite the
   very file --check points at, and a gate that compares a run against
   itself always passes. *)
let check_baseline =
  Option.map (fun p -> (p, P.Bench_io.read_file p)) check_target

let run_check ~baseline_path baseline results =
  match baseline with
  | None ->
    Format.eprintf "--check: no baseline at %s@." baseline_path;
    false
  | Some baseline ->
    let current =
      List.map
        (fun (r : P.Report.result) ->
          (r.P.Report.name, r.P.Report.verify_s, r.P.Report.total_s))
        results
    in
    (* A baseline workload absent from this run is skipped by the gate —
       warn so a workload that silently stopped running doesn't pass
       forever.  (--quick against a full-suite baseline warns by design.) *)
    List.iter
      (fun name ->
        Format.eprintf
          "--check: warning: baseline workload %s not in this run; not gated@."
          name)
      (P.Bench_io.missing_from_current ~baseline ~current);
    (* Schedule quality: warn-only.  The gap moves whenever the
       optimizer legitimately changes the code it hands the scheduler,
       so it signals a trajectory to look at, never a gate failure. *)
    let base_gaps = P.Bench_io.read_height baseline in
    List.iter
      (fun (r : P.Report.result) ->
        let cur =
          {
            P.Bench_io.gap = r.P.Report.height_gap;
            h_bound = r.P.Report.bound_cycles;
            h_achieved = r.P.Report.achieved_cycles;
          }
        in
        match List.assoc_opt r.P.Report.name base_gaps with
        | Some base when P.Bench_io.height_regressed ~base ~cur ->
          Format.eprintf
            "--check: warning: %s height_gap regressed %.1f%% -> %.1f%% \
             (bound %d, achieved %d); not gated@."
            r.P.Report.name
            (100. *. base.P.Bench_io.gap)
            (100. *. r.P.Report.height_gap)
            r.P.Report.bound_cycles r.P.Report.achieved_cycles
        | _ -> ())
      results;
    (* Register pressure: also warn-only, per class.  MAXLIVE moves with
       every legitimate code change; the gate only flags growth past the
       noise floor so pressure creep is visible in the trajectory. *)
    let base_pressure = P.Bench_io.read_pressure baseline in
    List.iter
      (fun (r : P.Report.result) ->
        match List.assoc_opt r.P.Report.name base_pressure with
        | None -> ()
        | Some base_classes ->
          List.iter
            (fun (cls, cur) ->
              match List.assoc_opt cls base_classes with
              | Some base when P.Bench_io.pressure_regressed ~base ~cur ->
                Format.eprintf
                  "--check: warning: %s %s maxlive regressed %d -> %d; \
                   not gated@."
                  r.P.Report.name cls base cur
              | _ -> ())
            r.P.Report.pressure)
      results;
    let deltas = P.Bench_io.check ~tolerance ~baseline ~current in
    if deltas = [] then begin
      Format.eprintf
        "--check: no workload of this run appears in %s; nothing gated@."
        baseline_path;
      false
    end
    else begin
      Format.printf "@.perf gate vs %s (tolerance %.0f%%):@.@." baseline_path
        tolerance;
      P.Bench_io.pp_deltas Format.std_formatter deltas;
      match P.Bench_io.regressions deltas with
      | [] -> true
      | rs ->
        Format.printf "@.%d metric(s) regressed past %.0f%%@."
          (List.length rs) tolerance;
        false
    end

let () =
  let results =
    if micro_only then []
    else begin
      print_table1 ();
      let results = Obs.span "bench/suite" (fun () -> run_suite ~domains ()) in
      let verify_total, suite_total = P.Bench_io.suite_seconds results in
      Format.printf
        "@.static verifier: %.2fs across %d workloads (%.1f%% of %.2fs \
         total suite work)@."
        verify_total (List.length results)
        (if suite_total > 0. then 100. *. verify_total /. suite_total else 0.)
        suite_total;
      print_table2 results;
      print_table3 results;
      print_figure67 ();
      Obs.span "bench/ablations" run_ablations;
      results
    end
  in
  let micro =
    if tables_only then [] else Obs.span "bench/micro" run_micro
  in
  Option.iter
    (fun (dated, latest) ->
      let par = Obs.span "bench/parallel" measure_parallel in
      write_json ~dated ~latest results micro par)
    json_target;
  let gate_ok =
    match check_baseline with
    | None -> true
    | Some (baseline_path, baseline) ->
      if micro_only then begin
        Format.eprintf "--check needs the workload suite; drop --micro@.";
        false
      end
      else run_check ~baseline_path baseline results
  in
  Option.iter
    (fun path ->
      Obs.Trace.export ~path;
      Format.eprintf "@.span summary:@.%a" Obs.Summary.pp ();
      Format.eprintf "wrote trace %s@." path)
    trace_target;
  if not gate_ok then exit 1
