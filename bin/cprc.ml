(* cprc: the control-CPR pipeline driver.

   Subcommands: list, show, run, schedule, vliw.  Programs are either
   named workloads from the registry or textual IR files (see
   Cpr_ir.Printer for the format).

   Exit codes: 0 ok, 2 verifier findings, 3 degraded (a pass fell back
   to its verified pre-pass input; a crash bundle lands under _crash/),
   1 fatal/usage error. *)

open Cpr_ir
module W = Cpr_workloads
module P = Cpr_pipeline

let load_program spec =
  match W.Registry.find spec with
  | Some w -> (w.W.Workload.build (), w.W.Workload.inputs ())
  | None ->
    if Sys.file_exists spec then begin
      let ic = open_in spec in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      let prog = Parser_.of_text text in
      Validate.check_exn prog;
      (prog, [ Cpr_sim.Equiv.no_input ])
    end
    else
      failwith
        (Printf.sprintf "unknown workload or file %S (try `cprc list`)" spec)

let machine_of_name name =
  match
    List.find_opt
      (fun (m : Cpr_machine.Descr.t) ->
        String.lowercase_ascii m.Cpr_machine.Descr.name
        = String.lowercase_ascii name)
      Cpr_machine.Descr.all
  with
  | Some m -> m
  | None -> failwith (Printf.sprintf "unknown machine %S (Seq/Nar/Med/Wid/Inf)" name)

let list_cmd () =
  List.iter
    (fun (w : W.Workload.t) ->
      Printf.printf "%-14s %s\n" w.W.Workload.name w.W.Workload.description)
    W.Registry.all;
  0

let phases =
  [ "baseline"; "superblock"; "unroll"; "frp"; "spec"; "icbm"; "fullcpr" ]

let show_cmd spec phase =
  let prog, inputs = load_program spec in
  P.Passes.profile prog inputs;
  (match phase with
  | "baseline" -> ()
  | "superblock" ->
    ignore (Cpr_core.Superblock.form prog : int);
    ignore (Cpr_core.Superblock.prune_unreachable prog : int)
  | "unroll" ->
    List.iter
      (fun (r : Region.t) ->
        if Cpr_core.Unroll.unrollable prog r then
          ignore (Cpr_core.Unroll.unroll_region prog r ~factor:4 : bool))
      (Prog.regions prog)
  | "frp" -> ignore (Cpr_core.Frp.convert prog)
  | "spec" ->
    ignore (Cpr_core.Frp.convert prog);
    ignore (Cpr_core.Spec.speculate prog)
  | "icbm" -> ignore (Cpr_core.Icbm.run prog)
  | "fullcpr" ->
    ignore (Cpr_core.Frp.convert prog);
    ignore (Cpr_core.Spec.speculate prog);
    ignore (Cpr_core.Fullcpr.transform prog : int)
  | p -> failwith (Printf.sprintf "unknown phase %S (%s)" p (String.concat "/" phases)));
  Validate.check_exn prog;
  print_string (Printer.to_text prog);
  0

(* The pipeline subcommand runs both compilations sandboxed: a pass
   failure degrades to the verified pre-pass IR (with a crash bundle
   quarantined under _crash/) and the numbers below measure the
   fallback; exit code 3 says so. *)
let run_cmd spec =
  let prog, inputs = load_program spec in
  let failures = ref [] in
  let protected stage =
    match
      P.Passes.protected ~bundle_dir:Cpr_resilience.Bundle.default_dir ~stage
        prog inputs
    with
    | Cpr_resilience.Recover.Committed c -> c
    | Cpr_resilience.Recover.Fell_back (c, f) ->
      failures := f :: !failures;
      Format.eprintf "DEGRADED: %a@." Cpr_resilience.Recover.pp_failure f;
      c
  in
  let base = protected "superblock" in
  let reduced = protected "icbm" in
  (match reduced.P.Passes.icbm with
  | Some s -> Format.printf "icbm: %a@." Cpr_core.Icbm.pp_stats s
  | None -> ());
  (match
     Cpr_sim.Equiv.check_many base.P.Passes.prog reduced.P.Passes.prog inputs
   with
  | Ok () -> Format.printf "baseline and height-reduced code are equivalent@."
  | Error e -> Format.printf "EQUIVALENCE FAILURE: %s@." e);
  let sb = Stats_ir.of_prog base.P.Passes.prog in
  let sr = Stats_ir.of_prog reduced.P.Passes.prog in
  Format.printf "baseline:       %a@." Stats_ir.pp sb;
  Format.printf "height-reduced: %a@." Stats_ir.pp sr;
  Format.printf "%-6s%12s%12s%10s@." "mach" "base cyc" "cpr cyc" "speedup";
  List.iter
    (fun (m : Cpr_machine.Descr.t) ->
      let b = P.Perf.estimate m base.P.Passes.prog in
      let t = P.Perf.estimate m reduced.P.Passes.prog in
      Format.printf "%-6s%12d%12d%10.3f@." m.Cpr_machine.Descr.name b t
        (P.Perf.speedup ~baseline:b ~transformed:t))
    Cpr_machine.Descr.all;
  if !failures = [] then 0 else 3

let schedule_cmd spec machine region cpr =
  let prog, inputs = load_program spec in
  let compiled =
    if cpr then P.Passes.height_reduce prog inputs
    else P.Passes.baseline prog inputs
  in
  let m = machine_of_name machine in
  let schedules = Cpr_sched.List_sched.schedule_prog m compiled.P.Passes.prog in
  let selected =
    match region with
    | Some r -> List.filter (fun (l, _) -> l = r) schedules
    | None -> schedules
  in
  if selected = [] then failwith "no such region";
  List.iter
    (fun (_, s) -> Format.printf "%a@." Cpr_sched.Schedule.pp s)
    selected;
  0

let vliw_cmd spec machine cpr =
  let prog, inputs = load_program spec in
  let compiled =
    if cpr then P.Passes.height_reduce prog inputs
    else P.Passes.baseline prog inputs
  in
  let m = machine_of_name machine in
  (match Cpr_sim.Vliw.check_against_interp m compiled.P.Passes.prog inputs with
  | Ok () -> Format.printf "scheduled code matches the architectural interpreter@."
  | Error e -> Format.printf "MISMATCH: %s@." e);
  let input = match inputs with i :: _ -> i | [] -> Cpr_sim.Equiv.no_input in
  let st = Cpr_sim.State.create () in
  Cpr_sim.State.set_memory st input.Cpr_sim.Equiv.memory;
  let out = Cpr_sim.Vliw.run ~state:st m compiled.P.Passes.prog in
  Format.printf "executed %d cycles over %d region entries@."
    out.Cpr_sim.Vliw.cycles out.Cpr_sim.Vliw.region_entries;
  0

open Cmdliner

let spec_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM"
       ~doc:"Workload name (see $(b,cprc list)) or textual IR file.")

let machine_arg =
  Arg.(value & opt string "Med" & info [ "machine"; "m" ] ~docv:"MACHINE"
       ~doc:"Target machine: Seq, Nar, Med, Wid or Inf.")

let cpr_flag =
  Arg.(value & flag & info [ "cpr" ] ~doc:"Apply FRP conversion and ICBM first.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record pipeline spans and counters and write a \
                 Chrome-trace-format JSON to $(i,FILE) (open in \
                 chrome://tracing or https://ui.perfetto.dev).")

(* Telemetry wraps the whole subcommand so the trace also covers a run
   that fails: enable first, export in a finalizer. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
    Cpr_obs.Obs.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Cpr_obs.Obs.Trace.export ~path;
        Format.eprintf "wrote trace %s@." path)
      f

(* Exit-code policy for every subcommand: verifier rejections print
   their findings to stderr and exit 2 (the unprotected subcommands —
   show, schedule, vliw — verify inline); usage errors and any other
   fatal exception exit 1. *)
let wrap ?trace f =
  try with_trace trace f with
  | Failure m ->
    prerr_endline m;
    1
  | Cpr_verify.Verify.Verify_error findings ->
    List.iter
      (fun fi -> Format.eprintf "%a@." Cpr_verify.Finding.pp fi)
      findings;
    Format.eprintf "verification failed with %d finding(s)@."
      (List.length findings);
    2
  | e ->
    prerr_endline (Printexc.to_string e);
    1

let list_t =
  Cmd.v (Cmd.info "list" ~doc:"List the built-in benchmark workloads")
    Term.(const (fun () -> wrap list_cmd) $ const ())

let show_t =
  let phase =
    Arg.(value & opt string "icbm" & info [ "phase" ] ~docv:"PHASE"
         ~doc:"baseline, superblock, unroll, frp, spec, icbm or fullcpr.")
  in
  Cmd.v (Cmd.info "show" ~doc:"Print the program after a pipeline phase")
    Term.(const (fun s p trace -> wrap ?trace (fun () -> show_cmd s p))
          $ spec_arg $ phase $ trace_arg)

let run_t =
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run the full pipeline: equivalence check, op counts, speedups")
    Term.(const (fun s trace -> wrap ?trace (fun () -> run_cmd s))
          $ spec_arg $ trace_arg)

let schedule_t =
  let region =
    Arg.(value & opt (some string) None & info [ "region" ] ~docv:"LABEL"
         ~doc:"Only this region.")
  in
  Cmd.v (Cmd.info "schedule" ~doc:"Print cycle-by-cycle schedules")
    Term.(const (fun s m r c trace ->
              wrap ?trace (fun () -> schedule_cmd s m r c))
          $ spec_arg $ machine_arg $ region $ cpr_flag $ trace_arg)

let vliw_t =
  Cmd.v
    (Cmd.info "vliw"
       ~doc:"Execute the scheduled code cycle-by-cycle and compare with the \
             interpreter")
    Term.(const (fun s m c trace -> wrap ?trace (fun () -> vliw_cmd s m c))
          $ spec_arg $ machine_arg $ cpr_flag $ trace_arg)

let () =
  let info =
    Cmd.info "cprc" ~version:"1.0"
      ~doc:"Control CPR (ICBM) compilation pipeline driver"
  in
  exit (Cmd.eval' (Cmd.group info [ list_t; show_t; run_t; schedule_t; vliw_t ]))
