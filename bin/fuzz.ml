(* fuzz: the differential fuzzing driver.

   For each seed in the range, generate a terminating program, push it
   through each requested stage combination, and check baseline-vs-
   transformed equivalence plus scheduled-VLIW agreement.  On failure,
   optionally auto-shrink the counterexample and persist it as a
   regression artifact.

     dune exec bin/fuzz.exe -- --seeds 0..5000 --stages icbm,fullcpr \
       --shrink --out test/corpus

   Two further modes: --chaos injects faults (exceptions, deadline
   overruns, corrupted IR) at randomized pipeline points and checks the
   resilience invariant (verified output or clean degraded result plus
   crash bundle — never an escaped exception); --replay-bundle re-runs a
   crash bundle's quarantined input through the full oracle battery.

   Everything is a deterministic function of the flags: running the
   same command twice prints the identical summary.

   Exit codes: 0 clean, 2 failures found, 1 fatal/usage error. *)

module F = Cpr_fuzz

let parse_seeds spec =
  match String.index_opt spec '.' with
  | Some i
    when i + 1 < String.length spec
         && spec.[i + 1] = '.'
         && i + 2 <= String.length spec -> (
    try
      let lo = int_of_string (String.sub spec 0 i) in
      let hi =
        int_of_string (String.sub spec (i + 2) (String.length spec - i - 2))
      in
      if lo > hi then Error (`Msg "empty seed range") else Ok (lo, hi)
    with Failure _ -> Error (`Msg ("bad seed range " ^ spec)))
  | _ -> (
    try
      let s = int_of_string spec in
      Ok (s, s)
    with Failure _ -> Error (`Msg ("bad seed range " ^ spec)))

let run_chaos seeds domains bundle_dir =
  let lo, hi = seeds in
  let outcomes =
    Cpr_par.Pool.with_pool ~domains (fun pool ->
        F.Chaos_run.run ~pool ?bundle_dir ~lo ~hi ())
  in
  let summary = F.Chaos_run.summarize outcomes in
  F.Chaos_run.pp_summary Format.std_formatter summary;
  if F.Chaos_run.ok summary then 0 else 2

let replay_bundle dir =
  let path = Cpr_resilience.Bundle.input_file dir in
  match F.Corpus.load path with
  | Error msg ->
    Format.eprintf "%s@." msg;
    1
  | Ok entry -> (
    Format.printf "replaying bundle %s (stage %s: %s)@." dir entry.F.Corpus.stage
      entry.F.Corpus.reason;
    match F.Corpus.replay entry with
    | Ok () ->
      Format.printf "bundle passes the differential oracle@.";
      0
    | Error reason ->
      Format.printf "bundle still fails: %s@." reason;
      2)

let run seeds stages_spec shrink out fault_name no_vliw verify extra_inputs
    max_shrinks quiet domains trace =
  if trace <> None then Cpr_obs.Obs.set_enabled true;
  let lo, hi = seeds in
  let stages =
    match F.Stage.parse stages_spec with
    | Ok s -> s
    | Error msg -> failwith msg
  in
  let fault =
    match fault_name with
    | None -> None
    | Some name -> (
      match F.Fault.of_string name with
      | Some f -> Some f
      | None ->
        failwith
          (Printf.sprintf "unknown fault %S (expected one of %s)" name
             (String.concat ", " (List.map F.Fault.name F.Fault.all))))
  in
  let check =
    {
      F.Driver.vliw = not no_vliw;
      F.Driver.extra_inputs;
      F.Driver.fault;
      F.Driver.verify;
    }
  in
  let summary = F.Driver.new_summary stages in
  let shrunk = ref 0 in
  let to_shrink = ref [] in
  (* Seeds fan out across domains; outcomes come back in seed order, so
     the accounting below (and everything it prints) is byte-identical
     to --domains 1.  Shrinking runs sequentially afterwards. *)
  let outcomes =
    Cpr_par.Pool.with_pool ~domains (fun pool ->
        F.Driver.run_seeds ~pool check stages ~lo ~hi)
  in
  List.iter
    (fun (seed, per_stage) ->
      summary.F.Driver.seeds <- summary.F.Driver.seeds + 1;
      List.iter
        (fun (stage, outcome) ->
          F.Driver.record summary stage ~seed outcome;
          match outcome with
          | F.Driver.Pass | F.Driver.Skip _ -> ()
          | F.Driver.Fail reason ->
            if not quiet then
              Format.eprintf "FAIL seed %d stage %s: %s@.%!" seed
                stage.F.Stage.name reason;
            to_shrink := (stage, seed) :: !to_shrink)
        per_stage)
    outcomes;
  if shrink then
    List.iter
      (fun (stage, seed) ->
        if !shrunk < max_shrinks then begin
          incr shrunk;
          let repro = F.Shrink.minimize check stage ~seed in
          if not quiet then
            Format.eprintf
              "shrunk seed %d stage %s: %d steps, %d regions, %d ops (%s)@.%!"
              seed stage.F.Stage.name repro.F.Shrink.steps
              (List.length (Cpr_ir.Prog.regions repro.F.Shrink.prog))
              (Cpr_ir.Prog.static_op_count repro.F.Shrink.prog)
              (Cpr_workloads.Gen.shape_to_string repro.F.Shrink.shape);
          match out with
          | Some dir ->
            let path = F.Corpus.save ~dir repro in
            if not quiet then Format.eprintf "wrote %s@.%!" path
          | None ->
            if not quiet then
              print_string (Cpr_ir.Printer.to_text repro.F.Shrink.prog)
        end)
      (List.rev !to_shrink);
  Format.printf "fuzz: seeds %d..%d, stages %s%s@." lo hi
    (String.concat "," (List.map (fun s -> s.F.Stage.name) stages))
    (match fault with
    | Some f -> Printf.sprintf ", fault %s" (F.Fault.name f)
    | None -> "");
  F.Driver.pp_summary Format.std_formatter summary;
  if !shrunk > 0 then Format.printf "shrunk %d counterexample(s)@." !shrunk;
  Option.iter
    (fun path ->
      Cpr_obs.Obs.Trace.export ~path;
      Format.eprintf "wrote trace %s@." path)
    trace;
  if summary.F.Driver.failures = [] then 0 else 2

open Cmdliner

let seeds_conv =
  Arg.conv (parse_seeds, fun ppf (a, b) -> Format.fprintf ppf "%d..%d" a b)

let seeds_arg =
  Arg.(value & opt seeds_conv (0, 500)
       & info [ "seeds" ] ~docv:"LO..HI"
           ~doc:"Half-open seed range: seeds $(i,LO) <= s < $(i,HI).")

let stages_arg =
  Arg.(value & opt string "all"
       & info [ "stages" ] ~docv:"LIST"
           ~doc:(Printf.sprintf
                   "Comma-separated stages to fuzz, or $(b,all).  Known \
                    stages: %s." Cpr_fuzz.Stage.names))

let shrink_flag =
  Arg.(value & flag
       & info [ "shrink" ]
           ~doc:"Auto-shrink each failure to a minimal reproducer.")

let out_arg =
  Arg.(value & opt (some string) None
       & info [ "out" ] ~docv:"DIR"
           ~doc:"Persist shrunk reproducers to $(i,DIR) as .cpr artifacts.")

let fault_arg =
  Arg.(value & opt (some string) None
       & info [ "fault" ] ~docv:"NAME"
           ~doc:(Printf.sprintf
                   "Inject a known miscompile after every transform (oracle \
                    self-test).  Known faults: %s."
                   (String.concat ", "
                      (List.map Cpr_fuzz.Fault.name Cpr_fuzz.Fault.all))))

let no_vliw_flag =
  Arg.(value & flag
       & info [ "no-vliw" ]
           ~doc:"Skip the scheduled-VLIW execution agreement oracle.")

let verify_flag =
  Arg.(value & flag
       & info [ "verify" ]
           ~doc:"Run the static verifier on every candidate before the \
                 simulation oracles (its error findings are failures).")

let extra_inputs_arg =
  Arg.(value & opt int 2
       & info [ "extra-inputs" ] ~docv:"N"
           ~doc:"Extra seeded inputs beyond the generator's battery.")

let max_shrinks_arg =
  Arg.(value & opt int 8
       & info [ "max-shrinks" ] ~docv:"N"
           ~doc:"Shrink at most $(i,N) failures (bounds runtime).")

let quiet_flag =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only print the summary.")

let domains_arg =
  Arg.(value & opt int (Cpr_par.Pool.default_domains ())
       & info [ "domains" ] ~docv:"N"
           ~doc:"Domains to fan seeds out across (default: the runtime's \
                 recommendation, capped at 8).  Output is identical for \
                 every $(i,N).")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record per-seed/per-stage spans and counters and write a \
                 Chrome-trace-format JSON to $(i,FILE) (open in \
                 chrome://tracing or https://ui.perfetto.dev).")

let chaos_flag =
  Arg.(value & flag
       & info [ "chaos" ]
           ~doc:"Chaos mode: for each seed, inject a fault (exception, \
                 deadline overrun or corrupted IR) at a seed-determined \
                 pipeline stage and check that the protected pipeline \
                 either commits verified output or degrades cleanly with \
                 a crash bundle — an escaped exception fails the run.")

let bundle_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "bundle-dir" ] ~docv:"DIR"
           ~doc:"Where --chaos quarantines crash bundles (default: _crash).")

let replay_bundle_arg =
  Arg.(value & opt (some dir) None
       & info [ "replay-bundle" ] ~docv:"DIR"
           ~doc:"Re-run a crash bundle's input.cpr through its recorded \
                 stage and the full differential oracle battery.")

let () =
  let term =
    Term.(
      const
        (fun seeds stages shrink out fault no_vliw verify extra max_shrinks
             quiet domains trace chaos bundle_dir replay ->
          try
            match replay with
            | Some dir -> replay_bundle dir
            | None ->
              if chaos then run_chaos seeds domains bundle_dir
              else
                run seeds stages shrink out fault no_vliw verify extra
                  max_shrinks quiet domains trace
          with Failure msg ->
            prerr_endline msg;
            1)
      $ seeds_arg $ stages_arg $ shrink_flag $ out_arg $ fault_arg
      $ no_vliw_flag $ verify_flag $ extra_inputs_arg $ max_shrinks_arg
      $ quiet_flag $ domains_arg $ trace_arg $ chaos_flag $ bundle_dir_arg
      $ replay_bundle_arg)
  in
  let info =
    Cmd.info "fuzz" ~version:"1.0"
      ~doc:"Differential fuzzer for the control-CPR pipeline"
  in
  exit (Cmd.eval' (Cmd.v info term))
