(* Regenerate the paper's Table 2 (speedups across the five processors)
   and Table 3 (static/dynamic operation-count ratios, medium processor)
   over the full benchmark suite.  `tables --quick` runs a three-workload
   subset. *)

module W = Cpr_workloads
module P = Cpr_pipeline

module Descr = Cpr_machine.Descr

(* The machine family: issue widths from the paper, register-file sizes
   from our HPL-PD-flavoured extension (the budgets `lint --pressure`
   checks MAXLIVE against). *)
let print_machines () =
  Format.printf "Machine register files (gpr/pred/btr per class)@.@.";
  Format.printf "%-14s%8s%8s%8s@." "Machine" "gpr" "pred" "btr";
  List.iter
    (fun (m : Descr.t) ->
      Format.printf "%-14s%8d%8d%8d@." m.Descr.name
        (Descr.regfile_size m Cpr_ir.Reg.Gpr)
        (Descr.regfile_size m Cpr_ir.Reg.Pred)
        (Descr.regfile_size m Cpr_ir.Reg.Btr))
    Descr.all

let () =
  let quick = Array.exists (fun a -> a = "--quick") Sys.argv in
  print_machines ();
  let suite =
    if quick then
      List.filter_map W.Registry.find [ "strcpy"; "grep"; "099.go" ]
    else W.Registry.all
  in
  let results =
    List.map
      (fun (w : W.Workload.t) ->
        let r =
          P.Report.run ~name:w.W.Workload.name (w.W.Workload.build ())
            (w.W.Workload.inputs ())
        in
        (match r.P.Report.equivalent with
        | Ok () -> ()
        | Error e ->
          Format.eprintf "WARNING %s: equivalence failure: %s@."
            w.W.Workload.name e);
        Format.eprintf "  [%s done]@.%!" w.W.Workload.name;
        r)
      suite
  in
  Format.printf "@.Table 2: ICBM speedup by processor (paper Table 2)@.@.";
  P.Report.print_table2 Format.std_formatter results;
  let spec95 =
    List.filter
      (fun (r : P.Report.result) ->
        List.mem r.P.Report.name W.Registry.spec95_names)
      results
  in
  if spec95 <> [] then begin
    Format.printf "%-14s" "Gmean-spec95";
    List.iter
      (fun (m : Cpr_machine.Descr.t) ->
        let col =
          List.map
            (fun (r : P.Report.result) ->
              List.assoc m.Cpr_machine.Descr.name r.P.Report.speedups)
            spec95
        in
        Format.printf "%8.2f" (P.Report.gmean col))
      Cpr_machine.Descr.all;
    Format.printf "@."
  end;
  Format.printf
    "@.Table 3: static/dynamic operation-count ratios, medium processor \
     (paper Table 3)@.@.";
  P.Report.print_table3 Format.std_formatter results
