(* lint: the static verifier as a command-line tool.

   Three modes, combinable:

     dune exec bin/lint.exe -- --all-workloads
       run every workload-registry program through every pipeline stage
       and verify each output (any finding, warning included, fails);

     dune exec bin/lint.exe -- --corpus test/corpus
       static regression over the shrunk-counterexample corpus: each
       artifact's transform must verify clean, and each injectable fault
       (one per historical miscompile class) must be caught by the
       verifier alone — no simulation oracle runs;

     dune exec bin/lint.exe -- test/corpus/icbm-seed1921.cpr ...
       the same check for individual artifacts;

     dune exec bin/lint.exe -- --replay-bundle _crash/icbm-0123456789ab
       statically re-verify a crash bundle's quarantined input.

   Quality-lint modes (--heights, --pressure) reuse one per-stage sweep
   runner over the same workload/corpus sources.

   Exit codes (the PR 5 standard): 0 everything verified (warnings may
   have been printed), 2 error findings or verification failures,
   1 fatal/usage. *)

module F = Cpr_fuzz
module V = Cpr_verify

let pp_finding ppf (where, f) =
  Format.fprintf ppf "%s: %a" where V.Finding.pp f

(* Shared per-stage sweep runner: every registry workload (or corpus
   artifact) through every requested stage, folding a per-program report
   [f ~stage ~where ~before after -> (errors, warnings)].  A raising
   transform counts as one error.  [before] is the program the stage
   started from (the prepared copy; the raw input for superblock), for
   reports that compare across the transformation.  The correctness
   sweep, --heights and --pressure all ride on this. *)
let sweep_stage_workloads stages ~f =
  let errors = ref 0 and warnings = ref 0 in
  List.iter
    (fun (w : Cpr_workloads.Workload.t) ->
      let prog = w.Cpr_workloads.Workload.build () in
      let inputs = w.Cpr_workloads.Workload.inputs () in
      let prepared = Cpr_pipeline.Passes.prepare prog inputs in
      List.iter
        (fun (stage : F.Stage.t) ->
          let where =
            Printf.sprintf "%s/%s" w.Cpr_workloads.Workload.name
              stage.F.Stage.name
          in
          match stage.F.Stage.apply prog inputs with
          | exception e ->
            incr errors;
            Format.printf "%s: transform raised: %s@." where
              (Printexc.to_string e)
          | after ->
            let before =
              if stage.F.Stage.name = "superblock" then
                Cpr_ir.Prog.copy prog
              else prepared
            in
            let e, m = f ~stage:stage.F.Stage.name ~where ~before after in
            errors := !errors + e;
            warnings := !warnings + m)
        stages)
    Cpr_workloads.Registry.all;
  (!errors, !warnings)

let sweep_stage_corpus dir ~f =
  let errors = ref 0 and warnings = ref 0 in
  List.iter
    (fun (path, loaded) ->
      match loaded with
      | Error msg -> Format.printf "%s: ERROR %s@." path msg
      | Ok (entry : F.Corpus.entry) -> (
        match F.Stage.find entry.F.Corpus.stage with
        | None ->
          Format.printf "%s: unknown stage %s@." path entry.F.Corpus.stage
        | Some stage -> (
          match
            stage.F.Stage.apply entry.F.Corpus.prog entry.F.Corpus.inputs
          with
          | exception e ->
            incr errors;
            Format.printf "%s: transform raised: %s@." path
              (Printexc.to_string e)
          | after ->
            let e, m =
              f ~stage:entry.F.Corpus.stage
                ~where:(Filename.basename path)
                ~before:entry.F.Corpus.prog after
            in
            errors := !errors + e;
            warnings := !warnings + m)))
    (F.Corpus.load_dir dir);
  (!errors, !warnings)

let lint_workloads stages quiet =
  let proved = ref 0 and unknown = ref 0 in
  let errors, warnings =
    sweep_stage_workloads stages ~f:(fun ~stage ~where ~before after ->
        let report = V.Verify.check_stage ~stage ~before after in
        proved := !proved + report.V.Verify.stats.V.Finding.proved;
        unknown := !unknown + report.V.Verify.stats.V.Finding.unknown;
        match report.V.Verify.findings with
        | [] ->
          if not quiet then Format.printf "%s: ok@." where;
          (0, 0)
        | fs ->
          List.iter (fun f -> Format.printf "%a@." pp_finding (where, f)) fs;
          (* Exit-code standard: only error-severity findings fail the
             run; warnings are surfaced but exit 0. *)
          let errs, warns = List.partition V.Finding.is_error fs in
          (List.length errs, List.length warns))
  in
  Format.printf
    "workloads: %d error(s), %d warning(s), %d proved, %d unknown@." errors
    warnings !proved !unknown;
  errors = 0

(* --heights: schedule-quality sweep.  Per stage output, the static
   lower bound (dep height vs resource bound, maxed per region and
   summed over the program), the length list scheduling actually
   achieves, and the gap.  Soundness violations and above-factor quality
   findings fail the run; missed-opportunity warnings are reported but
   only counted. *)

let heights_header () =
  Format.printf "%-28s %8s %8s %8s %6s@." "workload/stage" "bound"
    "achieved" "gap" "gap%"

(* Split findings by severity, print them (warnings only when not
   quiet), and return the (errors, warnings) tallies the exit-code
   standard wants: errors exit 2, warnings alone exit 0. *)
let report_findings ~where quiet findings =
  let errs, warns = List.partition V.Finding.is_error findings in
  List.iter (fun f -> Format.printf "%a@." pp_finding (where, f)) errs;
  if not quiet then
    List.iter (fun f -> Format.printf "%a@." pp_finding (where, f)) warns;
  (List.length errs, List.length warns)

let is_cpr_stage = function
  | "icbm" | "fullcpr" | "fullpipe" -> true
  | _ -> false

let heights_of_prog ~stage ~where ~factor quiet prog =
  let rows = V.Heightcheck.rows prog in
  let stats = V.Finding.new_stats () in
  let findings =
    V.Heightcheck.check ~factor ~missed:(is_cpr_stage stage) ~stats prog
  in
  let bound = List.fold_left (fun a (r : V.Heightcheck.row) -> a + r.V.Heightcheck.bound) 0 rows in
  let achieved =
    List.fold_left (fun a (r : V.Heightcheck.row) -> a + r.V.Heightcheck.achieved) 0 rows
  in
  let gap = achieved - bound in
  if not quiet then
    Format.printf "%-28s %8d %8d %8d %5.1f%%@." where bound achieved gap
      (if bound = 0 then 0.
       else 100. *. float_of_int gap /. float_of_int bound);
  report_findings ~where quiet findings

let heights_summary ~label (errors, warnings) =
  Format.printf "%s: %d error(s), %d warning(s)@." label errors warnings;
  errors = 0

let lint_heights stages factor quiet =
  if not quiet then heights_header ();
  heights_summary ~label:"heights"
    (sweep_stage_workloads stages ~f:(fun ~stage ~where ~before:_ after ->
         heights_of_prog ~stage ~where ~factor quiet after))

let heights_corpus dir factor quiet =
  if not quiet then heights_header ();
  heights_summary ~label:"corpus heights"
    (sweep_stage_corpus dir ~f:(fun ~stage ~where ~before:_ after ->
         heights_of_prog ~stage ~where ~factor quiet after))

(* --pressure: allocatability sweep.  Per stage output, the worst
   region's predicate-aware MAXLIVE against the register-file size for
   each class, with the smallest margin; unallocatable classes are
   errors, post-CPR pressure growth (vs the stage's input program) a
   warning. *)

let pressure_header () =
  Format.printf "%-28s %9s %9s %9s %7s@." "workload/stage" "gpr" "pred"
    "btr" "margin"

let pressure_of_prog ~stage ~where ~before quiet prog =
  let rows = V.Pressurecheck.rows prog in
  let stats = V.Finding.new_stats () in
  let baseline = if is_cpr_stage stage then Some before else None in
  let findings = V.Pressurecheck.check ?baseline ~stats prog in
  if not quiet then begin
    let worst cls =
      List.fold_left
        (fun (live, file, margin) (r : V.Pressurecheck.row) ->
          if r.V.Pressurecheck.cls = cls then
            ( max live (max r.V.Pressurecheck.sched_maxlive
                 r.V.Pressurecheck.sweep_maxlive),
              r.V.Pressurecheck.file_size,
              min margin r.V.Pressurecheck.margin )
          else (live, file, margin))
        (0, 0, max_int) rows
    in
    let cell cls =
      let live, file, _ = worst cls in
      Printf.sprintf "%d/%d" live file
    in
    let min_margin =
      List.fold_left
        (fun m (r : V.Pressurecheck.row) -> min m r.V.Pressurecheck.margin)
        max_int rows
    in
    Format.printf "%-28s %9s %9s %9s %7s@." where (cell Cpr_ir.Reg.Gpr)
      (cell Cpr_ir.Reg.Pred) (cell Cpr_ir.Reg.Btr)
      (if min_margin = max_int then "-" else string_of_int min_margin)
  end;
  report_findings ~where quiet findings

let pressure_summary ~label (errors, warnings) =
  Format.printf "%s: %d unallocatable error(s), %d warning(s)@." label errors
    warnings;
  errors = 0

let lint_pressure stages quiet =
  if not quiet then pressure_header ();
  pressure_summary ~label:"pressure"
    (sweep_stage_workloads stages ~f:(fun ~stage ~where ~before after ->
         pressure_of_prog ~stage ~where ~before quiet after))

let pressure_corpus dir quiet =
  if not quiet then pressure_header ();
  pressure_summary ~label:"corpus pressure"
    (sweep_stage_corpus dir ~f:(fun ~stage ~where ~before after ->
         pressure_of_prog ~stage ~where ~before quiet after))

let pp_fault_result ppf = function
  | F.Static_check.Caught msg -> Format.fprintf ppf "caught (%s)" msg
  | F.Static_check.Missed -> Format.fprintf ppf "MISSED"
  | F.Static_check.Inapplicable -> Format.fprintf ppf "inapplicable"

let report_entry quiet path = function
  | Error msg ->
    Format.printf "%s: ERROR %s@." path msg;
    false
  | Ok r ->
    let ok = ref true in
    (match r.F.Static_check.clean with
    | Ok () -> if not quiet then Format.printf "%s: clean@." path
    | Error msg ->
      ok := false;
      Format.printf "%s: NOT CLEAN: %s@." path msg);
    List.iter
      (fun (fault, res) ->
        (match res with
        | F.Static_check.Missed -> ok := false
        | F.Static_check.Caught _ | F.Static_check.Inapplicable -> ());
        if (not quiet) || res = F.Static_check.Missed then
          Format.printf "%s: fault %s: %a@." path (F.Fault.name fault)
            pp_fault_result res)
      r.F.Static_check.faults;
    !ok

let lint_corpus dir quiet =
  let results = F.Static_check.check_dir dir in
  let ok =
    List.fold_left
      (fun acc (path, res) -> report_entry quiet path res && acc)
      true results
  in
  Format.printf "corpus %s: %d artifact(s)%s@." dir (List.length results)
    (if ok then ", all verified" else "");
  ok

let lint_files files quiet =
  List.fold_left
    (fun acc path ->
      let res =
        match F.Corpus.load path with
        | Error msg -> Error msg
        | Ok entry -> F.Static_check.check_entry entry
      in
      report_entry quiet path res && acc)
    true files

let lint_bundle dir quiet =
  let path = Cpr_resilience.Bundle.input_file dir in
  let res =
    match F.Corpus.load path with
    | Error msg -> Error msg
    | Ok entry -> F.Static_check.check_entry entry
  in
  report_entry quiet dir res

let run files all_workloads corpus replay stages_spec quiet trace heights
    height_factor pressure =
  if trace <> None then Cpr_obs.Obs.set_enabled true;
  let stages =
    match F.Stage.parse stages_spec with
    | Ok s -> s
    | Error msg -> failwith msg
  in
  if (not all_workloads) && corpus = None && replay = None && files = [] then
    failwith
      "nothing to lint: pass FILES, --all-workloads, --corpus DIR or \
       --replay-bundle DIR";
  let ok = ref true in
  if heights || pressure then begin
    (* Quality-lint modes: bound/achieved/gap and maxlive/file tables
       instead of the correctness sweep. *)
    if files <> [] || replay <> None then
      failwith
        "--heights/--pressure combine with --all-workloads and --corpus \
         only";
    if heights then begin
      (match corpus with
      | Some dir -> ok := heights_corpus dir height_factor quiet && !ok
      | None -> ());
      if all_workloads then
        ok := lint_heights stages height_factor quiet && !ok
    end;
    if pressure then begin
      (match corpus with
      | Some dir -> ok := pressure_corpus dir quiet && !ok
      | None -> ());
      if all_workloads then ok := lint_pressure stages quiet && !ok
    end
  end
  else begin
    if files <> [] then ok := lint_files files quiet && !ok;
    (match corpus with
    | Some dir -> ok := lint_corpus dir quiet && !ok
    | None -> ());
    (match replay with
    | Some dir -> ok := lint_bundle dir quiet && !ok
    | None -> ());
    if all_workloads then ok := lint_workloads stages quiet && !ok
  end;
  Option.iter
    (fun path ->
      Cpr_obs.Obs.Trace.export ~path;
      Format.eprintf "wrote trace %s@." path)
    trace;
  if !ok then 0 else 2

open Cmdliner

let files_arg =
  Arg.(value & pos_all file []
       & info [] ~docv:"FILES" ~doc:"Corpus .cpr artifacts to verify.")

let all_workloads_flag =
  Arg.(value & flag
       & info [ "all-workloads" ]
           ~doc:"Verify every workload-registry program after every stage.")

let corpus_arg =
  Arg.(value & opt (some dir) None
       & info [ "corpus" ] ~docv:"DIR"
           ~doc:"Static regression over a corpus directory.")

let stages_arg =
  Arg.(value & opt string "all"
       & info [ "stages" ] ~docv:"LIST"
           ~doc:(Printf.sprintf
                   "Stages for --all-workloads, or $(b,all).  Known stages: \
                    %s." Cpr_fuzz.Stage.names))

let quiet_flag =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only print problems.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record verifier spans and counters and write a \
                 Chrome-trace-format JSON to $(i,FILE) (open in \
                 chrome://tracing or https://ui.perfetto.dev).")

let replay_bundle_arg =
  Arg.(value & opt (some dir) None
       & info [ "replay-bundle" ] ~docv:"DIR"
           ~doc:"Statically re-verify a crash bundle directory's \
                 quarantined input.cpr (written by the resilience layer \
                 under _crash/).")

let heights_flag =
  Arg.(value & flag
       & info [ "heights" ]
           ~doc:"Schedule-quality lint: per-stage static lower bound vs \
                 achieved schedule length (bound, achieved, gap), failing \
                 on soundness violations and above-factor quality \
                 findings.  Combines with $(b,--all-workloads) and \
                 $(b,--corpus).")

let height_factor_arg =
  Arg.(value & opt float 2.0
       & info [ "height-factor" ] ~docv:"F"
           ~doc:"Quality threshold for $(b,--heights): flag a region \
                 when its achieved length exceeds F times the static \
                 bound (plus a 2-cycle grace).")

let pressure_flag =
  Arg.(value & flag
       & info [ "pressure" ]
           ~doc:"Allocatability lint: per-stage predicate-aware MAXLIVE \
                 vs register-file size for every class (worst region, \
                 smallest margin), failing when a region's scheduled \
                 MAXLIVE exceeds the file (unallocatable) and warning on \
                 large post-CPR pressure growth.  Combines with \
                 $(b,--all-workloads) and $(b,--corpus).")

let () =
  let term =
    Term.(
      const
        (fun files aw corpus replay stages quiet trace heights factor
             pressure ->
          try
            run files aw corpus replay stages quiet trace heights factor
              pressure
          with Failure msg ->
            prerr_endline msg;
            1)
      $ files_arg $ all_workloads_flag $ corpus_arg $ replay_bundle_arg
      $ stages_arg $ quiet_flag $ trace_arg $ heights_flag
      $ height_factor_arg $ pressure_flag)
  in
  let info =
    Cmd.info "lint" ~version:"1.0"
      ~doc:"Static semantic verifier for control-CPR programs"
  in
  exit (Cmd.eval' (Cmd.v info term))
