(* Table 1 of the paper, exhaustively, at two levels: the pure
   [cmpp_dest_update] semantics and the interpreter's execution of cmpp
   operations. *)

open Cpr_ir
open Helpers
module B = Builder

(* (action, guard, cond) -> expected destination effect *)
let table1 =
  [
    (Op.Un, false, false, Some false);
    (Op.Un, false, true, Some false);
    (Op.Un, true, false, Some false);
    (Op.Un, true, true, Some true);
    (Op.Uc, false, false, Some false);
    (Op.Uc, false, true, Some false);
    (Op.Uc, true, false, Some true);
    (Op.Uc, true, true, Some false);
    (Op.On, false, false, None);
    (Op.On, false, true, None);
    (Op.On, true, false, None);
    (Op.On, true, true, Some true);
    (Op.Oc, false, false, None);
    (Op.Oc, false, true, None);
    (Op.Oc, true, false, Some true);
    (Op.Oc, true, true, None);
    (Op.An, false, false, None);
    (Op.An, false, true, None);
    (Op.An, true, false, Some false);
    (Op.An, true, true, None);
    (Op.Ac, false, false, None);
    (Op.Ac, false, true, None);
    (Op.Ac, true, false, None);
    (Op.Ac, true, true, Some false);
  ]

let pure_semantics () =
  List.iter
    (fun (action, guard, cond, expected) ->
      check
        Alcotest.(option bool)
        (Printf.sprintf "action=%s guard=%b cond=%b"
           (match action with
           | Op.Un -> "un" | Op.Uc -> "uc" | Op.On -> "on"
           | Op.Oc -> "oc" | Op.An -> "an" | Op.Ac -> "ac")
           guard cond)
        expected
        (Op.cmpp_dest_update action ~guard ~cond))
    table1

(* Execute a single cmpp in the interpreter with every combination of
   guard value, condition outcome and initial destination value, and
   check the destination afterwards. *)
let interp_semantics () =
  List.iter
    (fun (action, guard, cond, expected) ->
      List.iter
        (fun initial ->
          let ctx = B.create () in
          let g = B.pred ctx and d = B.pred ctx and v = B.gpr ctx in
          let region =
            B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
                let (_ : Op.t) =
                  B.cmpp1 e Op.Eq action ~guard:(Op.If g) d (Op.Reg v)
                    (Op.Imm 1)
                in
                ())
          in
          let prog = B.prog ctx ~entry:"Main" [ region ] in
          let input =
            {
              Cpr_sim.Equiv.memory = [];
              gprs = [ (v, if cond then 1 else 0) ];
              preds = [ (g, guard); (d, initial) ];
            }
          in
          let out = Cpr_sim.Equiv.run_on prog input in
          let final = Cpr_sim.State.read_pred out.Cpr_sim.Interp.state d in
          let want = match expected with Some v -> v | None -> initial in
          checkb
            (Printf.sprintf "interp guard=%b cond=%b init=%b" guard cond
               initial)
            want final)
        [ false; true ])
    table1

(* The two destinations of one cmpp are written from the same condition
   evaluation: un/uc destinations are complementary whenever the guard is
   true and both zero when it is false. *)
let dual_dest_complementary () =
  List.iter
    (fun (guard, v) ->
      let ctx = B.create () in
      let g = B.pred ctx and pt = B.pred ctx and pf = B.pred ctx in
      let x = B.gpr ctx in
      let region =
        B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
            let (_ : Op.t) =
              B.cmpp2 e Op.Lt ~guard:(Op.If g) (Op.Un, pt) (Op.Uc, pf)
                (Op.Reg x) (Op.Imm 5)
            in
            ())
      in
      let prog = B.prog ctx ~entry:"Main" [ region ] in
      let input =
        { Cpr_sim.Equiv.memory = []; gprs = [ (x, v) ]; preds = [ (g, guard) ] }
      in
      let out = Cpr_sim.Equiv.run_on prog input in
      let t = Cpr_sim.State.read_pred out.Cpr_sim.Interp.state pt in
      let f = Cpr_sim.State.read_pred out.Cpr_sim.Interp.state pf in
      if guard then checkb "complementary" true (t <> f)
      else checkb "both cleared" true ((not t) && not f))
    [ (true, 3); (true, 7); (false, 3); (false, 7) ]

(* Wired-or accumulation across several compares computes a disjunction
   regardless of which compare fires; wired-and computes a conjunction. *)
let accumulation () =
  let eval values =
    let ctx = B.create () in
    let p_or = B.pred ctx and p_and = B.pred ctx in
    let regs = B.gprs ctx 3 in
    let region =
      B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
          let (_ : Op.t) = B.pred_init e [ (p_or, false); (p_and, true) ] in
          Array.iter
            (fun r ->
              let (_ : Op.t) =
                B.cmpp2 e Op.Eq (Op.Ac, p_and) (Op.On, p_or) (Op.Reg r)
                  (Op.Imm 0)
              in
              ())
            regs;
          ())
    in
    let prog = B.prog ctx ~entry:"Main" [ region ] in
    let input =
      {
        Cpr_sim.Equiv.memory = [];
        gprs = List.mapi (fun i r -> (r, List.nth values i)) (Array.to_list regs);
        preds = [];
      }
    in
    let out = Cpr_sim.Equiv.run_on prog input in
    ( Cpr_sim.State.read_pred out.Cpr_sim.Interp.state p_or,
      Cpr_sim.State.read_pred out.Cpr_sim.Interp.state p_and )
  in
  List.iter
    (fun values ->
      let any_zero = List.exists (fun v -> v = 0) values in
      let got_or, got_and = eval values in
      checkb "wired-or accumulates the conditions" any_zero got_or;
      (* AC accumulates complemented conditions: true iff no element fired *)
      checkb "wired-and(complement) = none fired" (not any_zero) got_and)
    [ [ 0; 0; 0 ]; [ 1; 0; 0 ]; [ 0; 2; 3 ]; [ 1; 2; 3 ]; [ 1; 0; 3 ] ]

let suite =
  ( "cmpp (Table 1)",
    [
      case "pure semantics, all 24 rows" pure_semantics;
      case "interpreter semantics, all rows x initial values" interp_semantics;
      case "un/uc duals are complementary" dual_dest_complementary;
      case "wired-or/and accumulation" accumulation;
    ] )
