open Cpr_ir
module A = Cpr_analysis
module P = Cpr_pipeline
module W = Cpr_workloads
open Helpers

let frp_converted name =
  let w = Option.get (W.Registry.find name) in
  let prog = w.W.Workload.build () in
  let inputs = w.W.Workload.inputs () in
  P.Passes.profile prog inputs;
  let baseline = Prog.copy prog in
  let loop = Prog.find_exn prog "Loop" in
  assert (Cpr_core.Frp.convert_region prog loop);
  let (_ : Cpr_core.Spec.stats) = Cpr_core.Spec.speculate_region prog loop in
  (prog, loop, baseline, inputs)

let preserves_semantics () =
  let prog, loop, baseline, inputs = frp_converted "grep" in
  checkb "transforms" true (Cpr_core.Fullcpr.transform_region prog loop);
  Validate.check_exn prog;
  expect_equiv baseline prog inputs

let quadratic_compare_growth () =
  let prog, loop, _, _ = frp_converted "grep" in
  let count_cmpps () =
    List.length (List.filter Op.is_cmpp loop.Region.ops)
  in
  let n = List.length (Region.branches loop) in
  let before = count_cmpps () in
  assert (Cpr_core.Fullcpr.transform_region prog loop);
  let added_dests = n * (n + 1) / 2 in
  (* columns are packed two destinations per compare where senses agree *)
  checkb
    (Printf.sprintf "compare ops grow quadratically (%d -> %d for %d branches)"
       before (count_cmpps ()) n)
    true
    (count_cmpps () - before >= added_dests / 2)

let branches_become_disjoint_and_parallel () =
  let prog, loop, _, _ = frp_converted "grep" in
  assert (Cpr_core.Fullcpr.transform_region prog loop);
  let env = A.Pred_env.analyze loop in
  let ops = A.Pred_env.ops env in
  let idxs =
    List.filter (fun i -> Op.is_branch ops.(i))
      (List.init (Array.length ops) Fun.id)
  in
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          if i < j then
            checkb "disjoint" true
              (A.Pqs.disjoint (A.Pred_env.taken_expr env i)
                 (A.Pred_env.taken_expr env j)))
        idxs)
    idxs;
  (* the dependence graph carries no branch-to-branch control chain *)
  let liveness = A.Liveness.analyze prog in
  let g = A.Depgraph.build Cpr_machine.Descr.wide prog liveness loop in
  let chained =
    List.exists
      (fun (e : A.Depgraph.edge) ->
        (match e.A.Depgraph.kind with A.Depgraph.Ctrl -> true | _ -> false)
        && Op.is_branch (A.Depgraph.op g e.A.Depgraph.src)
        && Op.is_branch (A.Depgraph.op g e.A.Depgraph.dst))
      (A.Depgraph.edges g)
  in
  checkb "no branch chain" false chained

let tradeoff_against_icbm () =
  (* the paper's motivation for ICBM: full CPR's redundant compares cost
     sequential-machine cycles; ICBM reduces them *)
  let w = Option.get (W.Registry.find "grep") in
  let inputs = w.W.Workload.inputs () in
  let icbm = P.Passes.height_reduce (w.W.Workload.build ()) inputs in
  let full_prog = w.W.Workload.build () in
  P.Passes.profile full_prog inputs;
  let loop = Prog.find_exn full_prog "Loop" in
  assert (Cpr_core.Frp.convert_region full_prog loop);
  let (_ : Cpr_core.Spec.stats) =
    Cpr_core.Spec.speculate_region full_prog loop
  in
  assert (Cpr_core.Fullcpr.transform_region full_prog loop);
  P.Passes.profile full_prog inputs;
  P.Passes.profile icbm.P.Passes.prog inputs;
  let seq = Cpr_machine.Descr.sequential in
  checkb "ICBM beats full CPR on the sequential machine" true
    (P.Perf.estimate seq icbm.P.Passes.prog < P.Perf.estimate seq full_prog)

let rejects_non_frp_shape () =
  (* the raw (unconverted) superblock lacks the UC chain *)
  let w = Option.get (W.Registry.find "grep") in
  let prog = w.W.Workload.build () in
  let loop = Prog.find_exn prog "Loop" in
  checkb "refused" false (Cpr_core.Fullcpr.transform_region prog loop)

let prop_fullcpr_safe =
  QCheck2.Test.make ~name:"full CPR preserves semantics" ~count:50
    QCheck2.Gen.(int_range 0 500)
    (fun seed ->
      let prog = W.Gen.prog_of_seed seed in
      let inputs = W.Gen.inputs_of_seed seed in
      let t = Prog.copy prog in
      let (_ : int) = Cpr_core.Frp.convert t in
      let (_ : Cpr_core.Spec.stats) = Cpr_core.Spec.speculate t in
      let (_ : int) = Cpr_core.Fullcpr.transform t in
      Validate.check t = [] && Cpr_sim.Equiv.check_many prog t inputs = Ok ())

let suite =
  ( "full CPR (redundant variant)",
    [
      case "preserves semantics" preserves_semantics;
      case "quadratic compare growth" quadratic_compare_growth;
      case "branches disjoint and unchained" branches_become_disjoint_and_parallel;
      case "ICBM wins on narrow machines" tradeoff_against_icbm;
      case "rejects non-FRP shape" rejects_non_frp_shape;
      QCheck_alcotest.to_alcotest prop_fullcpr_safe;
    ] )
