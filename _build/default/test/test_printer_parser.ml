open Cpr_ir
open Helpers

let roundtrip_workloads () =
  List.iter
    (fun (w : Cpr_workloads.Workload.t) ->
      let p = w.Cpr_workloads.Workload.build () in
      let text = Printer.to_text p in
      let p' = Parser_.of_text text in
      Validate.check_exn p';
      check Alcotest.string
        (w.Cpr_workloads.Workload.name ^ " round-trips")
        text (Printer.to_text p'))
    [
      Option.get (Cpr_workloads.Registry.find "strcpy");
      Option.get (Cpr_workloads.Registry.find "cccp");
      Option.get (Cpr_workloads.Registry.find "023.eqntott");
    ]

let roundtrip_transformed () =
  let prog, _, _ = paper_transformed_strcpy () in
  let text = Printer.to_text prog in
  let p' = Parser_.of_text text in
  check Alcotest.string "transformed code round-trips" text (Printer.to_text p')

let roundtrip_preserves_semantics () =
  let prog, inputs = profiled_strcpy () in
  let p' = Parser_.of_text (Printer.to_text prog) in
  expect_equiv prog p' inputs

let headers_round_trip () =
  let ctx = Builder.create () in
  let r = Builder.gpr ctx and b = Builder.gpr ctx in
  let region = Builder.region ctx "A" (fun _ -> ()) in
  let p =
    Builder.prog ctx ~entry:"A" ~exit_labels:[ "X"; "Y" ] ~live_out:[ r ]
      ~noalias_bases:[ r; b ] [ region ]
  in
  let p' = Parser_.of_text (Printer.to_text p) in
  check Alcotest.(list string) "exits" [ "X"; "Y" ] p'.Prog.exit_labels;
  checki "liveout" 1 (List.length p'.Prog.live_out);
  checki "noalias" 2 (List.length p'.Prog.noalias_bases);
  checkb "no-fallthrough region" true
    ((Prog.find_exn p' "A").Region.fallthrough = None)

let error_reporting () =
  let expect_error text =
    match Parser_.of_text text with
    | exception Parser_.Parse_error (_, _) -> ()
    | _ -> Alcotest.failf "accepted %S" text
  in
  expect_error "region A\nendregion\n";
  expect_error "program entry A\nregion A\n  1. r1 = bogus(r2) if T\nendregion\n";
  expect_error "program entry A\nregion A\n  1. r1 = add(r2, 1)\nendregion\n";
  expect_error "program entry A\nregion A\n  r1 = add(r2, 1) if T\nendregion\n";
  expect_error "program entry A\nregion A\n  1. q7 = add(r2, 1) if T\nendregion\n";
  expect_error "program entry A\nregion A\n  1. r1 = add(r2, 1) if T\n"

let error_line_numbers () =
  match
    Parser_.of_text "program entry A\nregion A\n  1. zz\nendregion\n"
  with
  | exception Parser_.Parse_error (line, _) -> checki "line number" 3 line
  | _ -> Alcotest.fail "accepted"

let negative_immediates_and_labels () =
  let text =
    "program entry A\n\
     region A fallthrough Exit\n\
    \  1. r1 = add(r2, -3) if T\n\
    \  2. b1 = pbr(Some_Label9, 0) if T\n\
     endregion\n\
     region Some_Label9 fallthrough Exit\n\
     endregion\n"
  in
  let p = Parser_.of_text text in
  let op = List.hd (Prog.find_exn p "A").Region.ops in
  checkb "negative imm" true (List.mem (Op.Imm (-3)) op.Op.srcs)

let prop_roundtrip =
  QCheck2.Test.make ~name:"random programs round-trip" ~count:80
    QCheck2.Gen.(int_range 0 800)
    (fun seed ->
      let p = Cpr_workloads.Gen.prog_of_seed seed in
      let text = Printer.to_text p in
      text = Printer.to_text (Parser_.of_text text))

let suite =
  ( "printer & parser",
    [
      case "workloads round-trip" roundtrip_workloads;
      case "transformed code round-trips" roundtrip_transformed;
      case "round-trip preserves semantics" roundtrip_preserves_semantics;
      case "headers round-trip" headers_round_trip;
      case "errors rejected" error_reporting;
      case "error line numbers" error_line_numbers;
      case "negative immediates and labels" negative_immediates_and_labels;
      QCheck_alcotest.to_alcotest prop_roundtrip;
    ] )
