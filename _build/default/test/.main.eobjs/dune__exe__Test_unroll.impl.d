test/test_unroll.ml: Builder Cpr_analysis Cpr_core Cpr_ir Cpr_machine Cpr_pipeline Cpr_sim Cpr_workloads Helpers List Op Printf Prog QCheck2 QCheck_alcotest Reg Region Validate
