test/main.mli:
