test/helpers.ml: Alcotest Builder Cpr_core Cpr_ir Cpr_pipeline Cpr_sim Cpr_workloads List Op Option Prog Reg Region Validate
