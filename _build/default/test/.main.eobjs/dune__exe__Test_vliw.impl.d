test/test_vliw.ml: Alcotest Builder Cpr_ir Cpr_machine Cpr_pipeline Cpr_sim Cpr_workloads Helpers List Op QCheck2 QCheck_alcotest
