test/test_fullcpr.ml: Array Cpr_analysis Cpr_core Cpr_ir Cpr_machine Cpr_pipeline Cpr_sim Cpr_workloads Fun Helpers List Op Option Printf Prog QCheck2 QCheck_alcotest Region Validate
