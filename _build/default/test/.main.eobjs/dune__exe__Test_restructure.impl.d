test/test_restructure.ml: Alcotest Cpr_core Cpr_ir Helpers List Op Printf Prog Reg Region
