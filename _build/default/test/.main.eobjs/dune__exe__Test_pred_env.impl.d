test/test_pred_env.ml: Array Builder Cpr_analysis Cpr_core Cpr_ir Fun Helpers List Op Printf
