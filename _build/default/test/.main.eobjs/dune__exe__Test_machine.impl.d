test/test_machine.ml: Alcotest Cpr_core Cpr_ir Cpr_machine Helpers List Op Reg
