test/test_match.ml: Builder Cpr_analysis Cpr_core Cpr_ir Cpr_pipeline Cpr_workloads Helpers Int List Op Prog Region
