test/test_alias.ml: Alcotest Array Builder Cpr_analysis Cpr_ir Helpers List Op Prog Reg Region
