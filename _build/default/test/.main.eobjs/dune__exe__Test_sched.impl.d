test/test_sched.ml: Alcotest Array Cpr_analysis Cpr_ir Cpr_machine Cpr_pipeline Cpr_sched Cpr_workloads Hashtbl Helpers List Op Option Printf Prog QCheck2 QCheck_alcotest Region
