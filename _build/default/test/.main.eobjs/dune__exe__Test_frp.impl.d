test/test_frp.ml: Alcotest Array Builder Cpr_analysis Cpr_core Cpr_ir Cpr_sim Cpr_workloads Fun Helpers List Op Prog QCheck2 QCheck_alcotest Region Validate
