test/test_superblock.ml: Alcotest Cpr_core Cpr_ir Cpr_machine Cpr_pipeline Cpr_sim Cpr_workloads Helpers List Option Printf Prog QCheck2 QCheck_alcotest Region Validate
