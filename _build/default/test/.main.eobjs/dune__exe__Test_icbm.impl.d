test/test_icbm.ml: Alcotest Builder Cpr_core Cpr_ir Cpr_machine Cpr_pipeline Cpr_sim Cpr_workloads Helpers List Op Option Printf Prog Reg Region Stats_ir String Validate
