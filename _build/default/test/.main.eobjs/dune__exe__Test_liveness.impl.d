test/test_liveness.ml: Array Builder Cpr_analysis Cpr_core Cpr_ir Cpr_workloads Helpers List Op Printf Prog QCheck2 QCheck_alcotest Reg Region
