test/test_pipeline.ml: Alcotest Builder Cpr_ir Cpr_machine Cpr_pipeline Cpr_workloads Helpers List Op Option Printer Printf Prog Region
