test/test_reg.ml: Alcotest Cpr_ir Helpers List Reg
