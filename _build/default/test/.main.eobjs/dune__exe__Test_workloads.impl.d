test/test_workloads.ml: Alcotest Cpr_ir Cpr_pipeline Cpr_sim Cpr_workloads Helpers Int List Op Option Prog Region String Validate
