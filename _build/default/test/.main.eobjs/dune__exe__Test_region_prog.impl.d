test/test_region_prog.ml: Alcotest Astring_like Builder Cpr_ir Cpr_pipeline Helpers List Op Prog Reg Region Stats_ir Validate
