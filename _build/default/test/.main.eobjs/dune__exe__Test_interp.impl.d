test/test_interp.ml: Alcotest Builder Cpr_ir Cpr_sim Cpr_workloads Helpers List Op Printf Prog Reg Region
