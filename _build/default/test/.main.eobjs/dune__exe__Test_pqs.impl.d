test/test_pqs.ml: Cpr_analysis Cpr_ir Helpers List Pqs QCheck2 QCheck_alcotest
