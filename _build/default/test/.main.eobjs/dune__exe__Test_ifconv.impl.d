test/test_ifconv.ml: Builder Cpr_core Cpr_ir Cpr_pipeline Cpr_sim Cpr_workloads Helpers List Op Prog QCheck2 QCheck_alcotest Region Validate
