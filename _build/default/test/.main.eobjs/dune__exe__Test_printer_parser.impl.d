test/test_printer_parser.ml: Alcotest Builder Cpr_ir Cpr_workloads Helpers List Op Option Parser_ Printer Prog QCheck2 QCheck_alcotest Region Validate
