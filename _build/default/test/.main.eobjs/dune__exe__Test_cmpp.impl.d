test/test_cmpp.ml: Alcotest Array Builder Cpr_ir Cpr_sim Helpers List Op Printf
