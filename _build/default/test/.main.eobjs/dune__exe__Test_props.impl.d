test/test_props.ml: Cpr_core Cpr_ir Cpr_machine Cpr_pipeline Cpr_sim Cpr_workloads List Prog QCheck2 QCheck_alcotest Region String Validate
