test/test_op.ml: Astring_like Cpr_ir Helpers List Op Reg
