test/test_depgraph.ml: Alcotest Array Builder Cpr_analysis Cpr_core Cpr_ir Cpr_machine Helpers List Op Prog Region
