open Cpr_ir
module A = Cpr_analysis
open Helpers
module B = Builder

(* Build a region of memory ops and return the alias analysis plus the
   indexes of the memory ops in emission order. *)
let analyze ?noalias_bases build =
  let ctx = B.create () in
  let made = ref [] in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e -> made := build ctx e)
  in
  let prog = B.prog ctx ~entry:"Main" ?noalias_bases [ region ] in
  let ops = Array.of_list region.Region.ops in
  let idx_of (op : Op.t) =
    let found = ref (-1) in
    Array.iteri (fun i (o : Op.t) -> if o.Op.id = op.Op.id then found := i) ops;
    !found
  in
  (A.Alias.analyze prog region, List.map idx_of (List.rev !made))

let same_base_offsets () =
  let a, idxs =
    analyze (fun ctx e ->
        let base = B.gpr ctx and v = B.gpr ctx in
        let s0 = B.store e ~base ~off:0 (Op.Imm 1) in
        let s1 = B.store e ~base ~off:1 (Op.Imm 2) in
        let l0 = B.load e v ~base ~off:0 in
        [ l0; s1; s0 ])
  in
  match idxs with
  | [ l0; s1; s0 ] ->
    checkb "distinct offsets independent" true (A.Alias.independent a s0 s1);
    checkb "same cell dependent" false (A.Alias.independent a s0 l0);
    checkb "load vs other offset independent" true (A.Alias.independent a s1 l0)
  | _ -> Alcotest.fail "setup"

let add_imm_chain () =
  let a, idxs =
    analyze (fun ctx e ->
        let base = B.gpr ctx and b1 = B.gpr ctx and b2 = B.gpr ctx in
        let v = B.gpr ctx in
        let (_ : Op.t) = B.addi e b1 base 4 in
        let (_ : Op.t) = B.addi e b2 b1 (-4) in
        let s = B.store e ~base:b1 ~off:0 (Op.Imm 1) in
        let l = B.load e v ~base:b2 ~off:4 in
        [ l; s ])
  in
  match idxs with
  | [ l; s ] ->
    (* b1+0 = base+4 and b2+4 = base+4: same cell *)
    checkb "chases add-immediate chains" false (A.Alias.independent a s l)
  | _ -> Alcotest.fail "setup"

let distinct_noalias_roots () =
  let ctx = B.create () in
  let ra = B.gpr ctx and rb = B.gpr ctx and v = B.gpr ctx in
  let made = ref [] in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let s = B.store e ~base:ra ~off:3 (Op.Imm 1) in
        let l = B.load e v ~base:rb ~off:3 in
        made := [ (s, l) ])
  in
  let prog = B.prog ctx ~entry:"Main" ~noalias_bases:[ ra; rb ] [ region ] in
  let a = A.Alias.analyze prog region in
  checkb "declared bases never alias" true (A.Alias.independent a 0 1);
  (* without the declaration they must be assumed aliasing *)
  let prog2 = B.prog ctx ~entry:"Main" [ Region.copy region ] in
  let a2 = A.Alias.analyze prog2 (Prog.find_exn prog2 "Main") in
  checkb "undeclared bases may alias" false (A.Alias.independent a2 0 1)

let guarded_def_is_opaque () =
  let a, idxs =
    analyze (fun ctx e ->
        let base = B.gpr ctx and p = B.pred ctx and v = B.gpr ctx in
        let (_ : Op.t) = B.cmpp1 e Op.Eq Op.Un p (Op.Reg base) (Op.Imm 0) in
        let (_ : Op.t) = B.addi e ~guard:(Op.If p) base base 8 in
        let s = B.store e ~base ~off:0 (Op.Imm 1) in
        let l = B.load e v ~base ~off:1 in
        [ l; s ])
  in
  match idxs with
  | [ l; s ] ->
    (* both chase to the same guarded def: same base value, different
       offsets -> still independent *)
    checkb "same opaque base, different offsets" true (A.Alias.independent a s l)
  | _ -> Alcotest.fail "setup"

let segment_bases () =
  let ctx = B.create () in
  let table = B.gpr ctx and out = B.gpr ctx in
  let idx1 = B.gpr ctx and v = B.gpr ctx and t = B.gpr ctx in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.alu e Op.And_ idx1 (Op.Reg v) (Op.Imm 63) in
        let addr = B.gpr ctx in
        let (_ : Op.t) = B.add e addr table idx1 in
        let (_ : Op.t) = B.load e t ~base:addr ~off:0 in
        let (_ : Op.t) = B.store e ~base:out ~off:2 (Op.Reg t) in
        ())
  in
  let prog = B.prog ctx ~entry:"Main" ~noalias_bases:[ table; out ] [ region ] in
  let a = A.Alias.analyze prog region in
  (* op indexes: 0 and, 1 add, 2 load, 3 store *)
  checkb "indexed table load vs store to другой base" true
    (A.Alias.independent a 2 3);
  match A.Alias.addr_of a 2 with
  | Some { A.Alias.base = A.Alias.Segment (root, _); _ } ->
    checkb "segment rooted at table" true (Reg.equal root table)
  | _ -> Alcotest.fail "expected a segment base"

let strcpy_streams_independent () =
  let prog, _ = profiled_strcpy () in
  let loop = loop_of prog in
  let a = A.Alias.analyze prog loop in
  let ops = Array.of_list loop.Region.ops in
  let stores = ref [] and loads = ref [] in
  Array.iteri
    (fun i (op : Op.t) ->
      if Op.is_store op then stores := i :: !stores
      else if Op.is_load op then loads := i :: !loads)
    ops;
  List.iter
    (fun s ->
      List.iter
        (fun l ->
          checkb "A-loads never alias B-stores" true (A.Alias.independent a s l))
        !loads)
    !stores;
  (* distinct stores of the unrolled loop are independent *)
  List.iter
    (fun s1 ->
      List.iter
        (fun s2 ->
          if s1 <> s2 then
            checkb "unrolled stores independent" true (A.Alias.independent a s1 s2))
        !stores)
    !stores

let suite =
  ( "alias",
    [
      case "same base offsets" same_base_offsets;
      case "add-immediate chains" add_imm_chain;
      case "noalias roots" distinct_noalias_roots;
      case "guarded def opaque but consistent" guarded_def_is_opaque;
      case "segment bases (indexed tables)" segment_bases;
      case "strcpy streams" strcpy_streams_independent;
    ] )
