open Cpr_ir
module W = Cpr_workloads
module P = Cpr_pipeline
open Helpers
module B = Builder

let full_pipeline_on name =
  let w = Option.get (W.Registry.find name) in
  let prog = w.W.Workload.build () in
  let inputs = w.W.Workload.inputs () in
  let base = P.Passes.baseline prog inputs in
  let red = P.Passes.height_reduce prog inputs in
  (base, red, inputs)

let workload_equivalence () =
  List.iter
    (fun name ->
      let base, red, inputs = full_pipeline_on name in
      expect_equiv ~msg:name base.P.Passes.prog red.P.Passes.prog inputs;
      Validate.check_exn red.P.Passes.prog)
    [ "strcpy"; "grep"; "cmp"; "wc"; "cccp"; "lex"; "023.eqntott" ]

let biased_workloads_transform () =
  List.iter
    (fun name ->
      let _, red, _ = full_pipeline_on name in
      match red.P.Passes.icbm with
      | Some s ->
        checkb (name ^ " transforms") true
          (s.Cpr_core.Icbm.blocks_transformed > 0)
      | None -> Alcotest.fail "no stats")
    [ "strcpy"; "grep"; "cmp"; "cccp" ]

let unbiased_code_left_alone () =
  let base, red, _ = full_pipeline_on "099.go" in
  (match red.P.Passes.icbm with
  | Some s -> checki "go: no blocks transform" 0 s.Cpr_core.Icbm.blocks_transformed
  | None -> Alcotest.fail "no stats");
  (* "where control CPR has not been applied, the performance of the
     unoptimized code is measured": the program is byte-identical *)
  checki "identical static code" (Prog.static_op_count base.P.Passes.prog)
    (Prog.static_op_count red.P.Passes.prog);
  List.iter
    (fun m ->
      checki
        ("go cycles unchanged on " ^ m.Cpr_machine.Descr.name)
        (P.Perf.estimate m base.P.Passes.prog)
        (P.Perf.estimate m red.P.Passes.prog))
    Cpr_machine.Descr.all

let branch_count_reduction () =
  let base, red, inputs = full_pipeline_on "cmp" in
  P.Passes.profile base.P.Passes.prog inputs;
  P.Passes.profile red.P.Passes.prog inputs;
  let sb = Stats_ir.of_prog base.P.Passes.prog in
  let sr = Stats_ir.of_prog red.P.Passes.prog in
  let _, _, d_tot, d_br = Stats_ir.ratio sr sb in
  checkb "dynamic branches collapse (paper cmp: 0.13)" true (d_br < 0.4);
  checkb "dynamic ops do not grow (irredundancy)" true (d_tot <= 1.0)

(* The hazard pre-check: a block whose compare source is recomputed by a
   guarded op between the branches (an anti-dependence from the moved
   compare region to a staying op) must be demoted rather than
   miscompiled. *)
let hazard_demotion_is_safe () =
  let ctx = B.create () in
  let x = B.gpr ctx and acc = B.gpr ctx in
  let p1 = B.pred ctx and p2 = B.pred ctx in
  let base = B.gpr ctx in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.cmpp1 e Op.Eq Op.Un p1 (Op.Reg x) (Op.Imm 0) in
        let (_ : Op.t) = B.branch_to e ~guard:(Op.If p1) "Exit" in
        (* x is recomputed between the branches; the second compare reads
           the OLD x off-trace if the compare moves *)
        let (_ : Op.t) = B.addi e x x 1 in
        let (_ : Op.t) = B.store e ~base ~off:0 (Op.Reg acc) in
        let (_ : Op.t) = B.cmpp1 e Op.Eq Op.Un p2 (Op.Reg x) (Op.Imm 5) in
        let (_ : Op.t) = B.branch_to e ~guard:(Op.If p2) "Exit" in
        ())
  in
  let prog =
    B.prog ctx ~entry:"Main" ~live_out:[ x ] ~noalias_bases:[ base ] [ region ]
  in
  let inputs =
    List.init 6 (fun i ->
        { Cpr_sim.Equiv.memory = []; gprs = [ (x, i) ]; preds = [] })
  in
  let b = P.Passes.baseline prog inputs in
  let r = P.Passes.height_reduce prog inputs in
  expect_equiv b.P.Passes.prog r.P.Passes.prog inputs

let dce_drops_dead_predicates () =
  let prog, _, _ = paper_transformed_strcpy () in
  (* after DCE no compare computes a predicate nobody reads (the paper
     removes op 29 and the second destination of op 13) *)
  let used =
    List.concat_map
      (fun (r : Region.t) -> List.concat_map Op.uses r.Region.ops)
      (Prog.regions prog)
    |> Reg.Set.of_list
  in
  List.iter
    (fun (r : Region.t) ->
      List.iter
        (fun (op : Op.t) ->
          match op.Op.opcode with
          | Op.Cmpp (_, Op.Un, None) | Op.Cmpp (_, Op.Uc, None) ->
            List.iter
              (fun d ->
                checkb
                  (Printf.sprintf "op %d single un/uc dest %s is used" op.Op.id
                     (Reg.to_string d))
                  true (Reg.Set.mem d used))
              op.Op.dests
          | _ -> ())
        r.Region.ops)
    (Prog.regions prog)

let dce_keeps_stores_and_branches () =
  let ctx = B.create () in
  let base = B.gpr ctx and p = B.pred ctx and dead = B.gpr ctx in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.movi e dead 42 in
        let (_ : Op.t) = B.store e ~base ~off:0 (Op.Imm 1) in
        let (_ : Op.t) = B.cmpp1 e Op.Eq Op.Un p (Op.Imm 0) (Op.Imm 0) in
        let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) "Exit" in
        ())
  in
  let prog = B.prog ctx ~entry:"Main" [ region ] in
  let removed = Cpr_core.Dce.run prog in
  checki "only the dead mov removed" 1 removed;
  checkb "store survives" true
    (List.exists Op.is_store (Prog.find_exn prog "Main").Region.ops);
  checkb "branch survives" true
    (List.exists Op.is_branch (Prog.find_exn prog "Main").Region.ops)

let cold_regions_untouched () =
  let w = Option.get (W.Registry.find "126.gcc") in
  let prog = w.W.Workload.build () in
  let inputs = w.W.Workload.inputs () in
  let red = P.Passes.height_reduce prog inputs in
  (* cold regions (never entered) must be byte-identical to the input *)
  List.iter
    (fun (r : Region.t) ->
      if
        String.length r.Region.label >= 4
        && String.sub r.Region.label 0 4 = "Cold"
      then
        checki
          (r.Region.label ^ " untouched")
          (Region.static_op_count (Prog.find_exn prog r.Region.label))
          (Region.static_op_count r))
    (Prog.regions red.P.Passes.prog)

let suite =
  ( "icbm pipeline",
    [
      case "workload equivalence" workload_equivalence;
      case "biased workloads transform" biased_workloads_transform;
      case "unbiased code left alone" unbiased_code_left_alone;
      case "branch count reduction" branch_count_reduction;
      case "hazard demotion is safe" hazard_demotion_is_safe;
      case "dce drops dead predicates" dce_drops_dead_predicates;
      case "dce keeps effects" dce_keeps_stores_and_branches;
      case "cold regions untouched" cold_regions_untouched;
    ] )
