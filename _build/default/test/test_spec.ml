open Cpr_ir
open Helpers
module B = Builder

(* Figure 7(a): after speculation the FRP-converted strcpy has every
   load/alu/pbr back at True, stores keep their block FRPs, compares are
   untouched. *)
let strcpy_fig7a () =
  let prog, inputs = profiled_strcpy () in
  let baseline = Prog.copy prog in
  let loop = loop_of prog in
  assert (Cpr_core.Frp.convert_region prog loop);
  let stats = Cpr_core.Spec.speculate_region prog loop in
  checki "fourteen promotions (incl. the cursor advances)" 14
    stats.Cpr_core.Spec.promoted;
  checki "no demotions needed" 0 stats.Cpr_core.Spec.demoted;
  List.iter
    (fun (op : Op.t) ->
      match op.Op.opcode with
      | Op.Store ->
        checkb
          (Printf.sprintf "store %d stays guarded" op.Op.id)
          true
          (op.Op.guard <> Op.True || Region.op_index loop op.Op.id < 2)
      | Op.Alu _ | Op.Load | Op.Pbr ->
        checkb
          (Printf.sprintf "op %d promoted" op.Op.id)
          true (op.Op.guard = Op.True)
      | _ -> ())
    loop.Region.ops;
  expect_equiv baseline prog inputs

(* Stores are never promoted even when it would be value-safe. *)
let stores_never_promoted () =
  let ctx = B.create () in
  let base = B.gpr ctx and p = B.pred ctx and x = B.gpr ctx in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.cmpp1 e Op.Eq Op.Un p (Op.Reg x) (Op.Imm 0) in
        let (_ : Op.t) = B.store e ~guard:(Op.If p) ~base ~off:0 (Op.Imm 1) in
        ())
  in
  let prog = B.prog ctx ~entry:"Main" [ region ] in
  let (_ : Cpr_core.Spec.stats) = Cpr_core.Spec.speculate prog in
  let store = List.find Op.is_store region.Region.ops in
  checkb "store still guarded" true (store.Op.guard = Op.If p)

(* Promotion is blocked when the destination is live under the guard's
   complement (a value another path needs). *)
let clobber_blocks_promotion () =
  let ctx = B.create () in
  let p = B.pred ctx and pf = B.pred ctx and r = B.gpr ctx and x = B.gpr ctx in
  let base = B.gpr ctx in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.movi e r 1 in
        let (_ : Op.t) =
          B.cmpp2 e Op.Eq (Op.Un, p) (Op.Uc, pf) (Op.Reg x) (Op.Imm 0)
        in
        (* overwrite r only when p; the pf path still stores the old r *)
        let (_ : Op.t) = B.movi e ~guard:(Op.If p) r 2 in
        let (_ : Op.t) = B.store e ~guard:(Op.If pf) ~base ~off:0 (Op.Reg r) in
        ())
  in
  let prog = B.prog ctx ~entry:"Main" [ region ] in
  let baseline = Prog.copy prog in
  let (_ : Cpr_core.Spec.stats) = Cpr_core.Spec.speculate prog in
  let guarded_mov =
    List.find
      (fun (op : Op.t) ->
        match op.Op.opcode with Op.Alu Op.Mov -> op.Op.srcs = [ Op.Imm 0; Op.Imm 2 ] | _ -> false)
      region.Region.ops
  in
  checkb "clobbering mov not promoted" true (guarded_mov.Op.guard = Op.If p);
  expect_equiv baseline prog
    [
      { Cpr_sim.Equiv.memory = []; gprs = [ (x, 0) ]; preds = [] };
      { Cpr_sim.Equiv.memory = []; gprs = [ (x, 1) ]; preds = [] };
    ]

(* The second demotion criterion: an op writing a value that is live at a
   preceding branch's target is demoted back after promotion, replacing
   the branch dependence with a data dependence (the accumulator case). *)
let branch_dependent_demotion () =
  let spec =
    {
      Cpr_workloads.Kernels.default_stream with
      Cpr_workloads.Kernels.unroll = 2;
      work = 1;
      store = false;
      accumulate = true;
      counted = true;
    }
  in
  let prog = Cpr_workloads.Kernels.stream_prog spec in
  let inputs =
    [ Cpr_workloads.Kernels.stream_input ~spec ~len:40 ~exit_probability:0.05
        ~seed:3 ]
  in
  Cpr_pipeline.Passes.profile prog inputs;
  let loop = Prog.find_exn prog "Loop" in
  assert (Cpr_core.Frp.convert_region prog loop);
  let stats = Cpr_core.Spec.speculate_region prog loop in
  checkb "some demotion happened" true (stats.Cpr_core.Spec.demoted > 0);
  (* the accumulator adds (dest live at Exit) must be guarded, except the
     one before the first branch *)
  let acc_adds =
    List.filter
      (fun (op : Op.t) ->
        match (op.Op.opcode, op.Op.srcs) with
        | Op.Alu Op.Add, Op.Reg a :: _ ->
          List.exists (Reg.equal a) op.Op.dests
        | _ -> false)
      loop.Region.ops
  in
  checkb "found accumulators" true (List.length acc_adds >= 2);
  let guarded =
    List.filter (fun (op : Op.t) -> op.Op.guard <> Op.True) acc_adds
  in
  checkb "later accumulators demoted" true (List.length guarded >= 1)

let prop_spec_preserves_semantics =
  QCheck2.Test.make ~name:"FRP + speculation preserves semantics" ~count:60
    QCheck2.Gen.(int_range 0 600)
    (fun seed ->
      let prog = Cpr_workloads.Gen.prog_of_seed seed in
      let inputs = Cpr_workloads.Gen.inputs_of_seed seed in
      let t = Prog.copy prog in
      let (_ : int) = Cpr_core.Frp.convert t in
      let (_ : Cpr_core.Spec.stats) = Cpr_core.Spec.speculate t in
      Validate.check t = [] && Cpr_sim.Equiv.check_many prog t inputs = Ok ())

let suite =
  ( "predicate speculation",
    [
      case "strcpy reproduces Fig 7(a)" strcpy_fig7a;
      case "stores never promoted" stores_never_promoted;
      case "clobber blocks promotion" clobber_blocks_promotion;
      case "branch-dependent demotion" branch_dependent_demotion;
      QCheck_alcotest.to_alcotest prop_spec_preserves_semantics;
    ] )
