(* End-to-end property tests: the heart of the differential-testing
   strategy described in DESIGN.md. *)

open Cpr_ir
module P = Cpr_pipeline
module W = Cpr_workloads

let gen_seed = QCheck2.Gen.int_range 0 2000

let prop_full_pipeline_equivalence =
  QCheck2.Test.make
    ~name:"baseline and height-reduced programs are semantically equivalent"
    ~count:120 gen_seed
    (fun seed ->
      let prog = W.Gen.prog_of_seed seed in
      let inputs = W.Gen.inputs_of_seed seed in
      let base = P.Passes.baseline prog inputs in
      let red = P.Passes.height_reduce prog inputs in
      Cpr_sim.Equiv.check_many base.P.Passes.prog red.P.Passes.prog inputs
      = Ok ())

let prop_transformed_validates =
  QCheck2.Test.make ~name:"transformed programs stay well-formed" ~count:120
    gen_seed
    (fun seed ->
      let prog = W.Gen.prog_of_seed seed in
      let inputs = W.Gen.inputs_of_seed seed in
      let red = P.Passes.height_reduce prog inputs in
      Validate.check red.P.Passes.prog = [])

let prop_irredundant_dynamic_ops =
  (* ICBM's headline (Section 4.2): on the on-trace path, n branches are
     replaced by a single bypass and operation count is conserved up to
     the small initialization overhead.  The paper's own Table 3 shows
     overall dynamic op counts may grow slightly when executions leave
     the trace (D tot up to 1.06), so the property is restricted to runs
     that never leave the predominant path: no compensation region and no
     side-exit stub is ever entered. *)
  QCheck2.Test.make
    ~name:"on-trace runs: branches shrink, ops bounded (ICBM irredundancy)"
    ~count:80 gen_seed
    (fun seed ->
      let prog = W.Gen.prog_of_seed seed in
      let inputs = W.Gen.inputs_of_seed seed in
      let base = P.Passes.baseline prog inputs in
      let red = P.Passes.height_reduce prog inputs in
      let count p =
        List.fold_left
          (fun (ops, brs) input ->
            let out = Cpr_sim.Equiv.run_on p input in
            (ops + out.Cpr_sim.Interp.ops_issued,
             brs + out.Cpr_sim.Interp.branches_executed))
          (0, 0) inputs
      in
      let b_ops, b_brs = count base.P.Passes.prog in
      let r_ops, r_brs = count red.P.Passes.prog in
      let transformed =
        match red.P.Passes.icbm with
        | Some s -> s.Cpr_core.Icbm.blocks_transformed > 0
        | None -> false
      in
      P.Passes.profile red.P.Passes.prog inputs;
      let off_trace_label l =
        (String.length l >= 3 && String.sub l 0 3 = "Cmp")
        || (String.length l >= 4 && String.sub l 0 4 = "Stub")
      in
      let entries = ref 0 in
      let stayed_on_trace =
        List.for_all
          (fun (r : Region.t) ->
            entries := !entries + r.Region.entry_count;
            r.Region.entry_count = 0 || not (off_trace_label r.Region.label))
          (Prog.regions red.P.Passes.prog)
      in
      (not transformed) || (not stayed_on_trace)
      || (r_brs <= b_brs && r_ops <= b_ops + (2 * !entries)))

let prop_dce_safe =
  QCheck2.Test.make ~name:"DCE preserves semantics" ~count:80 gen_seed
    (fun seed ->
      let prog = W.Gen.prog_of_seed seed in
      let inputs = W.Gen.inputs_of_seed seed in
      let t = Prog.copy prog in
      let (_ : int) = Cpr_core.Dce.run t in
      Validate.check t = [] && Cpr_sim.Equiv.check_many prog t inputs = Ok ())

let prop_estimator_monotone_in_width =
  (* more hardware never makes the static estimate worse *)
  QCheck2.Test.make ~name:"estimate decreases with machine width" ~count:40
    gen_seed
    (fun seed ->
      let prog = W.Gen.prog_of_seed seed in
      let inputs = W.Gen.inputs_of_seed seed in
      P.Passes.profile prog inputs;
      let e m = P.Perf.estimate m prog in
      e Cpr_machine.Descr.narrow >= e Cpr_machine.Descr.medium
      && e Cpr_machine.Descr.medium >= e Cpr_machine.Descr.wide
      && e Cpr_machine.Descr.wide >= e Cpr_machine.Descr.infinite)

let prop_interp_deterministic =
  QCheck2.Test.make ~name:"interpreter is deterministic" ~count:40 gen_seed
    (fun seed ->
      let prog = W.Gen.prog_of_seed seed in
      let input = W.Gen.input_of_seed seed ~seed in
      let a = Cpr_sim.Equiv.run_on prog input in
      let b = Cpr_sim.Equiv.run_on prog input in
      a.Cpr_sim.Interp.exit_label = b.Cpr_sim.Interp.exit_label
      && Cpr_sim.State.memory_snapshot a.Cpr_sim.Interp.state
         = Cpr_sim.State.memory_snapshot b.Cpr_sim.Interp.state)

let suite =
  ( "end-to-end properties",
    [
      QCheck_alcotest.to_alcotest prop_full_pipeline_equivalence;
      QCheck_alcotest.to_alcotest prop_transformed_validates;
      QCheck_alcotest.to_alcotest prop_irredundant_dynamic_ops;
      QCheck_alcotest.to_alcotest prop_dce_safe;
      QCheck_alcotest.to_alcotest prop_estimator_monotone_in_width;
      QCheck_alcotest.to_alcotest prop_interp_deterministic;
    ] )
