(* Shared helpers for the test suite. *)

open Cpr_ir
module B = Builder

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let case name f = Alcotest.test_case name `Quick f

(* A one-region program from an op-emitting function. *)
let single_region ?(label = "Main") ?(fallthrough = "Exit") ?live_out
    ?noalias_bases build =
  let ctx = B.create () in
  let region = B.region ctx label ~fallthrough (fun e -> build ctx e) in
  B.prog ctx ~entry:label ?live_out ?noalias_bases [ region ]

let run_ok prog input =
  try Ok (Cpr_sim.Equiv.run_on prog input) with
  | Cpr_sim.Interp.Stuck m -> Error m

let expect_equiv ?(msg = "equivalent") reference candidate inputs =
  match Cpr_sim.Equiv.check_many reference candidate inputs with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" msg e

let expect_not_equiv ?(msg = "should differ") reference candidate inputs =
  match Cpr_sim.Equiv.check_many reference candidate inputs with
  | Ok () -> Alcotest.fail msg
  | Error _ -> ()

(* The paper's Section 6 configuration with profile recorded. *)
let profiled_strcpy () =
  let prog = Cpr_workloads.Strcpy.paper_example () in
  let inputs = Cpr_workloads.Strcpy.inputs () in
  Cpr_pipeline.Passes.profile prog inputs;
  (prog, inputs)

let loop_of prog = Prog.find_exn prog "Loop"

(* Apply the paper's Figure 7 two-block partition to an FRP-converted,
   speculated strcpy loop; returns (prog, inputs, baseline copy). *)
let paper_transformed_strcpy () =
  let prog, inputs = profiled_strcpy () in
  let baseline = Prog.copy prog in
  let loop = loop_of prog in
  assert (Cpr_core.Frp.convert_region prog loop);
  let (_ : Cpr_core.Spec.stats) = Cpr_core.Spec.speculate_region prog loop in
  let pairs =
    List.filter_map
      (fun (br : Op.t) ->
        match br.Op.guard with
        | Op.True -> None
        | Op.If p ->
          List.find_opt
            (fun (op : Op.t) -> List.exists (Reg.equal p) (Op.defs op))
            loop.Region.ops
          |> Option.map (fun (cmp : Op.t) -> (cmp.Op.id, br.Op.id)))
      (Region.branches loop)
  in
  let cmp = List.map fst pairs and brs = List.map snd pairs in
  let nth = List.nth in
  let guard_of id =
    match Region.find_op loop id with Some op -> op.Op.guard | None -> Op.True
  in
  let blocks =
    [
      {
        Cpr_core.Restructure.compare_ids = [ nth cmp 0; nth cmp 1 ];
        branch_ids = [ nth brs 0; nth brs 1 ];
        root_guard = guard_of (nth cmp 0);
        taken_variation = false;
      };
      {
        Cpr_core.Restructure.compare_ids = [ nth cmp 2; nth cmp 3 ];
        branch_ids = [ nth brs 2; nth brs 3 ];
        root_guard = guard_of (nth cmp 2);
        taken_variation = true;
      };
    ]
  in
  let (_ : Cpr_core.Icbm.region_stats) =
    Cpr_core.Icbm.transform_region_with_blocks prog loop blocks
  in
  let (_ : int) = Cpr_core.Dce.run prog in
  Validate.check_exn prog;
  (prog, inputs, baseline)
