open Cpr_ir
module Sim = Cpr_sim
module M = Cpr_machine.Descr
open Helpers
module B = Builder

let strcpy_vliw_matches () =
  let prog, inputs = profiled_strcpy () in
  List.iter
    (fun m ->
      match Sim.Vliw.check_against_interp m prog inputs with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" m.M.name e)
    M.all

let transformed_vliw_matches () =
  let prog, inputs, _ = paper_transformed_strcpy () in
  Cpr_pipeline.Passes.profile prog inputs;
  List.iter
    (fun m ->
      match Sim.Vliw.check_against_interp m prog inputs with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" m.M.name e)
    [ M.sequential; M.narrow; M.medium; M.wide; M.infinite ]

let latency_visibility () =
  (* a read scheduled in the shadow of a long-latency write sees the old
     value: reproduce with a hand-built schedule through the normal
     pipeline: load (lat 2) then an independent consumer-less op; the
     VLIW run must still produce the interpreter's final state *)
  let ctx = B.create () in
  let base = B.gpr ctx and a = B.gpr ctx and b = B.gpr ctx in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.load e a ~base ~off:0 in
        let (_ : Op.t) = B.addi e b a 1 in
        let (_ : Op.t) = B.store e ~base ~off:1 (Op.Reg b) in
        ())
  in
  let prog = B.prog ctx ~entry:"Main" ~noalias_bases:[ base ] [ region ] in
  let input = Sim.Equiv.input_of_memory [ (0, 41) ] in
  match Sim.Vliw.check_against_interp M.wide prog [ input ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let cycle_counts_scale_with_machine () =
  let prog, inputs = profiled_strcpy () in
  let input = List.nth inputs (List.length inputs - 1) in
  let cycles m =
    let st = Sim.State.create () in
    Sim.State.set_memory st input.Sim.Equiv.memory;
    (Sim.Vliw.run ~state:st m prog).Sim.Vliw.cycles
  in
  let seq = cycles M.sequential and wide = cycles M.wide in
  checkb "wide at least 2x faster than sequential on strcpy" true
    (wide * 2 <= seq)

let exit_aware_estimator_matches_vliw () =
  (* on a single profiled input, the exit-aware estimator equals the
     VLIW executor's cycle count for baseline region code *)
  let prog = Cpr_workloads.Strcpy.build ~unroll:4 () in
  let input = Cpr_workloads.Strcpy.string_input (List.init 17 (fun i -> i + 1)) in
  Cpr_pipeline.Passes.profile prog [ input ];
  let m = M.medium in
  let st = Sim.State.create () in
  Sim.State.set_memory st input.Sim.Equiv.memory;
  let vl = Sim.Vliw.run ~state:st m prog in
  checki "exit-aware estimate = executed cycles"
    (Cpr_pipeline.Perf.estimate_exit_aware m prog)
    vl.Sim.Vliw.cycles

let prop_vliw_matches_interp =
  QCheck2.Test.make ~name:"scheduled execution matches the interpreter"
    ~count:40
    QCheck2.Gen.(int_range 0 400)
    (fun seed ->
      let prog = Cpr_workloads.Gen.prog_of_seed seed in
      let inputs = [ Cpr_workloads.Gen.input_of_seed seed ~seed ] in
      List.for_all
        (fun m -> Sim.Vliw.check_against_interp m prog inputs = Ok ())
        [ M.sequential; M.medium; M.wide ])

let prop_vliw_matches_after_cpr =
  QCheck2.Test.make ~name:"scheduled execution matches after ICBM" ~count:30
    QCheck2.Gen.(int_range 0 400)
    (fun seed ->
      let prog = Cpr_workloads.Gen.prog_of_seed seed in
      let inputs = Cpr_workloads.Gen.inputs_of_seed seed in
      let red = Cpr_pipeline.Passes.height_reduce prog inputs in
      List.for_all
        (fun m ->
          Sim.Vliw.check_against_interp m red.Cpr_pipeline.Passes.prog inputs
          = Ok ())
        [ M.medium; M.wide ])

let suite =
  ( "vliw executor",
    [
      case "strcpy baseline matches interp" strcpy_vliw_matches;
      case "strcpy transformed matches interp" transformed_vliw_matches;
      case "latency visibility" latency_visibility;
      case "cycles scale with machine" cycle_counts_scale_with_machine;
      case "exit-aware estimator = executed cycles" exit_aware_estimator_matches_vliw;
      QCheck_alcotest.to_alcotest prop_vliw_matches_interp;
      QCheck_alcotest.to_alcotest prop_vliw_matches_after_cpr;
    ] )
