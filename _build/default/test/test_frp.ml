open Cpr_ir
module A = Cpr_analysis
open Helpers
module B = Builder

let strcpy_structure () =
  let prog, inputs = profiled_strcpy () in
  let baseline = Prog.copy prog in
  let loop = loop_of prog in
  checkb "converts" true (Cpr_core.Frp.convert_region prog loop);
  (* every controlling compare gained a UC fall-through destination *)
  let cmpps =
    List.filter
      (fun (op : Op.t) ->
        match op.Op.opcode with Op.Cmpp _ -> true | _ -> false)
      loop.Region.ops
  in
  checki "four compares" 4 (List.length cmpps);
  List.iteri
    (fun i (op : Op.t) ->
      match op.Op.opcode with
      | Op.Cmpp (_, Op.Un, Some Op.Uc) -> ()
      | Op.Cmpp (_, Op.Un, None) when i = 3 ->
        Alcotest.fail "final compare should also gain a UC dest"
      | _ -> Alcotest.failf "compare %d not un.uc" i)
    cmpps;
  (* ops between branches are now guarded by block FRPs *)
  let guarded =
    List.filter (fun (op : Op.t) -> op.Op.guard <> Op.True) loop.Region.ops
  in
  checkb "most ops guarded" true (List.length guarded > 15);
  (* semantics preserved *)
  expect_equiv baseline prog inputs;
  Validate.check_exn prog

let first_block_stays_true () =
  let prog, _ = profiled_strcpy () in
  let loop = loop_of prog in
  let first_branch_idx =
    let rec go i = function
      | [] -> i
      | (op : Op.t) :: rest -> if Op.is_branch op then i else go (i + 1) rest
    in
    go 0 loop.Region.ops
  in
  assert (Cpr_core.Frp.convert_region prog loop);
  List.iteri
    (fun i (op : Op.t) ->
      if i < first_branch_idx && not (Op.is_cmpp op) then
        checkb "entry block unguarded" true (op.Op.guard = Op.True))
    loop.Region.ops

let unconditional_branch_rejected () =
  let ctx = B.create () in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.branch_to e "Exit" in
        ())
  in
  let prog = B.prog ctx ~entry:"Main" [ region ] in
  let snapshot = region.Region.ops in
  checkb "not convertible" false (Cpr_core.Frp.convert_region prog region);
  checkb "untouched" true (region.Region.ops == snapshot)

let guard_defined_elsewhere_rejected () =
  (* a branch guard that is live into the region has no controlling
     compare to convert *)
  let ctx = B.create () in
  let p = B.pred ctx in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) "Exit" in
        ())
  in
  let prog = B.prog ctx ~entry:"Main" [ region ] in
  checkb "not convertible" false (Cpr_core.Frp.convert_region prog region)

let branches_become_mutually_exclusive () =
  let prog, _ = profiled_strcpy () in
  let loop = loop_of prog in
  assert (Cpr_core.Frp.convert_region prog loop);
  let env = A.Pred_env.analyze loop in
  let ops = A.Pred_env.ops env in
  let idxs =
    List.filter
      (fun i -> Op.is_branch ops.(i))
      (List.init (Array.length ops) Fun.id)
  in
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          if i < j then
            checkb "disjoint" true
              (A.Pqs.disjoint (A.Pred_env.taken_expr env i)
                 (A.Pred_env.taken_expr env j)))
        idxs)
    idxs

let convert_counts_regions () =
  let prog, _ = profiled_strcpy () in
  checki "both Start and Loop convert" 2 (Cpr_core.Frp.convert prog)

let prop_frp_preserves_semantics =
  QCheck2.Test.make ~name:"FRP conversion preserves semantics" ~count:60
    QCheck2.Gen.(int_range 0 600)
    (fun seed ->
      let prog = Cpr_workloads.Gen.prog_of_seed seed in
      let inputs = Cpr_workloads.Gen.inputs_of_seed seed in
      let converted = Prog.copy prog in
      let (_ : int) = Cpr_core.Frp.convert converted in
      Validate.check converted = []
      && Cpr_sim.Equiv.check_many prog converted inputs = Ok ())

let suite =
  ( "frp conversion",
    [
      case "strcpy structure (Fig 6c)" strcpy_structure;
      case "entry block unguarded" first_block_stays_true;
      case "unconditional branch rejected" unconditional_branch_rejected;
      case "external guard rejected" guard_defined_elsewhere_rejected;
      case "branches mutually exclusive" branches_become_mutually_exclusive;
      case "convert counts" convert_counts_regions;
      QCheck_alcotest.to_alcotest prop_frp_preserves_semantics;
    ] )
