open Cpr_ir
open Helpers

let mk ?(guard = Op.True) opcode dests srcs = Op.make ~id:1 ~guard opcode dests srcs

let uses_and_defs () =
  let r1 = Reg.gpr 1 and r2 = Reg.gpr 2 and p = Reg.pred 1 in
  let op = mk ~guard:(Op.If p) (Op.Alu Op.Add) [ r1 ] [ Op.Reg r2; Op.Imm 3 ] in
  checkb "uses src" true (List.exists (Reg.equal r2) (Op.uses op));
  checkb "uses guard" true (List.exists (Reg.equal p) (Op.uses op));
  checkb "does not use dest" false (List.exists (Reg.equal r1) (Op.uses op));
  checkb "defs dest" true (List.exists (Reg.equal r1) (Op.defs op))

let accumulators_read_their_dest () =
  let pon = Reg.pred 1 and poff = Reg.pred 2 in
  let op =
    mk (Op.Cmpp (Op.Eq, Op.Ac, Some Op.On)) [ pon; poff ]
      [ Op.Reg (Reg.gpr 1); Op.Imm 0 ]
  in
  checkb "ac dest is accumulator" true
    (List.exists (Reg.equal pon) (Op.accumulator_dests op));
  checkb "on dest is accumulator" true
    (List.exists (Reg.equal poff) (Op.accumulator_dests op));
  checkb "accumulators are read" true
    (List.exists (Reg.equal pon) (Op.uses op))

let unconditional_writes () =
  let pt = Reg.pred 1 and pf = Reg.pred 2 in
  let op =
    mk ~guard:(Op.If (Reg.pred 3))
      (Op.Cmpp (Op.Eq, Op.Un, Some Op.Uc))
      [ pt; pf ]
      [ Op.Reg (Reg.gpr 1); Op.Imm 0 ]
  in
  checki "un and uc write under false guard" 2
    (List.length (Op.writes_when_guard_false op));
  let acc =
    mk ~guard:(Op.If (Reg.pred 3))
      (Op.Cmpp (Op.Eq, Op.Ac, Some Op.On))
      [ pt; pf ]
      [ Op.Reg (Reg.gpr 1); Op.Imm 0 ]
  in
  checki "accumulators never write under false guard" 0
    (List.length (Op.writes_when_guard_false acc))

let classify () =
  let r = Reg.gpr 1 and b = Reg.btr 1 in
  checkb "store not speculatable" false
    (Op.is_speculatable (mk Op.Store [] [ Op.Reg r; Op.Imm 0; Op.Imm 1 ]));
  checkb "branch not speculatable" false
    (Op.is_speculatable (mk Op.Branch [] [ Op.Reg b ]));
  checkb "load speculatable" true
    (Op.is_speculatable (mk Op.Load [ r ] [ Op.Reg r; Op.Imm 0 ]));
  checkb "alu speculatable" true
    (Op.is_speculatable (mk (Op.Alu Op.Add) [ r ] [ Op.Reg r; Op.Imm 1 ]))

let alu_semantics () =
  checki "add" 7 (Op.eval_alu Op.Add 3 4);
  checki "sub" (-1) (Op.eval_alu Op.Sub 3 4);
  checki "mul" 12 (Op.eval_alu Op.Mul 3 4);
  checki "div" 2 (Op.eval_alu Op.Div 9 4);
  checki "div by zero is 0 (non-trapping)" 0 (Op.eval_alu Op.Div 9 0);
  checki "mov takes second operand" 4 (Op.eval_alu Op.Mov 3 4);
  checki "and" 1 (Op.eval_alu Op.And_ 3 5);
  checki "xor" 6 (Op.eval_alu Op.Xor 3 5);
  checki "shl" 12 (Op.eval_alu Op.Shl 3 2);
  checki "shl by negative is masked" (3 lsl 2) (Op.eval_alu Op.Shl 3 (-2));
  checki "shr" 2 (Op.eval_alu Op.Shr 9 2);
  checki "fdiv by zero is 0" 0 (Op.eval_falu Op.Fdiv 9 0)

let cond_semantics () =
  checkb "eq" true (Op.eval_cond Op.Eq 3 3);
  checkb "ne" true (Op.eval_cond Op.Ne 3 4);
  checkb "lt" true (Op.eval_cond Op.Lt (-1) 0);
  checkb "le" true (Op.eval_cond Op.Le 0 0);
  checkb "gt" false (Op.eval_cond Op.Gt 0 0);
  checkb "ge" true (Op.eval_cond Op.Ge 1 0)

let negate_cond_involution () =
  List.iter
    (fun c ->
      checkb "negation is involutive" true
        (Op.negate_cond (Op.negate_cond c) = c);
      for a = -2 to 2 do
        for b = -2 to 2 do
          checkb "negation flips outcome" true
            (Op.eval_cond c a b = not (Op.eval_cond (Op.negate_cond c) a b))
        done
      done)
    [ Op.Eq; Op.Ne; Op.Lt; Op.Le; Op.Gt; Op.Ge ]

let printing () =
  let op =
    mk ~guard:(Op.If (Reg.pred 6))
      (Op.Cmpp (Op.Eq, Op.Un, Some Op.Uc))
      [ Reg.pred 1; Reg.pred 2 ]
      [ Op.Reg (Reg.gpr 3); Op.Imm 0 ]
  in
  let s = Op.to_string op in
  checkb "mentions opcode" true
    (Astring_like.contains s "cmpp.un.uc");
  checkb "mentions guard" true (Astring_like.contains s "if p6")

let suite =
  ( "op",
    [
      case "uses and defs" uses_and_defs;
      case "accumulator dests" accumulators_read_their_dest;
      case "unconditional writes" unconditional_writes;
      case "speculatability" classify;
      case "alu semantics" alu_semantics;
      case "cond semantics" cond_semantics;
      case "negate_cond involution" negate_cond_involution;
      case "printing" printing;
    ] )
