open Cpr_ir
module W = Cpr_workloads
module P = Cpr_pipeline
open Helpers

let all_build_and_validate () =
  List.iter
    (fun (w : W.Workload.t) ->
      let prog = w.W.Workload.build () in
      check
        Alcotest.(list string)
        (w.W.Workload.name ^ " validates")
        []
        (List.map (fun (e : Validate.error) -> e.Validate.what)
           (Validate.check prog));
      checkb
        (w.W.Workload.name ^ " has inputs")
        true
        (w.W.Workload.inputs () <> []))
    W.Registry.all

let all_run_to_completion () =
  List.iter
    (fun (w : W.Workload.t) ->
      let prog = w.W.Workload.build () in
      List.iter
        (fun input ->
          let out = Cpr_sim.Equiv.run_on prog input in
          checkb
            (w.W.Workload.name ^ " reaches an exit")
            true
            (out.Cpr_sim.Interp.exit_label <> None
            || (Prog.find_exn prog prog.Prog.entry).Region.fallthrough = None))
        (w.W.Workload.inputs ()))
    W.Registry.all

let profiles_are_meaningful () =
  List.iter
    (fun (w : W.Workload.t) ->
      let prog = w.W.Workload.build () in
      P.Passes.profile prog (w.W.Workload.inputs ());
      let hot =
        List.fold_left
          (fun acc (r : Region.t) -> max acc r.Region.entry_count)
          0 (Prog.regions prog)
      in
      checkb (w.W.Workload.name ^ " hot region runs a lot") true (hot >= 20);
      (* cold regions really are cold *)
      List.iter
        (fun (r : Region.t) ->
          if
            String.length r.Region.label >= 4
            && String.sub r.Region.label 0 4 = "Cold"
          then checki (w.W.Workload.name ^ " cold stays cold") 0 r.Region.entry_count)
        (Prog.regions prog))
    W.Registry.all

let registry_lookup () =
  checki "24 rows" 24 (List.length W.Registry.all);
  checkb "find works" true (W.Registry.find "strcpy" <> None);
  checkb "unknown is None" true (W.Registry.find "nonesuch" = None);
  checki "8 spec95 rows" 8 (List.length W.Registry.spec95_names);
  List.iter
    (fun n -> checkb (n ^ " is a row") true (W.Registry.find n <> None))
    W.Registry.spec95_names

let deterministic_inputs () =
  let w = Option.get (W.Registry.find "grep") in
  let a = w.W.Workload.inputs () and b = w.W.Workload.inputs () in
  checkb "input generation is deterministic" true
    (List.map (fun i -> i.Cpr_sim.Equiv.memory) a
    = List.map (fun i -> i.Cpr_sim.Equiv.memory) b)

let stream_bias_controls_exits () =
  let spec =
    { W.Kernels.default_stream with W.Kernels.unroll = 4; counted = true }
  in
  let prog = W.Kernels.stream_prog spec in
  let run p =
    Prog.clear_profile prog;
    let input = W.Kernels.stream_input ~spec ~len:400 ~exit_probability:p ~seed:5 in
    let st = Cpr_sim.State.create () in
    Cpr_sim.State.set_memory st input.Cpr_sim.Equiv.memory;
    let (_ : Cpr_sim.Interp.outcome) =
      Cpr_sim.Interp.run ~state:st ~profile:true prog
    in
    (Prog.find_exn prog "Loop").Region.entry_count
  in
  checkb "rarer exits mean more loop entries" true (run 0.002 > run 0.2)

let two_streams_semantics () =
  (* cmp exits exactly at the first difference *)
  let spec =
    {
      W.Kernels.default_stream with
      W.Kernels.unroll = 2;
      work = 0;
      store = false;
      two_streams = true;
      exit_cond = Op.Ne;
      counted = true;
    }
  in
  let prog = W.Kernels.stream_prog spec in
  let mem =
    [ (901, 0); (900, 40) ]
    @ List.init 48 (fun i -> (1000 + i, 7))
    @ List.init 48 (fun i -> (20000 + i, if i = 13 then 9 else 7))
  in
  let out = Cpr_sim.Equiv.run_on prog (Cpr_sim.Equiv.input_of_memory mem) in
  check Alcotest.(option string) "exits" (Some "Exit") out.Cpr_sim.Interp.exit_label;
  (* the loop stopped around element 13, not at the counter bound *)
  checkb "stopped early" true (out.Cpr_sim.Interp.steps < 300)

let gen_shapes_vary () =
  let shapes = List.init 50 W.Gen.shape_of_seed in
  checkb "some loops" true (List.exists (fun s -> s.W.Gen.loop) shapes);
  checkb "some straight" true (List.exists (fun s -> not s.W.Gen.loop) shapes);
  checkb "block counts vary" true
    (List.sort_uniq Int.compare (List.map (fun s -> s.W.Gen.blocks) shapes)
     |> List.length > 2)

let suite =
  ( "workloads",
    [
      case "all build and validate" all_build_and_validate;
      case "all run to completion" all_run_to_completion;
      case "profiles meaningful" profiles_are_meaningful;
      case "registry lookup" registry_lookup;
      case "deterministic inputs" deterministic_inputs;
      case "stream bias" stream_bias_controls_exits;
      case "two-streams (cmp) semantics" two_streams_semantics;
      case "generator shapes vary" gen_shapes_vary;
    ] )
