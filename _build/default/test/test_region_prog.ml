open Cpr_ir
open Helpers
module B = Builder

let branch_targets () =
  let ctx = B.create () in
  let p = B.pred ctx and q = B.pred ctx in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.cmpp1 e Op.Eq Op.Un p (Op.Imm 0) (Op.Imm 0) in
        let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) "A" in
        let (_ : Op.t) = B.cmpp1 e Op.Eq Op.Un q (Op.Imm 0) (Op.Imm 1) in
        let (_ : Op.t) = B.branch_to e ~guard:(Op.If q) "B" in
        ())
  in
  let brs = Region.branches region in
  checki "two branches" 2 (List.length brs);
  check
    Alcotest.(list (option string))
    "targets" [ Some "A"; Some "B" ]
    (List.map (Region.branch_target region) brs);
  check
    Alcotest.(list string)
    "successors dedup and include fallthrough" [ "A"; "B"; "Exit" ]
    (Region.successors region)

let pbr_rebinding () =
  (* the last pbr before the branch wins *)
  let ctx = B.create () in
  let b = B.btr ctx and p = B.pred ctx in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.pbr e b "A" in
        let (_ : Op.t) = B.pbr e b "B" in
        let (_ : Op.t) = B.cmpp1 e Op.Eq Op.Un p (Op.Imm 0) (Op.Imm 0) in
        let (_ : Op.t) = B.branch e ~guard:(Op.If p) b in
        ())
  in
  let br = List.hd (Region.branches region) in
  check Alcotest.(option string) "last pbr wins" (Some "B")
    (Region.branch_target region br)

let profile_counters () =
  let r = Region.make "L" [] in
  Region.record_entry r;
  Region.record_entry r;
  Region.record_taken r 7;
  checki "entries" 2 r.Region.entry_count;
  checki "taken" 1 (Region.taken_count r 7);
  checki "unknown branch" 0 (Region.taken_count r 8);
  Region.clear_profile r;
  checki "cleared" 0 r.Region.entry_count

let prog_structure () =
  let ctx = B.create () in
  let a = B.region ctx "A" ~fallthrough:"B" (fun _ -> ()) in
  let b = B.region ctx "B" ~fallthrough:"Exit" (fun _ -> ()) in
  let p = B.prog ctx ~entry:"A" [ a; b ] in
  checkb "find" true (Prog.find p "B" <> None);
  checkb "exit label" true (Prog.is_exit p "Exit");
  checkb "non-exit" false (Prog.is_exit p "B");
  let c = Region.make "C" ~fallthrough:"Exit" [] in
  Prog.add_region p ~after:"A" c;
  check
    Alcotest.(list string)
    "insertion order" [ "A"; "C"; "B" ]
    (List.map (fun (r : Region.t) -> r.Region.label) (Prog.regions p));
  checkb "duplicate label rejected" true
    (try
       Prog.add_region p (Region.make "C" []);
       false
     with Invalid_argument _ -> true)

let fresh_generators_respect_existing () =
  let ctx = B.create () in
  let r9 = Reg.gpr 9 in
  let region =
    B.region ctx "A" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.movi e r9 1 in
        ())
  in
  let p = B.prog ctx ~entry:"A" [ region ] in
  checkb "fresh gpr above max" true ((Prog.fresh_gpr p).Reg.id > 9);
  let id1 = Prog.fresh_op_id p in
  let id2 = Prog.fresh_op_id p in
  checkb "op ids increase" true (id2 > id1)

let copy_is_deep_for_profile () =
  let ctx = B.create () in
  let a = B.region ctx "A" ~fallthrough:"Exit" (fun _ -> ()) in
  let p = B.prog ctx ~entry:"A" [ a ] in
  (Prog.find_exn p "A").Region.entry_count <- 5;
  let q = Prog.copy p in
  (Prog.find_exn q "A").Region.entry_count <- 99;
  checki "original unchanged" 5 (Prog.find_exn p "A").Region.entry_count

let validate_catches ~expect build =
  let errors = Validate.check (build ()) in
  checkb (expect ^ " reported") true
    (List.exists
       (fun (e : Validate.error) -> Astring_like.contains e.Validate.what expect)
       errors)

let validation () =
  (* dangling branch target *)
  validate_catches ~expect:"undefined label" (fun () ->
      let ctx = B.create () in
      let p = B.pred ctx in
      let region =
        B.region ctx "A" ~fallthrough:"Exit" (fun e ->
            let (_ : Op.t) = B.cmpp1 e Op.Eq Op.Un p (Op.Imm 0) (Op.Imm 0) in
            let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) "Nowhere" in
            ())
      in
      B.prog ctx ~entry:"A" [ region ]);
  (* duplicate op ids *)
  validate_catches ~expect:"duplicate op id" (fun () ->
      let op = Op.make ~id:1 (Op.Alu Op.Mov) [ Reg.gpr 1 ] [ Op.Imm 0; Op.Imm 0 ] in
      Prog.create ~entry:"A" [ Region.make "A" ~fallthrough:"Exit" [ op; op ] ]);
  (* branch with no reaching pbr *)
  validate_catches ~expect:"no reaching pbr" (fun () ->
      let br = Op.make ~id:1 Op.Branch [] [ Op.Reg (Reg.btr 1) ] in
      Prog.create ~entry:"A" [ Region.make "A" ~fallthrough:"Exit" [ br ] ]);
  (* cmpp destination must be a predicate *)
  validate_catches ~expect:"not a predicate" (fun () ->
      let bad =
        Op.make ~id:1 (Op.Cmpp (Op.Eq, Op.Un, None)) [ Reg.gpr 1 ]
          [ Op.Imm 0; Op.Imm 0 ]
      in
      Prog.create ~entry:"A" [ Region.make "A" ~fallthrough:"Exit" [ bad ] ]);
  (* missing entry region *)
  validate_catches ~expect:"no region" (fun () ->
      Prog.create ~entry:"Ghost" [ Region.make "A" ~fallthrough:"Exit" [] ]);
  (* well-formed program passes *)
  let prog, _ = profiled_strcpy () in
  check Alcotest.(list string) "clean program" []
    (List.map (fun (e : Validate.error) -> e.Validate.what) (Validate.check prog))

let stats_counting () =
  let prog, inputs = profiled_strcpy () in
  Cpr_pipeline.Passes.profile prog inputs;
  let s = Stats_ir.of_prog prog in
  checki "static ops: 6 in Start + 30 in Loop" 36 s.Stats_ir.static_total;
  checki "static branches" 5 s.Stats_ir.static_branches;
  checkb "dynamic >= static" true (s.Stats_ir.dynamic_total >= s.Stats_ir.static_total)

let suite =
  ( "region & prog",
    [
      case "branch targets" branch_targets;
      case "pbr rebinding" pbr_rebinding;
      case "profile counters" profile_counters;
      case "prog structure" prog_structure;
      case "fresh generators" fresh_generators_respect_existing;
      case "copy isolates profile" copy_is_deep_for_profile;
      case "validation" validation;
      case "op-count stats" stats_counting;
    ] )
