open Cpr_ir
module A = Cpr_analysis
open Helpers

(* After FRP conversion of the strcpy loop, the branch predicates must be
   pairwise disjoint (the property that lets the scheduler reorder and
   overlap them) and each block FRP must imply its predecessor. *)
let strcpy_frp_exprs () =
  let prog, _ = profiled_strcpy () in
  let loop = loop_of prog in
  assert (Cpr_core.Frp.convert_region prog loop);
  let env = A.Pred_env.analyze loop in
  let ops = A.Pred_env.ops env in
  let branch_idxs =
    List.filteri (fun _ _ -> true) (List.init (Array.length ops) Fun.id)
    |> List.filter (fun i -> Op.is_branch ops.(i))
  in
  checki "four branches" 4 (List.length branch_idxs);
  List.iteri
    (fun i bi ->
      List.iteri
        (fun j bj ->
          if i < j then
            checkb
              (Printf.sprintf "branch %d # branch %d" i j)
              true
              (A.Pqs.disjoint (A.Pred_env.taken_expr env bi)
                 (A.Pred_env.taken_expr env bj)))
        branch_idxs)
    branch_idxs;
  (* block FRPs narrow monotonically *)
  let guard_exprs =
    List.filter_map
      (fun i ->
        match ops.(i).Op.opcode with
        | Op.Cmpp _ when ops.(i).Op.guard <> Op.True ->
          Some (A.Pred_env.guard_expr env i)
        | _ -> None)
      (List.init (Array.length ops) Fun.id)
  in
  List.iteri
    (fun i e ->
      List.iteri
        (fun j e' -> if i < j then checkb "later FRP implies earlier" true (A.Pqs.implies e' e))
        guard_exprs)
    guard_exprs

let fallthrough_is_conjunction () =
  let prog, _ = profiled_strcpy () in
  let loop = loop_of prog in
  assert (Cpr_core.Frp.convert_region prog loop);
  let env = A.Pred_env.analyze loop in
  let ops = A.Pred_env.ops env in
  let ft = A.Pred_env.fallthrough_expr env in
  Array.iteri
    (fun i op ->
      if Op.is_branch op then
        checkb "fallthrough disjoint from every taken" true
          (A.Pqs.disjoint ft (A.Pred_env.taken_expr env i)))
    ops

let constant_condition_folding () =
  (* the paper's on-trace FRP initialization idiom:
     p_on = cmpp.un eq (0, 0) if root  computes exactly root *)
  let ctx = Builder.create () in
  let root = Builder.pred ctx and p_on = Builder.pred ctx in
  let x = Builder.gpr ctx and pt = Builder.pred ctx in
  let region =
    Builder.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) =
          Builder.cmpp1 e Op.Eq Op.Un root (Op.Reg x) (Op.Imm 0)
        in
        let (_ : Op.t) =
          Builder.cmpp1 e Op.Eq Op.Un ~guard:(Op.If root) p_on (Op.Imm 0)
            (Op.Imm 0)
        in
        let (_ : Op.t) =
          Builder.cmpp1 e Op.Ne Op.Un ~guard:(Op.If root) pt (Op.Imm 0)
            (Op.Imm 0)
        in
        ())
  in
  ignore (Builder.prog ctx ~entry:"Main" [ region ]);
  let env = A.Pred_env.analyze region in
  let root_e = A.Pred_env.reg_expr_at_end env root in
  let on_e = A.Pred_env.reg_expr_at_end env p_on in
  let never = A.Pred_env.reg_expr_at_end env pt in
  checkb "p_on implies root" true (A.Pqs.implies on_e root_e);
  checkb "root implies p_on" true (A.Pqs.implies root_e on_e);
  checkb "ne(0,0) under root is false" true (A.Pqs.is_const_false never)

let pred_init_sets_constants () =
  let ctx = Builder.create () in
  let a = Builder.pred ctx and b = Builder.pred ctx in
  let region =
    Builder.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = Builder.pred_init e [ (a, true); (b, false) ] in
        ())
  in
  let env = A.Pred_env.analyze region in
  checkb "init true" true (A.Pqs.is_const_true (A.Pred_env.reg_expr_at_end env a));
  checkb "init false" true (A.Pqs.is_const_false (A.Pred_env.reg_expr_at_end env b))

let entry_preds_are_opaque () =
  let ctx = Builder.create () in
  let p = Builder.pred ctx in
  let r = Builder.gpr ctx in
  let region =
    Builder.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = Builder.movi e ~guard:(Op.If p) r 1 in
        ())
  in
  let env = A.Pred_env.analyze region in
  let e = A.Pred_env.guard_expr env 0 in
  checkb "live-in pred is not constant" true
    ((not (A.Pqs.is_const_true e)) && not (A.Pqs.is_const_false e));
  checkb "but self-disjoint with own negation" true
    (A.Pqs.disjoint e (A.Pqs.not_ e))

let wired_or_accumulates () =
  let ctx = Builder.create () in
  let acc = Builder.pred ctx in
  let x = Builder.gpr ctx and y = Builder.gpr ctx in
  let region =
    Builder.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = Builder.pred_init e [ (acc, false) ] in
        let (_ : Op.t) = Builder.cmpp1 e Op.Eq Op.On acc (Op.Reg x) (Op.Imm 0) in
        let (_ : Op.t) = Builder.cmpp1 e Op.Eq Op.On acc (Op.Reg y) (Op.Imm 0) in
        ())
  in
  let env = A.Pred_env.analyze region in
  let e = A.Pred_env.reg_expr_at_end env acc in
  (* expression should be the disjunction of the two condition literals *)
  checki "two literals" 2 (List.length (A.Pqs.keys e));
  checkb "not constant" true
    ((not (A.Pqs.is_const_true e)) && not (A.Pqs.is_const_false e))

let suite =
  ( "pred_env",
    [
      case "strcpy FRP mutual exclusion" strcpy_frp_exprs;
      case "fallthrough expression" fallthrough_is_conjunction;
      case "constant-condition folding (op 36 idiom)" constant_condition_folding;
      case "pred_init constants" pred_init_sets_constants;
      case "entry predicates opaque" entry_preds_are_opaque;
      case "wired-or expression" wired_or_accumulates;
    ] )
