open Cpr_ir
module Sim = Cpr_sim
open Helpers
module B = Builder
module W = Cpr_workloads

let strcpy_copies () =
  let prog = W.Strcpy.build ~unroll:4 () in
  let elts = [ 5; 6; 7; 8; 9; 10; 11 ] in
  let out = Sim.Equiv.run_on prog (W.Strcpy.string_input elts) in
  check Alcotest.(option string) "reaches Exit" (Some "Exit")
    out.Sim.Interp.exit_label;
  List.iteri
    (fun i v ->
      checki
        (Printf.sprintf "B[%d]" i)
        v
        (Sim.State.read_mem out.Sim.Interp.state (W.Strcpy.b_base + i)))
    elts;
  (* the terminator itself is not copied *)
  checki "no terminator copy" 0
    (Sim.State.read_mem out.Sim.Interp.state
       (W.Strcpy.b_base + List.length elts))

let empty_string () =
  let prog = W.Strcpy.build ~unroll:4 () in
  let out = Sim.Equiv.run_on prog (W.Strcpy.string_input []) in
  check Alcotest.(option string) "empty input exits immediately" (Some "Exit")
    out.Sim.Interp.exit_label;
  checki "nothing stored" 0 (List.length (Sim.State.store_trace out.Sim.Interp.state))

let op_counting () =
  let ctx = B.create () in
  let p = B.pred ctx and r = B.gpr ctx in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.cmpp1 e Op.Eq Op.Un p (Op.Imm 1) (Op.Imm 0) in
        (* nullified: guard is false *)
        let (_ : Op.t) = B.movi e ~guard:(Op.If p) r 7 in
        let (_ : Op.t) = B.movi e r 9 in
        ())
  in
  let prog = B.prog ctx ~entry:"Main" [ region ] in
  let out = Sim.Equiv.run_on prog Sim.Equiv.no_input in
  checki "issued counts all" 3 out.Sim.Interp.ops_issued;
  checki "executed counts guard-true" 2 out.Sim.Interp.ops_executed;
  checki "nullified op wrote nothing" 9 (Sim.State.read_gpr out.Sim.Interp.state r)

let branch_through_unset_btr_is_stuck () =
  let br = Op.make ~id:1 ~guard:Op.True Op.Branch [] [ Op.Reg (Reg.btr 1) ] in
  let prog = Prog.create ~entry:"A" [ Region.make "A" ~fallthrough:"Exit" [ br ] ] in
  checkb "stuck" true
    (match Sim.Equiv.run_on prog Sim.Equiv.no_input with
    | exception Sim.Interp.Stuck _ -> true
    | _ -> false)

let step_budget () =
  let ctx = B.create () in
  let p = B.pred ctx in
  let region =
    B.region ctx "Spin" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.cmpp1 e Op.Eq Op.Un p (Op.Imm 0) (Op.Imm 0) in
        let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) "Spin" in
        ())
  in
  let prog = B.prog ctx ~entry:"Spin" [ region ] in
  checkb "infinite loop hits the budget" true
    (match Sim.Interp.run ~max_steps:1000 prog with
    | exception Sim.Interp.Stuck _ -> true
    | _ -> false)

let profile_recording () =
  let prog = W.Strcpy.build ~unroll:4 () in
  let st = Sim.State.create () in
  Sim.State.set_memory st (W.Strcpy.string_input (List.init 20 (fun _ -> 3))).Sim.Equiv.memory;
  let (_ : Sim.Interp.outcome) = Sim.Interp.run ~state:st ~profile:true prog in
  let loop = Prog.find_exn prog "Loop" in
  checki "loop entered 5 times (20 elts / unroll 4)" 5 loop.Region.entry_count;
  let back = List.nth (Region.branches loop) 3 in
  checki "loop-back taken 4 times" 4 (Region.taken_count loop back.Op.id)

let exit_labels_distinguished () =
  let ctx = B.create () in
  let p = B.pred ctx and x = B.gpr ctx in
  let region =
    B.region ctx "Main" ~fallthrough:"Done" (fun e ->
        let (_ : Op.t) = B.cmpp1 e Op.Eq Op.Un p (Op.Reg x) (Op.Imm 1) in
        let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) "Error" in
        ())
  in
  let prog =
    B.prog ctx ~entry:"Main" ~exit_labels:[ "Done"; "Error" ] [ region ]
  in
  let run v =
    (Sim.Equiv.run_on prog
       { Sim.Equiv.memory = []; gprs = [ (x, v) ]; preds = [] })
      .Sim.Interp.exit_label
  in
  check Alcotest.(option string) "taken" (Some "Error") (run 1);
  check Alcotest.(option string) "fallthrough" (Some "Done") (run 2)

let equiv_detects_differences () =
  let prog, inputs = profiled_strcpy () in
  let mutated = Prog.copy prog in
  let loop = Prog.find_exn mutated "Loop" in
  (* flip a store value operand *)
  loop.Region.ops <-
    List.map
      (fun (op : Op.t) ->
        if Op.is_store op then { op with Op.srcs = List.mapi (fun i s -> if i = 2 then Op.Imm 123 else s) op.Op.srcs }
        else op)
      loop.Region.ops;
  expect_not_equiv ~msg:"store mutation must be caught" prog mutated inputs

let equiv_checks_exit_labels () =
  let mk target =
    let ctx = B.create () in
    let p = B.pred ctx in
    let region =
      B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
          let (_ : Op.t) = B.cmpp1 e Op.Eq Op.Un p (Op.Imm 0) (Op.Imm 0) in
          let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) target in
          ())
    in
    B.prog ctx ~entry:"Main" ~exit_labels:[ "Exit"; "A"; "B" ] [ region ]
  in
  expect_not_equiv ~msg:"exit label difference" (mk "A") (mk "B")
    [ Sim.Equiv.no_input ]

let suite =
  ( "interp & equiv",
    [
      case "strcpy copies" strcpy_copies;
      case "empty string" empty_string;
      case "op counting" op_counting;
      case "unset btr" branch_through_unset_btr_is_stuck;
      case "step budget" step_budget;
      case "profile recording" profile_recording;
      case "exit labels" exit_labels_distinguished;
      case "equiv detects store mutation" equiv_detects_differences;
      case "equiv detects exit difference" equiv_checks_exit_labels;
    ] )
