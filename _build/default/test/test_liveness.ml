open Cpr_ir
module A = Cpr_analysis
open Helpers
module B = Builder

let straight_line () =
  let ctx = B.create () in
  let a = B.gpr ctx and b = B.gpr ctx and out = B.gpr ctx in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.add e out a b in
        ())
  in
  let prog = B.prog ctx ~entry:"Main" ~live_out:[ out ] [ region ] in
  let l = A.Liveness.analyze prog in
  let live = A.Liveness.live_in l "Main" in
  checkb "sources live in" true (Reg.Set.mem a live && Reg.Set.mem b live);
  checkb "dest not live in" false (Reg.Set.mem out live)

let guarded_defs_do_not_kill () =
  let ctx = B.create () in
  let p = B.pred ctx and r = B.gpr ctx in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.movi e ~guard:(Op.If p) r 1 in
        let (_ : Op.t) = B.add e r r r in
        ())
  in
  let prog = B.prog ctx ~entry:"Main" [ region ] in
  let l = A.Liveness.analyze prog in
  checkb "r live in through guarded def" true
    (Reg.Set.mem r (A.Liveness.live_in l "Main"))

let unconditional_cmpp_dests_kill () =
  (* un/uc destinations write even when the guard is false, so they kill *)
  let ctx = B.create () in
  let g = B.pred ctx and p = B.pred ctx and r = B.gpr ctx in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) =
          B.cmpp1 e Op.Eq Op.Un ~guard:(Op.If g) p (Op.Reg r) (Op.Imm 0)
        in
        let (_ : Op.t) = B.movi e ~guard:(Op.If p) r 1 in
        ())
  in
  let prog = B.prog ctx ~entry:"Main" [ region ] in
  let l = A.Liveness.analyze prog in
  checkb "p not live in (killed by UN dest)" false
    (Reg.Set.mem p (A.Liveness.live_in l "Main"))

let loop_carried () =
  let ctx = B.create () in
  let acc = B.gpr ctx and cnt = B.gpr ctx and p = B.pred ctx in
  let region =
    B.region ctx "Loop" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.addi e acc acc 1 in
        let (_ : Op.t) = B.addi e cnt cnt (-1) in
        let (_ : Op.t) = B.cmpp1 e Op.Gt Op.Un p (Op.Reg cnt) (Op.Imm 0) in
        let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) "Loop" in
        ())
  in
  let prog = B.prog ctx ~entry:"Loop" ~live_out:[ acc ] [ region ] in
  let l = A.Liveness.analyze prog in
  let live = A.Liveness.live_in l "Loop" in
  checkb "accumulator live around the loop" true (Reg.Set.mem acc live);
  checkb "counter live around the loop" true (Reg.Set.mem cnt live)

let branch_targets_contribute () =
  let ctx = B.create () in
  let p = B.pred ctx and r = B.gpr ctx and s = B.gpr ctx in
  let main =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.cmpp1 e Op.Eq Op.Un p (Op.Reg s) (Op.Imm 0) in
        let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) "Side" in
        let (_ : Op.t) = B.movi e r 0 in
        ())
  in
  let side =
    B.region ctx "Side" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.addi e r r 1 in
        ())
  in
  let prog = B.prog ctx ~entry:"Main" [ main; side ] in
  let l = A.Liveness.analyze prog in
  checkb "r live at Side" true (Reg.Set.mem r (A.Liveness.live_in l "Side"));
  (* r is live into Main only because the branch to Side may take before
     Main's own unconditional def *)
  checkb "r live into Main via side exit" true
    (Reg.Set.mem r (A.Liveness.live_in l "Main"));
  let br = List.hd (Region.branches main) in
  checkb "live_at_target" true
    (Reg.Set.mem r (A.Liveness.live_at_target l main br))

let exit_boundary_is_program_live_out () =
  let ctx = B.create () in
  let r = B.gpr ctx in
  let region = B.region ctx "Main" ~fallthrough:"Exit" (fun _ -> ()) in
  let prog = B.prog ctx ~entry:"Main" ~live_out:[ r ] [ region ] in
  let l = A.Liveness.analyze prog in
  checkb "live_out at exit label" true (Reg.Set.mem r (A.Liveness.live_in l "Exit"));
  checkb "flows through empty region" true
    (Reg.Set.mem r (A.Liveness.live_in l "Main"))

(* The promotion-enabling property: in FRP-converted strcpy every
   non-store op's destination liveness implies its guard. *)
let live_expr_enables_promotion () =
  let prog, _ = profiled_strcpy () in
  let loop = loop_of prog in
  assert (Cpr_core.Frp.convert_region prog loop);
  let l = A.Liveness.analyze prog in
  let env = A.Pred_env.analyze loop in
  let ops = A.Pred_env.ops env in
  Array.iteri
    (fun idx (op : Op.t) ->
      match (op.Op.guard, op.Op.opcode) with
      | Op.If _, (Op.Alu _ | Op.Load | Op.Pbr) ->
        let ge = A.Pred_env.guard_expr env idx in
        List.iter
          (fun d ->
            (* r1/r2-style cursors fail this when live-out; strcpy's
               live_out is empty so everything promotes *)
            let le = A.Liveness.live_expr_after l env loop idx d in
            checkb
              (Printf.sprintf "op %d dest %s promotable" op.Op.id
                 (Reg.to_string d))
              true (A.Pqs.implies le ge))
          (Op.defs op)
      | _ -> ())
    ops

(* Structural soundness on random programs: registers read before any
   write during a real execution must be in live_in of the entry. *)
let prop_live_in_covers_dynamic_reads =
  QCheck2.Test.make ~name:"live_in(entry) covers use-before-def of entry region"
    ~count:60
    QCheck2.Gen.(int_range 0 500)
    (fun seed ->
      let prog = Cpr_workloads.Gen.prog_of_seed seed in
      let l = A.Liveness.analyze prog in
      let entry = Prog.find_exn prog prog.Prog.entry in
      let live = A.Liveness.live_in l prog.Prog.entry in
      (* scan entry region: any reg used before an unconditional def *)
      let defined = ref Reg.Set.empty in
      List.for_all
        (fun (op : Op.t) ->
          let ok =
            List.for_all
              (fun u -> Reg.Set.mem u !defined || Reg.Set.mem u live)
              (Op.uses op)
          in
          if op.Op.guard = Op.True then
            List.iter
              (fun d -> defined := Reg.Set.add d !defined)
              (Op.defs op);
          ok)
        entry.Region.ops)

let suite =
  ( "liveness",
    [
      case "straight line" straight_line;
      case "guarded defs do not kill" guarded_defs_do_not_kill;
      case "un/uc dests kill" unconditional_cmpp_dests_kill;
      case "loop carried" loop_carried;
      case "branch targets contribute" branch_targets_contribute;
      case "exit boundary" exit_boundary_is_program_live_out;
      case "live_expr enables strcpy promotion" live_expr_enables_promotion;
      QCheck_alcotest.to_alcotest prop_live_in_covers_dynamic_reads;
    ] )
