open Cpr_analysis
open Helpers

let l1 = Pqs.cond_lit 1
let l2 = Pqs.cond_lit 2
let not_ = Pqs.not_
let ( &&& ) = Pqs.and_
let ( ||| ) = Pqs.or_

let constants () =
  checkb "true" true (Pqs.is_const_true Pqs.tru);
  checkb "false" true (Pqs.is_const_false Pqs.fls);
  checkb "const true" true (Pqs.is_const_true (Pqs.const true));
  checkb "and with false" true (Pqs.is_const_false (l1 &&& Pqs.fls));
  checkb "or with true" true (Pqs.is_const_true (l1 ||| Pqs.tru));
  checkb "unknown poisons" true (Pqs.is_unknown (l1 &&& Pqs.unknown))

let contradiction_and_negation () =
  checkb "x & ~x = false" true (Pqs.is_const_false (l1 &&& not_ l1));
  checkb "~~x = x syntactically implies both ways" true
    (Pqs.implies (not_ (not_ l1)) l1 && Pqs.implies l1 (not_ (not_ l1)));
  checkb "x | ~x is not reduced but implied by true only via eval" true
    (Pqs.eval (fun _ -> true) (l1 ||| not_ l1) = Some true)

let disjointness () =
  checkb "complementary literals" true (Pqs.disjoint l1 (not_ l1));
  checkb "independent literals not provably disjoint" false
    (Pqs.disjoint l1 l2);
  checkb "conjunction extension stays disjoint" true
    (Pqs.disjoint (l1 &&& l2) (not_ l1 &&& l2));
  checkb "or distributes over disjointness" true
    (Pqs.disjoint (l1 ||| (l1 &&& l2)) (not_ l1));
  checkb "false disjoint from anything" true (Pqs.disjoint Pqs.fls l1);
  checkb "unknown never disjoint" false (Pqs.disjoint Pqs.unknown Pqs.fls);
  (* FRP pattern: block predicates vs the taken predicate of an earlier
     branch (the property that lets the scheduler overlap branches) *)
  let taken1 = l1 in
  let fall1 = not_ l1 in
  let taken2 = fall1 &&& l2 in
  let fall2 = fall1 &&& not_ l2 in
  checkb "taken1 # taken2" true (Pqs.disjoint taken1 taken2);
  checkb "taken1 # fall2" true (Pqs.disjoint taken1 fall2);
  checkb "taken2 # fall2" true (Pqs.disjoint taken2 fall2);
  checkb "fall1 not # taken2" false (Pqs.disjoint fall1 taken2)

let implication () =
  checkb "conj implies its part" true (Pqs.implies (l1 &&& l2) l1);
  checkb "part does not imply conj" false (Pqs.implies l1 (l1 &&& l2));
  checkb "or implies only if all branches do" false
    (Pqs.implies (l1 ||| l2) l1);
  checkb "both branches imply" true (Pqs.implies ((l1 &&& l2) ||| l1) l1);
  checkb "false implies anything" true (Pqs.implies Pqs.fls l2);
  checkb "anything implies true" true (Pqs.implies (l1 &&& not_ l2) Pqs.tru);
  checkb "unknown implies nothing" false (Pqs.implies Pqs.unknown Pqs.tru)

let entry_literals () =
  let p = Pqs.entry_lit (Cpr_ir.Reg.pred 4) in
  checkb "p # ~p" true (Pqs.disjoint p (not_ p));
  checkb "entry and cond literals independent" false (Pqs.disjoint p l1)

(* --- property tests: syntactic answers are sound w.r.t. brute force --- *)

(* random expression trees over 4 condition literals *)
let gen_expr =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           if n = 0 then
             oneof
               [
                 return Pqs.tru;
                 return Pqs.fls;
                 map (fun i -> Pqs.cond_lit (i mod 4)) small_nat;
                 map (fun i -> Pqs.not_ (Pqs.cond_lit (i mod 4))) small_nat;
               ]
           else
             oneof
               [
                 map2 Pqs.and_ (self (n / 2)) (self (n / 2));
                 map2 Pqs.or_ (self (n / 2)) (self (n / 2));
                 map Pqs.not_ (self (n - 1));
               ]))

let all_assignments keys =
  let keys = List.sort_uniq compare keys in
  let rec go = function
    | [] -> [ (fun _ -> false) ]
    | k :: rest ->
      List.concat_map
        (fun f -> [ (fun q -> if q = k then false else f q);
                    (fun q -> if q = k then true else f q) ])
        (go rest)
  in
  go keys

let semantically agg f a b =
  let keys = Pqs.keys a @ Pqs.keys b in
  agg
    (fun assign ->
      match (Pqs.eval assign a, Pqs.eval assign b) with
      | Some va, Some vb -> f va vb
      | _ -> true)
    (all_assignments keys)

let prop_disjoint_sound =
  QCheck2.Test.make ~name:"disjoint answers are sound" ~count:300
    QCheck2.Gen.(pair gen_expr gen_expr)
    (fun (a, b) ->
      (not (Pqs.disjoint a b))
      || semantically List.for_all (fun va vb -> not (va && vb)) a b)

let prop_implies_sound =
  QCheck2.Test.make ~name:"implies answers are sound" ~count:300
    QCheck2.Gen.(pair gen_expr gen_expr)
    (fun (a, b) ->
      (not (Pqs.implies a b))
      || semantically List.for_all (fun va vb -> (not va) || vb) a b)

let prop_eval_homomorphic =
  QCheck2.Test.make ~name:"and/or/not evaluate pointwise" ~count:300
    QCheck2.Gen.(pair gen_expr gen_expr)
    (fun (a, b) ->
      let keys = Pqs.keys a @ Pqs.keys b in
      List.for_all
        (fun assign ->
          match
            ( Pqs.eval assign a,
              Pqs.eval assign b,
              Pqs.eval assign (Pqs.and_ a b),
              Pqs.eval assign (Pqs.or_ a b),
              Pqs.eval assign (Pqs.not_ a) )
          with
          | Some va, Some vb, Some vand, Some vor, Some vnot ->
            vand = (va && vb) && vor = (va || vb) && vnot = not va
          | _ -> true)
        (all_assignments keys))

let suite =
  ( "pqs",
    [
      case "constants" constants;
      case "contradiction and negation" contradiction_and_negation;
      case "disjointness" disjointness;
      case "implication" implication;
      case "entry literals" entry_literals;
      QCheck_alcotest.to_alcotest prop_disjoint_sound;
      QCheck_alcotest.to_alcotest prop_implies_sound;
      QCheck_alcotest.to_alcotest prop_eval_homomorphic;
    ] )
