open Cpr_ir
module A = Cpr_analysis
module MB = Cpr_core.Match_blocks
open Helpers
module B = Builder

(* A profiled, FRP-converted, speculated stream loop with configurable
   per-exit probability. *)
let prepared ?(unroll = 6) ?(p = 0.08) () =
  let spec =
    {
      Cpr_workloads.Kernels.default_stream with
      Cpr_workloads.Kernels.unroll;
      work = 1;
      store = false;
      accumulate = true;
      counted = true;
    }
  in
  let prog = Cpr_workloads.Kernels.stream_prog spec in
  let inputs =
    List.init 12 (fun i ->
        Cpr_workloads.Kernels.stream_input ~spec ~len:120 ~exit_probability:p
          ~seed:(i * 31))
  in
  Cpr_pipeline.Passes.profile prog inputs;
  let loop = Prog.find_exn prog "Loop" in
  assert (Cpr_core.Frp.convert_region prog loop);
  let (_ : Cpr_core.Spec.stats) = Cpr_core.Spec.speculate_region prog loop in
  (prog, loop)

let run_match ?(heur = Cpr_core.Heur.default) prog loop =
  MB.run heur prog (A.Liveness.analyze prog) loop

let covers_all_branches () =
  let prog, loop = prepared () in
  let blocks = run_match prog loop in
  let covered = List.concat_map (fun b -> b.MB.branch_idxs) blocks in
  checki "every branch in exactly one block"
    (List.length (Region.branches loop))
    (List.length (List.sort_uniq Int.compare covered))

let threshold_controls_blocking () =
  let prog, loop = prepared () in
  let count t =
    List.length
      (run_match
         ~heur:{ Cpr_core.Heur.default with Cpr_core.Heur.exit_weight_threshold = t }
         prog loop)
  in
  checkb "tighter threshold, more blocks" true (count 0.05 >= count 0.30);
  checkb "loose threshold collapses" true (count 0.95 <= count 0.05)

let loop_back_is_taken_variation () =
  let prog, loop = prepared () in
  let blocks = run_match prog loop in
  let last = List.nth blocks (List.length blocks - 1) in
  checkb "final block is likely-taken" true last.MB.taken_variation

let predict_taken_threshold () =
  let prog, loop = prepared () in
  (* an absurd threshold prevents the taken variation *)
  let blocks =
    run_match
      ~heur:
        { Cpr_core.Heur.default with Cpr_core.Heur.predict_taken_threshold = 2.0 }
      prog loop
  in
  checkb "no taken blocks" true
    (List.for_all (fun b -> not b.MB.taken_variation) blocks)

let max_branches_cap () =
  let prog, loop = prepared ~p:0.001 () in
  let blocks =
    run_match
      ~heur:{ Cpr_core.Heur.default with Cpr_core.Heur.max_block_branches = 2 }
      prog loop
  in
  checkb "cap respected" true
    (List.for_all (fun b -> List.length b.MB.branch_idxs <= 2) blocks)

let suitability_requires_un_compare () =
  (* a branch guarded by a wired-or predicate cannot anchor the schema *)
  let ctx = B.create () in
  let acc = B.pred ctx and x = B.gpr ctx and y = B.gpr ctx in
  let p2 = B.pred ctx in
  let region =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.pred_init e [ (acc, false) ] in
        let (_ : Op.t) = B.cmpp1 e Op.Eq Op.On acc (Op.Reg x) (Op.Imm 0) in
        let (_ : Op.t) = B.cmpp1 e Op.Eq Op.On acc (Op.Reg y) (Op.Imm 0) in
        let (_ : Op.t) = B.branch_to e ~guard:(Op.If acc) "Exit" in
        let (_ : Op.t) = B.cmpp1 e Op.Eq Op.Un p2 (Op.Reg x) (Op.Imm 1) in
        let (_ : Op.t) = B.branch_to e ~guard:(Op.If p2) "Exit" in
        ())
  in
  let prog = B.prog ctx ~entry:"Main" [ region ] in
  let blocks = run_match prog region in
  (* first branch: no UN-defining compare -> its own trivial block *)
  let first = List.hd blocks in
  checki "trivial block" 0 (List.length first.MB.compare_idxs);
  checkb "trivial blocks are not transformable" false (MB.nontrivial first)

(* The paper's separability example (Section 5.2/6): when a store that
   will move off-trace may alias a load feeding a later branch's compare,
   the later branch must not join the block. *)
let separability_splits_on_memory_chain () =
  let build noalias =
    let ctx = B.create () in
    let base_a = B.gpr ctx and base_b = B.gpr ctx in
    let p1 = B.pred ctx and p2 = B.pred ctx in
    let v = B.gpr ctx and w = B.gpr ctx in
    let region =
      B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
          let (_ : Op.t) = B.load e v ~base:base_a ~off:0 in
          let (_ : Op.t) = B.cmpp1 e Op.Eq Op.Un p1 (Op.Reg v) (Op.Imm 0) in
          let (_ : Op.t) = B.branch_to e ~guard:(Op.If p1) "Exit" in
          (* store below the first branch (moves off-trace) ... *)
          let (_ : Op.t) = B.store e ~base:base_b ~off:0 (Op.Reg v) in
          (* ... may alias the load feeding the second compare *)
          let (_ : Op.t) = B.load e w ~base:base_a ~off:1 in
          let (_ : Op.t) = B.cmpp1 e Op.Eq Op.Un p2 (Op.Reg w) (Op.Imm 0) in
          let (_ : Op.t) = B.branch_to e ~guard:(Op.If p2) "Exit" in
          ())
    in
    let noalias_bases = if noalias then [ base_a; base_b ] else [] in
    let prog = B.prog ctx ~entry:"Main" ~noalias_bases [ region ] in
    let loop = Prog.find_exn prog "Main" in
    let (_ : bool) = Cpr_core.Frp.convert_region prog loop in
    let (_ : Cpr_core.Spec.stats) = Cpr_core.Spec.speculate_region prog loop in
    List.length (run_match prog loop)
  in
  checki "aliasing store splits the block" 2 (build false);
  checki "disambiguated store keeps one block" 1 (build true)

let entry_freq_recorded () =
  let prog, loop = prepared () in
  let blocks = run_match prog loop in
  checki "first block entry = region entries"
    loop.Region.entry_count (List.hd blocks).MB.entry_freq

let suite =
  ( "match (CPR blocks)",
    [
      case "covers all branches" covers_all_branches;
      case "exit-weight thresholds (Fig 3)" threshold_controls_blocking;
      case "loop-back forms taken variation" loop_back_is_taken_variation;
      case "predict-taken threshold" predict_taken_threshold;
      case "max branches cap" max_branches_cap;
      case "suitability needs UN compare" suitability_requires_un_compare;
      case "separability on memory chains" separability_splits_on_memory_chain;
      case "entry frequency" entry_freq_recorded;
    ] )
