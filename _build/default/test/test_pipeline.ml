open Cpr_ir
module P = Cpr_pipeline
module M = Cpr_machine.Descr
open Helpers
module B = Builder

let paper_estimator_formula () =
  (* two regions with known schedule lengths and entry counts *)
  let ctx = B.create () in
  let a = B.gpr ctx and b = B.gpr ctx in
  let r1 =
    B.region ctx "One" ~fallthrough:"Two" (fun e ->
        let (_ : Op.t) = B.movi e a 1 in
        let (_ : Op.t) = B.addi e b a 1 in
        ())
  in
  let r2 =
    B.region ctx "Two" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.addi e a b 1 in
        ())
  in
  let prog = B.prog ctx ~entry:"One" ~live_out:[ a ] [ r1; r2 ] in
  (Prog.find_exn prog "One").Region.entry_count <- 10;
  (Prog.find_exn prog "Two").Region.entry_count <- 7;
  (* sequential lengths: region One = mov@0, add@1 -> length 2;
     region Two = 1 *)
  checki "sum of length x frequency" ((2 * 10) + (1 * 7))
    (P.Perf.estimate M.sequential prog)

let exit_aware_never_exceeds () =
  List.iter
    (fun name ->
      let w = Option.get (Cpr_workloads.Registry.find name) in
      let prog = w.Cpr_workloads.Workload.build () in
      P.Passes.profile prog (w.Cpr_workloads.Workload.inputs ());
      List.iter
        (fun m ->
          checkb
            (Printf.sprintf "%s %s" name m.M.name)
            true
            (P.Perf.estimate_exit_aware m prog <= P.Perf.estimate m prog))
        M.all)
    [ "strcpy"; "grep" ]

let speedup_math () =
  check (Alcotest.float 1e-9) "2x" 2.0
    (P.Perf.speedup ~baseline:100 ~transformed:50);
  check (Alcotest.float 1e-9) "degenerate" 1.0
    (P.Perf.speedup ~baseline:100 ~transformed:0)

let gmean_math () =
  check (Alcotest.float 1e-9) "identity" 1.0 (P.Report.gmean [ 1.0; 1.0 ]);
  check (Alcotest.float 1e-6) "sqrt" 2.0 (P.Report.gmean [ 1.0; 4.0 ]);
  check (Alcotest.float 1e-9) "empty" 1.0 (P.Report.gmean [])

let report_shape () =
  let w = Option.get (Cpr_workloads.Registry.find "strcpy") in
  let r =
    P.Report.run ~name:"strcpy" (w.Cpr_workloads.Workload.build ())
      (w.Cpr_workloads.Workload.inputs ())
  in
  checkb "equivalent" true (r.P.Report.equivalent = Ok ());
  checki "five machines" 5 (List.length r.P.Report.speedups);
  check
    Alcotest.(list string)
    "machine order" [ "Seq"; "Nar"; "Med"; "Wid"; "Inf" ]
    (List.map fst r.P.Report.speedups);
  (* paper directional facts for strcpy *)
  checkb "dynamic branches collapse" true (r.P.Report.d_br < 0.5);
  checkb "dynamic ops shrink (irredundant)" true (r.P.Report.d_tot < 1.0);
  checkb "static code grows moderately" true
    (r.P.Report.s_tot > 1.0 && r.P.Report.s_tot < 1.6);
  checkb "wide speedup exceeds sequential-adjacent narrow" true
    (List.assoc "Wid" r.P.Report.speedups
    > List.assoc "Nar" r.P.Report.speedups);
  checkb "infinite at least wide" true
    (List.assoc "Inf" r.P.Report.speedups
    >= List.assoc "Wid" r.P.Report.speedups -. 1e-9)

let profile_rerecords () =
  let prog, inputs = profiled_strcpy () in
  let before = (loop_of prog).Region.entry_count in
  P.Passes.profile prog inputs;
  checki "profile clears before recording" before
    (loop_of prog).Region.entry_count

let baseline_does_not_mutate_input () =
  let prog, inputs = profiled_strcpy () in
  let text = Printer.to_text prog in
  let (_ : P.Passes.compiled) = P.Passes.baseline prog inputs in
  let (_ : P.Passes.compiled) = P.Passes.height_reduce prog inputs in
  check Alcotest.string "input program untouched" text (Printer.to_text prog)

let suite =
  ( "pipeline & report",
    [
      case "paper estimator formula" paper_estimator_formula;
      case "exit-aware refinement bounded" exit_aware_never_exceeds;
      case "speedup math" speedup_math;
      case "gmean math" gmean_math;
      case "report shape (strcpy facts)" report_shape;
      case "profile re-records" profile_rerecords;
      case "pipeline copies its input" baseline_does_not_mutate_input;
    ] )
