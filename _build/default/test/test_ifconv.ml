open Cpr_ir
module P = Cpr_pipeline
module W = Cpr_workloads
open Helpers
module B = Builder

(* main region: load x; if x==0 jump to a stub that stores a marker and
   rejoins at Exit; otherwise store the value; both paths end at Exit. *)
let diamond () =
  let ctx = B.create () in
  let base = B.gpr ctx and x = B.gpr ctx and p = B.pred ctx in
  let main =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.load e x ~base ~off:0 in
        let (_ : Op.t) = B.cmpp1 e Op.Eq Op.Un p (Op.Reg x) (Op.Imm 0) in
        let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) "Stub" in
        let (_ : Op.t) = B.store e ~base ~off:1 (Op.Reg x) in
        ())
  in
  let stub =
    B.region ctx "Stub" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.store e ~base ~off:2 (Op.Imm 99) in
        ())
  in
  let prog = B.prog ctx ~entry:"Main" ~noalias_bases:[ base ] [ main; stub ] in
  let inputs =
    List.map
      (fun v -> Cpr_sim.Equiv.input_of_memory [ (0, v) ])
      [ 0; 1; 5 ]
  in
  (prog, inputs)

let converts_the_diamond () =
  let prog, inputs = diamond () in
  let reference = Prog.copy prog in
  let main = Prog.find_exn prog "Main" in
  let s = Cpr_core.Ifconv.convert_region ~only_unbiased:false prog main in
  checki "one branch converted" 1 s.Cpr_core.Ifconv.converted;
  checki "one op inlined" 1 s.Cpr_core.Ifconv.inlined_ops;
  checki "branch gone" 0 (List.length (Region.branches main));
  Validate.check_exn prog;
  expect_equiv reference prog inputs;
  (* both stores are now predicated with complementary conditions *)
  let stores = List.filter Op.is_store main.Region.ops in
  checki "two stores" 2 (List.length stores);
  List.iter
    (fun (op : Op.t) -> checkb "predicated" true (op.Op.guard <> Op.True))
    stores

let unbiased_filter () =
  let prog, inputs = diamond () in
  (* profile with heavily biased data: the branch is ~never taken *)
  P.Passes.profile prog
    (List.map (fun v -> Cpr_sim.Equiv.input_of_memory [ (0, v) ])
       [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]);
  let main = Prog.find_exn prog "Main" in
  let s = Cpr_core.Ifconv.convert_region ~only_unbiased:true prog main in
  checki "biased branch left for control CPR" 0 s.Cpr_core.Ifconv.converted;
  ignore inputs

let rejects_non_stubs () =
  (* stub with a branch inside is not convertible *)
  let ctx = B.create () in
  let base = B.gpr ctx and x = B.gpr ctx and p = B.pred ctx and q = B.pred ctx in
  let main =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.cmpp1 e Op.Eq Op.Un p (Op.Reg x) (Op.Imm 0) in
        let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) "Busy" in
        let (_ : Op.t) = B.store e ~base ~off:1 (Op.Reg x) in
        ())
  in
  let busy =
    B.region ctx "Busy" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.cmpp1 e Op.Ne Op.Un q (Op.Reg x) (Op.Imm 3) in
        let (_ : Op.t) = B.branch_to e ~guard:(Op.If q) "Exit" in
        ())
  in
  let prog = B.prog ctx ~entry:"Main" [ main; busy ] in
  let s =
    Cpr_core.Ifconv.convert_region ~only_unbiased:false prog
      (Prog.find_exn prog "Main")
  in
  checki "not converted" 0 s.Cpr_core.Ifconv.converted

let composes_with_icbm () =
  let prog, inputs = diamond () in
  let reference = Prog.copy prog in
  let (_ : Cpr_core.Ifconv.stats) =
    Cpr_core.Ifconv.convert ~only_unbiased:false prog
  in
  let red = P.Passes.height_reduce prog inputs in
  expect_equiv reference red.P.Passes.prog inputs

let prop_ifconv_safe =
  QCheck2.Test.make ~name:"if-conversion preserves semantics" ~count:60
    QCheck2.Gen.(int_range 0 600)
    (fun seed ->
      let prog = W.Gen.prog_of_seed seed in
      let inputs = W.Gen.inputs_of_seed seed in
      let t = Prog.copy prog in
      let (_ : Cpr_core.Ifconv.stats) =
        Cpr_core.Ifconv.convert ~only_unbiased:false t
      in
      Validate.check t = [] && Cpr_sim.Equiv.check_many prog t inputs = Ok ())

let prop_ifconv_then_pipeline =
  QCheck2.Test.make ~name:"if-conversion composes with the full pipeline"
    ~count:40
    QCheck2.Gen.(int_range 0 600)
    (fun seed ->
      let prog = W.Gen.prog_of_seed seed in
      let inputs = W.Gen.inputs_of_seed seed in
      let t = Prog.copy prog in
      let (_ : Cpr_core.Ifconv.stats) =
        Cpr_core.Ifconv.convert ~only_unbiased:false t
      in
      let red = P.Passes.height_reduce t inputs in
      Cpr_sim.Equiv.check_many prog red.P.Passes.prog inputs = Ok ())

let suite =
  ( "if-conversion",
    [
      case "converts a terminal diamond" converts_the_diamond;
      case "biased branches left alone" unbiased_filter;
      case "rejects non-stubs" rejects_non_stubs;
      case "composes with ICBM" composes_with_icbm;
      QCheck_alcotest.to_alcotest prop_ifconv_safe;
      QCheck_alcotest.to_alcotest prop_ifconv_then_pipeline;
    ] )
