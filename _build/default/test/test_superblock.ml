open Cpr_ir
module P = Cpr_pipeline
module W = Cpr_workloads
open Helpers

(* A dispatch kernel's region graph (Loop -> Advance -> Back with handler
   joins into Back) is the canonical formation target. *)
let prepared () =
  let w = Option.get (W.Registry.find "lex") in
  let prog = w.W.Workload.build () in
  let inputs = w.W.Workload.inputs () in
  P.Passes.profile prog inputs;
  (prog, inputs)

let merges_hot_chain () =
  let prog, inputs = prepared () in
  let reference = Prog.copy prog in
  let branches_before =
    List.length (Region.branches (Prog.find_exn prog "Loop"))
  in
  let merged = Cpr_core.Superblock.form prog in
  let (_ : int) = Cpr_core.Superblock.prune_unreachable prog in
  Validate.check_exn prog;
  checkb "merged at least Advance and Back" true (merged >= 2);
  let loop = Prog.find_exn prog "Loop" in
  checkb "superblock gained the loop-back branch" true
    (List.length (Region.branches loop) > branches_before);
  check Alcotest.(option string) "trace ends at the exit" (Some "Exit")
    loop.Region.fallthrough;
  expect_equiv reference prog inputs

let tail_duplication_keeps_joins () =
  let prog, _ = prepared () in
  let back_ops = Region.static_op_count (Prog.find_exn prog "Back") in
  let (_ : int) = Cpr_core.Superblock.form prog in
  (* handlers still fall through to the original Back *)
  checkb "original Back survives for its other predecessors" true
    (Prog.find prog "Back" <> None);
  checki "and is unchanged" back_ops
    (Region.static_op_count (Prog.find_exn prog "Back"));
  (* no dangling references *)
  Validate.check_exn prog

let absorbed_single_pred_is_pruned () =
  let prog, _ = prepared () in
  let (_ : int) = Cpr_core.Superblock.form prog in
  let pruned = Cpr_core.Superblock.prune_unreachable prog in
  (* Advance had Loop as its only predecessor: absorbed and pruned *)
  checkb "something pruned" true (pruned >= 1);
  checkb "Advance gone" true (Prog.find prog "Advance" = None)

let cold_code_not_merged () =
  let prog, _ = prepared () in
  let cold_before = Region.static_op_count (Prog.find_exn prog "Cold1") in
  let (_ : int) = Cpr_core.Superblock.form prog in
  let (_ : int) = Cpr_core.Superblock.prune_unreachable prog in
  checkb "cold chain survives" true (Prog.find prog "Cold1" <> None);
  checki "and is unchanged" cold_before
    (Region.static_op_count (Prog.find_exn prog "Cold1"))

let formation_widens_cpr_scope () =
  (* the whole point: after formation ICBM sees the loop-back branch in
     the same superblock as the case checks and forms a taken-variation
     block over all of them *)
  let w = Option.get (W.Registry.find "lex") in
  let inputs = w.W.Workload.inputs () in
  let red = P.Passes.height_reduce (w.W.Workload.build ()) inputs in
  let base = P.Passes.baseline (w.W.Workload.build ()) inputs in
  let m = Cpr_machine.Descr.medium in
  let speedup =
    P.Perf.speedup
      ~baseline:(P.Perf.estimate m base.P.Passes.prog)
      ~transformed:(P.Perf.estimate m red.P.Passes.prog)
  in
  checkb
    (Printf.sprintf "lex medium speedup %.2f > 1.3 with formation" speedup)
    true (speedup > 1.3)

let threshold_zero_means_greedy () =
  let prog, inputs = prepared () in
  let reference = Prog.copy prog in
  let greedy = Cpr_core.Superblock.form ~threshold:0.0 prog in
  let conservative =
    let p = Prog.copy reference in
    P.Passes.profile p inputs;
    Cpr_core.Superblock.form ~threshold:1.1 p
  in
  checkb "greedy merges at least as much" true (greedy >= conservative);
  checki "impossible threshold merges nothing" 0 conservative

let prop_formation_safe =
  QCheck2.Test.make ~name:"superblock formation preserves semantics"
    ~count:60
    QCheck2.Gen.(int_range 0 600)
    (fun seed ->
      let prog = W.Gen.prog_of_seed seed in
      let inputs = W.Gen.inputs_of_seed seed in
      let t = Prog.copy prog in
      P.Passes.profile t inputs;
      let (_ : int) = Cpr_core.Superblock.form t in
      let (_ : int) = Cpr_core.Superblock.prune_unreachable t in
      Validate.check t = [] && Cpr_sim.Equiv.check_many prog t inputs = Ok ())

let suite =
  ( "superblock formation",
    [
      case "merges the hot chain" merges_hot_chain;
      case "tail duplication keeps joins" tail_duplication_keeps_joins;
      case "absorbed regions pruned" absorbed_single_pred_is_pruned;
      case "cold code untouched" cold_code_not_merged;
      case "widens CPR scope" formation_widens_cpr_scope;
      case "threshold behaviour" threshold_zero_means_greedy;
      QCheck_alcotest.to_alcotest prop_formation_safe;
    ] )
