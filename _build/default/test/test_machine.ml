open Cpr_ir
module M = Cpr_machine.Descr
module R = Cpr_machine.Resource
open Helpers

let mk opcode dests srcs = Op.make ~id:1 opcode dests srcs

let paper_latencies () =
  let check_lat name op expected =
    checki name expected (M.latency_of M.medium op)
  in
  let g = Reg.gpr 1 in
  check_lat "simple integer 1" (mk (Op.Alu Op.Add) [ g ] [ Op.Reg g; Op.Imm 1 ]) 1;
  check_lat "integer multiply 3" (mk (Op.Alu Op.Mul) [ g ] [ Op.Reg g; Op.Imm 1 ]) 3;
  check_lat "divide 8" (mk (Op.Alu Op.Div) [ g ] [ Op.Reg g; Op.Imm 1 ]) 8;
  check_lat "simple fp 3" (mk (Op.Falu Op.Fadd) [ g ] [ Op.Reg g; Op.Imm 1 ]) 3;
  check_lat "fp multiply 3" (mk (Op.Falu Op.Fmul) [ g ] [ Op.Reg g; Op.Imm 1 ]) 3;
  check_lat "load 2" (mk Op.Load [ g ] [ Op.Reg g; Op.Imm 0 ]) 2;
  check_lat "store 1" (mk Op.Store [] [ Op.Reg g; Op.Imm 0; Op.Imm 1 ]) 1;
  check_lat "branch 1" (mk Op.Branch [] [ Op.Reg (Reg.btr 1) ]) 1;
  check_lat "compare 1"
    (mk (Op.Cmpp (Op.Eq, Op.Un, None)) [ Reg.pred 1 ] [ Op.Reg g; Op.Imm 0 ])
    1

let unit_classes () =
  let g = Reg.gpr 1 in
  checkb "alu on I" true
    (M.fu_of_op (mk (Op.Alu Op.Add) [ g ] [ Op.Reg g; Op.Imm 1 ]) = M.I);
  checkb "cmpp on I" true
    (M.fu_of_op (mk (Op.Cmpp (Op.Eq, Op.Un, None)) [ Reg.pred 1 ] [ Op.Reg g; Op.Imm 0 ]) = M.I);
  checkb "fp on F" true
    (M.fu_of_op (mk (Op.Falu Op.Fadd) [ g ] [ Op.Reg g; Op.Imm 1 ]) = M.F);
  checkb "load on M" true (M.fu_of_op (mk Op.Load [ g ] [ Op.Reg g; Op.Imm 0 ]) = M.M);
  checkb "pbr on B" true
    (M.fu_of_op (mk Op.Pbr [ Reg.btr 1 ] [ Op.Lab "X"; Op.Imm 0 ]) = M.B)

let machine_tuples () =
  (* (I, F, M, B) of Section 7 *)
  let slots m = List.map (M.slots m) [ M.I; M.F; M.M; M.B ] in
  check Alcotest.(list int) "narrow" [ 2; 1; 1; 1 ] (slots M.narrow);
  check Alcotest.(list int) "medium" [ 4; 2; 2; 1 ] (slots M.medium);
  check Alcotest.(list int) "wide" [ 8; 4; 4; 2 ] (slots M.wide);
  check Alcotest.(list int) "infinite" [ 75; 25; 25; 25 ] (slots M.infinite);
  checki "five machines in paper order" 5 (List.length M.all)

let reservation () =
  let g = Reg.gpr 1 in
  let alu = mk (Op.Alu Op.Add) [ g ] [ Op.Reg g; Op.Imm 1 ] in
  let ld = mk Op.Load [ g ] [ Op.Reg g; Op.Imm 0 ] in
  let r = R.create M.narrow in
  checkb "slot available" true (R.available r ~cycle:0 alu);
  R.reserve r ~cycle:0 alu;
  checkb "second I slot" true (R.available r ~cycle:0 alu);
  R.reserve r ~cycle:0 alu;
  checkb "I exhausted" false (R.available r ~cycle:0 alu);
  checkb "M still free" true (R.available r ~cycle:0 ld);
  checkb "next cycle fresh" true (R.available r ~cycle:1 alu);
  checki "three ops issued in cycle 0" 2 (R.used r ~cycle:0)

let sequential_is_one_total () =
  let g = Reg.gpr 1 in
  let alu = mk (Op.Alu Op.Add) [ g ] [ Op.Reg g; Op.Imm 1 ] in
  let ld = mk Op.Load [ g ] [ Op.Reg g; Op.Imm 0 ] in
  let r = R.create M.sequential in
  R.reserve r ~cycle:0 alu;
  checkb "any second op blocked" false (R.available r ~cycle:0 ld)

let tuned_heuristics () =
  let t m = (Cpr_core.Heur.tuned_for m).Cpr_core.Heur.exit_weight_threshold in
  checkb "narrow tighter than medium" true (t M.narrow < t M.medium);
  checkb "wide looser than medium" true (t M.wide > t M.medium);
  check (Alcotest.float 1e-9) "medium = default"
    Cpr_core.Heur.default.Cpr_core.Heur.exit_weight_threshold (t M.medium)

let suite =
  ( "machine model",
    [
      case "paper latencies" paper_latencies;
      case "unit classes" unit_classes;
      case "machine tuples" machine_tuples;
      case "reservation" reservation;
      case "sequential issues one op" sequential_is_one_total;
      case "per-machine heuristics" tuned_heuristics;
    ] )
