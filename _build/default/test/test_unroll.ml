open Cpr_ir
module P = Cpr_pipeline
module W = Cpr_workloads
open Helpers
module B = Builder

let rolled_stream () =
  let spec =
    {
      W.Kernels.default_stream with
      W.Kernels.unroll = 1;
      work = 1;
      store = true;
      counted = true;
    }
  in
  let prog = W.Kernels.stream_prog spec in
  let inputs =
    List.init 6 (fun i ->
        W.Kernels.stream_input ~spec ~len:50 ~exit_probability:0.04 ~seed:i)
  in
  (prog, inputs)

let unroll_preserves_semantics () =
  let prog, inputs = rolled_stream () in
  let u = Prog.copy prog in
  let loop = Prog.find_exn u "Loop" in
  checkb "unrollable" true (Cpr_core.Unroll.unrollable u loop);
  checkb "unrolls" true (Cpr_core.Unroll.unroll_region u loop ~factor:4);
  Validate.check_exn u;
  expect_equiv prog u inputs

let unroll_grows_statically () =
  let prog, _ = rolled_stream () in
  let u = Prog.copy prog in
  let loop = Prog.find_exn u "Loop" in
  let before = Region.static_op_count loop in
  assert (Cpr_core.Unroll.unroll_region u loop ~factor:4);
  (* 4x the body, minus the folded per-copy induction updates (three
     cursors, three updates each removed, one re-materialized apiece) *)
  let after = Region.static_op_count loop in
  checkb
    (Printf.sprintf "grows to roughly 4x (%d -> %d)" before after)
    true
    (after > 3 * before && after <= 4 * before)

let unroll_exposes_parallelism () =
  let prog, inputs = rolled_stream () in
  let u = Prog.copy prog in
  assert (Cpr_core.Unroll.unroll_region u (Prog.find_exn u "Loop") ~factor:4);
  P.Passes.profile prog inputs;
  P.Passes.profile u inputs;
  let m = Cpr_machine.Descr.wide in
  checkb "wide cycles drop" true (P.Perf.estimate m u < P.Perf.estimate m prog)

let unroll_then_icbm () =
  (* A counted loop whose unrolled copies test the shared counter is
     correctly recognized as inseparable (the compensation code would
     read post-update counter values): ICBM demotes the block and the
     code must survive unchanged and equivalent.  Data-dependent exits
     (the strcpy shape, below) do compose. *)
  let prog, inputs = rolled_stream () in
  let u = Prog.copy prog in
  assert (Cpr_core.Unroll.unroll_region u (Prog.find_exn u "Loop") ~factor:4);
  let red = P.Passes.height_reduce u inputs in
  expect_equiv prog red.P.Passes.prog inputs;
  P.Passes.profile u inputs;
  let m = Cpr_machine.Descr.wide in
  checkb "no regression from demoted blocks" true
    (P.Perf.estimate m red.P.Passes.prog <= P.Perf.estimate m u)

let temporaries_renamed_carried_kept () =
  let prog, _ = rolled_stream () in
  let u = Prog.copy prog in
  let loop = Prog.find_exn u "Loop" in
  let defs_before =
    List.concat_map (fun (op : Op.t) -> Op.defs op) loop.Region.ops
  in
  assert (Cpr_core.Unroll.unroll_region u loop ~factor:2);
  let defs_after =
    List.concat_map (fun (op : Op.t) -> Op.defs op) loop.Region.ops
  in
  (* loop-carried cursors keep their names and appear once per copy *)
  let liveness = Cpr_analysis.Liveness.analyze prog in
  let carried = Cpr_analysis.Liveness.live_in liveness "Loop" in
  Reg.Set.iter
    (fun r ->
      if List.exists (Reg.equal r) defs_before then begin
        (* kept under its own name: once per copy, or once overall when
           the induction folding merged the updates *)
        let n = List.length (List.filter (Reg.equal r) defs_after) in
        checkb
          (Reg.to_string r ^ " kept under its own name")
          true
          (n = 1 || n = 2)
      end)
    carried;
  (* temporaries are freshly renamed in every copy: the original names
     disappear entirely *)
  List.iter
    (fun d ->
      if not (Reg.Set.mem d carried) then
        checki
          (Reg.to_string d ^ " renamed away")
          0
          (List.length (List.filter (Reg.equal d) defs_after)))
    defs_before

let intermediate_loopbacks_inverted () =
  let prog, _ = rolled_stream () in
  let u = Prog.copy prog in
  let loop = Prog.find_exn u "Loop" in
  assert (Cpr_core.Unroll.unroll_region u loop ~factor:3);
  let branches = Region.branches loop in
  (* rolled loop: 1 side exit + 1 loop-back; unrolled x3: per copy the
     side exit, plus intermediate exits and the final loop-back *)
  let targets = List.filter_map (Region.branch_target loop) branches in
  checki "two intermediate exits to the fallthrough" 2
    (List.length (List.filter (fun t -> t = "Exit") targets)
    - 3 (* the three per-copy side exits also target Exit *));
  checki "one loop-back" 1
    (List.length (List.filter (fun t -> t = "Loop") targets))

let not_unrollable_cases () =
  (* no loop-back at all *)
  let ctx = B.create () in
  let r = B.gpr ctx in
  let straight =
    B.region ctx "Main" ~fallthrough:"Exit" (fun e ->
        let (_ : Op.t) = B.movi e r 1 in
        ())
  in
  let p1 = B.prog ctx ~entry:"Main" [ straight ] in
  checkb "straight-line not unrollable" false
    (Cpr_core.Unroll.unrollable p1 straight);
  checkb "unroll_region refuses" false
    (Cpr_core.Unroll.unroll_region p1 straight ~factor:4);
  (* factor 1 is a no-op refusal *)
  let prog, _ = rolled_stream () in
  let u = Prog.copy prog in
  checkb "factor < 2 refused" false
    (Cpr_core.Unroll.unroll_region u (Prog.find_exn u "Loop") ~factor:1)

let prop_unroll_safe =
  QCheck2.Test.make ~name:"unrolling random loops preserves semantics"
    ~count:40
    QCheck2.Gen.(pair (int_range 0 400) (int_range 2 5))
    (fun (seed, factor) ->
      let prog = W.Gen.prog_of_seed seed in
      let inputs = W.Gen.inputs_of_seed seed in
      let u = Prog.copy prog in
      let region = Prog.find_exn u "Main" in
      if not (Cpr_core.Unroll.unrollable u region) then true
      else begin
        ignore (Cpr_core.Unroll.unroll_region u region ~factor : bool);
        Validate.check u = []
        && Cpr_sim.Equiv.check_many prog u inputs = Ok ()
      end)

let suite =
  ( "loop unrolling",
    [
      case "preserves semantics" unroll_preserves_semantics;
      case "static growth" unroll_grows_statically;
      case "exposes parallelism" unroll_exposes_parallelism;
      case "composes with ICBM" unroll_then_icbm;
      case "renaming policy" temporaries_renamed_carried_kept;
      case "intermediate loop-backs inverted" intermediate_loopbacks_inverted;
      case "refusal cases" not_unrollable_cases;
      QCheck_alcotest.to_alcotest prop_unroll_safe;
    ] )
