open Cpr_ir
open Helpers

let classes () =
  checkb "gpr not pred" false (Reg.is_pred (Reg.gpr 1));
  checkb "pred is pred" true (Reg.is_pred (Reg.pred 1));
  checkb "btr not pred" false (Reg.is_pred (Reg.btr 1))

let equality () =
  checkb "same" true (Reg.equal (Reg.gpr 3) (Reg.gpr 3));
  checkb "id differs" false (Reg.equal (Reg.gpr 3) (Reg.gpr 4));
  checkb "class differs" false (Reg.equal (Reg.gpr 3) (Reg.pred 3));
  checki "compare reflexive" 0 (Reg.compare (Reg.btr 2) (Reg.btr 2))

let ordering () =
  (* class-major ordering keeps sets deterministic *)
  let sorted =
    List.sort Reg.compare [ Reg.btr 0; Reg.pred 5; Reg.gpr 9; Reg.gpr 1 ]
  in
  check
    Alcotest.(list string)
    "sorted order"
    [ "r1"; "r9"; "p5"; "b0" ]
    (List.map Reg.to_string sorted)

let names () =
  check Alcotest.string "gpr" "r12" (Reg.to_string (Reg.gpr 12));
  check Alcotest.string "pred" "p5" (Reg.to_string (Reg.pred 5));
  check Alcotest.string "btr" "b3" (Reg.to_string (Reg.btr 3))

let set_and_map () =
  let s = Reg.Set.of_list [ Reg.gpr 1; Reg.gpr 1; Reg.pred 1 ] in
  checki "set dedups" 2 (Reg.Set.cardinal s);
  checkb "mem" true (Reg.Set.mem (Reg.pred 1) s);
  let m = Reg.Map.add (Reg.gpr 7) 42 Reg.Map.empty in
  checki "map find" 42 (Reg.Map.find (Reg.gpr 7) m)

let hash_consistent () =
  checkb "equal implies same hash" true
    (Reg.hash (Reg.gpr 4) = Reg.hash (Reg.gpr 4));
  checkb "classes hash apart" true
    (Reg.hash (Reg.gpr 4) <> Reg.hash (Reg.pred 4))

let tbl () =
  let t = Reg.Tbl.create 7 in
  Reg.Tbl.replace t (Reg.gpr 1) "a";
  Reg.Tbl.replace t (Reg.gpr 1) "b";
  check Alcotest.(option string) "replace" (Some "b") (Reg.Tbl.find_opt t (Reg.gpr 1))

let suite =
  ( "reg",
    [
      case "classes" classes;
      case "equality" equality;
      case "ordering" ordering;
      case "names" names;
      case "set and map" set_and_map;
      case "hash" hash_consistent;
      case "tbl" tbl;
    ] )
