open Cpr_ir
open Helpers

(* Examine the paper-blocked strcpy after restructure + off-trace motion
   (Figures 7(b)/(c)). *)

let lookaheads_and_bypass () =
  let prog, _, _ = paper_transformed_strcpy () in
  let loop = loop_of prog in
  let lookaheads =
    List.filter
      (fun (op : Op.t) ->
        match op.Op.opcode with
        | Op.Cmpp (_, Op.Ac, Some Op.On) -> true
        | _ -> false)
      loop.Region.ops
  in
  checki "one lookahead per original compare" 4 (List.length lookaheads);
  (* the final lookahead of the taken-variation block has inverted sense:
     the original loop-back compares Ne, its lookahead Eq *)
  let conds =
    List.map
      (fun (op : Op.t) ->
        match op.Op.opcode with
        | Op.Cmpp (c, _, _) -> c
        | _ -> assert false)
      lookaheads
  in
  check
    Alcotest.(list bool)
    "senses: eq, eq, eq, inverted ne = eq... final differs from original"
    [ true; true; true; true ]
    (List.mapi (fun i c -> if i < 3 then c = Op.Eq else c = Op.Eq) conds);
  (* fall-through block gets an explicit bypass targeting Cmp1 *)
  let branches = Region.branches loop in
  checki "two on-trace branches: bypass + loop-back" 2 (List.length branches);
  check
    Alcotest.(list (option string))
    "targets" [ Some "Cmp1"; Some "Loop" ]
    (List.map (Region.branch_target loop) branches)

let pred_init_at_top () =
  let prog, _, _ = paper_transformed_strcpy () in
  let loop = loop_of prog in
  match loop.Region.ops with
  | (op : Op.t) :: _ -> (
    match op.Op.opcode with
    | Op.Pred_init bits ->
      (* paper op 31: p_on1 = 1, p_off1 = 0, p_off2 = 0 *)
      check Alcotest.(list bool) "init bits" [ true; false; false ] bits
    | _ -> Alcotest.fail "first op should be the Pred_init")
  | [] -> Alcotest.fail "empty loop"

let taken_variation_rewires_final_branch () =
  let prog, _, _ = paper_transformed_strcpy () in
  let loop = loop_of prog in
  let final = List.nth (Region.branches loop) 1 in
  (* guarded by the second block's on-trace FRP, which is defined by the
     init idiom + two AC lookaheads *)
  match final.Op.guard with
  | Op.If p_on ->
    let writers =
      List.filter
        (fun (op : Op.t) -> List.exists (Reg.equal p_on) op.Op.dests)
        loop.Region.ops
    in
    checki "init + 2 accumulating lookaheads" 3 (List.length writers);
    checkb "first writer is the cmpp.un eq(0,0) idiom" true
      (match (List.hd writers).Op.opcode with
      | Op.Cmpp (Op.Eq, Op.Un, None) ->
        (List.hd writers).Op.srcs = [ Op.Imm 0; Op.Imm 0 ]
      | _ -> false)
  | Op.True -> Alcotest.fail "final branch must be guarded by on-trace FRP"

let compensation_regions () =
  let prog, _, _ = paper_transformed_strcpy () in
  let cmp1 = Prog.find_exn prog "Cmp1" in
  let cmp2 = Prog.find_exn prog "Cmp2" in
  (* Figure 7(c): Cmp1 holds the first two original compare/branch pairs,
     their pbrs and the split store; 7 ops *)
  checki "Cmp1 op count (paper: 7)" 7 (Region.static_op_count cmp1);
  checki "Cmp1 branches" 2 (List.length (Region.branches cmp1));
  check Alcotest.(option string) "Cmp1 falls into the unreachable sentinel"
    (Some Cpr_core.Restructure.unreachable_label) cmp1.Region.fallthrough;
  checkb "unreachable label registered as exit" true
    (Prog.is_exit prog Cpr_core.Restructure.unreachable_label);
  (* Cmp2 is the taken-variation tail: original exit branch + compare +
     split store, falling through to the original continuation; 4 ops
     after DCE (paper: 5 - 1 removed) *)
  checki "Cmp2 op count (paper: 4 after DCE)" 4 (Region.static_op_count cmp2);
  check Alcotest.(option string) "Cmp2 inherits the loop fallthrough"
    (Some "Exit") cmp2.Region.fallthrough;
  check Alcotest.(option string) "loop now falls through to Cmp2"
    (Some "Cmp2") (loop_of prog).Region.fallthrough

let split_stores_on_trace () =
  let prog, _, _ = paper_transformed_strcpy () in
  let loop = loop_of prog in
  let stores = List.filter Op.is_store loop.Region.ops in
  (* 4 per iteration: slot-0 store (never moved) + 3 split copies *)
  checki "four on-trace stores" 4 (List.length stores);
  let split = List.filter (fun (op : Op.t) -> op.Op.orig <> None) stores in
  (* Figure 7(c): stores 9 and 23 split; store 16 merely re-wires *)
  checki "two split copies" 2 (List.length split);
  List.iter
    (fun (op : Op.t) ->
      checkb "split copies guarded by an on-trace FRP" true
        (op.Op.guard <> Op.True))
    split

let rewiring_eliminates_old_frps () =
  let prog, _, _ = paper_transformed_strcpy () in
  let loop = loop_of prog in
  (* predicates defined only in compensation regions must not be read
     on-trace *)
  let defined_on_trace =
    List.concat_map (fun (op : Op.t) -> Op.defs op) loop.Region.ops
    |> Reg.Set.of_list
  in
  List.iter
    (fun (op : Op.t) ->
      List.iter
        (fun u ->
          if Reg.is_pred u then
            checkb
              (Printf.sprintf "op %d reads on-trace pred %s" op.Op.id
                 (Reg.to_string u))
              true
              (Reg.Set.mem u defined_on_trace))
        (Op.uses op))
    loop.Region.ops

let equivalence_and_counts () =
  let prog, inputs, baseline = paper_transformed_strcpy () in
  expect_equiv baseline prog inputs;
  checki "on-trace ops (paper: 28)" 28
    (Region.static_op_count (loop_of prog));
  checki "compensation ops (paper: 11)" 11
    (Region.static_op_count (Prog.find_exn prog "Cmp1")
    + Region.static_op_count (Prog.find_exn prog "Cmp2"))

let suite =
  ( "restructure & off-trace motion",
    [
      case "lookaheads and bypass" lookaheads_and_bypass;
      case "pred_init at region top" pred_init_at_top;
      case "taken variation final branch" taken_variation_rewires_final_branch;
      case "compensation regions" compensation_regions;
      case "split stores" split_stores_on_trace;
      case "re-wiring removes old FRPs" rewiring_eliminates_old_frps;
      case "Section 6 counts (30 -> 28 + 11)" equivalence_and_counts;
    ] )
