(* Unix text utilities end-to-end: grep, cmp, wc.

   These are the paper's "branch intensive programs with highly biased
   branches and separable computation of branch conditions" — the
   workloads where control CPR wins the most (Table 2 rows cmp, grep,
   wc).  For each, the full pipeline runs on the training inputs and the
   speedups and dynamic branch reductions are printed.

   Run with: dune exec examples/text_utils.exe *)

module W = Cpr_workloads
module P = Cpr_pipeline

let () =
  Format.printf
    "%-8s %7s %7s %7s %7s %7s %9s %9s@." "bench" "Seq" "Nar" "Med" "Wid"
    "Inf" "dyn ops" "dyn brs";
  List.iter
    (fun name ->
      let w = Option.get (W.Registry.find name) in
      let r =
        P.Report.run ~name (w.W.Workload.build ()) (w.W.Workload.inputs ())
      in
      (match r.P.Report.equivalent with
      | Ok () -> ()
      | Error e -> Format.printf "!! %s not equivalent: %s@." name e);
      Format.printf "%-8s" name;
      List.iter (fun (_, s) -> Format.printf " %7.2f" s) r.P.Report.speedups;
      Format.printf " %9.2f %9.2f@." r.P.Report.d_tot r.P.Report.d_br)
    [ "grep"; "cmp"; "wc" ];
  Format.printf
    "@.The bypass branch replaces %s of the executed branches on these \
     scans;@.the paper reports the same shape (Table 3, D br 0.13-0.40 for \
     cmp/grep/wc).@."
    "80-90%"
