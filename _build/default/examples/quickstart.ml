(* Quickstart: the paper's Section 6 walk-through.

   Builds the unrolled strcpy inner loop of Figure 6(b), applies each
   ICBM phase separately — FRP conversion (Fig. 6(c)), predicate
   speculation (Fig. 7(a)), restructure + off-trace motion with the
   paper's exact two-block partition (Figs. 7(b)/(c)) — and reports the
   op counts and dependence heights the paper quotes: 30 loop ops becoming
   28 on-trace + 11 compensation ops, height 8 -> 7.

   Run with: dune exec examples/quickstart.exe *)

open Cpr_ir
module W = Cpr_workloads
module P = Cpr_pipeline

let banner fmt = Format.printf ("@.==== " ^^ fmt ^^ " ====@.")

(* The controlling compare of each branch: the unique op defining its
   guard predicate. *)
let branch_compare_pairs (region : Region.t) =
  List.filter_map
    (fun (br : Op.t) ->
      match br.Op.guard with
      | Op.True -> None
      | Op.If p ->
        List.find_opt
          (fun (op : Op.t) -> List.exists (Reg.equal p) (Op.defs op))
          region.Region.ops
        |> Option.map (fun (cmp : Op.t) -> (cmp.Op.id, br.Op.id)))
    (Region.branches region)

let () =
  let prog = W.Strcpy.paper_example () in
  let inputs = W.Strcpy.inputs () in
  banner "Figure 6(b): unrolled strcpy superblock";
  let loop = Prog.find_exn prog "Loop" in
  Format.printf "%s@." (Printer.region_to_text loop);
  Format.printf "loop ops: %d@." (Region.static_op_count loop);

  P.Passes.profile prog inputs;
  let baseline = Prog.copy prog in

  banner "Figure 6(c): after FRP conversion";
  let converted = Cpr_core.Frp.convert_region prog loop in
  assert converted;
  Format.printf "%s@." (Printer.region_to_text loop);

  banner "Figure 7(a): after predicate speculation";
  let stats = Cpr_core.Spec.speculate_region prog loop in
  Format.printf "promoted %d ops, demoted %d@." stats.Cpr_core.Spec.promoted
    stats.Cpr_core.Spec.demoted;
  Format.printf "%s@." (Printer.region_to_text loop);

  banner "Figures 7(b)/(c): restructure + off-trace motion, paper blocking";
  (* The paper groups the first two exit branches into a fall-through CPR
     block and the last exit + loop-back into a likely-taken block. *)
  let pairs = branch_compare_pairs loop in
  let cmp = List.map fst pairs and brs = List.map snd pairs in
  let nth = List.nth in
  let guard_of id =
    match Region.find_op loop id with
    | Some op -> op.Op.guard
    | None -> Op.True
  in
  let blocks =
    [
      {
        Cpr_core.Restructure.compare_ids = [ nth cmp 0; nth cmp 1 ];
        branch_ids = [ nth brs 0; nth brs 1 ];
        root_guard = guard_of (nth cmp 0);
        taken_variation = false;
      };
      {
        Cpr_core.Restructure.compare_ids = [ nth cmp 2; nth cmp 3 ];
        branch_ids = [ nth brs 2; nth brs 3 ];
        root_guard = guard_of (nth cmp 2);
        taken_variation = true;
      };
    ]
  in
  let s = Cpr_core.Icbm.transform_region_with_blocks prog loop blocks in
  Format.printf "%a@." Cpr_core.Icbm.pp_stats s;
  let removed = Cpr_core.Dce.run prog in
  Format.printf "dce removed %d ops@." removed;
  Validate.check_exn prog;
  Format.printf "%s@." (Printer.region_to_text (Prog.find_exn prog "Loop"));
  List.iter
    (fun (r : Region.t) ->
      if String.length r.Region.label >= 3 && String.sub r.Region.label 0 3 = "Cmp"
      then Format.printf "%s@." (Printer.region_to_text r))
    (Prog.regions prog);

  banner "Section 6 summary";
  let on_trace = Region.static_op_count (Prog.find_exn prog "Loop") in
  let comp =
    List.fold_left
      (fun acc (r : Region.t) ->
        if
          String.length r.Region.label >= 3
          && String.sub r.Region.label 0 3 = "Cmp"
        then acc + Region.static_op_count r
        else acc)
      0 (Prog.regions prog)
  in
  Format.printf
    "paper: 30 loop ops -> 28 on-trace + 11 compensation; measured: %d -> %d \
     on-trace + %d compensation@."
    (Region.static_op_count (Prog.find_exn baseline "Loop"))
    on_trace comp;
  (match Cpr_sim.Equiv.check_many baseline prog inputs with
  | Ok () -> Format.printf "transformed code is equivalent to the original@."
  | Error e -> Format.printf "EQUIVALENCE FAILURE: %s@." e);
  P.Passes.profile prog inputs;
  List.iter
    (fun (m : Cpr_machine.Descr.t) ->
      let lb = Cpr_sched.List_sched.schedule_prog m baseline in
      let lr = Cpr_sched.List_sched.schedule_prog m prog in
      Format.printf "%s: loop schedule length %d -> %d@."
        m.Cpr_machine.Descr.name
        (List.assoc "Loop" lb).Cpr_sched.Schedule.length
        (List.assoc "Loop" lr).Cpr_sched.Schedule.length)
    Cpr_machine.Descr.all
