(* A lex/yacc-style dispatch kernel under the microscope.

   Shows the before/after schedules on the medium machine: the baseline
   serializes nine rarely-taken case branches; after ICBM a single bypass
   branch guards them all and the dependence height collapses.

   Run with: dune exec examples/interpreter_kernel.exe *)

module W = Cpr_workloads
module P = Cpr_pipeline


let () =
  let w = Option.get (W.Registry.find "lex") in
  let prog = w.W.Workload.build () in
  let inputs = w.W.Workload.inputs () in
  let base = P.Passes.baseline prog inputs in
  let red = P.Passes.height_reduce prog inputs in
  (match Cpr_sim.Equiv.check_many base.P.Passes.prog red.P.Passes.prog inputs with
  | Ok () -> Format.printf "equivalent on all training inputs@."
  | Error e -> Format.printf "EQUIVALENCE FAILURE: %s@." e);
  let m = Cpr_machine.Descr.medium in
  let show tag p =
    let schedules = Cpr_sched.List_sched.schedule_prog m p in
    let s = List.assoc "Loop" schedules in
    Format.printf "@.--- %s (loop length %d) ---@.%a@." tag
      s.Cpr_sched.Schedule.length Cpr_sched.Schedule.pp s
  in
  show "baseline" base.P.Passes.prog;
  show "height-reduced" red.P.Passes.prog;
  List.iter
    (fun (mach : Cpr_machine.Descr.t) ->
      let b = P.Perf.estimate mach base.P.Passes.prog in
      let t = P.Perf.estimate mach red.P.Passes.prog in
      Format.printf "%s: %d -> %d cycles (speedup %.2f)@."
        mach.Cpr_machine.Descr.name b t
        (P.Perf.speedup ~baseline:b ~transformed:t))
    Cpr_machine.Descr.all
