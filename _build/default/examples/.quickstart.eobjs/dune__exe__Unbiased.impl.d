examples/unbiased.ml: Cpr_analysis Cpr_core Cpr_ir Cpr_pipeline Cpr_workloads Format List Option Prog
