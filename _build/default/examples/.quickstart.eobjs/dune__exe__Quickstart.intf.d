examples/quickstart.mli:
