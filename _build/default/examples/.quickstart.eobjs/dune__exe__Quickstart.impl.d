examples/quickstart.ml: Cpr_core Cpr_ir Cpr_machine Cpr_pipeline Cpr_sched Cpr_sim Cpr_workloads Format List Op Option Printer Prog Reg Region String Validate
