examples/interpreter_kernel.ml: Cpr_machine Cpr_pipeline Cpr_sched Cpr_sim Cpr_workloads Format List Option
