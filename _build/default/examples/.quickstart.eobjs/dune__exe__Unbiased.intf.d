examples/unbiased.mli:
