examples/text_utils.mli:
