examples/interpreter_kernel.mli:
