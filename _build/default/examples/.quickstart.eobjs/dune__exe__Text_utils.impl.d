examples/text_utils.ml: Cpr_pipeline Cpr_workloads Format List Option
