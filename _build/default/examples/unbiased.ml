(* Where control CPR does NOT help: unbiased branches, and how the
   exit-weight heuristic partitions superblocks into CPR blocks
   (Figure 3 of the paper).

   Run with: dune exec examples/unbiased.exe *)

open Cpr_ir
module W = Cpr_workloads
module P = Cpr_pipeline

let () =
  (* 099.go stands in for branch-unbiased code: each loop iteration takes
     one of the special cases ~55% of the time, so the cumulative exit
     weight of any two consecutive branches exceeds the threshold and no
     non-trivial CPR block forms — the code is left untouched (the paper
     measures 0.96-1.02 for go). *)
  let w = Option.get (W.Registry.find "099.go") in
  let r = P.Report.run ~name:"099.go" (w.W.Workload.build ()) (w.W.Workload.inputs ()) in
  Format.printf "099.go: blocks transformed = %d; speedups:"
    r.P.Report.icbm.Cpr_core.Icbm.blocks_transformed;
  List.iter (fun (m, s) -> Format.printf " %s=%.2f" m s) r.P.Report.speedups;
  Format.printf "@.@.";

  (* Figure 3: a superblock whose branch biases vary along its length is
     partitioned into multiple CPR blocks.  We profile a 6-exit stream
     where exits fire with increasing frequency and show the partition
     match produces under different exit-weight thresholds. *)
  let spec =
    {
      W.Kernels.default_stream with
      W.Kernels.unroll = 6;
      work = 1;
      store = false;
      accumulate = true;
      counted = true;
    }
  in
  let prog = W.Kernels.stream_prog spec in
  let inputs =
    List.init 12 (fun i ->
        W.Kernels.stream_input ~spec ~len:120 ~exit_probability:0.08
          ~seed:(i * 131))
  in
  P.Passes.profile prog inputs;
  let region = Prog.find_exn prog "Loop" in
  let (_ : bool) = Cpr_core.Frp.convert_region prog region in
  let (_ : Cpr_core.Spec.stats) = Cpr_core.Spec.speculate_region prog region in
  let liveness = Cpr_analysis.Liveness.analyze prog in
  List.iter
    (fun threshold ->
      let heur =
        { Cpr_core.Heur.default with Cpr_core.Heur.exit_weight_threshold = threshold }
      in
      let blocks = Cpr_core.Match_blocks.run heur prog liveness region in
      Format.printf "exit-weight threshold %.2f -> %d CPR blocks: " threshold
        (List.length blocks);
      List.iter (fun b -> Format.printf "%a " Cpr_core.Match_blocks.pp b) blocks;
      Format.printf "@.")
    [ 0.05; 0.15; 0.30; 0.60; 0.95 ]
