type t = {
  machine : Descr.t;
  per_class : (int * Descr.fu, int) Hashtbl.t;  (* (cycle, fu) -> used *)
  per_cycle : (int, int) Hashtbl.t;  (* cycle -> total used *)
}

let create machine =
  { machine; per_class = Hashtbl.create 97; per_cycle = Hashtbl.create 97 }

let class_used t cycle fu =
  Option.value ~default:0 (Hashtbl.find_opt t.per_class (cycle, fu))

let used t ~cycle = Option.value ~default:0 (Hashtbl.find_opt t.per_cycle cycle)

let available t ~cycle op =
  let fu = Descr.fu_of_op op in
  match t.machine.Descr.issue with
  | Descr.Sequential -> used t ~cycle = 0
  | Descr.Regular _ -> class_used t cycle fu < Descr.slots t.machine fu

let reserve t ~cycle op =
  let fu = Descr.fu_of_op op in
  Hashtbl.replace t.per_class (cycle, fu) (class_used t cycle fu + 1);
  Hashtbl.replace t.per_cycle cycle (used t ~cycle + 1)
