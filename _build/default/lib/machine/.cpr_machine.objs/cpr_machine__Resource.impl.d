lib/machine/resource.ml: Descr Hashtbl Option
