lib/machine/descr.mli: Cpr_ir Op
