lib/machine/resource.mli: Cpr_ir Descr Op
