lib/machine/descr.ml: Cpr_ir Op
