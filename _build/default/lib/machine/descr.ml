open Cpr_ir

type fu =
  | I
  | F
  | M
  | B

type issue =
  | Regular of {
      i : int;
      f : int;
      m : int;
      b : int;
    }
  | Sequential

type t = {
  name : string;
  issue : issue;
  latency : Op.opcode -> int;
}

let fu_of_op (op : Op.t) =
  match op.Op.opcode with
  | Op.Alu _ | Op.Cmpp _ | Op.Pred_init _ -> I
  | Op.Falu _ -> F
  | Op.Load | Op.Store -> M
  | Op.Pbr | Op.Branch -> B

let paper_latency = function
  | Op.Alu (Op.Mul) -> 3
  | Op.Alu (Op.Div) -> 8
  | Op.Alu _ -> 1
  | Op.Falu (Op.Fmul) -> 3
  | Op.Falu (Op.Fdiv) -> 8
  | Op.Falu _ -> 3
  | Op.Load -> 2
  | Op.Store -> 1
  | Op.Cmpp _ -> 1
  | Op.Pbr -> 1
  | Op.Branch -> 1
  | Op.Pred_init _ -> 1

let latency_of t (op : Op.t) = t.latency op.Op.opcode

let regular name i f m b =
  { name; issue = Regular { i; f; m; b }; latency = paper_latency }

let sequential = { name = "Seq"; issue = Sequential; latency = paper_latency }
let narrow = regular "Nar" 2 1 1 1
let medium = regular "Med" 4 2 2 1
let wide = regular "Wid" 8 4 4 2
let infinite = regular "Inf" 75 25 25 25
let all = [ sequential; narrow; medium; wide; infinite ]

let slots t fu =
  match t.issue with
  | Sequential -> 1
  | Regular r -> ( match fu with I -> r.i | F -> r.f | M -> r.m | B -> r.b)
