open Cpr_ir

(** Per-cycle resource reservation for list scheduling. *)

type t

val create : Descr.t -> t

val available : t -> cycle:int -> Op.t -> bool
(** Is there a free issue slot for this operation's unit class (and, on the
    sequential machine, a free global slot) in [cycle]? *)

val reserve : t -> cycle:int -> Op.t -> unit
(** Consume a slot; call only after {!available} returned true. *)

val used : t -> cycle:int -> int
(** Total operations issued in [cycle] so far. *)
