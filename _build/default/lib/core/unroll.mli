open Cpr_ir

(** Superblock loop unrolling.

    The paper's input superblocks come from IMPACT after loop unrolling
    ("to expose instruction-level parallelism, the loop body is unrolled
    four times", Section 6).  This pass unrolls a self-looping region
    [factor] times:

    - the body is replicated; intermediate copies of the loop-back branch
      are inverted (the controlling compare's condition is negated) and
      retargeted at the region's fallthrough, so each copy exits the loop
      exactly where the rolled loop would have;
    - per-iteration temporaries — registers dead at the loop header and at
      every exit target — are renamed to fresh registers per copy, which
      is what exposes the parallelism; loop-carried and exit-live
      registers keep their names (no compensation copies needed).  *)

val unrollable : Prog.t -> Region.t -> bool
(** The region's last operation is a conditional branch back to the
    region itself whose guard is computed by a unique in-region UN
    compare, and the region has a fallthrough label. *)

val unroll_region : Prog.t -> Region.t -> factor:int -> bool
(** Rewrites the region in place; false (untouched) when not
    {!unrollable} or [factor < 2]. *)
