open Cpr_ir

(** Predicate speculation (Section 5.1): promotion then selective
    demotion.

    Promotion rewrites an operation's guard to [True] when executing it
    under a false guard cannot clobber a live value: the symbolic liveness
    expression of each destination must imply the current guard.  Stores,
    branches and compare-to-predicate operations are never promoted.

    Demotion restores the original guard of a promoted operation that
    directly flow-depends on a non-promoted operation whose guard is
    implied by its own original guard — such a promotion cannot reduce
    dependence height and only costs nullified issue slots. *)

type stats = {
  promoted : int;
  demoted : int;
}

val speculate_region : Prog.t -> Region.t -> stats
val speculate : Prog.t -> stats
