open Cpr_ir

(** Profile-guided superblock formation (the role the IMPACT compiler
    plays upstream of the paper: its input is "optimized superblock code
    produced by the IMPACT compiler").

    Traces are grown along fall-through edges: a region is merged with its
    fall-through successor when the profile shows at least
    [merge_threshold] of the successor's entries arriving over that edge;
    a successor with other predecessors is {e tail-duplicated} (the merged
    trace gets a fresh copy, other predecessors keep the original), which
    is what makes the result a single-entry superblock.  Merging stops at
    exits, at the region itself (loop back-edges), and at already-absorbed
    regions.

    Run before the CPR pipeline — on both the baseline and the
    height-reduced code, as in the paper — to turn branchy region graphs
    into the long single-entry traces ICBM wants. *)

val merge_threshold : float
(** 0.6: the fall-through edge must carry at least this share of the
    successor's entries. *)

val form : ?threshold:float -> Prog.t -> int
(** Grow superblocks over the whole program using its recorded profile;
    returns the number of regions absorbed.  Regions with no profile are
    left alone.  The profile is re-recorded by the caller afterwards
    (absorbed copies have fresh op ids). *)

val prune_unreachable : Prog.t -> int
(** Drop regions unreachable from the entry after formation; returns how
    many were removed. *)
