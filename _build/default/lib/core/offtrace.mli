open Cpr_ir

(** Off-trace motion (Section 5.4): move the block's original compares
    and branches — and everything data-dependent on them — into the
    compensation region; split the subset whose effect the on-trace path
    also needs (most commonly stores), placing the on-trace copies right
    after the bypass branch guarded by the on-trace FRP; and additionally
    move operations whose results are used only off-trace (set 3, e.g.
    the prepare-to-branch ops feeding moved branches). *)

type stats = {
  moved : int;
  split : int;
}

val apply : Prog.t -> Region.t -> Restructure.plan -> stats
(** Fill the plan's compensation region and rewrite the on-trace region
    in place.  For the taken variation, every op past the final branch
    (the hyperblock tail) also moves to the compensation region. *)
