open Cpr_ir

(** The ICBM driver (Section 5): predicate speculation -> match ->
    restructure -> off-trace motion, followed by dead-code elimination;
    the control CPR transformation proper.

    The driver adds a conservative pre-check absent from the paper's
    prose: a CPR block is demoted to trivial (left untransformed) when the
    prospective off-trace motion would move an operation past an on-trace
    operation that depends on it (for example a moved load past an
    aliasing on-trace store), or would need to split an operation whose
    guard cannot be substituted by the on-trace FRP.  The paper's
    separability test covers the common cases; the pre-check keeps the
    transformation sound on arbitrary inputs (it never fires on
    FRP-converted superblocks with separable conditions). *)

type region_stats = {
  blocks_formed : int;
  blocks_transformed : int;
  blocks_demoted : int;  (** non-trivial blocks rejected by the pre-check *)
  ops_moved : int;
  ops_split : int;
}

val zero_stats : region_stats
val add_stats : region_stats -> region_stats -> region_stats

val to_block_refs :
  Op.t array -> Match_blocks.cpr_block list -> Restructure.block_ref list
(** Convert index-based match results into id-based block references
    (dropping trivial blocks). *)

val transform_region :
  Heur.t -> Prog.t -> Cpr_analysis.Liveness.t -> Region.t -> region_stats
(** Match + restructure + off-trace motion on one region (no speculation,
    no DCE). *)

val transform_region_with_blocks :
  Prog.t -> Region.t -> Restructure.block_ref list -> region_stats
(** Apply restructure + off-trace motion to explicitly given CPR blocks,
    bypassing match and the profile heuristics — used by tests to re-enact
    the paper's Section 6 example blocking exactly. *)

val run : ?heur:Heur.t -> Prog.t -> region_stats
(** The full ICBM phase sequence over every hot region of the program
    (in place): predicate speculation, match, restructure, off-trace
    motion, then global dead-code elimination.  Regions created by the
    transformation (compensation blocks) are not re-processed. *)

val pp_stats : Format.formatter -> region_stats -> unit
