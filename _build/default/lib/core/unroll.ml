open Cpr_ir
module Liveness = Cpr_analysis.Liveness


(* An induction candidate: updated only by unguarded [r = add (r, imm)]
   ops (at least twice) and dead at every branch target other than the
   region itself. *)
let candidates (region : Region.t) ft liveness =
  let ops = region.Region.ops in
  let is_update r (op : Op.t) =
    op.Op.guard = Op.True
    && (match (op.Op.opcode, op.Op.dests, op.Op.srcs) with
       | Op.Alu Op.Add, [ d ], [ Op.Reg s; Op.Imm _ ] ->
         Reg.equal d r && Reg.equal s r
       | _ -> false)
  in
  let defs_of r =
    List.filter (fun (op : Op.t) -> List.exists (Reg.equal r) (Op.defs op)) ops
  in
  let dead_at_exits r =
    List.for_all
      (fun l ->
        l = region.Region.label
        || not (Reg.Set.mem r (Liveness.live_in liveness l)))
      (ft :: Region.successors region)
  in
  List.concat_map (fun (op : Op.t) -> Op.defs op) ops
  |> List.sort_uniq Reg.compare
  |> List.filter (fun r ->
         let defs = defs_of r in
         List.length defs >= 2
         && List.for_all (is_update r) defs
         && dead_at_exits r)

(* Rewrite the region so [r] is updated once; abort (restore the original
   op list) on any use of [r] that cannot absorb the accumulated delta
   into an immediate. *)
let fold_induction (prog : Prog.t) (region : Region.t) _ft r =
  let original = region.Region.ops in
  let delta = ref 0 in
  let ok = ref true in
  let rewrite (op : Op.t) =
    let is_update =
      op.Op.guard = Op.True
      && (match (op.Op.opcode, op.Op.dests, op.Op.srcs) with
         | Op.Alu Op.Add, [ d ], [ Op.Reg s; Op.Imm _ ] ->
           Reg.equal d r && Reg.equal s r
         | _ -> false)
    in
    if is_update then begin
      (match op.Op.srcs with
      | [ _; Op.Imm k ] -> delta := !delta + k
      | _ -> ok := false);
      None
    end
    else begin
      let uses_r = List.exists (Reg.equal r) (Op.uses op) in
      if not uses_r then Some op
      else if !delta = 0 then Some op
      else
        match (op.Op.opcode, op.Op.srcs) with
        | (Op.Alu Op.Add | Op.Load), [ Op.Reg s; Op.Imm m ] when Reg.equal s r
          -> Some { op with Op.srcs = [ Op.Reg r; Op.Imm (m + !delta) ] }
        | Op.Store, [ Op.Reg s; Op.Imm m; v ]
          when Reg.equal s r && v <> Op.Reg r ->
          Some { op with Op.srcs = [ Op.Reg r; Op.Imm (m + !delta); v ] }
        | Op.Cmpp _, [ Op.Reg s; Op.Imm m ] when Reg.equal s r ->
          Some { op with Op.srcs = [ Op.Reg r; Op.Imm (m - !delta) ] }
        | _ ->
          ok := false;
          Some op
    end
  in
  let folded = List.filter_map rewrite region.Region.ops in
  if (not !ok) || !delta = 0 then region.Region.ops <- original
  else begin
    (* materialize the single update just before the final pbr+branch *)
    let update =
      Op.make ~id:(Prog.fresh_op_id prog) (Op.Alu Op.Add) [ r ]
        [ Op.Reg r; Op.Imm !delta ]
    in
    let rec insert_before_tail acc = function
      | ([ (p : Op.t); (b : Op.t) ] : Op.t list)
        when Op.is_pbr p && Op.is_branch b ->
        List.rev_append acc [ update; p; b ]
      | [ (b : Op.t) ] when Op.is_branch b -> List.rev_append acc [ update; b ]
      | x :: rest -> insert_before_tail (x :: acc) rest
      | [] -> List.rev_append acc [ update ]
    in
    region.Region.ops <- insert_before_tail [] folded
  end

let loop_back_parts (region : Region.t) =
  match List.rev region.Region.ops with
  | (br : Op.t) :: _ when Op.is_branch br -> (
    match (Region.branch_target region br, br.Op.guard) with
    | Some target, Op.If p when target = region.Region.label ->
      (* the unique UN compare computing the guard, and the pbr feeding
         the branch *)
      let defs =
        List.filter
          (fun (op : Op.t) -> List.exists (Reg.equal p) (Op.defs op))
          region.Region.ops
      in
      let pbr =
        List.find_opt
          (fun (op : Op.t) ->
            Op.is_pbr op
            && List.exists
                 (fun d ->
                   List.exists (fun s -> s = Op.Reg d) br.Op.srcs)
                 op.Op.dests)
          region.Region.ops
      in
      (match (defs, pbr) with
      | [ cmp ], Some pbr -> (
        match cmp.Op.opcode with
        | Op.Cmpp (_, Op.Un, None) -> Some (cmp, pbr, br)
        | _ -> None)
      | _ -> None)
    | _ -> None)
  | _ -> None

let unrollable prog (region : Region.t) =
  ignore prog;
  region.Region.fallthrough <> None && loop_back_parts region <> None

let unroll_region (prog : Prog.t) (region : Region.t) ~factor =
  match (region.Region.fallthrough, loop_back_parts region) with
  | Some ft, Some (loop_cmp, loop_pbr, _) when factor >= 2 ->
    (* registers whose values cross copy boundaries keep their names *)
    let liveness = Liveness.analyze prog in
    let protected_regs =
      List.fold_left
        (fun acc l -> Reg.Set.union acc (Liveness.live_in liveness l))
        (Liveness.live_in liveness region.Region.label)
        (Region.successors region)
    in
    let fresh_like (r : Reg.t) =
      match r.Reg.cls with
      | Reg.Gpr -> Prog.fresh_gpr prog
      | Reg.Pred -> Prog.fresh_pred prog
      | Reg.Btr -> Prog.fresh_btr prog
    in
    let copy_of ~last_copy =
      let rename = Reg.Tbl.create 17 in
      let map r =
        match Reg.Tbl.find_opt rename r with Some r' -> r' | None -> r
      in
      List.map
        (fun (op : Op.t) ->
          let srcs =
            List.map
              (function Op.Reg r -> Op.Reg (map r) | s -> s)
              op.Op.srcs
          in
          let guard =
            match op.Op.guard with
            | Op.True -> Op.True
            | Op.If p -> Op.If (map p)
          in
          let dests =
            List.map
              (fun d ->
                if Reg.Set.mem d protected_regs then d
                else begin
                  let d' = fresh_like d in
                  Reg.Tbl.replace rename d d';
                  d'
                end)
              op.Op.dests
          in
          let opcode =
            (* intermediate copies exit the loop where the rolled loop
               would: invert the loop-back condition and retarget it at
               the fallthrough *)
            if (not last_copy) && op.Op.id = loop_cmp.Op.id then
              match op.Op.opcode with
              | Op.Cmpp (c, a1, a2) -> Op.Cmpp (Op.negate_cond c, a1, a2)
              | o -> o
            else op.Op.opcode
          in
          let srcs =
            if (not last_copy) && op.Op.id = loop_pbr.Op.id then
              List.map
                (function Op.Lab _ -> Op.Lab ft | s -> s)
                srcs
            else srcs
          in
          Op.make ~id:(Prog.fresh_op_id prog) ~guard ~orig:op.Op.id opcode
            dests srcs)
        region.Region.ops
    in
    let copies =
      List.concat
        (List.init factor (fun c -> copy_of ~last_copy:(c = factor - 1)))
    in
    region.Region.ops <- copies;
    (* Fold per-copy induction-variable updates (cursors, counters) into a
       single update before the loop-back, rewriting intermediate uses'
       immediates; without this the replicated updates make every copy's
       exit condition anti-dependent on later updates, which defeats
       control CPR (its compensation code would read post-update values).
       Only registers dead at every non-header target are folded. *)
    List.iter (fun r -> fold_induction prog region ft r) (candidates region ft liveness);
    Region.clear_profile region;
    true
  | _ -> false
