open Cpr_ir

(** FRP conversion (Section 4.1, Figures 1 and 6(c)).

    Rewrites a superblock so that each basic block's operations are
    guarded by the block's fully-resolved predicate instead of being
    positioned below the branches that guard them: the compare controlling
    each exit branch gains a UC destination computing the fall-through
    predicate, is itself guarded by the previous block's FRP, and every
    following operation is re-guarded by the fall-through predicate.  The
    exit branches become mutually exclusive and may be freely reordered or
    overlapped by the scheduler. *)

val convert_region : Prog.t -> Region.t -> bool
(** Returns false (leaving the region untouched) when some conditional
    branch's guard is not computed by a unique in-region [cmpp] UN
    destination preceding it, the branch is unconditional, or the
    controlling compare is itself predicated (embedded if-conversion —
    folding such guards into the FRP chain is left as future work; the
    region is conservatively left alone). *)

val convert : Prog.t -> int
(** FRP-convert every region of the program (in place); returns the number
    of converted regions. *)
