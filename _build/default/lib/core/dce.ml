open Cpr_ir

let used_regs (prog : Prog.t) =
  let used = ref (Reg.Set.of_list prog.Prog.live_out) in
  List.iter
    (fun (r : Region.t) ->
      List.iter
        (fun op -> List.iter (fun u -> used := Reg.Set.add u !used) (Op.uses op))
        r.Region.ops)
    (Prog.regions prog);
  !used

let prune_op used (op : Op.t) =
  let dead d = not (Reg.Set.mem d used) in
  match op.Op.opcode with
  | Op.Store | Op.Branch -> Some op
  | Op.Cmpp (cond, a1, Some a2) -> (
    match op.Op.dests with
    | [ d1; d2 ] -> (
      let drop1 = dead d1 && (a1 = Op.Un || a1 = Op.Uc) in
      let drop2 = dead d2 && (a2 = Op.Un || a2 = Op.Uc) in
      match (drop1, drop2) with
      | false, false -> Some op
      | false, true ->
        Some { op with Op.opcode = Op.Cmpp (cond, a1, None); Op.dests = [ d1 ] }
      | true, false ->
        Some { op with Op.opcode = Op.Cmpp (cond, a2, None); Op.dests = [ d2 ] }
      | true, true -> None)
    | _ -> Some op)
  | Op.Cmpp (_, a1, None) ->
    if (a1 = Op.Un || a1 = Op.Uc) && List.for_all dead op.Op.dests then None
    else Some op
  | Op.Pred_init bits -> (
    let kept =
      List.filter (fun (d, _) -> not (dead d)) (List.combine op.Op.dests bits)
    in
    match kept with
    | [] -> None
    | kept when List.length kept = List.length op.Op.dests -> Some op
    | kept ->
      Some
        {
          op with
          Op.dests = List.map fst kept;
          Op.opcode = Op.Pred_init (List.map snd kept);
        })
  | Op.Alu _ | Op.Falu _ | Op.Load | Op.Pbr ->
    if List.for_all dead op.Op.dests then None else Some op

let run prog =
  let removed = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let used = used_regs prog in
    List.iter
      (fun (r : Region.t) ->
        let nu =
          List.filter_map
            (fun op ->
              match prune_op used op with
              | Some op' ->
                if op' != op then changed := true;
                Some op'
              | None ->
                incr removed;
                changed := true;
                None)
            r.Region.ops
        in
        r.Region.ops <- nu)
      (Prog.regions prog)
  done;
  !removed
