open Cpr_ir

type block_ref = {
  compare_ids : int list;
  branch_ids : int list;
  root_guard : Op.guard;
  taken_variation : bool;
}

type plan = {
  block : block_ref;
  bypass_id : int;
  p_on : Reg.t;
  p_off : Reg.t;
  comp_label : string;
  uc_dests : Reg.t list;
}

let unreachable_label = "UNREACHABLE"

let find_exn (region : Region.t) id =
  match Region.find_op region id with
  | Some op -> op
  | None -> invalid_arg (Printf.sprintf "Restructure: op %d not in region" id)

(* Insert [nu] right after the op with id [anchor]. *)
let insert_after (region : Region.t) anchor nus =
  region.Region.ops <-
    List.concat_map
      (fun (op : Op.t) -> if op.Op.id = anchor then op :: nus else [ op ])
      region.Region.ops

let replace_op (region : Region.t) id f =
  region.Region.ops <-
    List.map
      (fun (op : Op.t) -> if op.Op.id = id then f op else op)
      region.Region.ops

let uc_dests_of (op : Op.t) =
  match op.Op.opcode with
  | Op.Cmpp (_, a1, a2) ->
    List.filter_map
      (fun (a, d) -> if a = Op.Uc then Some d else None)
      (List.combine (a1 :: Option.to_list a2) op.Op.dests)
  | _ -> []

let resolve_guard subst = function
  | Op.True -> Op.True
  | Op.If p -> (
    match Reg.Tbl.find_opt subst p with Some q -> Op.If q | None -> Op.If p)

let fresh_comp_label (prog : Prog.t) =
  let rec go k =
    let label = "Cmp" ^ string_of_int k in
    if Prog.find prog label = None then label else go (k + 1)
  in
  go 1

let transform_block (prog : Prog.t) (region : Region.t) ~subst block =
  let root_guard = resolve_guard subst block.root_guard in
  let p_on = Prog.fresh_pred prog in
  let p_off = Prog.fresh_pred prog in
  let comp_label = fresh_comp_label prog in
  let uc_dests =
    List.concat_map (fun id -> uc_dests_of (find_exn region id)) block.compare_ids
  in
  let n_branches = List.length block.branch_ids in
  (* Lookahead compares, one per original compare (Figure 7(b), ops 32/33/
     37/38): same condition and sources, guarded by the root predicate,
     accumulating AC into the on-trace FRP and ON into the off-trace FRP.
     The final compare of a taken-variation block has its sense
     inverted. *)
  List.iteri
    (fun i cmp_id ->
      let cmp = find_exn region cmp_id in
      let cond =
        match cmp.Op.opcode with
        | Op.Cmpp (c, _, _) ->
          if block.taken_variation && i = n_branches - 1 then Op.negate_cond c
          else c
        | _ -> invalid_arg "Restructure: block compare is not a cmpp"
      in
      let lookahead =
        Op.make ~id:(Prog.fresh_op_id prog) ~guard:root_guard ~orig:cmp_id
          (Op.Cmpp (cond, Op.Ac, Some Op.On))
          [ p_on; p_off ] cmp.Op.srcs
      in
      insert_after region cmp_id [ lookahead ])
    block.compare_ids;
  (* On-trace FRP initialization: at region top via Pred_init when the
     root is true (handled by the caller through [pred_init_pairs]),
     otherwise in place with the [cmpp.un eq (0,0) if root] idiom
     (Figure 7(b), op 36) placed before the block's first lookahead, i.e.
     right before the first original compare. *)
  (match root_guard with
  | Op.True -> ()
  | Op.If _ ->
    let first_cmp = List.hd block.compare_ids in
    let init =
      Op.make ~id:(Prog.fresh_op_id prog) ~guard:root_guard
        (Op.Cmpp (Op.Eq, Op.Un, None))
        [ p_on ]
        [ Op.Imm 0; Op.Imm 0 ]
    in
    region.Region.ops <-
      List.concat_map
        (fun (op : Op.t) ->
          if op.Op.id = first_cmp then [ init; op ] else [ op ])
        region.Region.ops);
  let last_branch = List.nth block.branch_ids (n_branches - 1) in
  let bypass_id =
    if block.taken_variation then begin
      (* The final branch becomes the bypass: its taken direction is the
         on-trace continuation, so it is guarded by the on-trace FRP. *)
      replace_op region last_branch (fun op -> { op with Op.guard = Op.If p_on });
      last_branch
    end
    else begin
      (* Insert pbr + bypass branch right after the last original branch. *)
      let btr = Prog.fresh_btr prog in
      let pbr =
        Op.make ~id:(Prog.fresh_op_id prog) Op.Pbr [ btr ]
          [ Op.Lab comp_label; Op.Imm 0 ]
      in
      let bypass =
        Op.make ~id:(Prog.fresh_op_id prog) ~guard:(Op.If p_off) Op.Branch []
          [ Op.Reg btr ]
      in
      insert_after region last_branch [ pbr; bypass ];
      bypass.Op.id
    end
  in
  (* Create the (empty) compensation region now so the bypass target
     resolves; off-trace motion fills it. *)
  let comp_fallthrough =
    if block.taken_variation then region.Region.fallthrough
    else begin
      if not (Prog.is_exit prog unreachable_label) then
        prog.Prog.exit_labels <- unreachable_label :: prog.Prog.exit_labels;
      Some unreachable_label
    end
  in
  let comp = Region.make ?fallthrough:comp_fallthrough comp_label [] in
  Prog.add_region prog ~after:region.Region.label comp;
  if block.taken_variation then region.Region.fallthrough <- Some comp_label;
  (* Re-wire (fall-through variation only): operations past the bypass
     that use the block's fall-through predicates now use the on-trace
     FRP; record the substitution for later blocks' root guards. *)
  if not block.taken_variation then begin
    List.iter (fun d -> Reg.Tbl.replace subst d p_on) uc_dests;
    let is_uc r = List.exists (Reg.equal r) uc_dests in
    let past_bypass = ref false in
    region.Region.ops <-
      List.map
        (fun (op : Op.t) ->
          if op.Op.id = bypass_id then begin
            past_bypass := true;
            op
          end
          else if not !past_bypass then op
          else
            let guard =
              match op.Op.guard with
              | Op.If p when is_uc p -> Op.If p_on
              | g -> g
            in
            let srcs =
              List.map
                (function
                  | Op.Reg r when is_uc r -> Op.Reg p_on
                  | s -> s)
                op.Op.srcs
            in
            { op with Op.guard; Op.srcs })
        region.Region.ops
  end;
  {
    block = { block with root_guard };
    bypass_id;
    p_on;
    p_off;
    comp_label;
    uc_dests;
  }

let pred_init_pairs plan =
  let on_init =
    match plan.block.root_guard with
    | Op.True when not plan.block.taken_variation -> [ (plan.p_on, true) ]
    | Op.True -> [ (plan.p_on, true) ]
    | Op.If _ -> []
  in
  on_init @ [ (plan.p_off, false) ]
