lib/core/unroll.mli: Cpr_ir Prog Region
