lib/core/frp.ml: Array Cpr_ir List Op Option Prog Reg Region
