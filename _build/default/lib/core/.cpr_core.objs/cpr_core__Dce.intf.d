lib/core/dce.mli: Cpr_ir Prog
