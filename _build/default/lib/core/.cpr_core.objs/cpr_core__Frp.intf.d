lib/core/frp.mli: Cpr_ir Prog Region
