lib/core/offtrace.ml: Array Cpr_analysis Cpr_ir Cpr_machine Format Fun Hashtbl List Op Option Printf Prog Queue Reg Region Restructure String Sys
