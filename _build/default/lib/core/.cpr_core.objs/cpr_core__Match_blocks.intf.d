lib/core/match_blocks.mli: Cpr_analysis Cpr_ir Format Heur Op Prog Region
