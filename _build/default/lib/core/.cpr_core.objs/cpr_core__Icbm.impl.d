lib/core/icbm.ml: Array Cpr_analysis Cpr_ir Cpr_machine Dce Format Frp Fun Heur List Match_blocks Offtrace Op Option Prog Queue Reg Region Restructure Spec String Sys
