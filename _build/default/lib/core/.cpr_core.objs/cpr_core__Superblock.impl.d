lib/core/superblock.ml: Cpr_ir Hashtbl Int List Op Prog Region
