lib/core/match_blocks.ml: Array Cpr_analysis Cpr_ir Cpr_machine Format Fun Hashtbl Heur List Op Option Prog Queue Reg Region String
