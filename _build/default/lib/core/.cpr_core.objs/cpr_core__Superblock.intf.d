lib/core/superblock.mli: Cpr_ir Prog
