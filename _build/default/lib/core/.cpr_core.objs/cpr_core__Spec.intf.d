lib/core/spec.mli: Cpr_ir Prog Region
