lib/core/icbm.mli: Cpr_analysis Cpr_ir Format Heur Match_blocks Op Prog Region Restructure
