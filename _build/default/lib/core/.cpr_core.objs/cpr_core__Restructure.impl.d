lib/core/restructure.ml: Cpr_ir List Op Option Printf Prog Reg Region
