lib/core/heur.ml: Cpr_machine
