lib/core/ifconv.ml: Cpr_ir List Op Option Prog Reg Region
