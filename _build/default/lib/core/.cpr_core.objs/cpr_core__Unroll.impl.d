lib/core/unroll.ml: Cpr_analysis Cpr_ir List Op Prog Reg Region
