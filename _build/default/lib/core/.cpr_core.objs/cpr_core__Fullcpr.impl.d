lib/core/fullcpr.ml: Array Cpr_ir Hashtbl List Op Prog Reg Region
