lib/core/heur.mli: Cpr_machine
