lib/core/fullcpr.mli: Cpr_ir Prog Region
