lib/core/restructure.mli: Cpr_ir Op Prog Reg Region
