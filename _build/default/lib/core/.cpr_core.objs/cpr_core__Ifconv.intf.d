lib/core/ifconv.mli: Cpr_ir Prog Region
