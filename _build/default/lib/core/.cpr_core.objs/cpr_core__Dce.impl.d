lib/core/dce.ml: Cpr_ir List Op Prog Reg Region
