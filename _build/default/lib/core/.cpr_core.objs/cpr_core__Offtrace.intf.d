lib/core/offtrace.mli: Cpr_ir Prog Region Restructure
