lib/core/spec.ml: Array Cpr_analysis Cpr_ir Hashtbl Int List Op Prog Reg Region
