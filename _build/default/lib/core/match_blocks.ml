open Cpr_ir
module Depgraph = Cpr_analysis.Depgraph

type cpr_block = {
  branch_idxs : int list;
  compare_idxs : int list;
  root_guard : Op.guard;
  taken_variation : bool;
  entry_freq : int;
}

let nontrivial b =
  match b.branch_idxs with
  | [] -> false
  | [ _ ] -> b.taken_variation && b.compare_idxs <> []
  | _ :: _ :: _ -> true

(* UN and UC destinations of a cmpp. *)
let dests_with_action (op : Op.t) action =
  match op.Op.opcode with
  | Op.Cmpp (_, a1, a2) ->
    List.filter_map
      (fun (a, d) -> if a = action then Some d else None)
      (List.combine (a1 :: Option.to_list a2) op.Op.dests)
  | _ -> []

(* Unique op computing [p]; suitable only if that op is a cmpp defining
   [p] through a UN destination before index [limit]. *)
let controlling_compare ops limit p =
  let defs = ref [] in
  Array.iteri
    (fun i (op : Op.t) ->
      if i < limit && List.exists (Reg.equal p) (Op.defs op) then
        defs := i :: !defs)
    ops;
  match !defs with
  | [ i ] when List.exists (Reg.equal p) (dests_with_action ops.(i) Op.Un) ->
    Some i
  | _ -> None

type grow_state = {
  mutable sp : Reg.Set.t;
  mutable sp_true : bool;  (** the always-true predicate is in SP *)
  mutable succ : bool array;  (** separability successor set, by op index *)
  graph : Depgraph.t;
  ops : Op.t array;
}

(* Accumulate the (transitive) dependence successors of the compare at
   [cmp_idx] into [st.succ], following register-flow and memory-flow
   edges, ignoring the dependence through the compare's own fall-through
   (UC) predicate when it is used as the guard of another compare — the
   restructure schema substitutes the root predicate there (Section 5.2). *)
let append_successors st cmp_idx =
  let uc_dests = Reg.Set.of_list (dests_with_action st.ops.(cmp_idx) Op.Uc) in
  let skip (e : Depgraph.edge) =
    e.Depgraph.src = cmp_idx
    &&
    match e.Depgraph.kind with
    | Depgraph.Flow r ->
      Reg.Set.mem r uc_dests
      && Op.is_cmpp st.ops.(e.Depgraph.dst)
      && st.ops.(e.Depgraph.dst).Op.guard = Op.If r
      && not
           (List.exists
              (function Op.Reg x -> Reg.equal x r | _ -> false)
              st.ops.(e.Depgraph.dst).Op.srcs)
    | _ -> false
  in
  let queue = Queue.create () in
  Queue.add cmp_idx queue;
  while not (Queue.is_empty queue) do
    let k = Queue.pop queue in
    List.iter
      (fun (e : Depgraph.edge) ->
        match e.Depgraph.kind with
        | Depgraph.Flow _ | Depgraph.Mem_flow ->
          if (not (skip e)) && not st.succ.(e.Depgraph.dst) then begin
            st.succ.(e.Depgraph.dst) <- true;
            Queue.add e.Depgraph.dst queue
          end
        | _ -> ())
      (Depgraph.succs st.graph k)
  done

let guard_in_sp st = function
  | Op.True -> st.sp_true
  | Op.If p -> Reg.Set.mem p st.sp

let run (heur : Heur.t) (prog : Prog.t) liveness (region : Region.t) =
  let ops = Array.of_list region.Region.ops in
  let graph =
    Depgraph.build Cpr_machine.Descr.medium prog liveness region
  in
  let branch_idxs =
    List.filter (fun i -> Op.is_branch ops.(i))
      (List.init (Array.length ops) Fun.id)
  in
  (* Profiled frequency of sequential control reaching each branch. *)
  let freq_at =
    let freqs = Hashtbl.create 17 in
    let remaining = ref region.Region.entry_count in
    List.iter
      (fun i ->
        Hashtbl.replace freqs i !remaining;
        remaining :=
          max 0 (!remaining - Region.taken_count region ops.(i).Op.id))
      branch_idxs;
    fun i -> Option.value ~default:0 (Hashtbl.find_opt freqs i)
  in
  let compare_of i =
    match ops.(i).Op.guard with
    | Op.True -> None
    | Op.If p -> controlling_compare ops i p
  in
  let result = ref [] in
  let rec seed = function
    | [] -> ()
    | b0 :: rest -> (
      match compare_of b0 with
      | None ->
        (* Suitability cannot even initialize: trivial block. *)
        result :=
          {
            branch_idxs = [ b0 ];
            compare_idxs = [];
            root_guard = Op.True;
            taken_variation = false;
            entry_freq = freq_at b0;
          }
          :: !result;
        seed rest
      | Some c0 ->
        let st =
          {
            sp = Reg.Set.empty;
            sp_true = ops.(c0).Op.guard = Op.True;
            succ = Array.make (Array.length ops) false;
            graph;
            ops;
          }
        in
        (match ops.(c0).Op.guard with
        | Op.If p -> st.sp <- Reg.Set.add p st.sp
        | Op.True -> ());
        List.iter
          (fun d -> st.sp <- Reg.Set.add d st.sp)
          (dests_with_action ops.(c0) Op.Uc);
        append_successors st c0;
        let entry_freq = freq_at b0 in
        let taken_sum = ref (Region.taken_count region ops.(b0).Op.id) in
        let block_branches = ref [ b0 ] in
        let block_compares = ref [ c0 ] in
        let taken_var = ref false in
        let rec grow cands =
          match cands with
          | [] -> []
          | cand :: cand_rest -> (
            if List.length !block_branches >= heur.Heur.max_block_branches then
              cands
            else
              match compare_of cand with
              | None -> cands
              | Some c ->
                if not (guard_in_sp st ops.(c).Op.guard) then cands
                else if st.succ.(c) then cands
                else begin
                  let cand_taken = Region.taken_count region ops.(cand).Op.id in
                  let ratio x =
                    if entry_freq = 0 then 0.0
                    else float_of_int x /. float_of_int entry_freq
                  in
                  let pred_taken =
                    ratio cand_taken >= heur.Heur.predict_taken_threshold
                    && entry_freq > 0
                  in
                  if
                    (not pred_taken)
                    && ratio (!taken_sum + cand_taken)
                       > heur.Heur.exit_weight_threshold
                    && entry_freq > 0
                  then cands
                  else begin
                    block_branches := cand :: !block_branches;
                    block_compares := c :: !block_compares;
                    taken_sum := !taken_sum + cand_taken;
                    List.iter
                      (fun d -> st.sp <- Reg.Set.add d st.sp)
                      (dests_with_action ops.(c) Op.Uc);
                    append_successors st c;
                    if pred_taken then begin
                      taken_var := true;
                      cand_rest
                    end
                    else grow cand_rest
                  end
                end)
        in
        let remaining = grow rest in
        result :=
          {
            branch_idxs = List.rev !block_branches;
            compare_idxs = List.rev !block_compares;
            root_guard = ops.(c0).Op.guard;
            taken_variation = !taken_var;
            entry_freq;
          }
          :: !result;
        seed remaining)
  in
  seed branch_idxs;
  List.rev !result

let pp ppf b =
  Format.fprintf ppf "cpr-block{branches=[%s]; %s; entry=%d}"
    (String.concat ","
       (List.map string_of_int b.branch_idxs))
    (if b.taken_variation then "taken" else "fall-through")
    b.entry_freq
