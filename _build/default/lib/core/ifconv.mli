open Cpr_ir

(** Classic if-conversion for terminal diamonds (Allen et al., POPL-10;
    [DT93]; [MLC+92] in the paper's bibliography).

    The paper notes that control CPR leaves unbiased branches alone and
    that "the compiler could employ traditional if-conversion to eliminate
    many unbiased branches and thus further improve the effectiveness of
    control CPR" (Section 7).  This pass eliminates a side exit whose
    target is a branch-free stub rejoining at the region's own
    fallthrough: the stub is inlined predicated on the branch's taken
    predicate, the remaining on-trace operations are predicated on the
    new fall-through predicate, and the branch disappears.  The resulting
    region is a hyperblock — which ICBM accepts as input (its suitability
    test was designed for exactly such embedded predication). *)

type stats = {
  converted : int;  (** branches eliminated *)
  inlined_ops : int;
}

val convert_region :
  ?max_stub_ops:int -> ?only_unbiased:bool -> Prog.t -> Region.t -> stats
(** [only_unbiased] (default true) converts only branches whose profiled
    taken ratio lies in [0.2, 0.8] — biased branches are better left for
    control CPR.  [max_stub_ops] (default 12) bounds the inlined code. *)

val convert : ?max_stub_ops:int -> ?only_unbiased:bool -> Prog.t -> stats
