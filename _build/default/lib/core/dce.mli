open Cpr_ir

(** Dead-code elimination run after ICBM (Section 5, Figure 7(c)):
    removes operations none of whose destinations are referenced anywhere
    in the program (stores and branches are never removed), and drops dead
    unconditional (UN/UC) destinations from two-target compares.
    Accumulator (wired-or/and) destinations are kept, mirroring the
    paper's example where the unused off-trace FRP of a likely-taken CPR
    block survives DCE. *)

val run : Prog.t -> int
(** Number of operations removed (destination drops not counted). *)
