open Cpr_ir

type stats = {
  converted : int;
  inlined_ops : int;
}

let zero = { converted = 0; inlined_ops = 0 }

(* The unique unguarded UN compare computing [p] before index [limit],
   with room for a UC destination. *)
let controlling_compare ops limit p =
  let hits =
    List.filteri (fun i _ -> i < limit) ops
    |> List.filter (fun (op : Op.t) -> List.exists (Reg.equal p) (Op.defs op))
  in
  match hits with
  | [ cmp ] -> (
    match cmp.Op.opcode with
    | Op.Cmpp (_, Op.Un, None) when List.hd cmp.Op.dests |> Reg.equal p ->
      Some cmp
    | _ -> None)
  | _ -> None

(* A convertible stub: branch-free, unpredicated, rejoining at [join]. *)
let stub_of prog ~join ~max_ops label =
  if Prog.is_exit prog label then None
  else
    match Prog.find prog label with
    | Some (t : Region.t)
      when t.Region.fallthrough = join
           && List.length t.Region.ops <= max_ops
           && List.for_all
                (fun (op : Op.t) ->
                  (not (Op.is_branch op)) && op.Op.guard = Op.True)
                t.Region.ops -> Some t
    | _ -> None

let unbiased (region : Region.t) (br : Op.t) =
  let entry = region.Region.entry_count in
  entry > 0
  &&
  let r =
    float_of_int (Region.taken_count region br.Op.id) /. float_of_int entry
  in
  r >= 0.2 && r <= 0.8

(* Convert the first eligible branch; [true] if one was converted. *)
let convert_one ?(max_stub_ops = 12) ?(only_unbiased = true) (prog : Prog.t)
    (region : Region.t) =
  let ops = region.Region.ops in
  let eligible (i, (br : Op.t)) =
    Op.is_branch br
    && ((not only_unbiased) || unbiased region br)
    &&
    match br.Op.guard with
    | Op.True -> false
    | Op.If p -> (
      match
        ( controlling_compare ops i p,
          Option.bind (Region.branch_target region br)
            (fun l ->
              stub_of prog ~join:region.Region.fallthrough
                ~max_ops:max_stub_ops l) )
      with
      | Some _, Some _ ->
        (* everything below the branch must be unpredicated so it can be
           re-guarded by the fall-through predicate, and every later
           branch's controlling compare must also sit below (so its taken
           predicate picks up the fall-through guard) *)
        List.mapi (fun j op -> (j, op)) ops
        |> List.for_all (fun (j, (op : Op.t)) ->
               j <= i
               ||
               if Op.is_branch op then
                 match op.Op.guard with
                 | Op.True -> false
                 | Op.If q -> (
                   match controlling_compare ops j q with
                   | Some cmp -> (
                     match Region.op_index region cmp.Op.id with
                     | k -> k > i
                     | exception Not_found -> false)
                   | None -> false)
               else op.Op.guard = Op.True)
      | _ -> false)
  in
  match
    List.find_opt eligible (List.mapi (fun i op -> (i, op)) ops)
  with
  | None -> None
  | Some (i, br) ->
    let p = match br.Op.guard with Op.If p -> p | Op.True -> assert false in
    let cmp = Option.get (controlling_compare ops i p) in
    let stub =
      Option.get
        (Option.bind (Region.branch_target region br)
           (stub_of prog ~join:region.Region.fallthrough ~max_ops:max_stub_ops))
    in
    let p_fall = Prog.fresh_pred prog in
    (* the branch's pbr, to delete along with it *)
    let pbr_id =
      List.find_map
        (fun (op : Op.t) ->
          if
            Op.is_pbr op
            && List.exists
                 (fun d -> List.exists (fun s -> s = Op.Reg d) br.Op.srcs)
                 op.Op.dests
          then Some op.Op.id
          else None)
        ops
    in
    let inlined =
      List.map
        (fun (op : Op.t) ->
          Op.make ~id:(Prog.fresh_op_id prog) ~guard:(Op.If p) ~orig:op.Op.id
            op.Op.opcode op.Op.dests op.Op.srcs)
        stub.Region.ops
    in
    let rewritten =
      List.concat
        (List.mapi
           (fun j (op : Op.t) ->
             if op.Op.id = br.Op.id || Some op.Op.id = pbr_id then []
             else if op.Op.id = cmp.Op.id then
               [
                 {
                   op with
                   Op.opcode =
                     (match op.Op.opcode with
                     | Op.Cmpp (c, Op.Un, None) -> Op.Cmpp (c, Op.Un, Some Op.Uc)
                     | o -> o);
                   Op.dests = op.Op.dests @ [ p_fall ];
                 };
               ]
             else if j > i && op.Op.guard = Op.True && not (Op.is_branch op)
             then [ { op with Op.guard = Op.If p_fall } ]
             else [ op ])
           ops)
    in
    region.Region.ops <- rewritten @ inlined;
    Some (List.length inlined)

let convert_region ?max_stub_ops ?only_unbiased prog region =
  let stats = ref zero in
  let continue_ = ref true in
  while !continue_ do
    match convert_one ?max_stub_ops ?only_unbiased prog region with
    | Some n ->
      stats :=
        {
          converted = !stats.converted + 1;
          inlined_ops = !stats.inlined_ops + n;
        }
    | None -> continue_ := false
  done;
  !stats

let convert ?max_stub_ops ?only_unbiased prog =
  List.fold_left
    (fun acc r ->
      let s = convert_region ?max_stub_ops ?only_unbiased prog r in
      { converted = acc.converted + s.converted;
        inlined_ops = acc.inlined_ops + s.inlined_ops })
    zero (Prog.regions prog)
