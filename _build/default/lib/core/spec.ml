open Cpr_ir
module Liveness = Cpr_analysis.Liveness
module Pred_env = Cpr_analysis.Pred_env
module Pqs = Cpr_analysis.Pqs

type stats = {
  promoted : int;
  demoted : int;
}

let candidate (op : Op.t) =
  match (op.Op.guard, op.Op.opcode) with
  | Op.True, _ -> false
  | _, (Op.Cmpp _ | Op.Store | Op.Branch | Op.Pred_init _) -> false
  | Op.If _, (Op.Alu _ | Op.Falu _ | Op.Load | Op.Pbr) -> true

(* Promotion decisions are computed against the pristine region and
   applied as a batch: a use by an operation that is itself promoted still
   contributes its original guard to the liveness expression ("promotion
   faithfully mirrors the original code", Section 6) — judging uses by
   post-promotion guards would block every producer whose consumer was
   promoted first. *)
let promote_pass liveness (region : Region.t) =
  let env = Pred_env.analyze region in
  let ops = Pred_env.ops env in
  let promoted = ref [] in
  Array.iteri
    (fun idx (op : Op.t) ->
      if candidate op then begin
        let guard_e = Pred_env.guard_expr env idx in
        let clobber_safe =
          List.for_all
            (fun d ->
              let live_e = Liveness.live_expr_after liveness env region idx d in
              Pqs.implies live_e guard_e)
            (Op.defs op)
        in
        if clobber_safe then promoted := (op.Op.id, op.Op.guard) :: !promoted
      end)
    ops;
  let promoted = List.rev !promoted in
  let ids = List.map fst promoted in
  region.Region.ops <-
    List.map
      (fun (o : Op.t) ->
        if List.mem o.Op.id ids then { o with Op.guard = Op.True } else o)
      region.Region.ops;
  promoted

(* A direct flow dependence: [consumer] reads a register [producer]
   defines, with no intervening definition. *)
let direct_flow_producers region idx =
  let ops = Array.of_list region.Region.ops in
  let op = ops.(idx) in
  let producers = ref [] in
  List.iter
    (fun r ->
      let rec scan k =
        if k < 0 then ()
        else if List.exists (Reg.equal r) (Op.defs ops.(k)) then
          producers := k :: !producers
        else scan (k - 1)
      in
      scan (idx - 1))
    (Op.uses op);
  List.sort_uniq Int.compare !producers

(* Second demotion criterion (Section 5.1): a promoted operation that
   still carries a branch dependence — some destination is live at the
   target of a preceding branch whose taken condition is compatible with
   the original guard — is demoted, replacing the branch dependence with
   a data dependence on the guard's compare.  This is what keeps
   operations writing exit-live values (e.g. accumulators) predicated, so
   ICBM can move them off-trace. *)
let branch_dependent liveness (region : Region.t) env idx (op : Op.t) =
  let ops = Pred_env.ops env in
  let rec scan k found =
    if k >= idx || found then found
    else
      let found =
        Op.is_branch ops.(k)
        && (not
              (Pqs.disjoint (Pred_env.taken_expr env k)
                 (Pred_env.guard_expr env idx)))
        && List.exists
             (fun d ->
               Reg.Set.mem d (Liveness.live_at_target liveness region ops.(k)))
             (Op.defs op)
      in
      scan (k + 1) found
  in
  scan 0 false

let demote_pass prog (region : Region.t) promoted =
  let demoted = ref 0 in
  let changed = ref true in
  let still_promoted = Hashtbl.create 17 in
  List.iter (fun (id, g) -> Hashtbl.replace still_promoted id g) promoted;
  while !changed do
    changed := false;
    (* guards changed (promotions applied, earlier demotions), so both the
       global liveness and the predicate environments are recomputed *)
    let liveness = Liveness.analyze prog in
    let env = Pred_env.analyze region in
    let ops = Pred_env.ops env in
    Array.iteri
      (fun idx (op : Op.t) ->
        match Hashtbl.find_opt still_promoted op.Op.id with
        | None -> ()
        | Some original_guard ->
          let orig_e =
            match original_guard with
            | Op.True -> Pqs.tru
            | Op.If p -> Pred_env.reg_expr_before env idx p
          in
          let useless_promotion =
            List.exists
              (fun k ->
                let producer = ops.(k) in
                match producer.Op.guard with
                | Op.True -> false
                | Op.If _ ->
                  (not (Hashtbl.mem still_promoted producer.Op.id))
                  && Pqs.implies orig_e (Pred_env.guard_expr env k))
              (direct_flow_producers region idx)
          in
          let should_demote =
            useless_promotion || branch_dependent liveness region env idx op
          in
          if should_demote then begin
            Hashtbl.remove still_promoted op.Op.id;
            incr demoted;
            changed := true;
            region.Region.ops <-
              List.map
                (fun (o : Op.t) ->
                  if o.Op.id = op.Op.id then { o with Op.guard = original_guard }
                  else o)
                region.Region.ops
          end)
      ops
  done;
  !demoted

let speculate_region prog region =
  let liveness = Liveness.analyze prog in
  let promoted = promote_pass liveness region in
  let demoted = demote_pass prog region promoted in
  { promoted = List.length promoted; demoted }

let speculate prog =
  List.fold_left
    (fun acc r ->
      let s = speculate_region prog r in
      { promoted = acc.promoted + s.promoted; demoted = acc.demoted + s.demoted })
    { promoted = 0; demoted = 0 }
    (Prog.regions prog)
