open Cpr_ir

(* The unique in-region cmpp computing [p] through a UN destination,
   before position [limit]. *)
let un_def_of ops limit p =
  let defs = ref [] in
  List.iteri
    (fun i (op : Op.t) ->
      if i < limit then
        match op.Op.opcode with
        | Op.Cmpp (_, a1, a2) ->
          let acts = a1 :: Option.to_list a2 in
          List.iter2
            (fun act d -> if act = Op.Un && Reg.equal d p then defs := i :: !defs)
            acts op.Op.dests
        | _ ->
          if List.exists (Reg.equal p) op.Op.dests then defs := (-1) :: !defs)
    ops;
  match !defs with [ i ] when i >= 0 -> Some i | _ -> None

let convert_region (prog : Prog.t) (region : Region.t) =
  let ops = Array.of_list region.Region.ops in
  let n = Array.length ops in
  (* Plan: for each conditional branch, the index of its controlling
     compare.  Abort without touching anything if some branch is not
     convertible. *)
  let plan = ref [] in
  let convertible = ref true in
  Array.iteri
    (fun i (op : Op.t) ->
      if Op.is_branch op then
        match op.Op.guard with
        | Op.True -> convertible := false
        | Op.If p -> (
          match un_def_of region.Region.ops i p with
          | Some c ->
            (* a controlling compare that is itself predicated (embedded
               if-conversion) would need its guard conjoined into the FRP
               chain; this implementation handles superblock inputs only
               and leaves such hyperblocks untouched *)
            if ops.(c).Op.guard <> Op.True then convertible := false
            else plan := (i, c) :: !plan
          | None -> convertible := false))
    ops;
  if (not !convertible) || !plan = [] then false
  else begin
    let compare_of_branch = List.rev !plan in
    (* current FRP guard for each position, built as we walk forward *)
    let cur = ref Op.True in
    let new_ops = ref [] in
    for i = 0 to n - 1 do
      let op = ops.(i) in
      let op =
        match List.find_opt (fun (_, c) -> c = i) compare_of_branch with
        | Some _ ->
          (* Controlling compare: guard by the previous block's FRP and
             add a UC fall-through destination if it lacks one. *)
          let op = { op with Op.guard = !cur } in
          (match op.Op.opcode with
          | Op.Cmpp (cond, Op.Un, None) ->
            let p_fall = Prog.fresh_pred prog in
            {
              op with
              Op.opcode = Op.Cmpp (cond, Op.Un, Some Op.Uc);
              Op.dests = op.Op.dests @ [ p_fall ];
            }
          | _ -> op)
        | None ->
          (* Plain operation (or branch): re-guard unguarded ops by the
             current block FRP; branches keep their taken predicate and
             already-predicated ops keep their guard. *)
          if Op.is_branch op || op.Op.guard <> Op.True then op
          else { op with Op.guard = !cur }
      in
      new_ops := op :: !new_ops;
      (* After a branch, the fall-through predicate of its compare becomes
         the FRP of the next block. *)
      if Op.is_branch op then begin
        match List.assoc_opt i compare_of_branch with
        | Some c -> (
          let cmp =
            List.nth (List.rev !new_ops) c (* rewritten compare *)
          in
          match (cmp.Op.opcode, cmp.Op.dests) with
          | Op.Cmpp (_, Op.Un, Some Op.Uc), [ _; p_fall ] -> cur := Op.If p_fall
          | _ -> ())
        | None -> ()
      end
    done;
    region.Region.ops <- List.rev !new_ops;
    true
  end

let convert prog =
  List.fold_left
    (fun acc r -> if convert_region prog r then acc + 1 else acc)
    0 (Prog.regions prog)
