open Cpr_ir

(** The match phase (Section 5.2, Figure 5): cover the branches of a
    hyperblock with CPR blocks, each grown branch-by-branch until one of
    the four tests terminates it:

    - {b suitability}: the candidate branch's guard must be computed
      unconditionally (UN) by a compare whose own guard belongs to the
      suitable-predicate set, so the schematic off-trace FRP
      [root /\ (bc1 \/ ... \/ bcn)] is exact;
    - {b separability}: the candidate's compare must not be a (transitive)
      flow-dependence successor of the compares already in the block
      (which ICBM moves off-trace), ignoring the dependence through a
      fall-through predicate used as a later compare's guard;
    - {b exit-weight}: profile heuristic bounding cumulative exit
      frequency;
    - {b predict-taken}: a predominantly taken candidate closes the block
      as a likely-taken block (taken restructure variation). *)

type cpr_block = {
  branch_idxs : int list;  (** op indexes of the branches, in order *)
  compare_idxs : int list;  (** aligned op indexes of the guarding compares *)
  root_guard : Op.guard;
      (** guard of the first compare: the block's root predicate *)
  taken_variation : bool;
  entry_freq : int;  (** profiled frequency of reaching the first branch *)
}

val nontrivial : cpr_block -> bool
(** More than one branch, or a single likely-taken branch: worth
    restructuring. *)

val run :
  Heur.t -> Prog.t -> Cpr_analysis.Liveness.t -> Region.t -> cpr_block list
(** The blocks cover all branches of the region in order; branches that
    fail suitability on their own (e.g. guard defined by no unique UN
    compare) appear as trivial single-branch blocks with
    [compare_idxs = []]. *)

val pp : Format.formatter -> cpr_block -> unit
