open Cpr_ir

(** The restructure phase (Section 5.3): insert lookahead compares,
    initialize and compute the on-trace / off-trace FRPs, insert the
    bypass branch (fall-through variation) or re-wire the final branch
    (taken variation), create the empty compensation region, and re-wire
    uses of the block's fall-through predicates past the bypass to the
    on-trace FRP. *)

(** An id-based reference to a CPR block, stable under op insertion
    (match produces index-based blocks against the pre-transformation op
    list; the driver converts them). *)
type block_ref = {
  compare_ids : int list;
  branch_ids : int list;  (** aligned with [compare_ids] *)
  root_guard : Op.guard;
  taken_variation : bool;
}

type plan = {
  block : block_ref;
  bypass_id : int;
      (** the inserted bypass branch (fall-through variation) or the
          re-wired final branch (taken variation) *)
  p_on : Reg.t;
  p_off : Reg.t;
  comp_label : string;
  uc_dests : Reg.t list;  (** fall-through predicates of the compares *)
}

val unreachable_label : string
(** Fallthrough label of fall-through-variation compensation blocks; the
    off-trace FRP is exact, so executing past the last compensation branch
    is impossible — reaching this label in the interpreter signals a
    transformation bug. *)

val transform_block :
  Prog.t -> Region.t -> subst:Reg.t Reg.Tbl.t -> block_ref -> plan
(** Restructure one non-trivial CPR block of the region (in place),
    creating the (empty) compensation region.  [subst] maps fall-through
    predicates of earlier blocks to their on-trace FRPs; it is consulted
    to resolve the root guard and extended with this block's re-wirings.
    The [Pred_init] initializations are accumulated by the caller via
    {!pred_init_pairs}. *)

val pred_init_pairs : plan -> (Reg.t * bool) list
(** Predicate initializations this plan requires at region top:
    always [p_off = 0]; additionally [p_on = 1] when the root predicate is
    true (otherwise the on-trace FRP was initialized in place with the
    [cmpp.un eq (0,0) if root] idiom). *)
