open Cpr_ir

(** Lightweight symbolic memory-address analysis within a region.

    Load/store addresses are chased through unguarded copy and
    add-immediate chains to a base/offset form.  Two accesses are
    independent when they share a base value and have different offsets,
    or when their bases are distinct registers declared pairwise
    non-overlapping in [Prog.noalias_bases]. *)

type base =
  | Entry_base of Reg.t  (** region-entry value of the register *)
  | Const_base  (** absolute address *)
  | Segment of Reg.t * int
      (** [root + index]: an address computed by adding an opaque index
          (the op with the given id) to a declared array base — accesses
          rooted at distinct non-overlapping bases never alias *)
  | Opaque of int  (** value produced by the op with this id *)

type addr = {
  base : base;
  off : int;
}

type t

val analyze : Prog.t -> Region.t -> t

val addr_of : t -> int -> addr option
(** Address of the memory op at this op index; [None] for non-memory ops
    or unresolvable addresses. *)

val independent : t -> int -> int -> bool
(** May the two memory ops at these indices never touch the same cell? *)
