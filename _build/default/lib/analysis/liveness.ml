open Cpr_ir

type t = {
  prog : Prog.t;
  table : (string, Reg.Set.t) Hashtbl.t;
}

let boundary (p : Prog.t) = Reg.Set.of_list p.Prog.live_out

let live_in t label =
  if Prog.is_exit t.prog label then boundary t.prog
  else Option.value ~default:Reg.Set.empty (Hashtbl.find_opt t.table label)

let kills (op : Op.t) =
  let unconditional =
    match op.Op.guard with
    | Op.True ->
      List.filter
        (fun d -> not (List.exists (Reg.equal d) (Op.accumulator_dests op)))
        op.Op.dests
    | Op.If _ -> []
  in
  unconditional @ Op.writes_when_guard_false op

(* Backward transfer through one region given liveness at its exits. *)
let transfer t (r : Region.t) =
  let live =
    ref
      (match r.Region.fallthrough with
      | Some l -> live_in t l
      | None -> boundary t.prog)
  in
  let step (op : Op.t) =
    if Op.is_branch op then begin
      match Region.branch_target r op with
      | Some target -> live := Reg.Set.union !live (live_in t target)
      | None -> ()
    end;
    live := Reg.Set.diff !live (Reg.Set.of_list (kills op));
    live := Reg.Set.union !live (Reg.Set.of_list (Op.uses op))
  in
  List.iter step (List.rev r.Region.ops);
  !live

let analyze (prog : Prog.t) =
  let t = { prog; table = Hashtbl.create 17 } in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (r : Region.t) ->
        let nu = transfer t r in
        let old =
          Option.value ~default:Reg.Set.empty
            (Hashtbl.find_opt t.table r.Region.label)
        in
        if not (Reg.Set.equal nu old) then begin
          Hashtbl.replace t.table r.Region.label nu;
          changed := true
        end)
      (List.rev (Prog.regions prog))
  done;
  t

let live_at_target t (r : Region.t) (br : Op.t) =
  match Region.branch_target r br with
  | Some target -> live_in t target
  | None -> boundary t.prog

let live_out_region t (r : Region.t) =
  match r.Region.fallthrough with
  | Some l -> live_in t l
  | None -> boundary t.prog

let live_expr_after t env (r : Region.t) idx reg =
  let ops = Pred_env.ops env in
  let n = Array.length ops in
  let acc = ref Pqs.fls in
  let path = ref Pqs.tru in
  (try
     for j = idx + 1 to n - 1 do
       let op = ops.(j) in
       if List.exists (Reg.equal reg) (Op.uses op) then
         acc := Pqs.or_ !acc (Pqs.and_ !path (Pred_env.guard_expr env j));
       if Op.is_branch op then begin
         if Reg.Set.mem reg (live_at_target t r op) then
           acc :=
             Pqs.or_ !acc (Pqs.and_ !path (Pred_env.taken_expr env j));
         path := Pqs.and_ !path (Pqs.not_ (Pred_env.taken_expr env j))
       end;
       (* An unconditional kill ends the scan: nothing past it can read the
          value present after [idx]. *)
       if List.exists (Reg.equal reg) (kills op) then raise Exit
     done;
     if Reg.Set.mem reg (live_out_region t r) then
       acc := Pqs.or_ !acc !path
   with Exit -> ());
  (* Everything above is relative to control being at [idx]; conjoining
     with the path condition that reaches [idx] removes spurious
     "an earlier exit was taken" disjuncts introduced by negating later
     branches' taken-expressions. *)
  Pqs.and_ (Pred_env.path_cond env 0 (idx + 1)) !acc
