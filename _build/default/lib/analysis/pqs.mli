open Cpr_ir

(** Predicate query system.

    Elcor's "predicate-cognizant" analyses (Johnson & Schlansker, MICRO-29)
    answer queries such as "are these two predicates disjoint?".  We
    represent each predicate value as a boolean expression in
    disjunctive normal form over {e condition literals}: one literal per
    [cmpp] operation instance (both destinations of a [cmpp] share the
    literal, with opposite polarities for UN/UC), plus opaque literals for
    predicates that are live into a region.

    Distinct literals are treated as independent, which makes every
    positive answer sound (a syntactic contradiction in every conjunction
    pair is a genuine one) and negative answers conservative.  Expressions
    that exceed a size cap degrade to {!unknown}, for which every query
    answers "cannot prove". *)

type key =
  | Cond of int  (** condition computed by the [cmpp] with this op id *)
  | Entry of int  (** opaque: predicate register live into the region *)

type t

val tru : t
val fls : t
val unknown : t
val const : bool -> t
val cond_lit : int -> t
val entry_lit : Reg.t -> t

val and_ : t -> t -> t
val or_ : t -> t -> t
val not_ : t -> t

val is_const_false : t -> bool
val is_const_true : t -> bool
val is_unknown : t -> bool

val disjoint : t -> t -> bool
(** [disjoint a b] proves that [a] and [b] are never simultaneously true.
    False means "cannot prove". *)

val implies : t -> t -> bool
(** [implies a b] proves that whenever [a] holds, [b] holds. *)

val eval : (key -> bool) -> t -> bool option
(** Evaluate under a truth assignment of the literals; [None] for
    {!unknown}.  Used by property tests to cross-check {!disjoint} and
    {!implies} against brute force. *)

val keys : t -> key list
(** Distinct literal keys appearing in the expression (empty for
    {!unknown}). *)

val pp : Format.formatter -> t -> unit
