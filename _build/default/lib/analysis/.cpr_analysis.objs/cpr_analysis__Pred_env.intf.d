lib/analysis/pred_env.mli: Cpr_ir Op Pqs Reg Region
