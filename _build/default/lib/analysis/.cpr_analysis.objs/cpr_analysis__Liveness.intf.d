lib/analysis/liveness.mli: Cpr_ir Op Pqs Pred_env Prog Reg Region
