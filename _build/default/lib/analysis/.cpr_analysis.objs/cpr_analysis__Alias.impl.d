lib/analysis/alias.ml: Array Cpr_ir List Op Prog Reg Region
