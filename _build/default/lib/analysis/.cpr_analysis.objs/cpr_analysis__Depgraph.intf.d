lib/analysis/depgraph.mli: Cpr_ir Cpr_machine Format Liveness Op Prog Reg Region
