lib/analysis/pred_env.ml: Array Cpr_ir Hashtbl List Op Pqs Reg Region
