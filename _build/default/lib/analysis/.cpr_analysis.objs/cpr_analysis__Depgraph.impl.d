lib/analysis/depgraph.ml: Alias Array Cpr_ir Cpr_machine Format List Liveness Op Option Pqs Pred_env Prog Reg Region
