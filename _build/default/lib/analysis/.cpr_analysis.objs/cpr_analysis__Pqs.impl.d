lib/analysis/pqs.ml: Cpr_ir Format Int List Reg
