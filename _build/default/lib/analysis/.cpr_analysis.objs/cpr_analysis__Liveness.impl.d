lib/analysis/liveness.ml: Array Cpr_ir Hashtbl List Op Option Pqs Pred_env Prog Reg Region
