lib/analysis/alias.mli: Cpr_ir Prog Reg Region
