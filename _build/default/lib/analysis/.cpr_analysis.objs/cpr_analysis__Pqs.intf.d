lib/analysis/pqs.mli: Cpr_ir Format Reg
