open Cpr_ir

type kind =
  | Flow of Reg.t
  | Anti of Reg.t
  | Output of Reg.t
  | Mem_flow
  | Mem_anti
  | Mem_output
  | Ctrl
  | Exit_live of Reg.t
  | Br_anticipation

type edge = {
  src : int;
  dst : int;
  kind : kind;
  latency : int;
}

type t = {
  ops : Op.t array;
  lat : int array;
  edges : edge list;
  preds : edge list array;
  succs : edge list array;
}

type flavor =
  | Or_acc
  | And_acc

type access =
  | Use
  | Def  (** plain destination write *)
  | Acc of flavor  (** wired-or / wired-and read-modify-write *)

let flavor_of_action = function
  | Op.On | Op.Oc -> Some Or_acc
  | Op.An | Op.Ac -> Some And_acc
  | Op.Un | Op.Uc -> None

(* Accesses of one op to one register, in evaluation order (uses first). *)
let accesses (op : Op.t) (r : Reg.t) =
  let plain_uses =
    List.filter_map
      (function Op.Reg x when Reg.equal x r -> Some Use | _ -> None)
      op.Op.srcs
    @ (match op.Op.guard with
      | Op.If g when Reg.equal g r -> [ Use ]
      | Op.If _ | Op.True -> [])
  in
  let dest_accesses =
    match op.Op.opcode with
    | Op.Cmpp (_, a1, a2) ->
      let acts = a1 :: Option.to_list a2 in
      List.concat_map
        (fun (act, d) ->
          if Reg.equal d r then
            [ (match flavor_of_action act with Some f -> Acc f | None -> Def) ]
          else [])
        (List.combine acts op.Op.dests)
    | _ -> List.filter_map
             (fun d -> if Reg.equal d r then Some Def else None)
             op.Op.dests
  in
  plain_uses @ dest_accesses

(* Does the op unconditionally kill [r]?  Guarded plain defs and
   accumulator writes do not; UN/UC cmpp destinations write even under a
   false guard. *)
let kills_unconditionally (op : Op.t) r =
  List.exists (Reg.equal r) (Op.writes_when_guard_false op)
  || (op.Op.guard = Op.True
     && List.exists (Reg.equal r) (Op.defs op)
     && not (List.exists (Reg.equal r) (Op.accumulator_dests op)))

let all_regs ops =
  Array.fold_left
    (fun acc op ->
      List.fold_left (fun acc r -> Reg.Set.add r acc) acc
        (Op.defs op @ Op.uses op))
    Reg.Set.empty ops

let build machine (prog : Prog.t) liveness (region : Region.t) =
  let ops = Array.of_list region.Region.ops in
  let n = Array.length ops in
  let lat = Array.map (Cpr_machine.Descr.latency_of machine) ops in
  let env = Pred_env.analyze region in
  let guard_expr = Array.init n (Pred_env.guard_expr env) in
  let edges = ref [] in
  let add src dst kind latency = edges := { src; dst; kind; latency } :: !edges in

  (* Register dependences, one register at a time. *)
  let reg_edges r =
    let evs =
      List.concat
        (List.init n (fun i ->
             List.map (fun a -> (i, a)) (accesses ops.(i) r)))
    in
    let rec pairs = function
      | [] -> ()
      | (i, ai) :: rest ->
        let killed = ref false in
        List.iter
          (fun (j, aj) ->
            if i <> j && not !killed then begin
              (match (ai, aj) with
              | Acc f1, Acc f2 when f1 = f2 -> ()
              | (Def | Acc _), Use -> add i j (Flow r) lat.(i)
              | Use, (Def | Acc _) -> add i j (Anti r) (1 - lat.(j))
              | (Def | Acc _), Acc _ -> add i j (Flow r) lat.(i)
              | (Def | Acc _), Def -> add i j (Output r) (lat.(i) - lat.(j) + 1)
              | Use, Use -> ());
              (* Stop extending pairs from [i] past an unconditional kill:
                 transitivity through the killer preserves ordering.  The
                 kill takes effect at the killer's *definition* event —
                 a read-modify-write op's own use event must not hide its
                 def from earlier events. *)
              if
                (match aj with
                | Def -> kills_unconditionally ops.(j) r
                | Acc _ | Use -> false)
                && j > i
              then killed := true
            end)
          rest;
        pairs rest
    in
    pairs evs
  in
  Reg.Set.iter reg_edges (all_regs ops);

  (* Memory dependences. *)
  let alias = Alias.analyze prog region in
  for i = 0 to n - 1 do
    if Op.is_mem ops.(i) then
      for j = i + 1 to n - 1 do
        if
          Op.is_mem ops.(j)
          && (Op.is_store ops.(i) || Op.is_store ops.(j))
          && (not (Alias.independent alias i j))
          && not (Pqs.disjoint guard_expr.(i) guard_expr.(j))
        then
          match (Op.is_store ops.(i), Op.is_store ops.(j)) with
          | true, false -> add i j Mem_flow lat.(i)
          | false, true -> add i j Mem_anti 0
          | true, true -> add i j Mem_output 1
          | false, false -> ()
      done
  done;

  (* Control dependences around branches. *)
  for b = 0 to n - 1 do
    if Op.is_branch ops.(b) then begin
      let taken = guard_expr.(b) in
      let live = Liveness.live_at_target liveness region ops.(b) in
      (* Forward: ops after the branch. *)
      for j = b + 1 to n - 1 do
        let opj = ops.(j) in
        if not (Pqs.disjoint taken guard_expr.(j)) then
          if Op.is_branch opj || Op.is_store opj then add b j Ctrl lat.(b)
          else
            List.iter
              (fun d ->
                if Reg.Set.mem d live then add b j (Exit_live d) lat.(b))
              (Op.defs opj)
      done;
      (* Backward: effects the taken path needs must land before control
         transfers at [issue(b) + lat(b)]. *)
      for i = 0 to b - 1 do
        let opi = ops.(i) in
        if not (Pqs.disjoint guard_expr.(i) taken) then
          if Op.is_store opi then
            add i b Br_anticipation (lat.(i) - lat.(b))
          else if
            List.exists (fun d -> Reg.Set.mem d live) (Op.defs opi)
          then add i b Br_anticipation (lat.(i) - lat.(b))
      done
    end
  done;

  let preds = Array.make n [] and succs = Array.make n [] in
  List.iter
    (fun e ->
      succs.(e.src) <- e :: succs.(e.src);
      preds.(e.dst) <- e :: preds.(e.dst))
    !edges;
  { ops; lat; edges = !edges; preds; succs }

let n_ops t = Array.length t.ops
let op t i = t.ops.(i)
let edges t = t.edges
let preds t i = t.preds.(i)
let succs t i = t.succs.(i)

(* Edges always point from lower to higher op index except none do —
   all constructed edges satisfy src < dst — so program order is a
   topological order. *)
let asap t =
  let n = n_ops t in
  let a = Array.make n 0 in
  for j = 0 to n - 1 do
    List.iter
      (fun e -> a.(j) <- max a.(j) (a.(e.src) + e.latency))
      t.preds.(j)
  done;
  a

let height t =
  let a = asap t in
  let h = ref 0 in
  for i = 0 to n_ops t - 1 do
    h := max !h (a.(i) + t.lat.(i))
  done;
  !h

let priority t =
  let n = n_ops t in
  let p = Array.make n 0 in
  for i = n - 1 downto 0 do
    p.(i) <- t.lat.(i);
    List.iter (fun e -> p.(i) <- max p.(i) (e.latency + p.(e.dst))) t.succs.(i)
  done;
  p

let kind_name = function
  | Flow r -> "flow:" ^ Reg.to_string r
  | Anti r -> "anti:" ^ Reg.to_string r
  | Output r -> "out:" ^ Reg.to_string r
  | Mem_flow -> "mem-flow"
  | Mem_anti -> "mem-anti"
  | Mem_output -> "mem-out"
  | Ctrl -> "ctrl"
  | Exit_live r -> "exit-live:" ^ Reg.to_string r
  | Br_anticipation -> "br-anticipation"

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf ppf "%d -> %d  %s (lat %d)@,"
        t.ops.(e.src).Op.id t.ops.(e.dst).Op.id (kind_name e.kind) e.latency)
    (List.rev t.edges);
  Format.fprintf ppf "@]"
