(** The benchmark suite: one workload per row of the paper's Tables 2/3
    (SPEC-92 and SPEC-95 applications and Unix utilities), each a
    parameterized {!Kernels} instance whose branch biases, region shapes
    and cold-code fraction mirror the paper's qualitative description of
    that benchmark (see DESIGN.md for the substitution argument). *)

val all : Workload.t list
(** In the paper's row order. *)

val find : string -> Workload.t option
val names : string list
val spec95_names : string list
(** The rows the paper aggregates as Gmean-spec95. *)
