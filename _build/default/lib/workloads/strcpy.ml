open Cpr_ir
module B = Builder

let a_base = 1000
let b_base = 2000

(* Registers are allocated in a fixed layout so tests can refer to them:
   r1 = A cursor, r2 = B cursor, r3 = carried element (the paper's r34). *)
let build ?(unroll = 4) () =
  let ctx = B.create () in
  let r1 = B.gpr ctx and r2 = B.gpr ctx and carried = B.gpr ctx in
  let p0 = B.pred ctx in
  let start =
    B.region ctx "Start" ~fallthrough:"Loop" (fun e ->
        let open B in
        movi e r1 a_base |> ignore;
        movi e r2 b_base |> ignore;
        load e carried ~base:r1 ~off:0 |> ignore;
        cmpp1 e Op.Eq Op.Un p0 (Op.Reg carried) (Op.Imm 0) |> ignore;
        branch_to e ~guard:(Op.If p0) "Exit" |> ignore)
  in
  let loop =
    B.region ctx "Loop" ~fallthrough:"Exit" (fun e ->
        let open B in
        (* Iterations 0 .. unroll-1: store the carried element, load the
           next, exit when it is the terminator.  The element loaded by
           slot i becomes the carried element of slot i+1. *)
        let prev = ref carried in
        for i = 0 to unroll - 1 do
          let addr_b = gpr ctx and addr_a = gpr ctx in
          addi e addr_b r2 i |> ignore;
          store e ~base:addr_b ~off:0 (Op.Reg !prev) |> ignore;
          addi e addr_a r1 (i + 1) |> ignore;
          if i < unroll - 1 then begin
            let v = gpr ctx and p = B.pred ctx in
            load e v ~base:addr_a ~off:0 |> ignore;
            cmpp1 e Op.Eq Op.Un p (Op.Reg v) (Op.Imm 0) |> ignore;
            branch_to e ~guard:(Op.If p) "Exit" |> ignore;
            prev := v
          end
          else begin
            (* Final slot: load into the carried register, advance the
               cursors, and loop back while the element is non-zero. *)
            let p = B.pred ctx in
            load e carried ~base:addr_a ~off:0 |> ignore;
            addi e r1 r1 unroll |> ignore;
            addi e r2 r2 unroll |> ignore;
            cmpp1 e Op.Ne Op.Un p (Op.Reg carried) (Op.Imm 0) |> ignore;
            branch_to e ~guard:(Op.If p) "Loop" |> ignore
          end
        done)
  in
  B.prog ctx ~entry:"Start" ~exit_labels:[ "Exit" ] ~live_out:[]
    ~noalias_bases:[ r1; r2 ] [ start; loop ]

let string_input elts =
  let cells =
    List.mapi (fun i v -> (a_base + i, if v = 0 then 1 else abs v)) elts
    @ [ (a_base + List.length elts, 0) ]
  in
  Cpr_sim.Equiv.input_of_memory cells

let inputs ?(lengths = [ 0; 1; 3; 7; 8; 13; 64; 400 ]) () =
  List.map
    (fun len -> string_input (List.init len (fun i -> 1 + ((i * 7 + 3) mod 250))))
    lengths

let workload =
  Workload.make ~name:"strcpy"
    ~description:"unrolled string copy, highly biased separable exits"
    (fun () -> build ~unroll:8 ())
    (fun () -> inputs ())

let paper_example () = build ~unroll:4 ()
