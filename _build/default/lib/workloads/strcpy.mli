open Cpr_ir

(** The paper's running example (Section 6): a string-copy inner loop
    unrolled [unroll] times, in exactly the shape of Figure 6(b) — per
    unrolled iteration a store of the previously loaded element, the next
    load, a compare and a conditional exit; the final branch is the
    likely-taken loop-back. *)

val a_base : int
val b_base : int

val build : ?unroll:int -> unit -> Prog.t

val string_input : int list -> Cpr_sim.Equiv.input
(** Memory image with the given non-zero elements at [a_base], zero
    terminated. *)

val inputs : ?lengths:int list -> unit -> Cpr_sim.Equiv.input list

val workload : Workload.t
(** unroll 8, mixed string lengths — the Table 2/3 row. *)

val paper_example : unit -> Prog.t
(** unroll 4: the exact Figure 6(b) configuration. *)
