open Kernels

let stream name description spec ~lens ~p =
  Workload.make ~name ~description
    (fun () -> stream_prog spec)
    (fun () ->
      List.mapi
        (fun i len -> stream_input ~spec ~len ~exit_probability:p ~seed:(i * 7919))
        lens)

let dispatch name description spec ~lens ~p =
  Workload.make ~name ~description
    (fun () -> dispatch_prog spec)
    (fun () ->
      List.mapi
        (fun i len -> dispatch_input ~spec ~len ~case_probability:p ~seed:(i * 104729))
        lens)

let case v w = { match_value = v; handler_work = w }

let runs n len = List.init n (fun i -> len + (i * 7))

(* SPEC-92 rows *)

let espresso =
  stream "008.espresso" "bit-set reduction loops, biased exits"
    { default_stream with unroll = 4; work = 3; store = false; accumulate = true;
      counted = true; cold_regions = 6; cold_size = 12 }
    ~lens:(runs 10 260) ~p:0.02

let li22 =
  dispatch "022.li" "tag-dispatch interpreter loop, mild case bias"
    { cases = [ case 3 4; case 9 6 ]; d_unroll = 2; inline_work = 4;
      table_lookup = true; d_cold_regions = 8; d_cold_size = 12 }
    ~lens:[ 1100; 700 ] ~p:0.10

let eqntott =
  stream "023.eqntott" "long bit-vector comparison superblock, mid-weight exits"
    { default_stream with unroll = 16; work = 0; store = false;
      two_streams = true; exit_cond = Cpr_ir.Op.Ne; counted = true;
      cold_regions = 2; cold_size = 10 }
    ~lens:(runs 12 320) ~p:0.015

let compress26 =
  dispatch "026.compress" "hash-probe loop, frequent miss case"
    { cases = [ case 5 5 ]; d_unroll = 2; inline_work = 5; table_lookup = true;
      d_cold_regions = 4; d_cold_size = 10 }
    ~lens:[ 1100; 700 ] ~p:0.05

let ear =
  stream "056.ear" "floating-point filter loop, rare exits"
    { default_stream with unroll = 4; work = 1; fp = 3; store = true;
      counted = true; cold_regions = 4; cold_size = 10 }
    ~lens:(runs 8 400) ~p:0.008

let sc =
  dispatch "072.sc" "cell-evaluation dispatch, moderately biased"
    { cases = [ case 4 4; case 11 3; case 18 5 ]; d_unroll = 2; inline_work = 5;
      table_lookup = false; d_cold_regions = 6; d_cold_size = 12 }
    ~lens:[ 1000; 700 ] ~p:0.08

let cc1 =
  dispatch "085.cc1" "token dispatch, many cold regions, mixed bias"
    { cases = [ case 2 3; case 7 4; case 13 3; case 21 5 ]; d_unroll = 2;
      inline_work = 3; table_lookup = true; d_cold_regions = 12;
      d_cold_size = 15 }
    ~lens:[ 1100; 700 ] ~p:0.18

(* SPEC-95 rows *)

let go =
  dispatch "099.go" "decision kernels dominated by unbiased branches"
    { cases = [ case 3 4; case 8 4; case 15 4 ]; d_unroll = 2; inline_work = 4;
      table_lookup = false; d_cold_regions = 8; d_cold_size = 12 }
    ~lens:[ 1000; 700 ] ~p:0.55

let m88ksim =
  dispatch "124.m88ksim" "instruction-decode dispatch, biased"
    { cases = [ case 6 4; case 12 5 ]; d_unroll = 3; inline_work = 5;
      table_lookup = true; d_cold_regions = 8; d_cold_size = 12 }
    ~lens:[ 1100; 700 ] ~p:0.10

let gcc =
  dispatch "126.gcc" "short superblocks, many cold regions, mixed bias"
    { cases = [ case 2 3; case 5 3; case 9 4; case 17 3 ]; d_unroll = 2;
      inline_work = 3; table_lookup = false; d_cold_regions = 14;
      d_cold_size = 15 }
    ~lens:[ 1100; 700 ] ~p:0.20

let compress29 =
  dispatch "129.compress" "hash-probe loop, frequent miss case (95 input)"
    { cases = [ case 5 6 ]; d_unroll = 2; inline_work = 4; table_lookup = true;
      d_cold_regions = 4; d_cold_size = 10 }
    ~lens:[ 1300; 600 ] ~p:0.045

let li130 =
  dispatch "130.li" "tag-dispatch interpreter loop (95 input)"
    { cases = [ case 3 5; case 9 4 ]; d_unroll = 2; inline_work = 4;
      table_lookup = true; d_cold_regions = 8; d_cold_size = 12 }
    ~lens:[ 1100; 600 ] ~p:0.09

let ijpeg =
  stream "132.ijpeg" "unrolled pixel transform, highly biased exits"
    { default_stream with unroll = 8; work = 4; store = true; counted = true;
      cold_regions = 6; cold_size = 12 }
    ~lens:(runs 6 700) ~p:0.004

let perl =
  dispatch "134.perl" "opcode dispatch, biased"
    { cases = [ case 4 4; case 10 4; case 19 5 ]; d_unroll = 3; inline_work = 4;
      table_lookup = true; d_cold_regions = 10; d_cold_size = 12 }
    ~lens:[ 1100; 700 ] ~p:0.15

let vortex =
  dispatch "147.vortex" "object-validation dispatch, biased"
    { cases = [ case 5 5; case 14 6 ]; d_unroll = 3; inline_work = 6;
      table_lookup = false; d_cold_regions = 12; d_cold_size = 12 }
    ~lens:[ 1000; 700 ] ~p:0.08

(* Unix utilities *)

let cccp =
  dispatch "cccp" "preprocessor char dispatch, rare special characters"
    { cases = [ case 35 3; case 34 4; case 47 3 ]; d_unroll = 4; inline_work = 2;
      table_lookup = false; d_cold_regions = 2; d_cold_size = 8 }
    ~lens:[ 1600; 1000 ] ~p:0.05

let cmp =
  stream "cmp" "byte comparison, exit at first mismatch (very rare)"
    { default_stream with unroll = 8; work = 0; store = false;
      two_streams = true; exit_cond = Cpr_ir.Op.Ne; counted = true;
      cold_regions = 1; cold_size = 8 }
    ~lens:(runs 3 1600) ~p:0.001

let eqn =
  dispatch "eqn" "equation formatter, occasionally special tokens"
    { cases = [ case 36 3; case 94 3 ]; d_unroll = 3; inline_work = 2;
      table_lookup = false; d_cold_regions = 3; d_cold_size = 10 }
    ~lens:[ 1200; 800 ] ~p:0.08

let grep =
  stream "grep" "first-character scan, matches very rare"
    { default_stream with unroll = 8; work = 0; store = false;
      exit_cond = Cpr_ir.Op.Eq; exit_arg = 42; counted = true;
      cold_regions = 1; cold_size = 8 }
    ~lens:(runs 6 900) ~p:0.008

let lex =
  dispatch "lex" "DFA transition loop, rare accepting states"
    { cases = [ case 10 3; case 26 3; case 33 4 ]; d_unroll = 3; inline_work = 2;
      table_lookup = true; d_cold_regions = 3; d_cold_size = 10 }
    ~lens:[ 1500; 800 ] ~p:0.06

let strcpy = Strcpy.workload

let tbl =
  dispatch "tbl" "table formatter, frequent separators"
    { cases = [ case 9 3; case 124 3 ]; d_unroll = 2; inline_work = 3;
      table_lookup = false; d_cold_regions = 4; d_cold_size = 10 }
    ~lens:[ 1100; 700 ] ~p:0.10

let wc =
  stream "wc" "character-count loop, moderately rare flushes"
    { default_stream with unroll = 4; work = 2; store = false; accumulate = true;
      counted = true; cold_regions = 1; cold_size = 8 }
    ~lens:(runs 14 180) ~p:0.025

let yacc =
  dispatch "yacc" "LR parser action dispatch, biased shifts"
    { cases = [ case 7 4; case 15 3; case 23 4 ]; d_unroll = 3; inline_work = 3;
      table_lookup = true; d_cold_regions = 4; d_cold_size = 10 }
    ~lens:[ 1200; 700 ] ~p:0.10

let all =
  [
    espresso; li22; eqntott; compress26; ear; sc; cc1;
    go; m88ksim; gcc; compress29; li130; ijpeg; perl; vortex;
    cccp; cmp; eqn; grep; lex; strcpy; tbl; wc; yacc;
  ]

let names = List.map (fun (w : Workload.t) -> w.Workload.name) all

let spec95_names =
  [
    "099.go"; "124.m88ksim"; "126.gcc"; "129.compress"; "130.li";
    "132.ijpeg"; "134.perl"; "147.vortex";
  ]

let find name =
  List.find_opt (fun (w : Workload.t) -> w.Workload.name = name) all
