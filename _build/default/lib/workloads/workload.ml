open Cpr_ir

type t = {
  name : string;
  description : string;
  build : unit -> Prog.t;
  inputs : unit -> Cpr_sim.Equiv.input list;
}

let make ~name ~description build inputs = { name; description; build; inputs }
