open Cpr_ir
module B = Builder

let text_base = 1000
let second_base = 20000
let out_base = 30000
let counts_base = 40000
let table_base = 50000
let count_cell = 900
let cold_flag_cell = 901

let lcg x = ((x * 1103515245) + 12345) land 0x3FFFFFFF

type stream_spec = {
  unroll : int;
  work : int;
  fp : int;
  store : bool;
  accumulate : bool;
  two_streams : bool;
  exit_cond : Op.cond;
  exit_arg : int;
  counted : bool;
  cold_regions : int;
  cold_size : int;
}

let default_stream =
  {
    unroll = 4;
    work = 1;
    fp = 0;
    store = true;
    accumulate = false;
    two_streams = false;
    exit_cond = Op.Eq;
    exit_arg = 0;
    counted = false;
    cold_regions = 0;
    cold_size = 0;
  }

(* A chain of [n] dependent integer ops seeded by [v]; returns the final
   register (or [v] when n = 0). *)
let work_chain ctx e n v =
  let cur = ref v in
  for k = 1 to n do
    let d = B.gpr ctx in
    let opc = if k mod 2 = 0 then Op.Xor else Op.Add in
    let (_ : Op.t) = B.alu e opc d (Op.Reg !cur) (Op.Imm (k * 3)) in
    cur := d
  done;
  !cur

let fp_chain ctx e n v =
  let cur = ref v in
  for k = 1 to n do
    let d = B.gpr ctx in
    let opc = if k mod 2 = 0 then Op.Fmul else Op.Fadd in
    let (_ : Op.t) = B.emit e (Op.Falu opc) [ d ] [ Op.Reg !cur; Op.Imm k ] in
    cur := d
  done;
  !cur

(* Never-entered regions guarded by a flag cell that inputs keep 0;
   they contribute static code (and static branches) like the cold
   majority of a real application. *)
let cold_chain ctx ~regions ~size ~exit_label =
  List.init regions (fun k ->
      let label = Printf.sprintf "Cold%d" (k + 1) in
      let next =
        if k = regions - 1 then exit_label else Printf.sprintf "Cold%d" (k + 2)
      in
      B.region ctx label ~fallthrough:next (fun e ->
          let v = B.gpr ctx in
          let (_ : Op.t) = B.load e v ~base:v ~off:(cold_flag_cell + k) in
          let w = ref v in
          for j = 1 to max 1 (size - 4) do
            let d = B.gpr ctx in
            let (_ : Op.t) = B.alu e Op.Add d (Op.Reg !w) (Op.Imm j) in
            w := d
          done;
          let p = B.pred ctx in
          let (_ : Op.t) =
            B.cmpp1 e Op.Gt Op.Un p (Op.Reg !w) (Op.Imm 1_000_000)
          in
          let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) exit_label in
          ()))

let cold_hook ctx e ~cold_regions =
  if cold_regions > 0 then begin
    let flag = B.gpr ctx and base = B.gpr ctx and p = B.pred ctx in
    let (_ : Op.t) = B.movi e base 0 in
    let (_ : Op.t) = B.load e flag ~base ~off:cold_flag_cell in
    let (_ : Op.t) = B.cmpp1 e Op.Ne Op.Un p (Op.Reg flag) (Op.Imm 0) in
    let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) "Cold1" in
    ()
  end

let stream_prog spec =
  let ctx = B.create () in
  let r_text = B.gpr ctx and r_second = B.gpr ctx and r_out = B.gpr ctx in
  let r_cnt = B.gpr ctx and r_acc = B.gpr ctx and r_zero = B.gpr ctx in
  let carried = B.gpr ctx in
  let start =
    B.region ctx "Start" ~fallthrough:"Loop" (fun e ->
        let (_ : Op.t) = B.movi e r_text text_base in
        if spec.two_streams then
          ignore (B.movi e r_second second_base : Op.t);
        if spec.store then ignore (B.movi e r_out out_base : Op.t);
        if spec.accumulate then ignore (B.movi e r_acc 0 : Op.t);
        cold_hook ctx e ~cold_regions:spec.cold_regions;
        if spec.counted then begin
          let (_ : Op.t) = B.movi e r_zero 0 in
          let (_ : Op.t) = B.load e r_cnt ~base:r_zero ~off:count_cell in
          ()
        end
        else begin
          (* Sentinel style: preload the first element and exit if it
             already satisfies the exit condition (strcpy's preheader). *)
          let p = B.pred ctx in
          let (_ : Op.t) = B.load e carried ~base:r_text ~off:0 in
          let (_ : Op.t) =
            B.cmpp1 e spec.exit_cond Op.Un p (Op.Reg carried)
              (Op.Imm spec.exit_arg)
          in
          let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) "Exit" in
          ()
        end)
  in
  (* Per slot: the value the exit condition tests, and its rhs. *)
  let slot_compare e i v =
    if spec.two_streams then begin
      let a = B.gpr ctx and v2 = B.gpr ctx in
      let (_ : Op.t) = B.addi e a r_second i in
      let (_ : Op.t) = B.load e v2 ~base:a ~off:0 in
      (Op.Reg v, Op.Reg v2)
    end
    else (Op.Reg v, Op.Imm spec.exit_arg)
  in
  let finish_slot e i v =
    (* work, fp, and store/accumulate for the element in [v] *)
    if spec.work > 0 || spec.fp > 0 || spec.store || spec.accumulate then begin
      let w = work_chain ctx e spec.work v in
      let w = fp_chain ctx e spec.fp w in
      if spec.store then begin
        let a = B.gpr ctx in
        let (_ : Op.t) = B.addi e a r_out i in
        let (_ : Op.t) = B.store e ~base:a ~off:0 (Op.Reg w) in
        ()
      end;
      if spec.accumulate then begin
        let (_ : Op.t) = B.alu e Op.Add r_acc (Op.Reg r_acc) (Op.Reg w) in
        ()
      end
    end
  in
  let loop =
    B.region ctx "Loop" ~fallthrough:"Exit" (fun e ->
        if spec.counted then begin
          for i = 0 to spec.unroll - 1 do
            let a = B.gpr ctx and v = B.gpr ctx and p = B.pred ctx in
            let (_ : Op.t) = B.addi e a r_text i in
            let (_ : Op.t) = B.load e v ~base:a ~off:0 in
            finish_slot e i v;
            let lhs, rhs = slot_compare e i v in
            let (_ : Op.t) = B.cmpp1 e spec.exit_cond Op.Un p lhs rhs in
            let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) "Exit" in
            ()
          done;
          let (_ : Op.t) = B.addi e r_text r_text spec.unroll in
          if spec.two_streams then begin
            let (_ : Op.t) = B.addi e r_second r_second spec.unroll in
            ()
          end;
          if spec.store then begin
            let (_ : Op.t) = B.addi e r_out r_out spec.unroll in
            ()
          end;
          let (_ : Op.t) = B.addi e r_cnt r_cnt (-spec.unroll) in
          let p = B.pred ctx in
          let (_ : Op.t) = B.cmpp1 e Op.Gt Op.Un p (Op.Reg r_cnt) (Op.Imm 0) in
          let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) "Loop" in
          ()
        end
        else begin
          (* strcpy shape: slot i consumes the element loaded by slot i-1
             (the preheader for slot 0); the final slot loads the carried
             element and loops back while it does not satisfy the exit
             condition. *)
          let prev = ref carried in
          for i = 0 to spec.unroll - 1 do
            finish_slot e i !prev;
            let a = B.gpr ctx in
            let (_ : Op.t) = B.addi e a r_text (i + 1) in
            if i < spec.unroll - 1 then begin
              let v = B.gpr ctx and p = B.pred ctx in
              let (_ : Op.t) = B.load e v ~base:a ~off:0 in
              let (_ : Op.t) =
                B.cmpp1 e spec.exit_cond Op.Un p (Op.Reg v)
                  (Op.Imm spec.exit_arg)
              in
              let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) "Exit" in
              prev := v
            end
            else begin
              let p = B.pred ctx in
              let (_ : Op.t) = B.load e carried ~base:a ~off:0 in
              let (_ : Op.t) = B.addi e r_text r_text spec.unroll in
              if spec.store then begin
                let (_ : Op.t) = B.addi e r_out r_out spec.unroll in
                ()
              end;
              let (_ : Op.t) =
                B.cmpp1 e (Op.negate_cond spec.exit_cond) Op.Un p
                  (Op.Reg carried) (Op.Imm spec.exit_arg)
              in
              let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) "Loop" in
              ()
            end
          done
        end)
  in
  let colds =
    cold_chain ctx ~regions:spec.cold_regions ~size:spec.cold_size
      ~exit_label:"Exit"
  in
  B.prog ctx ~entry:"Start" ~exit_labels:[ "Exit" ]
    ~live_out:(if spec.accumulate then [ r_acc ] else [])
    ~noalias_bases:[ r_text; r_second; r_out; r_zero ]
    (start :: loop :: colds)

(* A value satisfying (or violating) [cond _ arg]. *)
let value_for cond arg ~fire rnd =
  let off = 1 + (rnd mod 13) in
  match (cond, fire) with
  | Op.Eq, true | Op.Ne, false | Op.Le, true | Op.Ge, true -> arg
  | Op.Eq, false | Op.Ne, true -> arg + off
  | Op.Lt, true -> arg - off
  | Op.Lt, false | Op.Le, false -> arg + off
  | Op.Gt, true -> arg + off
  | Op.Gt, false | Op.Ge, false -> arg - off

let stream_input ~spec ~len ~exit_probability ~seed =
  let rnd = ref (lcg (seed + 17)) in
  let next () =
    rnd := lcg !rnd;
    !rnd
  in
  let fire () = float_of_int (next () mod 10_000) < exit_probability *. 10_000. in
  let cells = ref [ (cold_flag_cell, 0) ] in
  if spec.counted then cells := (count_cell, len) :: !cells;
  for i = 0 to len + spec.unroll do
    let is_terminator = (not spec.counted) && i = len - 1 in
    let fires = i < len && (is_terminator || fire ()) in
    if spec.two_streams then begin
      (* the condition compares a[i] against b[i] *)
      let a = 10 + (next () mod 200) in
      let b = value_for spec.exit_cond a ~fire:fires (next ()) in
      cells := (second_base + i, b) :: (text_base + i, a) :: !cells
    end
    else
      cells :=
        (text_base + i, value_for spec.exit_cond spec.exit_arg ~fire:fires (next ()))
        :: !cells
  done;
  Cpr_sim.Equiv.input_of_memory (List.rev !cells)

type case_spec = {
  match_value : int;
  handler_work : int;
}

type dispatch_spec = {
  cases : case_spec list;
  d_unroll : int;
  inline_work : int;
  table_lookup : bool;
  d_cold_regions : int;
  d_cold_size : int;
}

let default_dispatch =
  {
    cases = [ { match_value = 35; handler_work = 4 } ];
    d_unroll = 3;
    inline_work = 3;
    table_lookup = false;
    d_cold_regions = 0;
    d_cold_size = 0;
  }

let dispatch_prog spec =
  let ctx = B.create () in
  let r_text = B.gpr ctx and r_out = B.gpr ctx and r_cnt = B.gpr ctx in
  let r_zero = B.gpr ctx and r_table = B.gpr ctx in
  let start =
    B.region ctx "Start" ~fallthrough:"Loop" (fun e ->
        let (_ : Op.t) = B.movi e r_text text_base in
        let (_ : Op.t) = B.movi e r_out out_base in
        let (_ : Op.t) = B.movi e r_zero 0 in
        if spec.table_lookup then
          ignore (B.movi e r_table table_base : Op.t);
        cold_hook ctx e ~cold_regions:spec.d_cold_regions;
        let (_ : Op.t) = B.load e r_cnt ~base:r_zero ~off:count_cell in
        ())
  in
  let handler_label j i = Printf.sprintf "Case%d_%d" (j + 1) i in
  let loop =
    B.region ctx "Loop" ~fallthrough:"Advance" (fun e ->
        for i = 0 to spec.d_unroll - 1 do
          let a = B.gpr ctx and v = B.gpr ctx in
          let (_ : Op.t) = B.addi e a r_text i in
          let (_ : Op.t) = B.load e v ~base:a ~off:0 in
          List.iteri
            (fun j (c : case_spec) ->
              let p = B.pred ctx in
              let (_ : Op.t) =
                B.cmpp1 e Op.Eq Op.Un p (Op.Reg v) (Op.Imm c.match_value)
              in
              let (_ : Op.t) =
                B.branch_to e ~guard:(Op.If p) (handler_label j i)
              in
              ())
            spec.cases;
          let w =
            if spec.table_lookup then begin
              let m = B.gpr ctx and a = B.gpr ctx and t = B.gpr ctx in
              let (_ : Op.t) = B.alu e Op.And_ m (Op.Reg v) (Op.Imm 63) in
              let (_ : Op.t) = B.add e a r_table m in
              let (_ : Op.t) = B.load e t ~base:a ~off:0 in
              work_chain ctx e spec.inline_work t
            end
            else work_chain ctx e spec.inline_work v
          in
          let a_out = B.gpr ctx in
          let (_ : Op.t) = B.addi e a_out r_out i in
          let (_ : Op.t) = B.store e ~base:a_out ~off:0 (Op.Reg w) in
          ()
        done)
  in
  let advance =
    B.region ctx "Advance" ~fallthrough:"Back" (fun e ->
        let (_ : Op.t) = B.addi e r_text r_text spec.d_unroll in
        let (_ : Op.t) = B.addi e r_out r_out spec.d_unroll in
        let (_ : Op.t) = B.addi e r_cnt r_cnt (-spec.d_unroll) in
        ())
  in
  let back =
    B.region ctx "Back" ~fallthrough:"Exit" (fun e ->
        let p = B.pred ctx in
        let (_ : Op.t) = B.cmpp1 e Op.Gt Op.Un p (Op.Reg r_cnt) (Op.Imm 0) in
        let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) "Loop" in
        ())
  in
  (* One duplicated handler per (case, slot): bump the case counter, then
     resume scanning just past the special element. *)
  let handlers =
    List.concat
      (List.mapi
         (fun j (c : case_spec) ->
           List.init spec.d_unroll (fun i ->
               B.region ctx (handler_label j i) ~fallthrough:"Back" (fun e ->
                   let v = B.gpr ctx and w0 = B.gpr ctx in
                   let (_ : Op.t) =
                     B.emit e Op.Load [ v ]
                       [ Op.Reg r_zero; Op.Imm (counts_base + j) ]
                   in
                   let (_ : Op.t) = B.alu e Op.Add w0 (Op.Reg v) (Op.Imm 1) in
                   let w = work_chain ctx e c.handler_work w0 in
                   let (_ : Op.t) =
                     B.emit e Op.Store []
                       [ Op.Reg r_zero; Op.Imm (counts_base + j); Op.Reg w ]
                   in
                   let (_ : Op.t) = B.addi e r_text r_text (i + 1) in
                   let (_ : Op.t) = B.addi e r_out r_out i in
                   let (_ : Op.t) = B.addi e r_cnt r_cnt (-(i + 1)) in
                   ())))
         spec.cases)
  in
  let colds =
    cold_chain ctx ~regions:spec.d_cold_regions ~size:spec.d_cold_size
      ~exit_label:"Exit"
  in
  B.prog ctx ~entry:"Start" ~exit_labels:[ "Exit" ] ~live_out:[]
    ~noalias_bases:[ r_text; r_out; r_zero; r_table ]
    ((start :: loop :: advance :: back :: handlers) @ colds)

let dispatch_input ~spec ~len ~case_probability ~seed =
  let rnd = ref (lcg (seed + 29)) in
  let next () =
    rnd := lcg !rnd;
    !rnd
  in
  let n_cases = max 1 (List.length spec.cases) in
  let case_values =
    List.map (fun (c : case_spec) -> c.match_value) spec.cases
  in
  let normal () =
    (* a value that matches no case *)
    let rec go v = if List.mem v case_values then go (v + 1) else v in
    go (200 + (next () mod 50))
  in
  let cells = ref [ (cold_flag_cell, 0); (count_cell, len) ] in
  for i = 0 to len + spec.d_unroll do
    let v =
      if
        i < len
        && float_of_int (next () mod 10_000) < case_probability *. 10_000.
      then List.nth case_values (next () mod n_cases)
      else normal ()
    in
    cells := (text_base + i, v) :: !cells
  done;
  (* table contents for table_lookup kernels *)
  for k = 0 to 63 do
    cells := (table_base + k, (k * 7) + 1) :: !cells
  done;
  Cpr_sim.Equiv.input_of_memory (List.rev !cells)
