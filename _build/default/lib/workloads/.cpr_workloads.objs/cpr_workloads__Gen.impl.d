lib/workloads/gen.ml: Array Builder Cpr_ir Cpr_sim Kernels List Op Printf
