lib/workloads/workload.mli: Cpr_ir Cpr_sim Prog
