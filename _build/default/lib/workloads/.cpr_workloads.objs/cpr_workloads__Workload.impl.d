lib/workloads/workload.ml: Cpr_ir Cpr_sim Prog
