lib/workloads/gen.mli: Cpr_ir Cpr_sim Prog
