lib/workloads/kernels.mli: Cpr_ir Cpr_sim Op Prog
