lib/workloads/strcpy.ml: Builder Cpr_ir Cpr_sim List Op Workload
