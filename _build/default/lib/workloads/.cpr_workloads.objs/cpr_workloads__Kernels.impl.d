lib/workloads/kernels.ml: Builder Cpr_ir Cpr_sim List Op Printf
