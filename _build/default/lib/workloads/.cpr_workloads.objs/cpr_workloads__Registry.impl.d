lib/workloads/registry.ml: Cpr_ir Kernels List Strcpy Workload
