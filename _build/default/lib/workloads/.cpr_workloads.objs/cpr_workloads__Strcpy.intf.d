lib/workloads/strcpy.mli: Cpr_ir Cpr_sim Prog Workload
