open Cpr_ir

(** Parameterized kernel generators shared by the benchmark workloads.

    Most of the paper's benchmarks reduce to one of two inner-loop shapes:

    - {!stream_kernel}: scan an array with an unrolled loop; each slot
      loads an element, runs some dependent integer/floating-point work,
      optionally stores, and side-exits when a condition on the element
      holds; the loop-back branch is predominantly taken.  (strcpy, cmp,
      grep, wc, eqn, tbl, eqntott, compress, ear, ...)

    - {!dispatch_kernel}: a tokenizer/interpreter loop; each iteration
      loads an element and tests a chain of (rare) special cases, each
      exiting to its own handler region which rejoins the loop; the
      common case falls through to inline work.  (cccp, lex, yacc, cc1,
      go, m88ksim, perl, vortex, ...)

    All data addresses derive from bases declared pairwise non-aliasing;
    inputs are generated with a deterministic LCG. *)

type stream_spec = {
  unroll : int;
  work : int;  (** dependent integer ops per slot *)
  fp : int;  (** floating-point ops per slot (class F) *)
  store : bool;  (** store a result per slot *)
  accumulate : bool;
      (** keep a serial register reduction across slots (wc-style
          counters) *)
  two_streams : bool;
      (** load a second element per slot and compare the two streams in
          the exit condition (cmp / eqntott shape) *)
  exit_cond : Op.cond;  (** side-exit when [elt cond exit_arg] *)
  exit_arg : int;
  counted : bool;
      (** loop-back while a counter is positive, in addition to the data-
          dependent side exits *)
  cold_regions : int;  (** never-entered regions, for static-code realism *)
  cold_size : int;
}

val default_stream : stream_spec

val stream_prog : stream_spec -> Prog.t

val stream_input :
  spec:stream_spec -> len:int -> exit_probability:float -> seed:int
  -> Cpr_sim.Equiv.input
(** Array contents such that the slot exit condition fires with roughly
    the given probability per element; the array is terminated in a way
    that always ends the loop (sentinel for uncounted loops, length bound
    for counted ones). *)

type case_spec = {
  match_value : int;  (** the special element value this case recognizes *)
  handler_work : int;  (** integer ops in the handler region *)
}

type dispatch_spec = {
  cases : case_spec list;  (** tested in order, each a side exit *)
  d_unroll : int;
      (** elements processed per loop iteration; each gets its own case
          checks, and each (case, slot) pair its own duplicated handler
          region — the shape of IMPACT's unrolled superblocks *)
  inline_work : int;  (** common-path ops per element *)
  table_lookup : bool;  (** add a dependent table load per element *)
  d_cold_regions : int;
  d_cold_size : int;
}

val default_dispatch : dispatch_spec

val dispatch_prog : dispatch_spec -> Prog.t

val dispatch_input :
  spec:dispatch_spec -> len:int -> case_probability:float -> seed:int
  -> Cpr_sim.Equiv.input
(** Elements drawn so that each iteration triggers one of the special
    cases with the given total probability (split evenly among cases). *)

val lcg : int -> int
(** Deterministic pseudo-random step used by the input generators. *)
