open Cpr_ir

(** A benchmark: a program builder plus training inputs.

    Each workload stands in for one row of the paper's Tables 2/3 (see
    DESIGN.md for the substitution rationale); its branch-bias and
    region-shape parameters mirror the qualitative description the paper
    gives of that benchmark. *)

type t = {
  name : string;
  description : string;
  build : unit -> Prog.t;
  inputs : unit -> Cpr_sim.Equiv.input list;
}

val make :
  name:string -> description:string -> (unit -> Prog.t)
  -> (unit -> Cpr_sim.Equiv.input list) -> t
