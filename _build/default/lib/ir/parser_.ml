exception Parse_error of int * string

let fail line fmt = Format.kasprintf (fun m -> raise (Parse_error (line, m))) fmt

let reg_of_string ~line s =
  let cls_of = function
    | 'r' -> Some Reg.Gpr
    | 'p' -> Some Reg.Pred
    | 'b' -> Some Reg.Btr
    | _ -> None
  in
  if String.length s < 2 then fail line "bad register %S" s
  else
    match
      (cls_of s.[0], int_of_string_opt (String.sub s 1 (String.length s - 1)))
    with
    | Some cls, Some id ->
      (match cls with
      | Reg.Gpr -> Reg.gpr id
      | Reg.Pred -> Reg.pred id
      | Reg.Btr -> Reg.btr id)
    | _ -> fail line "bad register %S" s

let action_of_string ~line = function
  | "un" -> Op.Un
  | "uc" -> Op.Uc
  | "on" -> Op.On
  | "oc" -> Op.Oc
  | "an" -> Op.An
  | "ac" -> Op.Ac
  | s -> fail line "bad cmpp action %S" s

let cond_of_string ~line = function
  | "eq" -> Op.Eq
  | "ne" -> Op.Ne
  | "lt" -> Op.Lt
  | "le" -> Op.Le
  | "gt" -> Op.Gt
  | "ge" -> Op.Ge
  | s -> fail line "bad condition %S" s

let opcode_of_string ~line s =
  match s with
  | "add" -> Op.Alu Op.Add
  | "sub" -> Op.Alu Op.Sub
  | "mul" -> Op.Alu Op.Mul
  | "div" -> Op.Alu Op.Div
  | "and" -> Op.Alu Op.And_
  | "or" -> Op.Alu Op.Or_
  | "xor" -> Op.Alu Op.Xor
  | "shl" -> Op.Alu Op.Shl
  | "shr" -> Op.Alu Op.Shr
  | "mov" -> Op.Alu Op.Mov
  | "fadd" -> Op.Falu Op.Fadd
  | "fsub" -> Op.Falu Op.Fsub
  | "fmul" -> Op.Falu Op.Fmul
  | "fdiv" -> Op.Falu Op.Fdiv
  | "load" -> Op.Load
  | "store" -> Op.Store
  | "pbr" -> Op.Pbr
  | "branch" -> Op.Branch
  | _ -> (
    match String.split_on_char '.' s with
    | "cmpp" :: rest -> (
      match rest with
      | [ a1; c ] ->
        Op.Cmpp (cond_of_string ~line c, action_of_string ~line a1, None)
      | [ a1; a2; c ] ->
        Op.Cmpp
          ( cond_of_string ~line c,
            action_of_string ~line a1,
            Some (action_of_string ~line a2) )
      | _ -> fail line "bad cmpp opcode %S" s)
    | [ "pinit"; bits ] ->
      Op.Pred_init
        (List.init (String.length bits) (fun i -> bits.[i] = '1'))
    | _ -> fail line "unknown opcode %S" s)

let split_trim c s =
  String.split_on_char c s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let operand_of_string ~line s =
  match int_of_string_opt s with
  | Some i -> Op.Imm i
  | None ->
    if
      String.length s >= 2
      && (match s.[0] with 'r' | 'p' | 'b' -> true | _ -> false)
      && Option.is_some
           (int_of_string_opt (String.sub s 1 (String.length s - 1)))
    then Op.Reg (reg_of_string ~line s)
    else Op.Lab s

(* "ID. [dests =] opcode(srcs) if guard" *)
let op_of_string ~line s =
  let s = String.trim s in
  let id, rest =
    match String.index_opt s '.' with
    | None -> fail line "missing op id in %S" s
    | Some dot -> (
      match int_of_string_opt (String.sub s 0 dot) with
      | Some id ->
        (id, String.trim (String.sub s (dot + 1) (String.length s - dot - 1)))
      | None -> fail line "bad op id in %S" s)
  in
  let guard, rest =
    match String.index_opt rest ' ' with
    | _ -> (
      (* split on " if " from the right *)
      let marker = " if " in
      let rec find_last from acc =
        if from + String.length marker > String.length rest then acc
        else if String.sub rest from (String.length marker) = marker then
          find_last (from + 1) (Some from)
        else find_last (from + 1) acc
      in
      match find_last 0 None with
      | None -> fail line "missing guard in %S" s
      | Some i ->
        let g = String.trim (String.sub rest (i + 4) (String.length rest - i - 4)) in
        let guard =
          if g = "T" then Op.True else Op.If (reg_of_string ~line g)
        in
        (guard, String.trim (String.sub rest 0 i)))
  in
  let dests, rest =
    match String.index_opt rest '=' with
    | Some eq
      when not (String.contains (String.sub rest 0 eq) '(') ->
      ( List.map (reg_of_string ~line) (split_trim ',' (String.sub rest 0 eq)),
        String.trim (String.sub rest (eq + 1) (String.length rest - eq - 1)) )
    | _ -> ([], rest)
  in
  match (String.index_opt rest '(', String.rindex_opt rest ')') with
  | Some lp, Some rp when lp < rp ->
    let opcode = opcode_of_string ~line (String.trim (String.sub rest 0 lp)) in
    let srcs =
      List.map (operand_of_string ~line)
        (split_trim ',' (String.sub rest (lp + 1) (rp - lp - 1)))
    in
    Op.make ~id ~guard opcode dests srcs
  | _ -> fail line "missing operand list in %S" s

let of_text text =
  let lines = String.split_on_char '\n' text in
  let entry = ref None in
  let exits = ref [ "Exit" ] in
  let live_out = ref [] in
  let noalias = ref [] in
  let regions = ref [] in
  let current = ref None in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let l = String.trim raw in
      if l = "" then ()
      else
        match (split_trim ' ' l, !current) with
        | "program" :: "entry" :: e :: [], None -> entry := Some e
        | "exits" :: ls, None -> exits := ls
        | "liveout" :: rs, None ->
          live_out := List.map (reg_of_string ~line) rs
        | "noalias" :: rs, None ->
          noalias := List.map (reg_of_string ~line) rs
        | "region" :: label :: rest, None ->
          let fallthrough =
            match rest with
            | [] -> None
            | [ "fallthrough"; l ] -> Some l
            | _ -> fail line "bad region header %S" l
          in
          current := Some (label, fallthrough, ref [])
        | [ "endregion" ], Some (label, fallthrough, ops) ->
          regions := Region.make ?fallthrough label (List.rev !ops) :: !regions;
          current := None
        | _, Some (_, _, ops) -> ops := op_of_string ~line l :: !ops
        | _, None -> fail line "unexpected line %S" l)
    lines;
  (match !current with
  | Some (label, _, _) -> fail 0 "unterminated region %s" label
  | None -> ());
  match !entry with
  | None -> fail 0 "missing program entry"
  | Some entry ->
    Prog.create ~entry ~exit_labels:!exits ~live_out:!live_out
      ~noalias_bases:!noalias (List.rev !regions)
