(** Construction DSL for IR programs.

    A {!ctx} mints fresh registers and op ids; a {!b} accumulates the
    operations of one region.  Typical use:

    {[
      let ctx = Builder.create () in
      let a = Builder.gpr ctx and p = Builder.pred ctx in
      let loop =
        Builder.region ctx "Loop" ~fallthrough:"Exit" (fun e ->
            Builder.addi e a a 1;
            Builder.cmpp1 e Op.Eq Op.Un p (Op.Reg a) (Op.Imm 10);
            Builder.branch_to e ~guard:(Op.If p) "Loop")
      in
      Builder.prog ctx ~entry:"Loop" [ loop ]
    ]} *)

type ctx
type b

val create : unit -> ctx
val gpr : ctx -> Reg.t
val pred : ctx -> Reg.t
val btr : ctx -> Reg.t
val gprs : ctx -> int -> Reg.t array
val preds : ctx -> int -> Reg.t array

val region :
  ctx -> ?fallthrough:string -> string -> (b -> unit) -> Region.t

val prog :
  ctx -> entry:string -> ?exit_labels:string list -> ?live_out:Reg.t list
  -> ?noalias_bases:Reg.t list -> Region.t list -> Prog.t

(** {2 Emitters}  All take an optional [?guard] (default [True]). *)

val emit : b -> ?guard:Op.guard -> Op.opcode -> Reg.t list -> Op.operand list -> Op.t
val alu : b -> ?guard:Op.guard -> Op.alu -> Reg.t -> Op.operand -> Op.operand -> Op.t
val add : b -> ?guard:Op.guard -> Reg.t -> Reg.t -> Reg.t -> Op.t
val addi : b -> ?guard:Op.guard -> Reg.t -> Reg.t -> int -> Op.t
val movi : b -> ?guard:Op.guard -> Reg.t -> int -> Op.t
val mov : b -> ?guard:Op.guard -> Reg.t -> Reg.t -> Op.t
val load : b -> ?guard:Op.guard -> Reg.t -> base:Reg.t -> off:int -> Op.t
val store : b -> ?guard:Op.guard -> base:Reg.t -> off:int -> Op.operand -> Op.t

val cmpp1 :
  b -> ?guard:Op.guard -> Op.cond -> Op.action -> Reg.t -> Op.operand
  -> Op.operand -> Op.t

val cmpp2 :
  b -> ?guard:Op.guard -> Op.cond -> Op.action * Reg.t -> Op.action * Reg.t
  -> Op.operand -> Op.operand -> Op.t

val pred_init : b -> ?guard:Op.guard -> (Reg.t * bool) list -> Op.t

val branch_to : b -> ?guard:Op.guard -> string -> Op.t
(** Emits a [pbr] to a fresh btr followed by a [branch]; returns the branch
    operation. *)

val pbr : b -> ?guard:Op.guard -> Reg.t -> string -> Op.t
val branch : b -> ?guard:Op.guard -> Reg.t -> Op.t
