type t = {
  entry : string;
  tbl : (string, Region.t) Hashtbl.t;
  mutable order : string list;
  mutable exit_labels : string list;
  mutable live_out : Reg.t list;
  mutable noalias_bases : Reg.t list;
  mutable next_op_id : int;
  mutable next_gpr : int;
  mutable next_pred : int;
  mutable next_btr : int;
}

let find t label = Hashtbl.find_opt t.tbl label

let find_exn t label =
  match find t label with
  | Some r -> r
  | None -> invalid_arg ("Prog.find_exn: no region " ^ label)

let regions t = List.map (find_exn t) t.order

let iter_ops t f =
  List.iter (fun r -> List.iter f r.Region.ops) (regions t)

let sync_generators t =
  iter_ops t (fun (op : Op.t) ->
      t.next_op_id <- max t.next_op_id (op.Op.id + 1);
      let see (r : Reg.t) =
        match r.Reg.cls with
        | Reg.Gpr -> t.next_gpr <- max t.next_gpr (r.Reg.id + 1)
        | Reg.Pred -> t.next_pred <- max t.next_pred (r.Reg.id + 1)
        | Reg.Btr -> t.next_btr <- max t.next_btr (r.Reg.id + 1)
      in
      List.iter see (Op.defs op);
      List.iter see (Op.uses op))

let create ~entry ?(exit_labels = [ "Exit" ]) ?(live_out = [])
    ?(noalias_bases = []) rs =
  let tbl = Hashtbl.create 17 in
  List.iter (fun (r : Region.t) -> Hashtbl.replace tbl r.Region.label r) rs;
  let t =
    {
      entry;
      tbl;
      order = List.map (fun (r : Region.t) -> r.Region.label) rs;
      exit_labels;
      live_out;
      noalias_bases;
      next_op_id = 0;
      next_gpr = 0;
      next_pred = 0;
      next_btr = 0;
    }
  in
  sync_generators t;
  t

let add_region t ?after (r : Region.t) =
  if Hashtbl.mem t.tbl r.Region.label then
    invalid_arg ("Prog.add_region: duplicate label " ^ r.Region.label);
  Hashtbl.replace t.tbl r.Region.label r;
  t.order <-
    (match after with
    | None -> t.order @ [ r.Region.label ]
    | Some a ->
      List.concat_map
        (fun l -> if l = a then [ l; r.Region.label ] else [ l ])
        t.order)

let replace_region t (r : Region.t) =
  if not (Hashtbl.mem t.tbl r.Region.label) then
    invalid_arg ("Prog.replace_region: unknown label " ^ r.Region.label);
  Hashtbl.replace t.tbl r.Region.label r

let is_exit t label = List.mem label t.exit_labels

let fresh_op_id t =
  let id = t.next_op_id in
  t.next_op_id <- id + 1;
  id

let fresh_gpr t =
  let id = t.next_gpr in
  t.next_gpr <- id + 1;
  Reg.gpr id

let fresh_pred t =
  let id = t.next_pred in
  t.next_pred <- id + 1;
  Reg.pred id

let fresh_btr t =
  let id = t.next_btr in
  t.next_btr <- id + 1;
  Reg.btr id

let copy t =
  let tbl = Hashtbl.create 17 in
  Hashtbl.iter (fun k r -> Hashtbl.replace tbl k (Region.copy r)) t.tbl;
  {
    entry = t.entry;
    tbl;
    order = t.order;
    exit_labels = t.exit_labels;
    live_out = t.live_out;
    noalias_bases = t.noalias_bases;
    next_op_id = t.next_op_id;
    next_gpr = t.next_gpr;
    next_pred = t.next_pred;
    next_btr = t.next_btr;
  }

let static_op_count t =
  List.fold_left (fun acc r -> acc + Region.static_op_count r) 0 (regions t)

let clear_profile t = List.iter Region.clear_profile (regions t)

let pp ppf t =
  Format.fprintf ppf "@[<v>program (entry %s)@,%a@]" t.entry
    (Format.pp_print_list Region.pp)
    (regions t)
