type ctx = {
  mutable next_id : int;
  mutable next_gpr : int;
  mutable next_pred : int;
  mutable next_btr : int;
}

type b = {
  ctx : ctx;
  mutable rev_ops : Op.t list;
}

let create () = { next_id = 1; next_gpr = 1; next_pred = 1; next_btr = 1 }

let gpr ctx =
  let r = Reg.gpr ctx.next_gpr in
  ctx.next_gpr <- ctx.next_gpr + 1;
  r

let pred ctx =
  let r = Reg.pred ctx.next_pred in
  ctx.next_pred <- ctx.next_pred + 1;
  r

let btr ctx =
  let r = Reg.btr ctx.next_btr in
  ctx.next_btr <- ctx.next_btr + 1;
  r

let gprs ctx n = Array.init n (fun _ -> gpr ctx)
let preds ctx n = Array.init n (fun _ -> pred ctx)

let emit b ?(guard = Op.True) opcode dests srcs =
  let id = b.ctx.next_id in
  b.ctx.next_id <- id + 1;
  let op = Op.make ~id ~guard opcode dests srcs in
  b.rev_ops <- op :: b.rev_ops;
  op

let alu b ?guard a d x y = emit b ?guard (Op.Alu a) [ d ] [ x; y ]
let add b ?guard d x y = alu b ?guard Op.Add d (Op.Reg x) (Op.Reg y)
let addi b ?guard d x i = alu b ?guard Op.Add d (Op.Reg x) (Op.Imm i)
let movi b ?guard d i = alu b ?guard Op.Mov d (Op.Imm 0) (Op.Imm i)
let mov b ?guard d x = alu b ?guard Op.Mov d (Op.Imm 0) (Op.Reg x)

let load b ?guard d ~base ~off =
  emit b ?guard Op.Load [ d ] [ Op.Reg base; Op.Imm off ]

let store b ?guard ~base ~off v =
  emit b ?guard Op.Store [] [ Op.Reg base; Op.Imm off; v ]

let cmpp1 b ?guard cond action d x y =
  emit b ?guard (Op.Cmpp (cond, action, None)) [ d ] [ x; y ]

let cmpp2 b ?guard cond (a1, d1) (a2, d2) x y =
  emit b ?guard (Op.Cmpp (cond, a1, Some a2)) [ d1; d2 ] [ x; y ]

let pred_init b ?guard assignments =
  let dests = List.map fst assignments and bits = List.map snd assignments in
  emit b ?guard (Op.Pred_init bits) dests []

let pbr b ?guard d target = emit b ?guard Op.Pbr [ d ] [ Op.Lab target; Op.Imm 0 ]
let branch b ?guard t = emit b ?guard Op.Branch [] [ Op.Reg t ]

let branch_to b ?guard target =
  let t = btr b.ctx in
  let (_ : Op.t) = pbr b t target in
  branch b ?guard t

let region ctx ?fallthrough label f =
  let b = { ctx; rev_ops = [] } in
  f b;
  Region.make ?fallthrough label (List.rev b.rev_ops)

let prog _ctx ~entry ?exit_labels ?live_out ?noalias_bases rs =
  Prog.create ~entry ?exit_labels ?live_out ?noalias_bases rs
