lib/ir/prog.ml: Format Hashtbl List Op Reg Region
