lib/ir/reg.ml: Format Hashtbl Int Map Set
