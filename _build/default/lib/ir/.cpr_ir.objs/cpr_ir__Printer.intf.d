lib/ir/printer.mli: Op Prog Region
