lib/ir/builder.ml: Array List Op Prog Reg Region
