lib/ir/region.mli: Format Hashtbl Op
