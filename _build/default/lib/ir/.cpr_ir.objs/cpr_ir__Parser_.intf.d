lib/ir/parser_.mli: Op Prog
