lib/ir/builder.mli: Op Prog Reg Region
