lib/ir/prog.mli: Format Hashtbl Reg Region
