lib/ir/stats_ir.mli: Format Prog
