lib/ir/stats_ir.ml: Format List Prog Region
