lib/ir/parser_.ml: Format List Op Option Prog Reg Region String
