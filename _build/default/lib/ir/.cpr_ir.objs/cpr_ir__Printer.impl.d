lib/ir/printer.ml: List Op Printf Prog Reg Region String
