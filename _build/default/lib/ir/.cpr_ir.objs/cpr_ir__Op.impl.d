lib/ir/op.ml: Format List Reg String
