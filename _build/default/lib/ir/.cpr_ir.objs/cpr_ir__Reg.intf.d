lib/ir/reg.mli: Format Hashtbl Map Set
