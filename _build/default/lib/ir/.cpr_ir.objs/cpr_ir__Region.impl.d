lib/ir/region.ml: Format Hashtbl List Op Option Reg
