lib/ir/op.mli: Format Reg
