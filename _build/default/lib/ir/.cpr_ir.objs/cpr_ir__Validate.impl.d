lib/ir/validate.ml: Format Hashtbl List Op Option Prog Reg Region String
