(** Parser for the textual program form produced by {!Printer}.

    Hand-written recursive descent; errors carry a line number. *)

exception Parse_error of int * string
(** line number (1-based), message *)

val op_of_string : line:int -> string -> Op.t
val of_text : string -> Prog.t
(** Raises {!Parse_error}; the result is re-validated by the caller. *)
