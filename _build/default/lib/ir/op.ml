type operand =
  | Reg of Reg.t
  | Imm of int
  | Lab of string

type guard =
  | True
  | If of Reg.t

type cond =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type action =
  | Un
  | Uc
  | On
  | Oc
  | An
  | Ac

type alu =
  | Add
  | Sub
  | Mul
  | Div
  | And_
  | Or_
  | Xor
  | Shl
  | Shr
  | Mov

type falu =
  | Fadd
  | Fsub
  | Fmul
  | Fdiv

type opcode =
  | Alu of alu
  | Falu of falu
  | Load
  | Store
  | Cmpp of cond * action * action option
  | Pbr
  | Branch
  | Pred_init of bool list

type t = {
  id : int;
  opcode : opcode;
  dests : Reg.t list;
  srcs : operand list;
  guard : guard;
  orig : int option;
}

let make ~id ?(guard = True) ?orig opcode dests srcs =
  { id; opcode; dests; srcs; guard; orig }

let guard_reg op = match op.guard with True -> None | If p -> Some p
let is_branch op = op.opcode = Branch
let is_store op = op.opcode = Store
let is_load op = op.opcode = Load
let is_pbr op = op.opcode = Pbr
let is_cmpp op = match op.opcode with Cmpp _ -> true | _ -> false
let is_mem op = is_store op || is_load op

let is_speculatable op =
  match op.opcode with
  | Store | Branch -> false
  | Alu _ | Falu _ | Load | Cmpp _ | Pbr | Pred_init _ -> true

let actions op =
  match op.opcode with
  | Cmpp (_, a1, a2) -> (
    match a2 with Some a2 -> [ a1; a2 ] | None -> [ a1 ])
  | Alu _ | Falu _ | Load | Store | Pbr | Branch | Pred_init _ -> []

let writes_when_guard_false op =
  match op.opcode with
  | Cmpp _ ->
    List.filter_map
      (fun (a, d) -> match a with Un | Uc -> Some d | On | Oc | An | Ac -> None)
      (List.combine (actions op) op.dests)
  | Alu _ | Falu _ | Load | Store | Pbr | Branch | Pred_init _ -> []

let accumulator_dests op =
  match op.opcode with
  | Cmpp _ ->
    List.filter_map
      (fun (a, d) -> match a with On | Oc | An | Ac -> Some d | Un | Uc -> None)
      (List.combine (actions op) op.dests)
  | Alu _ | Falu _ | Load | Store | Pbr | Branch | Pred_init _ -> []

let uses op =
  let of_srcs =
    List.filter_map (function Reg r -> Some r | Imm _ | Lab _ -> None) op.srcs
  in
  let of_guard = match op.guard with True -> [] | If p -> [ p ] in
  of_srcs @ of_guard @ accumulator_dests op

let defs op = op.dests

let eval_cond c a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let negate_cond = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let eval_alu a x y =
  match a with
  | Add -> x + y
  | Sub -> x - y
  | Mul -> x * y
  | Div -> if y = 0 then 0 else x / y
  | And_ -> x land y
  | Or_ -> x lor y
  | Xor -> x lxor y
  | Shl -> x lsl (abs y mod 63)
  | Shr -> x asr (abs y mod 63)
  | Mov -> y

let eval_falu f x y =
  match f with
  | Fadd -> x + y
  | Fsub -> x - y
  | Fmul -> x * y
  | Fdiv -> if y = 0 then 0 else x / y

(* Table 1 of the paper.  [None] means the destination is left untouched. *)
let cmpp_dest_update action ~guard ~cond =
  match action with
  | Un -> Some (guard && cond)
  | Uc -> Some (guard && not cond)
  | On -> if guard && cond then Some true else None
  | Oc -> if guard && not cond then Some true else None
  | An -> if guard && not cond then Some false else None
  | Ac -> if guard && cond then Some false else None

let action_name = function
  | Un -> "un"
  | Uc -> "uc"
  | On -> "on"
  | Oc -> "oc"
  | An -> "an"
  | Ac -> "ac"

let cond_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | And_ -> "and"
  | Or_ -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Mov -> "mov"

let falu_name = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"

let pp_operand ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm i -> Format.pp_print_int ppf i
  | Lab l -> Format.pp_print_string ppf l

let pp_guard ppf = function
  | True -> Format.pp_print_string ppf "if T"
  | If p -> Format.fprintf ppf "if %a" Reg.pp p

let pp_opcode_name ppf = function
  | Alu a -> Format.pp_print_string ppf (alu_name a)
  | Falu f -> Format.pp_print_string ppf (falu_name f)
  | Load -> Format.pp_print_string ppf "load"
  | Store -> Format.pp_print_string ppf "store"
  | Cmpp (c, a1, a2) ->
    Format.fprintf ppf "cmpp.%s%s %s" (action_name a1)
      (match a2 with Some a2 -> "." ^ action_name a2 | None -> "")
      (cond_name c)
  | Pbr -> Format.pp_print_string ppf "pbr"
  | Branch -> Format.pp_print_string ppf "branch"
  | Pred_init bs ->
    Format.fprintf ppf "pinit(%s)"
      (String.concat "," (List.map (fun b -> if b then "1" else "0") bs))

let pp_list pp_elt ppf xs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_elt ppf xs

let pp ppf op =
  let pp_dests ppf = function
    | [] -> ()
    | ds -> Format.fprintf ppf "%a = " (pp_list Reg.pp) ds
  in
  Format.fprintf ppf "%4d. %a%a (%a) %a" op.id pp_dests op.dests pp_opcode_name
    op.opcode (pp_list pp_operand) op.srcs pp_guard op.guard

let to_string op = Format.asprintf "%a" pp op
