(** Operations of the predicated PlayDoh-style IR.

    Every operation carries a guard predicate ([if p] in the paper's
    figures); an operation whose guard evaluates to false is nullified,
    except for the unconditional destinations of [cmpp] operations, which
    write 0 whenever the guard is false (Table 1 of the paper). *)

type operand =
  | Reg of Reg.t
  | Imm of int
  | Lab of string  (** branch-target label, the operand of [pbr] *)

type guard =
  | True
  | If of Reg.t  (** positive use of a predicate register *)

(** Comparison conditions of [cmpp] operations. *)
type cond =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

(** Destination action specifiers of [cmpp] (Table 1): first letter is the
    action type (Unconditional / wired-Or / wired-And), second is the mode
    (Normal / Complemented). *)
type action =
  | Un
  | Uc
  | On
  | Oc
  | An
  | Ac

(** Integer ALU opcodes (class I, latency 1 except mul/div). *)
type alu =
  | Add
  | Sub
  | Mul
  | Div
  | And_
  | Or_
  | Xor
  | Shl
  | Shr
  | Mov

(** Floating-point opcodes (class F).  Values are still machine integers in
    this reproduction; the distinction only affects unit class and latency. *)
type falu =
  | Fadd
  | Fsub
  | Fmul
  | Fdiv

type opcode =
  | Alu of alu
  | Falu of falu
  | Load  (** dest <- mem[src0 + src1] *)
  | Store  (** mem[src0 + src1] <- src2 *)
  | Cmpp of cond * action * action option
      (** one or two predicate destinations; sources are the two compared
          values *)
  | Pbr  (** dest btr <- Lab target; src1 is a static hint (unused) *)
  | Branch  (** branch to the label held in the btr source when the guard
                is true *)
  | Pred_init of bool list
      (** parallel initialization of predicate destinations, e.g.
          [p71 = 1, p81 = 0, p82 = 0] (op 31 of Figure 7); counted as a
          single class-I operation *)

type t = {
  id : int;  (** unique within a program *)
  opcode : opcode;
  dests : Reg.t list;
  srcs : operand list;
  guard : guard;
  orig : int option;
      (** id of the operation this one was copied/derived from during a
          transformation, for reporting; [None] for original operations *)
}

val make :
  id:int -> ?guard:guard -> ?orig:int -> opcode -> Reg.t list -> operand list -> t

val guard_reg : t -> Reg.t option
val is_branch : t -> bool
val is_store : t -> bool
val is_load : t -> bool
val is_cmpp : t -> bool
val is_pbr : t -> bool
val is_mem : t -> bool

val is_speculatable : t -> bool
(** May the operation execute on paths where its guard is false / above a
    guarding branch?  Stores and branches are not speculatable; PlayDoh
    loads are (speculative loads), as are all ALU operations (non-trapping
    division semantics, see {!eval_alu}). *)

val writes_when_guard_false : t -> Reg.t list
(** Destinations written even under a false guard: the unconditional
    ([Un]/[Uc]) destinations of a [cmpp] (Table 1, rows with input
    predicate 0). *)

val accumulator_dests : t -> Reg.t list
(** Destinations written with wired-or / wired-and semantics, which
    read-modify-write their target and are unordered among themselves. *)

val uses : t -> Reg.t list
(** All register uses: sources, guard, and accumulator destinations (which
    read their previous value). *)

val defs : t -> Reg.t list

val eval_cond : cond -> int -> int -> bool
val negate_cond : cond -> cond

val eval_alu : alu -> int -> int -> int
(** Non-trapping integer ALU semantics: division by zero yields 0, shifts
    are masked to [0..62]. *)

val eval_falu : falu -> int -> int -> int

val cmpp_dest_update : action -> guard:bool -> cond:bool -> bool option
(** Table 1 of the paper: the value written to a [cmpp] destination for a
    given guard/comparison outcome, or [None] if the destination is left
    untouched. *)

val pp_operand : Format.formatter -> operand -> unit
val pp_guard : Format.formatter -> guard -> unit
val pp_opcode_name : Format.formatter -> opcode -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
