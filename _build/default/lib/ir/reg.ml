type cls =
  | Gpr
  | Pred
  | Btr

type t = {
  id : int;
  cls : cls;
}

let gpr id = { id; cls = Gpr }
let pred id = { id; cls = Pred }
let btr id = { id; cls = Btr }

let cls_rank = function Gpr -> 0 | Pred -> 1 | Btr -> 2

let compare a b =
  match Int.compare (cls_rank a.cls) (cls_rank b.cls) with
  | 0 -> Int.compare a.id b.id
  | c -> c

let equal a b = compare a b = 0
let hash a = (cls_rank a.cls * 1_000_003) + a.id
let is_pred r = r.cls = Pred

let to_string r =
  let prefix = match r.cls with Gpr -> "r" | Pred -> "p" | Btr -> "b" in
  prefix ^ string_of_int r.id

let pp ppf r = Format.pp_print_string ppf (to_string r)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
