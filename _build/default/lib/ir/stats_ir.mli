(** Static and dynamic operation counts (Table 3 of the paper).

    Static counts are over the program text; dynamic counts weight each
    operation by the profiled entry count of its region.  Note the paper's
    dynamic counts measure *executed* operations — here every operation of
    an entered region counts as executed (a nullified predicated operation
    still occupies an issue slot on an EPIC machine), which matches the
    paper's schedule-based accounting. *)

type t = {
  static_total : int;
  static_branches : int;
  dynamic_total : int;
  dynamic_branches : int;
}

val of_prog : Prog.t -> t
(** Uses the profile stored in the program's regions. *)

val ratio : t -> t -> float * float * float * float
(** [(s_tot, s_br, d_tot, d_br)] ratios of [transformed] to [baseline] —
    the four columns of Table 3. *)

val pp : Format.formatter -> t -> unit
