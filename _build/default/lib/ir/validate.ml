type error = {
  where : string;
  what : string;
}

let pp_error ppf e = Format.fprintf ppf "[%s] %s" e.where e.what

let check (p : Prog.t) =
  let errors = ref [] in
  let err where fmt =
    Format.kasprintf (fun what -> errors := { where; what } :: !errors) fmt
  in
  let seen_ids = Hashtbl.create 97 in
  if Prog.find p p.Prog.entry = None then
    err "<program>" "entry label %s has no region" p.Prog.entry;
  let check_label where l =
    if Prog.find p l = None && not (Prog.is_exit p l) then
      err where "reference to undefined label %s" l
  in
  let check_op (r : Region.t) (op : Op.t) =
    let where = r.Region.label in
    (match Hashtbl.find_opt seen_ids op.Op.id with
    | Some prev -> err where "duplicate op id %d (also in %s)" op.Op.id prev
    | None -> Hashtbl.replace seen_ids op.Op.id where);
    (match op.Op.guard with
    | Op.True -> ()
    | Op.If g ->
      if not (Reg.is_pred g) then
        err where "op %d guarded by non-predicate %s" op.Op.id (Reg.to_string g));
    match op.Op.opcode with
    | Op.Cmpp (_, _, a2) ->
      let expected = match a2 with Some _ -> 2 | None -> 1 in
      if List.length op.Op.dests <> expected then
        err where "op %d: cmpp with %d dests, expected %d" op.Op.id
          (List.length op.Op.dests) expected;
      List.iter
        (fun d ->
          if not (Reg.is_pred d) then
            err where "op %d: cmpp dest %s is not a predicate" op.Op.id
              (Reg.to_string d))
        op.Op.dests;
      if List.length op.Op.srcs <> 2 then
        err where "op %d: cmpp needs 2 sources" op.Op.id
    | Op.Pred_init bits ->
      if List.length bits <> List.length op.Op.dests then
        err where "op %d: pred_init arity mismatch" op.Op.id;
      List.iter
        (fun d ->
          if not (Reg.is_pred d) then
            err where "op %d: pred_init dest %s is not a predicate" op.Op.id
              (Reg.to_string d))
        op.Op.dests
    | Op.Pbr -> (
      match (op.Op.dests, op.Op.srcs) with
      | [ d ], Op.Lab l :: _ ->
        if d.Reg.cls <> Reg.Btr then
          err where "op %d: pbr dest %s is not a btr" op.Op.id (Reg.to_string d);
        check_label where l
      | _ -> err where "op %d: malformed pbr" op.Op.id)
    | Op.Branch -> (
      match op.Op.srcs with
      | [ Op.Reg b ] when b.Reg.cls = Reg.Btr -> (
        match Region.branch_target r op with
        | Some l -> check_label where l
        | None -> err where "op %d: branch btr has no reaching pbr" op.Op.id)
      | _ -> err where "op %d: malformed branch" op.Op.id)
    | Op.Load ->
      if List.length op.Op.dests <> 1 then
        err where "op %d: load needs one dest" op.Op.id
    | Op.Store ->
      if op.Op.dests <> [] then err where "op %d: store has dests" op.Op.id;
      if List.length op.Op.srcs <> 3 then
        err where "op %d: store needs base/off/value" op.Op.id
    | Op.Alu _ | Op.Falu _ ->
      (match op.Op.dests with
      | [ d ] ->
        if d.Reg.cls <> Reg.Gpr then
          err where "op %d: alu dest %s is not a gpr" op.Op.id (Reg.to_string d)
      | _ -> err where "op %d: alu needs one dest" op.Op.id);
      if List.length op.Op.srcs <> 2 then
        err where "op %d: alu needs two sources" op.Op.id
  in
  List.iter
    (fun (r : Region.t) ->
      Option.iter (check_label r.Region.label) r.Region.fallthrough;
      List.iter (check_op r) r.Region.ops)
    (Prog.regions p);
  List.rev !errors

let check_exn p =
  match check p with
  | [] -> ()
  | errs ->
    let report =
      String.concat "; " (List.map (Format.asprintf "%a" pp_error) errs)
    in
    invalid_arg ("Validate: " ^ report)
