let operand_to_string = function
  | Op.Reg r -> Reg.to_string r
  | Op.Imm i -> string_of_int i
  | Op.Lab l -> l

let action_name = function
  | Op.Un -> "un"
  | Op.Uc -> "uc"
  | Op.On -> "on"
  | Op.Oc -> "oc"
  | Op.An -> "an"
  | Op.Ac -> "ac"

let cond_name = function
  | Op.Eq -> "eq"
  | Op.Ne -> "ne"
  | Op.Lt -> "lt"
  | Op.Le -> "le"
  | Op.Gt -> "gt"
  | Op.Ge -> "ge"

let opcode_name (opcode : Op.opcode) =
  match opcode with
  | Op.Alu Op.Add -> "add"
  | Op.Alu Op.Sub -> "sub"
  | Op.Alu Op.Mul -> "mul"
  | Op.Alu Op.Div -> "div"
  | Op.Alu Op.And_ -> "and"
  | Op.Alu Op.Or_ -> "or"
  | Op.Alu Op.Xor -> "xor"
  | Op.Alu Op.Shl -> "shl"
  | Op.Alu Op.Shr -> "shr"
  | Op.Alu Op.Mov -> "mov"
  | Op.Falu Op.Fadd -> "fadd"
  | Op.Falu Op.Fsub -> "fsub"
  | Op.Falu Op.Fmul -> "fmul"
  | Op.Falu Op.Fdiv -> "fdiv"
  | Op.Load -> "load"
  | Op.Store -> "store"
  | Op.Pbr -> "pbr"
  | Op.Branch -> "branch"
  | Op.Cmpp (c, a1, a2) ->
    "cmpp." ^ action_name a1
    ^ (match a2 with Some a2 -> "." ^ action_name a2 | None -> "")
    ^ "." ^ cond_name c
  | Op.Pred_init bits ->
    "pinit."
    ^ String.concat "" (List.map (fun b -> if b then "1" else "0") bits)

let op_to_string (op : Op.t) =
  let dests =
    match op.Op.dests with
    | [] -> ""
    | ds -> String.concat ", " (List.map Reg.to_string ds) ^ " = "
  in
  let srcs = String.concat ", " (List.map operand_to_string op.Op.srcs) in
  let guard =
    match op.Op.guard with
    | Op.True -> "T"
    | Op.If p -> Reg.to_string p
  in
  Printf.sprintf "%d. %s%s(%s) if %s" op.Op.id dests (opcode_name op.Op.opcode)
    srcs guard

let region_to_text (r : Region.t) =
  let header =
    match r.Region.fallthrough with
    | Some l -> Printf.sprintf "region %s fallthrough %s" r.Region.label l
    | None -> Printf.sprintf "region %s" r.Region.label
  in
  let body = List.map (fun op -> "  " ^ op_to_string op) r.Region.ops in
  String.concat "\n" ((header :: body) @ [ "endregion" ])

let regs_line keyword regs =
  match regs with
  | [] -> []
  | rs -> [ keyword ^ " " ^ String.concat " " (List.map Reg.to_string rs) ]

let to_text (p : Prog.t) =
  let header = Printf.sprintf "program entry %s" p.Prog.entry in
  let exits =
    match p.Prog.exit_labels with
    | [] -> []
    | ls -> [ "exits " ^ String.concat " " ls ]
  in
  let liveout = regs_line "liveout" p.Prog.live_out in
  let noalias = regs_line "noalias" p.Prog.noalias_bases in
  let regions = List.map region_to_text (Prog.regions p) in
  String.concat "\n" ((header :: exits) @ liveout @ noalias @ regions) ^ "\n"
