(** Canonical textual form of programs, round-trippable through
    {!Parser_}.

    {v
    program entry Start
    exits Exit
    liveout r1 r2
    noalias r9 r10
    region Start fallthrough Loop
      1. r1 = mov(0, 1000) if T
      2. p1, p2 = cmpp.un.uc.eq(r1, 0) if T
      3. b1 = pbr(Exit, 0) if T
      4. branch(b1) if p1
    endregion
    v} *)

val op_to_string : Op.t -> string
val region_to_text : Region.t -> string
val to_text : Prog.t -> string
