type t = {
  static_total : int;
  static_branches : int;
  dynamic_total : int;
  dynamic_branches : int;
}

let of_prog p =
  List.fold_left
    (fun acc (r : Region.t) ->
      let ops = List.length r.Region.ops in
      let brs = List.length (Region.branches r) in
      {
        static_total = acc.static_total + ops;
        static_branches = acc.static_branches + brs;
        dynamic_total = acc.dynamic_total + (ops * r.Region.entry_count);
        dynamic_branches = acc.dynamic_branches + (brs * r.Region.entry_count);
      })
    { static_total = 0; static_branches = 0; dynamic_total = 0; dynamic_branches = 0 }
    (Prog.regions p)

let fdiv a b = if b = 0 then 1.0 else float_of_int a /. float_of_int b

let ratio transformed baseline =
  ( fdiv transformed.static_total baseline.static_total,
    fdiv transformed.static_branches baseline.static_branches,
    fdiv transformed.dynamic_total baseline.dynamic_total,
    fdiv transformed.dynamic_branches baseline.dynamic_branches )

let pp ppf t =
  Format.fprintf ppf "static %d ops (%d branches), dynamic %d ops (%d branches)"
    t.static_total t.static_branches t.dynamic_total t.dynamic_branches
