(** Whole programs: a graph of {!Region.t} keyed by label.

    A program also owns the id/register generators used by transformations
    to mint fresh operations and predicates, and declares which labels are
    terminal exits and which registers are live at program exit (so global
    liveness has a boundary condition). *)

type t = {
  entry : string;
  tbl : (string, Region.t) Hashtbl.t;
  mutable order : string list;  (** layout order, for printing and stats *)
  mutable exit_labels : string list;
      (** labels that terminate execution when branched to *)
  mutable live_out : Reg.t list;  (** registers live at every program exit *)
  mutable noalias_bases : Reg.t list;
      (** array-base registers declared pairwise non-overlapping: addresses
          derived from distinct bases in this list never alias (the role
          the source-level alias analysis played for the paper's
          compiler) *)
  mutable next_op_id : int;
  mutable next_gpr : int;
  mutable next_pred : int;
  mutable next_btr : int;
}

val create : entry:string -> ?exit_labels:string list -> ?live_out:Reg.t list
  -> ?noalias_bases:Reg.t list -> Region.t list -> t

val find : t -> string -> Region.t option
val find_exn : t -> string -> Region.t
val regions : t -> Region.t list
(** In layout order. *)

val add_region : t -> ?after:string -> Region.t -> unit
(** Insert a region (e.g. a compensation block); [after] positions it in
    layout order, default at the end. *)

val replace_region : t -> Region.t -> unit
(** Replace the region with the same label. *)

val is_exit : t -> string -> bool

val fresh_op_id : t -> int
val fresh_gpr : t -> Reg.t
val fresh_pred : t -> Reg.t
val fresh_btr : t -> Reg.t

val sync_generators : t -> unit
(** Bump the generators above every id/register currently appearing in the
    program; called by {!create} and after parsing. *)

val copy : t -> t
(** Deep copy: transformations run on the copy, keeping the original for
    differential testing. *)

val static_op_count : t -> int
val clear_profile : t -> unit

val pp : Format.formatter -> t -> unit
