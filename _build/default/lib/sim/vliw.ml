open Cpr_ir
module Schedule = Cpr_sched.Schedule

type outcome = {
  state : State.t;
  exit_label : string option;
  cycles : int;
  region_entries : int;
}

exception Vliw_error of string

type pending =
  | Write_gpr of Reg.t * int
  | Write_pred of Reg.t * bool
  | Write_btr of Reg.t * string
  | Write_mem of int * int

let apply st = function
  | Write_gpr (r, v) -> State.write_gpr st r v
  | Write_pred (r, v) -> State.write_pred st r v
  | Write_btr (r, l) -> State.write_btr st r l
  | Write_mem (a, v) -> State.write_mem st a v

let operand_value st = function
  | Op.Reg r -> (
    match r.Reg.cls with
    | Reg.Gpr -> State.read_gpr st r
    | Reg.Pred -> if State.read_pred st r then 1 else 0
    | Reg.Btr -> raise (Vliw_error "btr read as value"))
  | Op.Imm i -> i
  | Op.Lab _ -> raise (Vliw_error "label read as value")

(* Effects of issuing [op] at cycle [c]: pending writes that land at
   [c + latency], and the redirect target if this is a taken branch. *)
let issue machine st (op : Op.t) =
  let guard =
    match op.Op.guard with
    | Op.True -> true
    | Op.If p -> State.read_pred st p
  in
  let lat = Cpr_machine.Descr.latency_of machine op in
  let writes = ref [] in
  let redirect = ref None in
  (if guard then
     match op.Op.opcode with
     | Op.Alu a -> (
       match (op.Op.dests, op.Op.srcs) with
       | [ d ], [ x; y ] ->
         writes :=
           [ Write_gpr (d, Op.eval_alu a (operand_value st x) (operand_value st y)) ]
       | _ -> raise (Vliw_error "malformed alu"))
     | Op.Falu f -> (
       match (op.Op.dests, op.Op.srcs) with
       | [ d ], [ x; y ] ->
         writes :=
           [ Write_gpr (d, Op.eval_falu f (operand_value st x) (operand_value st y)) ]
       | _ -> raise (Vliw_error "malformed falu"))
     | Op.Load -> (
       match (op.Op.dests, op.Op.srcs) with
       | [ d ], [ base; off ] ->
         writes :=
           [ Write_gpr
               (d, State.read_mem st (operand_value st base + operand_value st off));
           ]
       | _ -> raise (Vliw_error "malformed load"))
     | Op.Store -> (
       match op.Op.srcs with
       | [ base; off; v ] ->
         writes :=
           [ Write_mem
               (operand_value st base + operand_value st off, operand_value st v);
           ]
       | _ -> raise (Vliw_error "malformed store"))
     | Op.Pbr -> (
       match (op.Op.dests, op.Op.srcs) with
       | [ d ], Op.Lab l :: _ -> writes := [ Write_btr (d, l) ]
       | _ -> raise (Vliw_error "malformed pbr"))
     | Op.Branch -> (
       match op.Op.srcs with
       | [ Op.Reg b ] -> (
         match State.read_btr st b with
         | Some l -> redirect := Some l
         | None -> raise (Vliw_error "branch through unset btr"))
       | _ -> raise (Vliw_error "malformed branch"))
     | Op.Pred_init bits ->
       writes :=
         List.map2 (fun d v -> Write_pred (d, v)) op.Op.dests bits
     | Op.Cmpp _ -> ());
  (* cmpp destinations: Table 1 semantics evaluate even under a false
     guard for the unconditional destinations. *)
  (match op.Op.opcode with
  | Op.Cmpp (cond, a1, a2) -> (
    match op.Op.srcs with
    | [ x; y ] ->
      let c = Op.eval_cond cond (operand_value st x) (operand_value st y) in
      List.iter2
        (fun action d ->
          match Op.cmpp_dest_update action ~guard ~cond:c with
          | Some v -> writes := Write_pred (d, v) :: !writes
          | None -> ())
        (a1 :: Option.to_list a2)
        op.Op.dests
    | _ -> raise (Vliw_error "malformed cmpp"))
  | _ -> ());
  (List.rev !writes, lat, !redirect)

let run ?state ?(max_cycles = 10_000_000) machine (prog : Prog.t) =
  let st = match state with Some s -> s | None -> State.create () in
  let schedules = Cpr_sched.List_sched.schedule_prog machine prog in
  (* per-region: cycle -> ops issued that cycle, in program order *)
  let buckets = Hashtbl.create 17 in
  List.iter
    (fun (label, (s : Schedule.t)) ->
      let by_cycle = Hashtbl.create 17 in
      Array.iteri
        (fun i op ->
          let c = s.Schedule.cycle.(i) in
          Hashtbl.replace by_cycle c
            (Option.value ~default:[] (Hashtbl.find_opt by_cycle c) @ [ op ]))
        s.Schedule.ops;
      Hashtbl.replace buckets label (s.Schedule.length, by_cycle))
    schedules;
  let total_cycles = ref 0 in
  let entries = ref 0 in
  let rec run_region label =
    if Prog.is_exit prog label then Some label
    else
      match Hashtbl.find_opt buckets label with
      | None -> raise (Vliw_error ("no schedule for " ^ label))
      | Some (length, by_cycle) ->
        incr entries;
        let pending : (int, pending list) Hashtbl.t = Hashtbl.create 17 in
        let redirect = ref None (* (cycle, target) *) in
        let land_writes c =
          List.iter (apply st)
            (Option.value ~default:[] (Hashtbl.find_opt pending c));
          Hashtbl.remove pending c
        in
        let flush_all () =
          let cs =
            Hashtbl.fold (fun c _ acc -> c :: acc) pending []
            |> List.sort Int.compare
          in
          List.iter land_writes cs
        in
        let result = ref None in
        let c = ref 0 in
        while !result = None do
          if !total_cycles > max_cycles then
            raise (Vliw_error "cycle budget exceeded");
          land_writes !c;
          (match !redirect with
          | Some (rc, target) when rc = !c ->
            flush_all ();
            result := Some (`Goto target)
          | _ ->
            if !c >= length then begin
              flush_all ();
              result :=
                Some
                  (match (Prog.find_exn prog label).Region.fallthrough with
                  | Some next -> `Goto next
                  | None -> `Halt)
            end
            else begin
              List.iter
                (fun op ->
                  let writes, lat, br = issue machine st op in
                  if writes <> [] then
                    Hashtbl.replace pending (!c + lat)
                      (Option.value ~default:[]
                         (Hashtbl.find_opt pending (!c + lat))
                      @ writes);
                  match br with
                  | Some target -> (
                    match !redirect with
                    | Some (rc, _) when rc = !c + lat ->
                      raise (Vliw_error "simultaneous taken branches")
                    | Some (rc, _) when rc < !c + lat -> ()
                    | _ -> redirect := Some (!c + lat, target))
                  | None -> ())
                (Option.value ~default:[] (Hashtbl.find_opt by_cycle !c));
              incr total_cycles;
              incr c
            end)
        done;
        (match !result with
        | Some (`Goto next) -> run_region next
        | Some `Halt -> None
        | None -> assert false)
  in
  let exit_label = run_region prog.Prog.entry in
  {
    state = st;
    exit_label;
    cycles = !total_cycles;
    region_entries = !entries;
  }

let check_against_interp machine prog inputs =
  let fail fmt = Format.kasprintf (fun m -> Error m) fmt in
  List.fold_left
    (fun acc input ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
        let mk () =
          let st = State.create () in
          State.set_memory st input.Equiv.memory;
          List.iter (fun (r, v) -> State.write_gpr st r v) input.Equiv.gprs;
          List.iter (fun (r, v) -> State.write_pred st r v) input.Equiv.preds;
          st
        in
        let reference = Interp.run ~state:(mk ()) prog in
        match run ~state:(mk ()) machine prog with
        | exception Vliw_error m -> fail "vliw error: %s" m
        | vl ->
          if reference.Interp.exit_label <> vl.exit_label then
            fail "exit labels differ: %s vs %s"
              (Option.value ~default:"<end>" reference.Interp.exit_label)
              (Option.value ~default:"<end>" vl.exit_label)
          else if
            State.memory_snapshot reference.Interp.state
            <> State.memory_snapshot vl.state
          then fail "memories differ"
          else Ok ()))
    (Ok ()) inputs
