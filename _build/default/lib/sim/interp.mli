open Cpr_ir

(** Architectural (sequential, in-program-order) interpreter.

    This is the reference semantics against which every transformation is
    differentially tested, and the profiler that produces the branch
    statistics driving the exit-weight and predict-taken heuristics. *)

type outcome = {
  state : State.t;
  exit_label : string option;
      (** the exit label reached, or [None] when a region with no
          fallthrough ran off the end *)
  ops_executed : int;  (** guard-true operations, the paper's dynamic count *)
  ops_issued : int;  (** all operations of entered regions *)
  branches_executed : int;  (** branches whose region was entered *)
  steps : int;
}

exception Stuck of string

val run :
  ?state:State.t -> ?max_steps:int -> ?profile:bool -> Prog.t -> outcome
(** Execute from the program entry.  [profile] (default false) records
    entry and branch-taken counts into the program's regions (on top of
    whatever is already recorded).  [max_steps] (default 1_000_000) bounds
    executed operations; exceeding it raises [Stuck], as do malformed
    programs (branch through an unset btr, unknown label). *)
