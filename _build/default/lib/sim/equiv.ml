open Cpr_ir

type input = {
  memory : (int * int) list;
  gprs : (Reg.t * int) list;
  preds : (Reg.t * bool) list;
}

let no_input = { memory = []; gprs = []; preds = [] }
let input_of_memory memory = { no_input with memory }

let run_on prog input =
  let st = State.create () in
  State.set_memory st input.memory;
  List.iter (fun (r, v) -> State.write_gpr st r v) input.gprs;
  List.iter (fun (r, v) -> State.write_pred st r v) input.preds;
  Interp.run ~state:st prog

let per_address trace =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (a, v) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl a) in
      Hashtbl.replace tbl a (v :: prev))
    trace;
  Hashtbl.fold (fun a vs acc -> (a, List.rev vs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let check reference candidate input =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  match (run_on reference input, run_on candidate input) with
  | exception Interp.Stuck msg -> fail "interpreter stuck: %s" msg
  | ref_out, cand_out ->
    if ref_out.Interp.exit_label <> cand_out.Interp.exit_label then
      fail "exit labels differ: %s vs %s"
        (Option.value ~default:"<end>" ref_out.Interp.exit_label)
        (Option.value ~default:"<end>" cand_out.Interp.exit_label)
    else if
      State.memory_snapshot ref_out.Interp.state
      <> State.memory_snapshot cand_out.Interp.state
    then fail "final memories differ"
    else if
      per_address (State.store_trace ref_out.Interp.state)
      <> per_address (State.store_trace cand_out.Interp.state)
    then fail "store sequences differ"
    else begin
      let bad_reg =
        List.find_opt
          (fun r ->
            Reg.is_pred r = false
            && State.read_gpr ref_out.Interp.state r
               <> State.read_gpr cand_out.Interp.state r)
          reference.Prog.live_out
      in
      match bad_reg with
      | Some r -> fail "live-out register %s differs" (Reg.to_string r)
      | None -> Ok ()
    end

let check_many reference candidate inputs =
  List.fold_left
    (fun acc input -> match acc with Error _ -> acc | Ok () -> check reference candidate input)
    (Ok ()) inputs
