open Cpr_ir

(** Architectural machine state for the IR interpreter. *)

type t = {
  gprs : int Reg.Tbl.t;
  preds : bool Reg.Tbl.t;
  btrs : string Reg.Tbl.t;
  memory : (int, int) Hashtbl.t;
  mutable stores : (int * int) list;  (** write trace, newest first *)
}

val create : unit -> t

val read_gpr : t -> Reg.t -> int
(** Uninitialized registers read 0 (deterministic semantics so that
    speculated reads in property tests are well-defined). *)

val read_pred : t -> Reg.t -> bool
val read_btr : t -> Reg.t -> string option
val write_gpr : t -> Reg.t -> int -> unit
val write_pred : t -> Reg.t -> bool -> unit
val write_btr : t -> Reg.t -> string -> unit
val read_mem : t -> int -> int
val write_mem : t -> int -> int -> unit

val set_memory : t -> (int * int) list -> unit
val store_trace : t -> (int * int) list
(** Oldest first. *)

val memory_snapshot : t -> (int * int) list
(** Sorted by address. *)
