open Cpr_ir

(** Cycle-level execution of scheduled code under the EQ (equals) model:

    - operations read their sources and guards at their issue cycle;
    - register and memory writes land exactly [latency] cycles after
      issue;
    - a taken branch redirects control [latency] cycles after issue;
      operations issued before that cycle complete, operations issued at
      or after it never issue;
    - two branches must never take with the same redirect cycle (the
      schedule checker and the dependence graph guarantee it; this
      executor treats it as a fatal error);
    - region boundaries synchronize pending writes.

    Running the scheduled program and comparing with the architectural
    interpreter validates the entire scheduling model: dependence graph,
    latencies, speculation and branch rules. *)

type outcome = {
  state : State.t;
  exit_label : string option;
  cycles : int;  (** total machine cycles across all region executions *)
  region_entries : int;
}

exception Vliw_error of string

val run :
  ?state:State.t -> ?max_cycles:int -> Cpr_machine.Descr.t -> Prog.t
  -> outcome
(** Schedules every region with {!Cpr_sched.List_sched} and executes the
    schedules cycle by cycle from the program entry. *)

val check_against_interp :
  Cpr_machine.Descr.t -> Prog.t -> Equiv.input list -> (unit, string) result
(** Execute both the interpreter and the scheduled code on each input and
    compare exit labels, final memories and per-address store sequences. *)
