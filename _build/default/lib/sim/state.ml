open Cpr_ir

type t = {
  gprs : int Reg.Tbl.t;
  preds : bool Reg.Tbl.t;
  btrs : string Reg.Tbl.t;
  memory : (int, int) Hashtbl.t;
  mutable stores : (int * int) list;
}

let create () =
  {
    gprs = Reg.Tbl.create 64;
    preds = Reg.Tbl.create 64;
    btrs = Reg.Tbl.create 8;
    memory = Hashtbl.create 256;
    stores = [];
  }

let read_gpr t r = Option.value ~default:0 (Reg.Tbl.find_opt t.gprs r)
let read_pred t r = Option.value ~default:false (Reg.Tbl.find_opt t.preds r)
let read_btr t r = Reg.Tbl.find_opt t.btrs r
let write_gpr t r v = Reg.Tbl.replace t.gprs r v
let write_pred t r v = Reg.Tbl.replace t.preds r v
let write_btr t r l = Reg.Tbl.replace t.btrs r l
let read_mem t a = Option.value ~default:0 (Hashtbl.find_opt t.memory a)

let write_mem t a v =
  Hashtbl.replace t.memory a v;
  t.stores <- (a, v) :: t.stores

let set_memory t cells =
  List.iter (fun (a, v) -> Hashtbl.replace t.memory a v) cells

let store_trace t = List.rev t.stores

let memory_snapshot t =
  Hashtbl.fold (fun a v acc -> (a, v) :: acc) t.memory []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
