lib/sim/equiv.ml: Cpr_ir Format Hashtbl Int Interp List Option Prog Reg State
