lib/sim/interp.ml: Cpr_ir List Op Option Prog Reg Region State
