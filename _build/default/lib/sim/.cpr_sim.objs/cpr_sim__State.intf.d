lib/sim/state.mli: Cpr_ir Hashtbl Reg
