lib/sim/interp.mli: Cpr_ir Prog State
