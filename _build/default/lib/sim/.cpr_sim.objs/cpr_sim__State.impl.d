lib/sim/state.ml: Cpr_ir Hashtbl Int List Option Reg
