lib/sim/vliw.mli: Cpr_ir Cpr_machine Equiv Prog State
