lib/sim/equiv.mli: Cpr_ir Interp Prog Reg
