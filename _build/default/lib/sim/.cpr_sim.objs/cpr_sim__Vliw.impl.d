lib/sim/vliw.ml: Array Cpr_ir Cpr_machine Cpr_sched Equiv Format Hashtbl Int Interp List Op Option Prog Reg Region State
