open Cpr_ir

type outcome = {
  state : State.t;
  exit_label : string option;
  ops_executed : int;
  ops_issued : int;
  branches_executed : int;
  steps : int;
}

exception Stuck of string

let operand_value st = function
  | Op.Reg r -> (
    match r.Reg.cls with
    | Reg.Gpr -> State.read_gpr st r
    | Reg.Pred -> if State.read_pred st r then 1 else 0
    | Reg.Btr -> raise (Stuck "btr read as value"))
  | Op.Imm i -> i
  | Op.Lab _ -> raise (Stuck "label read as value")

let guard_true st = function
  | Op.True -> true
  | Op.If p -> State.read_pred st p

(* Execute one op.  Returns [Some label] when a branch takes. *)
let exec_op st (op : Op.t) =
  let g = guard_true st op.Op.guard in
  match op.Op.opcode with
  | Op.Alu a ->
    if g then (
      match (op.Op.dests, op.Op.srcs) with
      | [ d ], [ x; y ] ->
        State.write_gpr st d (Op.eval_alu a (operand_value st x) (operand_value st y));
        None
      | _ -> raise (Stuck "malformed alu"))
    else None
  | Op.Falu f ->
    if g then (
      match (op.Op.dests, op.Op.srcs) with
      | [ d ], [ x; y ] ->
        State.write_gpr st d
          (Op.eval_falu f (operand_value st x) (operand_value st y));
        None
      | _ -> raise (Stuck "malformed falu"))
    else None
  | Op.Load ->
    if g then (
      match (op.Op.dests, op.Op.srcs) with
      | [ d ], [ base; off ] ->
        State.write_gpr st d
          (State.read_mem st (operand_value st base + operand_value st off));
        None
      | _ -> raise (Stuck "malformed load"))
    else None
  | Op.Store ->
    if g then (
      match op.Op.srcs with
      | [ base; off; v ] ->
        State.write_mem st
          (operand_value st base + operand_value st off)
          (operand_value st v);
        None
      | _ -> raise (Stuck "malformed store"))
    else None
  | Op.Cmpp (cond, a1, a2) -> (
    match op.Op.srcs with
    | [ x; y ] ->
      let c = Op.eval_cond cond (operand_value st x) (operand_value st y) in
      let actions = a1 :: Option.to_list a2 in
      List.iter2
        (fun action d ->
          match Op.cmpp_dest_update action ~guard:g ~cond:c with
          | Some v -> State.write_pred st d v
          | None -> ())
        actions op.Op.dests;
      None
    | _ -> raise (Stuck "malformed cmpp"))
  | Op.Pred_init bits ->
    if g then List.iter2 (fun d b -> State.write_pred st d b) op.Op.dests bits;
    None
  | Op.Pbr ->
    if g then (
      match (op.Op.dests, op.Op.srcs) with
      | [ d ], Op.Lab l :: _ ->
        State.write_btr st d l;
        None
      | _ -> raise (Stuck "malformed pbr"))
    else None
  | Op.Branch ->
    if g then (
      match op.Op.srcs with
      | [ Op.Reg b ] -> (
        match State.read_btr st b with
        | Some l -> Some l
        | None -> raise (Stuck "branch through unset btr"))
      | _ -> raise (Stuck "malformed branch"))
    else None

let run ?state ?(max_steps = 1_000_000) ?(profile = false) (prog : Prog.t) =
  let st = match state with Some s -> s | None -> State.create () in
  let steps = ref 0 in
  let executed = ref 0 in
  let issued = ref 0 in
  let branches = ref 0 in
  let rec region_loop label =
    if Prog.is_exit prog label then Some label
    else
      match Prog.find prog label with
      | None -> raise (Stuck ("branch to unknown label " ^ label))
      | Some region ->
        if profile then Region.record_entry region;
        let rec ops_loop = function
          | [] -> (
            match region.Region.fallthrough with
            | Some next -> region_loop next
            | None -> None)
          | (op : Op.t) :: rest ->
            incr steps;
            if !steps > max_steps then raise (Stuck "step budget exceeded");
            incr issued;
            if Op.is_branch op then incr branches;
            if guard_true st op.Op.guard then incr executed;
            (match exec_op st op with
            | Some target ->
              if profile then Region.record_taken region op.Op.id;
              Some target
            | None -> None)
            |> (function
                 | Some target -> region_loop target
                 | None -> ops_loop rest)
        in
        ops_loop region.Region.ops
  in
  let exit_label = region_loop prog.Prog.entry in
  {
    state = st;
    exit_label;
    ops_executed = !executed;
    ops_issued = !issued;
    branches_executed = !branches;
    steps = !steps;
  }
