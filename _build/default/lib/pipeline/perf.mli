open Cpr_ir

(** Compile-time performance estimation (Section 7).

    "Benchmark execution time is calculated as the sum across all blocks
    in the program of each block's schedule length weighted by its dynamic
    execution frequency."  Dynamic effects (caches, predictors) are
    ignored, as in the paper. *)

val estimate : Cpr_machine.Descr.t -> Prog.t -> int
(** Paper's estimator: Σ region schedule-length × profiled entry count. *)

val estimate_exit_aware : Cpr_machine.Descr.t -> Prog.t -> int
(** Ablation refinement: entries leaving through a side exit are charged
    only up to the exit branch's completion, instead of the full region
    schedule length. *)

val speedup : baseline:int -> transformed:int -> float
