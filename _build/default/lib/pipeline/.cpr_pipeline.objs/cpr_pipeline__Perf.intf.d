lib/pipeline/perf.mli: Cpr_ir Cpr_machine Prog
