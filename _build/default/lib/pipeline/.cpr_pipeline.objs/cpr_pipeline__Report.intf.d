lib/pipeline/report.mli: Cpr_core Cpr_ir Cpr_sim Format Prog Result
