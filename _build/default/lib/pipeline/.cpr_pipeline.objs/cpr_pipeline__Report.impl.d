lib/pipeline/report.ml: Cpr_core Cpr_ir Cpr_machine Cpr_sim Format List Passes Perf Result Stats_ir
