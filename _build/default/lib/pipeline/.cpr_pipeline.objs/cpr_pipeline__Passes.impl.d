lib/pipeline/passes.ml: Cpr_core Cpr_ir Cpr_sim List Prog Validate
