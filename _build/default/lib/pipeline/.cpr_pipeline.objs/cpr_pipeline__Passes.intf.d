lib/pipeline/passes.mli: Cpr_core Cpr_ir Cpr_sim Prog
