lib/pipeline/perf.ml: Cpr_ir Cpr_machine Cpr_sched List Op Prog Region
