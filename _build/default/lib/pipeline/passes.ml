open Cpr_ir

type compiled = {
  prog : Prog.t;
  icbm : Cpr_core.Icbm.region_stats option;
}

let profile prog inputs =
  Prog.clear_profile prog;
  List.iter
    (fun input ->
      let st = Cpr_sim.State.create () in
      Cpr_sim.State.set_memory st input.Cpr_sim.Equiv.memory;
      List.iter
        (fun (r, v) -> Cpr_sim.State.write_gpr st r v)
        input.Cpr_sim.Equiv.gprs;
      List.iter
        (fun (r, v) -> Cpr_sim.State.write_pred st r v)
        input.Cpr_sim.Equiv.preds;
      let (_ : Cpr_sim.Interp.outcome) =
        Cpr_sim.Interp.run ~state:st ~profile:true prog
      in
      ())
    inputs

(* Both compiled codes start from the same superblock formation — the
   paper's baseline is "optimized superblock code produced by the IMPACT
   compiler", not the raw region graph. *)
let prepare prog inputs =
  let p = Prog.copy prog in
  profile p inputs;
  let (_ : int) = Cpr_core.Superblock.form p in
  let (_ : int) = Cpr_core.Superblock.prune_unreachable p in
  Validate.check_exn p;
  profile p inputs;
  p

let baseline prog inputs = { prog = prepare prog inputs; icbm = None }

let height_reduce ?heur prog inputs =
  let p = prepare prog inputs in
  let stats = Cpr_core.Icbm.run ?heur p in
  Validate.check_exn p;
  profile p inputs;
  { prog = p; icbm = Some stats }
