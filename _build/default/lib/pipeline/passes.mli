open Cpr_ir

(** Pass composition: the two compiled codes the paper compares.

    The {e baseline} is the input superblock program with its training
    profile.  The {e height-reduced} code is the baseline after FRP
    conversion and the ICBM schema (predicate speculation, match,
    restructure, off-trace motion, DCE), re-profiled on the same training
    inputs so that the estimator and Table 3 see the transformed program's
    own execution frequencies. *)

type compiled = {
  prog : Prog.t;
  icbm : Cpr_core.Icbm.region_stats option;  (** None for the baseline *)
}

val profile : Prog.t -> Cpr_sim.Equiv.input list -> unit
(** Clear and re-record region profiles by interpreting each input. *)

val prepare : Prog.t -> Cpr_sim.Equiv.input list -> Prog.t
(** Profile a copy, form superblocks along the hot fall-through edges
    (tail-duplicating join points), prune unreachable regions, and
    re-profile — the IMPACT role; both compiled codes start here. *)

val baseline : Prog.t -> Cpr_sim.Equiv.input list -> compiled
(** {!prepare} only; the input program is untouched. *)

val height_reduce :
  ?heur:Cpr_core.Heur.t -> Prog.t -> Cpr_sim.Equiv.input list -> compiled
(** Full pipeline on a fresh copy: profile, FRP-convert, ICBM, validate,
    re-profile.  Raises [Invalid_argument] if the transformed program
    fails structural validation. *)
