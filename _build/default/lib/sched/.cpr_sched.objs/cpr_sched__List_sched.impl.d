lib/sched/list_sched.ml: Array Cpr_analysis Cpr_ir Cpr_machine Int List Printf Prog Region Schedule Seq
