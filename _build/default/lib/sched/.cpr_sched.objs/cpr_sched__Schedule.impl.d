lib/sched/schedule.ml: Array Cpr_analysis Cpr_ir Cpr_machine Format Hashtbl List Op Option Region Seq
