lib/sched/list_sched.mli: Cpr_analysis Cpr_ir Cpr_machine Prog Region Schedule
