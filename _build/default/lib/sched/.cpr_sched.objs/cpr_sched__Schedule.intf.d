lib/sched/schedule.mli: Cpr_analysis Cpr_ir Cpr_machine Format Op Region
