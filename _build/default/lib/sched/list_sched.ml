open Cpr_ir
module Descr = Cpr_machine.Descr
module Resource = Cpr_machine.Resource
module Depgraph = Cpr_analysis.Depgraph

let schedule machine prog liveness (region : Region.t) =
  let graph = Depgraph.build machine prog liveness region in
  let n = Depgraph.n_ops graph in
  let ops = Array.init n (Depgraph.op graph) in
  let priority = Depgraph.priority graph in
  let cycle = Array.make n (-1) in
  let resources = Resource.create machine in
  let unscheduled = ref n in
  let ready_time i =
    (* Defined only once all predecessors are placed. *)
    List.fold_left
      (fun acc (e : Depgraph.edge) ->
        if cycle.(e.Depgraph.src) < 0 then max_int
        else max acc (cycle.(e.Depgraph.src) + e.Depgraph.latency))
      0
      (Depgraph.preds graph i)
  in
  let current = ref 0 in
  (* Upper bound on useful cycles: everything sequential at max latency. *)
  let fuel = ref ((n + 1) * 16) in
  while !unscheduled > 0 && !fuel > 0 do
    decr fuel;
    (* Zero- and negative-latency edges (branch anticipation, anti
       dependences) allow producer and consumer in the same cycle, so
       placements cascade within a cycle until fixpoint. *)
    let progress = ref true in
    while !progress do
      progress := false;
      let candidates = ref [] in
      for i = 0 to n - 1 do
        if cycle.(i) < 0 then begin
          let r = ready_time i in
          if r <> max_int && r <= !current then candidates := i :: !candidates
        end
      done;
      let ordered =
        List.sort
          (fun a b ->
            match Int.compare priority.(b) priority.(a) with
            | 0 -> Int.compare a b
            | c -> c)
          !candidates
      in
      List.iter
        (fun i ->
          if Resource.available resources ~cycle:!current ops.(i) then begin
            Resource.reserve resources ~cycle:!current ops.(i);
            cycle.(i) <- !current;
            decr unscheduled;
            progress := true
          end)
        ordered
    done;
    incr current
  done;
  if !unscheduled > 0 then
    invalid_arg
      (Printf.sprintf "List_sched: no progress in region %s"
         region.Region.label);
  let length =
    Array.to_seqi ops
    |> Seq.fold_left
         (fun acc (i, op) -> max acc (cycle.(i) + Descr.latency_of machine op))
         0
  in
  { Schedule.region; ops; cycle; length }

let schedule_prog machine prog =
  let liveness = Cpr_analysis.Liveness.analyze prog in
  List.map
    (fun (r : Region.t) ->
      (r.Region.label, schedule machine prog liveness r))
    (Prog.regions prog)
