open Cpr_ir
module Descr = Cpr_machine.Descr
module Depgraph = Cpr_analysis.Depgraph

type t = {
  region : Region.t;
  ops : Op.t array;
  cycle : int array;
  length : int;
}

let branch_issue t id =
  let found = ref None in
  Array.iteri
    (fun i (op : Op.t) -> if op.Op.id = id then found := Some t.cycle.(i))
    t.ops;
  !found

let check machine graph t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  List.iter
    (fun (e : Depgraph.edge) ->
      if t.cycle.(e.Depgraph.dst) < t.cycle.(e.Depgraph.src) + e.Depgraph.latency
      then
        err "edge %d->%d (lat %d) violated: cycles %d, %d"
          t.ops.(e.Depgraph.src).Op.id t.ops.(e.Depgraph.dst).Op.id
          e.Depgraph.latency
          t.cycle.(e.Depgraph.src) t.cycle.(e.Depgraph.dst))
    (Depgraph.edges graph);
  let resources = Cpr_machine.Resource.create machine in
  Array.iteri
    (fun i op ->
      if not (Cpr_machine.Resource.available resources ~cycle:t.cycle.(i) op)
      then err "resource overflow at cycle %d for op %d" t.cycle.(i) op.Op.id
      else Cpr_machine.Resource.reserve resources ~cycle:t.cycle.(i) op)
    t.ops;
  let computed_length =
    Array.to_seqi t.ops
    |> Seq.fold_left
         (fun acc (i, op) -> max acc (t.cycle.(i) + Descr.latency_of machine op))
         0
  in
  if computed_length <> t.length then
    err "length mismatch: recorded %d, computed %d" t.length computed_length;
  List.rev !errors

let pp ppf t =
  let by_cycle = Hashtbl.create 17 in
  Array.iteri
    (fun i op ->
      let c = t.cycle.(i) in
      Hashtbl.replace by_cycle c
        (op :: Option.value ~default:[] (Hashtbl.find_opt by_cycle c)))
    t.ops;
  Format.fprintf ppf "@[<v>schedule %s (length %d)@," t.region.Region.label
    t.length;
  for c = 0 to t.length - 1 do
    match Hashtbl.find_opt by_cycle c with
    | None -> ()
    | Some ops ->
      Format.fprintf ppf "cycle %2d:@," c;
      List.iter (fun op -> Format.fprintf ppf "  %a@," Op.pp op) (List.rev ops)
  done;
  Format.fprintf ppf "@]"
