open Cpr_ir

(** Cycle-based list scheduling for one region.

    Greedy: at each cycle the dependence-ready operations are considered in
    decreasing critical-path priority (ties broken by program order) and
    issued while the machine has free slots of their unit class.  The EPIC
    branch rules (no branch taking inside another taken branch's latency
    window, speculation/anticipation constraints) are entirely encoded in
    the dependence graph, so the scheduler itself is machine-generic. *)

val schedule :
  Cpr_machine.Descr.t -> Prog.t -> Cpr_analysis.Liveness.t -> Region.t
  -> Schedule.t

val schedule_prog :
  Cpr_machine.Descr.t -> Prog.t -> (string * Schedule.t) list
(** Schedule every region of the program (computing liveness once);
    association list keyed by region label in layout order. *)
