open Cpr_ir

(** Region schedules produced by the list scheduler. *)

type t = {
  region : Region.t;
  ops : Op.t array;  (** program order *)
  cycle : int array;  (** issue cycle per op index *)
  length : int;
      (** schedule length: max over ops of issue + latency; the cost the
          paper's estimator charges per region entry *)
}

val branch_issue : t -> int -> int option
(** Issue cycle of the branch with the given op id. *)

val check :
  Cpr_machine.Descr.t -> Cpr_analysis.Depgraph.t -> t -> string list
(** Verify the schedule respects every dependence edge and the machine's
    per-cycle resources; returns human-readable violations (empty = valid).
    Used by tests and property tests. *)

val pp : Format.formatter -> t -> unit
(** Cycle-by-cycle MultiOp listing. *)
