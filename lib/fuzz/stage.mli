open Cpr_ir

(** The registry of pipeline stage combinations the fuzzer exercises.

    A stage takes the raw generated program plus the training inputs and
    returns a transformed copy (the input program is never mutated:
    every stage starts from {!Cpr_pipeline.Passes.prepare}, which works
    on a deep copy).  The differential driver checks each stage's output
    against the raw program under the architectural interpreter, so a
    stage is the unit of blame when a miscompile is found. *)

type t = {
  name : string;
  descr : string;
  apply : Prog.t -> Cpr_sim.Equiv.input list -> Prog.t;
}

val all : t list
(** [superblock], [ifconv], [frp], [spec], [unroll], [fullcpr], [icbm],
    [fullpipe] — in dependency order. *)

val find : string -> t option

val parse : string -> (t list, string) result
(** Comma-separated stage names, or ["all"].  [Error] names the first
    unknown stage. *)

val names : string
(** Comma-separated list of every stage name, for usage messages. *)
