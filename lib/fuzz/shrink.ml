open Cpr_ir
module W = Cpr_workloads

type t = {
  seed : int;
  stage : string;
  reason : string;
  shape : W.Gen.shape;
  prog : Prog.t;
  inputs : Cpr_sim.Equiv.input list;
  steps : int;
}

let fails check stage prog inputs =
  match Driver.run_prog check stage prog inputs with
  | Driver.Fail reason -> Some reason
  | Driver.Pass | Driver.Skip _ -> None

let of_failure check stage ~seed =
  let inputs = Driver.inputs_for check seed in
  let shape = W.Gen.shape_of_seed seed in
  let prog = W.Gen.prog_of ~shape seed in
  match fails check stage prog inputs with
  | None -> invalid_arg "Shrink: seed does not fail this stage"
  | Some reason ->
    { seed; stage = stage.Stage.name; reason; shape; prog; inputs; steps = 0 }

(* Structurally smaller shapes, biggest cut first.  [exit_stubs] stays
   >= 1 (the generator always branches to some stub label) and every
   field only ever decreases, so phase 1 terminates. *)
let shape_candidates (s : W.Gen.shape) =
  let open W.Gen in
  List.concat
    [
      (if s.blocks > 1 then
         [ { s with blocks = s.blocks / 2 }; { s with blocks = s.blocks - 1 } ]
       else []);
      (if s.ops_per_block > 0 then
         [
           { s with ops_per_block = s.ops_per_block / 2 };
           { s with ops_per_block = s.ops_per_block - 1 };
         ]
       else []);
      (if s.exit_stubs > 1 then [ { s with exit_stubs = s.exit_stubs - 1 } ]
       else []);
      (if s.loop then [ { s with loop = false } ] else []);
      (if s.fp then [ { s with fp = false } ] else []);
      (if s.stores then [ { s with stores = false } ] else []);
      (if s.loads then [ { s with loads = false } ] else []);
    ]

let minimize check stage ~seed =
  let repro = of_failure check stage ~seed in
  let shape = ref repro.shape in
  let prog = ref repro.prog in
  let reason = ref repro.reason in
  let steps = ref 0 in
  let inputs0 = repro.inputs in
  (* Phase 1: shape *)
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun cand ->
        if not !progress then begin
          let p = W.Gen.prog_of ~shape:cand seed in
          match fails check stage p inputs0 with
          | Some r ->
            shape := cand;
            prog := p;
            reason := r;
            incr steps;
            progress := true
          | None -> ()
        end)
      (shape_candidates !shape)
  done;
  (* Phase 2: drop single operations to a fixpoint *)
  let drop_op label id =
    let p = Prog.copy !prog in
    (match Prog.find p label with
    | Some r ->
      r.Region.ops <-
        List.filter (fun (o : Op.t) -> o.Op.id <> id) r.Region.ops
    | None -> ());
    p
  in
  let progress = ref true in
  while !progress do
    progress := false;
    let candidates =
      List.concat_map
        (fun (r : Region.t) ->
          List.map (fun (o : Op.t) -> (r.Region.label, o.Op.id)) r.Region.ops)
        (Prog.regions !prog)
    in
    List.iter
      (fun (label, id) ->
        let still_there =
          match Prog.find !prog label with
          | Some r -> List.exists (fun (o : Op.t) -> o.Op.id = id) r.Region.ops
          | None -> false
        in
        if still_there then begin
          let p = drop_op label id in
          match fails check stage p inputs0 with
          | Some r ->
            prog := p;
            reason := r;
            incr steps;
            progress := true
          | None -> ()
        end)
      candidates
  done;
  (* Phase 3a: a single failing input *)
  let inputs = ref inputs0 in
  if List.length inputs0 > 1 then begin
    match
      List.find_opt (fun i -> fails check stage !prog [ i ] <> None) inputs0
    with
    | Some i ->
      (match fails check stage !prog [ i ] with
      | Some r ->
        inputs := [ i ];
        reason := r;
        incr steps
      | None -> assert false)
    | None -> () (* only the combination fails; keep the battery *)
  end;
  (* Phase 3b: delta-debug memory cells of the surviving input *)
  (match !inputs with
  | [ input ] ->
    let rec shrink_cells (input : Cpr_sim.Equiv.input) chunk =
      if chunk = 0 then input
      else begin
        let mem = input.Cpr_sim.Equiv.memory in
        let n = List.length mem in
        let rec try_at i =
          if i >= n then None
          else begin
            let cand_mem =
              List.filteri (fun j _ -> j < i || j >= i + chunk) mem
            in
            let cand = { input with Cpr_sim.Equiv.memory = cand_mem } in
            match fails check stage !prog [ cand ] with
            | Some r -> Some (cand, r)
            | None -> try_at (i + chunk)
          end
        in
        match try_at 0 with
        | Some (cand, r) ->
          reason := r;
          incr steps;
          shrink_cells cand chunk
        | None -> shrink_cells input (chunk / 2)
      end
    in
    let n = List.length input.Cpr_sim.Equiv.memory in
    if n > 0 then inputs := [ shrink_cells input (max 1 (n / 2)) ]
  | _ -> ());
  {
    seed;
    stage = stage.Stage.name;
    reason = !reason;
    shape = !shape;
    prog = !prog;
    inputs = !inputs;
    steps = !steps;
  }
