module W = Cpr_workloads
module Obs = Cpr_obs.Obs
module Passes = Cpr_pipeline.Passes
module Inject = Cpr_resilience.Chaos
module Recover = Cpr_resilience.Recover

type status =
  | Committed
  | Degraded of Recover.failure
  | Escaped of string

type outcome = {
  seed : int;
  stage : string;
  kind : Inject.kind;
  status : status;
}

(* Deterministic fault plan: a multiplicative hash of the seed picks the
   stage and the fault kind, so every (seed, plan) pair is reproducible
   from the seed alone and the sweep covers the full stage x kind grid. *)
let plan_of_seed seed =
  let stages = Passes.stage_names in
  let h = seed * 2654435761 land max_int in
  let stage = List.nth stages (h mod List.length stages) in
  let kinds = Inject.all_kinds in
  let kind = List.nth kinds (h / 31 mod List.length kinds) in
  (stage, kind)

(* The invariant under test: with a fault armed at an arbitrary pipeline
   point, the protected pipeline must either commit verified output
   (transient faults are absorbed by the retry) or degrade cleanly to
   the verified fallback with a crash bundle on disk.  An exception
   escaping [Passes.protected] — [Escaped] — is the bug this harness
   exists to find. *)
let run_seed ?(bundle_dir = Cpr_resilience.Bundle.default_dir) seed =
  let stage, kind = plan_of_seed seed in
  let prog = W.Gen.prog_of_seed seed in
  let inputs = W.Gen.inputs_of_seed seed in
  Inject.arm ~stage kind;
  let status =
    Fun.protect ~finally:Inject.disarm (fun () ->
        match Passes.protected ~bundle_dir ~stage prog inputs with
        | Recover.Committed _ -> Committed
        | Recover.Fell_back (_, f) -> Degraded f
        | exception e -> Escaped (Printexc.to_string e))
  in
  { seed; stage; kind; status }

(* One task per seed; arm/disarm are domain-local, so pooled seeds keep
   their injections isolated and results come back in seed order. *)
let run ?pool ?bundle_dir ~lo ~hi () =
  Obs.span "fuzz/chaos" @@ fun () ->
  let seeds = List.init (max 0 (hi - lo)) (fun k -> lo + k) in
  let one seed =
    Obs.span ~args:[ ("seed", string_of_int seed) ] "chaos/seed" @@ fun () ->
    run_seed ?bundle_dir seed
  in
  match pool with
  | Some p ->
    Cpr_par.Pool.map
      ~label:(fun seed -> "chaos-seed-" ^ string_of_int seed)
      p one seeds
  | None -> List.map one seeds

type summary = {
  seeds : int;
  committed : int;
  degraded : int;
  bundled : int;  (* degraded runs that also produced a bundle *)
  escaped : (int * string * string) list;  (* seed, stage, exn *)
}

let summarize outcomes =
  List.fold_left
    (fun acc o ->
      match o.status with
      | Committed -> { acc with seeds = acc.seeds + 1; committed = acc.committed + 1 }
      | Degraded f ->
        {
          acc with
          seeds = acc.seeds + 1;
          degraded = acc.degraded + 1;
          bundled = (acc.bundled + if f.Recover.bundle <> None then 1 else 0);
        }
      | Escaped msg ->
        {
          acc with
          seeds = acc.seeds + 1;
          escaped = (o.seed, o.stage, msg) :: acc.escaped;
        })
    { seeds = 0; committed = 0; degraded = 0; bundled = 0; escaped = [] }
    outcomes

let ok summary = summary.escaped = []

let pp_summary ppf s =
  Format.fprintf ppf
    "chaos: %d seeds, %d committed, %d degraded (%d bundled), %d escaped@."
    s.seeds s.committed s.degraded s.bundled
    (List.length s.escaped);
  List.iter
    (fun (seed, stage, msg) ->
      Format.fprintf ppf "ESCAPED seed %d stage %s: %s@." seed stage msg)
    (List.rev s.escaped)
