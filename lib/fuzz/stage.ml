open Cpr_ir
module P = Cpr_pipeline

type t = {
  name : string;
  descr : string;
  apply : Prog.t -> Cpr_sim.Equiv.input list -> Prog.t;
}

(* The driver verifies candidates itself (when asked to), with the
   findings routed into its outcome accounting — so the Passes-internal
   verification is off in every [apply] below. *)
let compiled f prog inputs = (f prog inputs).P.Passes.prog

(* The end-to-end combination: if-conversion and unrolling upstream of
   ICBM, the way a production pipeline would compose them. *)
let full_pipeline prog inputs =
  let p = P.Passes.prepare prog inputs in
  let (_ : Cpr_core.Ifconv.stats) = Cpr_core.Ifconv.convert p in
  List.iter
    (fun (r : Region.t) ->
      if Cpr_core.Unroll.unrollable p r then
        ignore (Cpr_core.Unroll.unroll_region p r ~factor:2 : bool))
    (Prog.regions p);
  P.Passes.profile p inputs;
  if Sys.getenv_opt "CPR_DEBUG_FULLPIPE" <> None then
    prerr_string (Printer.to_text p);
  let (_ : Cpr_core.Icbm.region_stats) = Cpr_core.Icbm.run p in
  Validate.check_exn p;
  P.Passes.profile p inputs;
  p

let all =
  [
    {
      name = "superblock";
      descr = "profile-guided superblock formation (tail duplication)";
      apply = compiled (P.Passes.superblock_only ~verify:false);
    };
    {
      name = "ifconv";
      descr = "classic if-conversion of unbiased side exits";
      apply = compiled (P.Passes.if_convert ~verify:false);
    };
    {
      name = "frp";
      descr = "fully-resolved-predicate conversion";
      apply = compiled (P.Passes.frp_convert ~verify:false);
    };
    {
      name = "spec";
      descr = "FRP conversion + predicate speculation";
      apply = compiled (P.Passes.speculate ~verify:false);
    };
    {
      name = "unroll";
      descr = "superblock loop unrolling (factor 2)";
      apply = compiled (fun p i -> P.Passes.unroll ~verify:false p i);
    };
    {
      name = "fullcpr";
      descr = "full (redundant) CPR after Schlansker & Kathail";
      apply = compiled (P.Passes.full_cpr ~verify:false);
    };
    {
      name = "icbm";
      descr = "the ICBM schema (speculate, match, restructure, off-trace)";
      apply = compiled (fun p i -> P.Passes.height_reduce ~verify:false p i);
    };
    {
      name = "fullpipe";
      descr = "if-conversion + unrolling + ICBM, end to end";
      apply = full_pipeline;
    };
  ]

let find name = List.find_opt (fun s -> s.name = name) all
let names = String.concat "," (List.map (fun s -> s.name) all)

let parse spec =
  if spec = "all" then Ok all
  else
    let parts = String.split_on_char ',' spec in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
        match find (String.trim p) with
        | Some s -> go (s :: acc) rest
        | None ->
          Error
            (Printf.sprintf "unknown stage %S (expected one of %s)" p names))
    in
    go [] parts
