open Cpr_ir

(** The differential fuzzing driver.

    For each seed the driver generates a terminating program
    ({!Cpr_workloads.Gen}), pushes it through each requested stage, and
    checks the transformed code against the raw program with two
    oracles: architectural equivalence on a battery of seeded inputs
    ({!Cpr_sim.Equiv}), and scheduled-VLIW execution agreement on the
    medium machine ({!Cpr_sim.Vliw.check_against_interp}).  Everything
    is a deterministic function of the seed and the configuration. *)

type check = {
  vliw : bool;  (** also require scheduled-VLIW / interpreter agreement *)
  extra_inputs : int;
      (** seeded inputs added on top of [Gen.inputs_of_seed]'s battery *)
  fault : Fault.t option;  (** miscompile to inject after each transform *)
  verify : bool;
      (** run the static verifier ({!Cpr_verify.Verify.check_stage}) on
          each candidate before any simulation — error findings [Fail]
          without an oracle run, making the verifier itself subject to
          the fuzzer's fault-injection validation *)
}

val default_check : check
(** VLIW on, 2 extra inputs, no fault, no static verification. *)

type outcome =
  | Pass
  | Fail of string  (** an oracle rejected the transformed program *)
  | Skip of string
      (** the reference itself is unusable (invalid or stuck) — possible
          only for shrinker-mutated programs, never for generator output *)

val inputs_for : check -> int -> Cpr_sim.Equiv.input list
(** The input battery for a seed: [Gen.inputs_of_seed] plus
    [check.extra_inputs] further seeded inputs. *)

val run_prog :
  check -> Stage.t -> Prog.t -> Cpr_sim.Equiv.input list -> outcome
(** Check one explicit program (the shrinker's entry point). *)

val run_stage : check -> Stage.t -> seed:int -> outcome
(** Generate the seed's program and inputs, then {!run_prog}. *)

val run_seeds :
  ?pool:Cpr_par.Pool.t -> check -> Stage.t list -> lo:int -> hi:int
  -> (int * (Stage.t * outcome) list) list
(** {!run_stage} for every seed in the half-open range [lo..hi), every
    stage.  [?pool] fans seeds out across domains; results are returned
    in ascending seed order regardless, so recording and printing them
    afterwards is byte-identical to the sequential run. *)

(** {2 Summary accounting} *)

type tally = {
  mutable runs : int;
  mutable fails : int;
  mutable skips : int;
}

type summary = {
  tallies : (string * tally) list;  (** per stage, in registry order *)
  mutable seeds : int;
  mutable failures : (int * string * string) list;
      (** seed, stage, reason — newest first *)
}

val new_summary : Stage.t list -> summary
val record : summary -> Stage.t -> seed:int -> outcome -> unit

val pp_summary : Format.formatter -> summary -> unit
(** Stage-coverage and failure-rate table; deterministic (no clocks). *)
