open Cpr_ir

(** Counterexample auto-shrinking.

    Given a failing (seed, stage) pair, the shrinker greedily minimizes
    along three axes, in order:

    + {b shape}: regenerate the program from structurally smaller
      generator shapes (fewer superblock basic blocks, fewer ops per
      block, fewer exit stubs, no loop / stores / loads / fp) via
      {!Cpr_workloads.Gen.prog_of}, keeping any variant that still
      fails;
    + {b ops}: drop individual operations from the failing program, one
      at a time to a fixpoint;
    + {b inputs}: reduce the input battery to a single failing input,
      then delta-debug its memory cells away in halving chunks.

    A candidate is accepted only when the driver still reports [Fail] —
    a mutation that breaks the {e reference} program ([Skip]) is never
    taken, so the minimized reproducer is always a well-formed,
    terminating program.  All steps are deterministic. *)

type t = {
  seed : int;
  stage : string;
  reason : string;  (** failure reason of the {e minimized} reproducer *)
  shape : Cpr_workloads.Gen.shape;
      (** advisory: the smallest generator shape reached in phase 1
          (phases 2-3 edit the program directly) *)
  prog : Prog.t;
  inputs : Cpr_sim.Equiv.input list;
  steps : int;  (** accepted shrink steps *)
}

val of_failure : Driver.check -> Stage.t -> seed:int -> t
(** The unshrunk reproducer (phase 0), for [--no-shrink] corpus output.
    Raises [Invalid_argument] when the seed does not fail the stage. *)

val minimize : Driver.check -> Stage.t -> seed:int -> t
(** Shrink to a local minimum.  Raises [Invalid_argument] when the seed
    does not fail the stage. *)
