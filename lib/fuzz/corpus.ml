open Cpr_ir

type entry = {
  path : string;
  seed : int;
  stage : string;
  reason : string;
  shape : string;
  prog : Prog.t;
  inputs : Cpr_sim.Equiv.input list;
}

let filename ~stage ~seed = Printf.sprintf "%s-seed%04d.cpr" stage seed

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let one_line s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

let reg_to_string = Reg.to_string

let reg_of_string s =
  if String.length s < 2 then invalid_arg ("bad register " ^ s)
  else begin
    let id = int_of_string (String.sub s 1 (String.length s - 1)) in
    match s.[0] with
    | 'r' -> Reg.gpr id
    | 'p' -> Reg.pred id
    | 'b' -> Reg.btr id
    | _ -> invalid_arg ("bad register " ^ s)
  end

let input_to_string (i : Cpr_sim.Equiv.input) =
  let pair (k, v) = Printf.sprintf "%d=%d" k v in
  let rpair (r, v) = Printf.sprintf "%s=%d" (reg_to_string r) v in
  let bpair (r, b) =
    Printf.sprintf "%s=%d" (reg_to_string r) (if b then 1 else 0)
  in
  let groups =
    List.filter
      (fun s -> s <> "")
      [
        (if i.Cpr_sim.Equiv.memory = [] then ""
         else "mem " ^ String.concat " " (List.map pair i.Cpr_sim.Equiv.memory));
        (if i.Cpr_sim.Equiv.gprs = [] then ""
         else "gpr " ^ String.concat " " (List.map rpair i.Cpr_sim.Equiv.gprs));
        (if i.Cpr_sim.Equiv.preds = [] then ""
         else
           "pred " ^ String.concat " " (List.map bpair i.Cpr_sim.Equiv.preds));
      ]
  in
  String.concat " ; " groups

let input_of_string s =
  let parse_kv kv =
    match String.index_opt kv '=' with
    | Some i ->
      ( String.sub kv 0 i,
        int_of_string (String.sub kv (i + 1) (String.length kv - i - 1)) )
    | None -> invalid_arg ("bad binding " ^ kv)
  in
  let input = ref Cpr_sim.Equiv.no_input in
  List.iter
    (fun group ->
      match
        List.filter
          (fun t -> t <> "")
          (String.split_on_char ' ' (String.trim group))
      with
      | [] -> ()
      | kind :: kvs ->
        let kvs = List.map parse_kv kvs in
        let i = !input in
        input :=
          (match kind with
          | "mem" ->
            {
              i with
              Cpr_sim.Equiv.memory =
                List.map (fun (a, v) -> (int_of_string a, v)) kvs;
            }
          | "gpr" ->
            {
              i with
              Cpr_sim.Equiv.gprs =
                List.map (fun (r, v) -> (reg_of_string r, v)) kvs;
            }
          | "pred" ->
            {
              i with
              Cpr_sim.Equiv.preds =
                List.map (fun (r, v) -> (reg_of_string r, v <> 0)) kvs;
            }
          | k -> invalid_arg ("bad input group " ^ k)))
    (String.split_on_char ';' s);
  !input

let save ~dir (repro : Shrink.t) =
  mkdir_p dir;
  let path =
    Filename.concat dir
      (filename ~stage:repro.Shrink.stage ~seed:repro.Shrink.seed)
  in
  let oc = open_out path in
  Printf.fprintf oc
    "# cpr-fuzz counterexample (regenerate with `dune exec bin/fuzz.exe`)\n";
  Printf.fprintf oc "# seed: %d\n" repro.Shrink.seed;
  Printf.fprintf oc "# stage: %s\n" repro.Shrink.stage;
  Printf.fprintf oc "# reason: %s\n" (one_line repro.Shrink.reason);
  Printf.fprintf oc "# shape: %s\n"
    (Cpr_workloads.Gen.shape_to_string repro.Shrink.shape);
  Printf.fprintf oc "# shrink-steps: %d\n" repro.Shrink.steps;
  List.iter
    (fun i -> Printf.fprintf oc "# input: %s\n" (input_to_string i))
    repro.Shrink.inputs;
  output_string oc (Printer.to_text repro.Shrink.prog);
  close_out oc;
  path

let strip_prefix prefix line =
  let n = String.length prefix in
  if String.length line >= n && String.sub line 0 n = prefix then
    Some (String.trim (String.sub line n (String.length line - n)))
  else None

let load path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    text
  with
  | exception Sys_error msg -> Error msg
  | text -> (
    let lines = String.split_on_char '\n' text in
    let meta, body =
      List.partition
        (fun l -> String.length l > 0 && l.[0] = '#')
        lines
    in
    let field prefix default =
      List.fold_left
        (fun acc l ->
          match strip_prefix prefix l with Some v -> v | None -> acc)
        default meta
    in
    let inputs =
      List.filter_map (strip_prefix "# input:") meta
      |> List.map input_of_string
    in
    match Parser_.of_text (String.concat "\n" body) with
    | exception Parser_.Parse_error (line, msg) ->
      Error (Printf.sprintf "%s: parse error at line %d: %s" path line msg)
    | prog -> (
      match Validate.check prog with
      | e :: _ ->
        Error (Format.asprintf "%s: invalid program: %a" path Validate.pp_error e)
      | [] ->
        Ok
          {
            path;
            seed = (try int_of_string (field "# seed:" "-1") with _ -> -1);
            stage = field "# stage:" "icbm";
            reason = field "# reason:" "";
            shape = field "# shape:" "";
            prog;
            inputs;
          }))

let load_dir dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".cpr")
    |> List.sort String.compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           (path, load path))

let replay entry =
  match Stage.find entry.stage with
  | None -> Error (Printf.sprintf "unknown stage %S" entry.stage)
  | Some stage -> (
    let inputs =
      if entry.inputs = [] then [ Cpr_sim.Equiv.no_input ] else entry.inputs
    in
    match Driver.run_prog Driver.default_check stage entry.prog inputs with
    | Driver.Pass -> Ok ()
    | Driver.Fail r -> Error r
    | Driver.Skip r -> Error ("reference unusable: " ^ r))
