open Cpr_ir

type entry = {
  path : string;
  seed : int;
  stage : string;
  reason : string;
  shape : string;
  prog : Prog.t;
  inputs : Cpr_sim.Equiv.input list;
}

let filename ~stage ~seed = Printf.sprintf "%s-seed%04d.cpr" stage seed

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let one_line s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

(* The textual input format lives with the type it serializes; the
   crash-bundle writer (Cpr_resilience.Bundle) shares it. *)
let input_to_string = Cpr_sim.Equiv.input_to_string
let input_of_string = Cpr_sim.Equiv.input_of_string

let save ~dir (repro : Shrink.t) =
  mkdir_p dir;
  let path =
    Filename.concat dir
      (filename ~stage:repro.Shrink.stage ~seed:repro.Shrink.seed)
  in
  let oc = open_out path in
  Printf.fprintf oc
    "# cpr-fuzz counterexample (regenerate with `dune exec bin/fuzz.exe`)\n";
  Printf.fprintf oc "# seed: %d\n" repro.Shrink.seed;
  Printf.fprintf oc "# stage: %s\n" repro.Shrink.stage;
  Printf.fprintf oc "# reason: %s\n" (one_line repro.Shrink.reason);
  Printf.fprintf oc "# shape: %s\n"
    (Cpr_workloads.Gen.shape_to_string repro.Shrink.shape);
  Printf.fprintf oc "# shrink-steps: %d\n" repro.Shrink.steps;
  List.iter
    (fun i -> Printf.fprintf oc "# input: %s\n" (input_to_string i))
    repro.Shrink.inputs;
  output_string oc (Printer.to_text repro.Shrink.prog);
  close_out oc;
  path

let strip_prefix prefix line =
  let n = String.length prefix in
  if String.length line >= n && String.sub line 0 n = prefix then
    Some (String.trim (String.sub line n (String.length line - n)))
  else None

let load path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    text
  with
  | exception Sys_error msg -> Error msg
  | text -> (
    let lines = String.split_on_char '\n' text in
    let meta, body =
      List.partition
        (fun l -> String.length l > 0 && l.[0] = '#')
        lines
    in
    let field prefix default =
      List.fold_left
        (fun acc l ->
          match strip_prefix prefix l with Some v -> v | None -> acc)
        default meta
    in
    let inputs =
      List.filter_map (strip_prefix "# input:") meta
      |> List.map input_of_string
    in
    match Parser_.of_text (String.concat "\n" body) with
    | exception Parser_.Parse_error (line, msg) ->
      Error (Printf.sprintf "%s: parse error at line %d: %s" path line msg)
    | prog -> (
      match Validate.check prog with
      | e :: _ ->
        Error (Format.asprintf "%s: invalid program: %a" path Validate.pp_error e)
      | [] ->
        Ok
          {
            path;
            seed = (try int_of_string (field "# seed:" "-1") with _ -> -1);
            stage = field "# stage:" "icbm";
            reason = field "# reason:" "";
            shape = field "# shape:" "";
            prog;
            inputs;
          }))

let load_dir dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".cpr")
    |> List.sort String.compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           (path, load path))

let replay entry =
  match Stage.find entry.stage with
  | None -> Error (Printf.sprintf "unknown stage %S" entry.stage)
  | Some stage -> (
    let inputs =
      if entry.inputs = [] then [ Cpr_sim.Equiv.no_input ] else entry.inputs
    in
    match Driver.run_prog Driver.default_check stage entry.prog inputs with
    | Driver.Pass -> Ok ()
    | Driver.Fail r -> Error r
    | Driver.Skip r -> Error ("reference unusable: " ^ r))
