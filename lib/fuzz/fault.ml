open Cpr_ir

type t =
  | Skip_compensation
  | Drop_pred_init
  | Sink_past_dep

let all = [ Skip_compensation; Drop_pred_init; Sink_past_dep ]

let name = function
  | Skip_compensation -> "skip-comp"
  | Drop_pred_init -> "drop-pred-init"
  | Sink_past_dep -> "sink-past-dep"

let describe = function
  | Skip_compensation ->
    "empty every compensation (Cmp*) region after the transform"
  | Drop_pred_init -> "remove the Pred_init operations restructure inserts"
  | Sink_past_dep ->
    "move an op below an anti-/output-dependent successor (the Set-3 \
     sinking bug class)"

let of_string s = List.find_opt (fun f -> name f = s) all

let is_comp_label l = String.length l >= 3 && String.sub l 0 3 = "Cmp"

let inject fault prog =
  match fault with
  | Skip_compensation ->
    List.iter
      (fun (r : Region.t) ->
        if is_comp_label r.Region.label then r.Region.ops <- [])
      (Prog.regions prog)
  | Drop_pred_init ->
    List.iter
      (fun (r : Region.t) ->
        r.Region.ops <-
          List.filter
            (fun (op : Op.t) ->
              match op.Op.opcode with Op.Pred_init _ -> false | _ -> true)
            r.Region.ops)
      (Prog.regions prog)
  | Sink_past_dep ->
    (* Reproduce the offtrace Set-3 bug: take the first (region, i, j)
       where op j anti-/output-depends on op i, and sink op i to just
       below op j.  Branches and pbrs keep their place so the region
       stays structurally valid. *)
    let movable (op : Op.t) = not (Op.is_branch op || Op.is_pbr op) in
    let exception Done in
    (try
       List.iter
         (fun (r : Region.t) ->
           let arr = Array.of_list r.Region.ops in
           let n = Array.length arr in
           for i = 0 to n - 1 do
             if movable arr.(i) then
               for j = i + 1 to n - 1 do
                 if
                   movable arr.(j)
                   && List.exists
                        (fun d ->
                          List.exists (Reg.equal d) (Op.uses arr.(i))
                          || List.exists (Reg.equal d) (Op.defs arr.(i)))
                        (Op.defs arr.(j))
                 then begin
                   let rest =
                     List.filteri (fun k _ -> k <> i) (Array.to_list arr)
                   in
                   let rec sink k = function
                     | [] -> [ arr.(i) ]
                     | x :: tl ->
                       if k = 0 then x :: arr.(i) :: tl
                       else x :: sink (k - 1) tl
                   in
                   r.Region.ops <- sink (j - 1) rest;
                   raise Done
                 end
               done
           done)
         (Prog.regions prog)
     with Done -> ())

let inject_opt fault prog =
  match fault with None -> () | Some f -> inject f prog
