open Cpr_ir

type t =
  | Skip_compensation
  | Drop_pred_init

let all = [ Skip_compensation; Drop_pred_init ]

let name = function
  | Skip_compensation -> "skip-comp"
  | Drop_pred_init -> "drop-pred-init"

let describe = function
  | Skip_compensation ->
    "empty every compensation (Cmp*) region after the transform"
  | Drop_pred_init -> "remove the Pred_init operations restructure inserts"

let of_string s = List.find_opt (fun f -> name f = s) all

let is_comp_label l = String.length l >= 3 && String.sub l 0 3 = "Cmp"

let inject fault prog =
  match fault with
  | Skip_compensation ->
    List.iter
      (fun (r : Region.t) ->
        if is_comp_label r.Region.label then r.Region.ops <- [])
      (Prog.regions prog)
  | Drop_pred_init ->
    List.iter
      (fun (r : Region.t) ->
        r.Region.ops <-
          List.filter
            (fun (op : Op.t) ->
              match op.Op.opcode with Op.Pred_init _ -> false | _ -> true)
            r.Region.ops)
      (Prog.regions prog)

let inject_opt fault prog =
  match fault with None -> () | Some f -> inject f prog
