open Cpr_ir
module W = Cpr_workloads
module Obs = Cpr_obs.Obs

(* Fuzzing telemetry: one [fuzz/seed] span per seed (nesting the
   per-stage pipeline spans beneath it), plus outcome counters.  Dark
   unless a [--trace] sink enabled Cpr_obs. *)
let c_seeds = Obs.counter "fuzz.seeds"
let c_pass = Obs.counter "fuzz.pass"
let c_fail = Obs.counter "fuzz.fail"
let c_skip = Obs.counter "fuzz.skip"

let observe_outcome = function
  | `Pass -> Obs.incr c_pass
  | `Fail -> Obs.incr c_fail
  | `Skip -> Obs.incr c_skip

type check = {
  vliw : bool;
  extra_inputs : int;
  fault : Fault.t option;
  verify : bool;
}

let default_check =
  { vliw = true; extra_inputs = 2; fault = None; verify = false }

type outcome =
  | Pass
  | Fail of string
  | Skip of string

let inputs_for check seed =
  W.Gen.inputs_of_seed seed
  @ List.init check.extra_inputs (fun k ->
        W.Gen.input_of_seed seed ~seed:(seed + ((k + 5) * 101)))

let reference_ok prog inputs =
  match Validate.check prog with
  | e :: _ ->
    Error (Format.asprintf "reference invalid: %a" Validate.pp_error e)
  | [] -> (
    match
      List.iter
        (fun input ->
          ignore (Cpr_sim.Equiv.run_on prog input : Cpr_sim.Interp.outcome))
        inputs
    with
    | () -> Ok ()
    | exception Cpr_sim.Interp.Stuck msg -> Error ("reference stuck: " ^ msg))

let run_prog check (stage : Stage.t) prog inputs =
  match reference_ok prog inputs with
  | Error msg -> Skip msg
  | Ok () -> (
    match stage.Stage.apply prog inputs with
    | exception e -> Fail ("transform raised: " ^ Printexc.to_string e)
    | candidate -> (
      Fault.inject_opt check.fault candidate;
      match Validate.check candidate with
      | e :: _ -> Fail (Format.asprintf "validation: %a" Validate.pp_error e)
      | [] -> (
        match
          if not check.verify then Ok ()
          else begin
            (* Pre-simulation oracle: the static verifier alone, against
               the same pre-transformation program the stage started
               from ([prepare] is deterministic, so recomputing it here
               reproduces the stage's input exactly). *)
            let before =
              if stage.Stage.name = "superblock" then Prog.copy prog
              else Cpr_pipeline.Passes.prepare prog inputs
            in
            match
              Cpr_verify.Verify.errors
                (Cpr_verify.Verify.check_stage ~stage:stage.Stage.name
                   ~before candidate)
            with
            | [] -> Ok ()
            | f :: _ ->
              Error (Format.asprintf "verify: %a" Cpr_verify.Finding.pp f)
          end
        with
        | Error e -> Fail e
        | Ok () -> (
        match Cpr_sim.Equiv.check_many prog candidate inputs with
        | Error e -> Fail ("equivalence: " ^ e)
        | exception Cpr_sim.Interp.Stuck msg ->
          Fail ("candidate stuck: " ^ msg)
        | Ok () ->
          if not check.vliw then Pass
          else (
            match
              Cpr_sim.Vliw.check_against_interp Cpr_machine.Descr.medium
                candidate inputs
            with
            | Ok () -> Pass
            | Error e -> Fail ("vliw: " ^ e)
            | exception Cpr_sim.Vliw.Vliw_error msg -> Fail ("vliw: " ^ msg)
            | exception Cpr_sim.Interp.Stuck msg ->
              Fail ("vliw interp: " ^ msg))))))

let run_stage check stage ~seed =
  let outcome =
    Obs.span
      ~args:[ ("seed", string_of_int seed) ]
      ("fuzz/" ^ stage.Stage.name)
      (fun () ->
        run_prog check stage (W.Gen.prog_of_seed seed) (inputs_for check seed))
  in
  observe_outcome
    (match outcome with Pass -> `Pass | Fail _ -> `Fail | Skip _ -> `Skip);
  outcome

(* One task per seed (running all its stages) keeps tasks coarse enough
   to amortize pool hand-off; results come back in seed order, so the
   caller's accounting and FAIL output are independent of the domain
   count.  Shrinking stays with the caller: it is rare, highly stateful,
   and its step count is part of the reproducer's identity. *)
let run_seeds ?pool check stages ~lo ~hi =
  let seeds = List.init (max 0 (hi - lo)) (fun k -> lo + k) in
  let one seed =
    Obs.span ~args:[ ("seed", string_of_int seed) ] "fuzz/seed" @@ fun () ->
    Obs.incr c_seeds;
    ( seed,
      List.map (fun stage -> (stage, run_stage check stage ~seed)) stages )
  in
  match pool with
  | Some p -> Cpr_par.Pool.map p one seeds
  | None -> List.map one seeds

(* ------------------------------------------------------------------ *)

type tally = {
  mutable runs : int;
  mutable fails : int;
  mutable skips : int;
}

type summary = {
  tallies : (string * tally) list;
  mutable seeds : int;
  mutable failures : (int * string * string) list;
}

let new_summary stages =
  {
    tallies =
      List.map
        (fun (s : Stage.t) -> (s.Stage.name, { runs = 0; fails = 0; skips = 0 }))
        stages;
    seeds = 0;
    failures = [];
  }

let record summary (stage : Stage.t) ~seed outcome =
  let t = List.assoc stage.Stage.name summary.tallies in
  t.runs <- t.runs + 1;
  match outcome with
  | Pass -> ()
  | Skip _ -> t.skips <- t.skips + 1
  | Fail reason ->
    t.fails <- t.fails + 1;
    summary.failures <- (seed, stage.Stage.name, reason) :: summary.failures

let pp_summary ppf summary =
  Format.fprintf ppf "%-12s%8s%8s%8s%8s%9s@." "stage" "runs" "pass" "fail"
    "skip" "fail%";
  List.iter
    (fun (name, t) ->
      if t.runs > 0 then
        Format.fprintf ppf "%-12s%8d%8d%8d%8d%9.2f@." name t.runs
          (t.runs - t.fails - t.skips)
          t.fails t.skips
          (100. *. float_of_int t.fails /. float_of_int t.runs))
    summary.tallies;
  let total_runs =
    List.fold_left (fun acc (_, t) -> acc + t.runs) 0 summary.tallies
  in
  let total_fails =
    List.fold_left (fun acc (_, t) -> acc + t.fails) 0 summary.tallies
  in
  Format.fprintf ppf "programs %d, stage runs %d, failures %d@." summary.seeds
    total_runs total_fails;
  List.iter
    (fun (seed, stage, reason) ->
      Format.fprintf ppf "FAIL seed %d stage %s: %s@." seed stage reason)
    (List.rev summary.failures)
