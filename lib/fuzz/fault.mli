open Cpr_ir

(** Injectable miscompiles, for validating the fuzzing oracle itself.

    Each fault corrupts a transformed program the way a real
    transformation bug would (mutation testing for the differential
    oracle): running the fuzzer with a fault injected must produce
    failures, and the shrinker must reduce them to small reproducers.
    A fuzzer change that stops catching every fault in {!all} is a
    regression in the oracle, not in the compiler. *)

type t =
  | Skip_compensation
      (** Empty every compensation ([Cmp*]) region after the transform —
          the classic ICBM miscompile of emitting the bypass branch but
          not the off-trace code it branches to. *)
  | Drop_pred_init
      (** Remove the [Pred_init] operations restructure places at region
          top, leaving the on-/off-trace FRPs uninitialized. *)
  | Sink_past_dep
      (** Move the first op that has an anti-/output-dependent later op
          in its region to just below that op — the Set-3 sinking bug
          class (an op reordered past a staying dependent successor). *)

val all : t list
val name : t -> string
val of_string : string -> t option
val describe : t -> string

val inject : t -> Prog.t -> unit
(** Corrupt a transformed program in place. *)

val inject_opt : t option -> Prog.t -> unit
