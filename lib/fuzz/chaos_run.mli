(** The chaos harness: randomized fault injection against the protected
    pipeline.

    For each seed, a deterministic plan picks one pipeline stage and one
    {!Cpr_resilience.Chaos.kind}, arms the (domain-local) injection
    point, and runs that stage of the seed's generated program under
    {!Cpr_pipeline.Passes.protected}.  The invariant under test: every
    run either {e commits verified output} (transient faults absorbed by
    the recovery retry) or {e degrades cleanly} to the verified fallback
    with a crash bundle written — an exception escaping the protection
    ([Escaped]) is a resilience bug. *)

type status =
  | Committed  (** verified output; the fault (if any) was absorbed *)
  | Degraded of Cpr_resilience.Recover.failure
      (** clean fallback; [failure.bundle] names the quarantine bundle *)
  | Escaped of string  (** invariant violation: the exception got out *)

type outcome = {
  seed : int;
  stage : string;  (** where the fault was armed *)
  kind : Cpr_resilience.Chaos.kind;
  status : status;
}

val plan_of_seed : int -> string * Cpr_resilience.Chaos.kind
(** The deterministic (stage, kind) plan for a seed. *)

val run_seed : ?bundle_dir:string -> int -> outcome
(** Arm, run, disarm (always, also on escape).  [bundle_dir] defaults
    to {!Cpr_resilience.Bundle.default_dir}. *)

val run :
  ?pool:Cpr_par.Pool.t -> ?bundle_dir:string -> lo:int -> hi:int -> unit
  -> outcome list
(** {!run_seed} over [lo..hi); [?pool] fans seeds across domains
    (injection state is domain-local, so seeds stay isolated) and
    results return in seed order either way. *)

type summary = {
  seeds : int;
  committed : int;
  degraded : int;
  bundled : int;
  escaped : (int * string * string) list;  (** seed, stage, exception *)
}

val summarize : outcome list -> summary
val ok : summary -> bool
(** No escapes. *)

val pp_summary : Format.formatter -> summary -> unit
