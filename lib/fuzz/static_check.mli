(** Static regression checking of corpus artifacts: the verifier as the
    only oracle, no simulation.

    For each {!Corpus.entry} the transform is re-applied and
    {!Cpr_verify.Verify.check_stage} run on the (correct) output — which
    must be clean — and then once more per {!Fault.t} with the fault
    injected — which must be caught.  Each fault models one historical
    miscompile class (the bypass-without-compensation and
    dropped-pred-init bugs of the first fuzzing campaign, the Set-3
    sinking bug of icbm-seed1921), so a corpus sweep demonstrates that
    the static verifier alone flags every known bug class on its own
    shrunk reproducer, with zero simulator-oracle invocations.  (The
    transform itself profiles its input as part of compilation; that is
    not a verification oracle.) *)

type fault_result =
  | Caught of string  (** first error finding, printed *)
  | Missed
  | Inapplicable  (** the fault did not change the program *)

type entry_result = {
  entry : Corpus.entry;
  clean : (unit, string) result;
      (** verifier verdict on the unfaulted transform output *)
  faults : (Fault.t * fault_result) list;
}

val check_entry : Corpus.entry -> (entry_result, string) result
(** [Error] when the stage is unknown or the transform raises. *)

val check_dir : string -> (string * (entry_result, string) result) list
(** {!check_entry} over {!Corpus.load_dir}, keyed by path; load errors
    surface as [Error]. *)
