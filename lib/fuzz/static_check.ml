open Cpr_ir

type fault_result =
  | Caught of string
  | Missed
  | Inapplicable

type entry_result = {
  entry : Corpus.entry;
  clean : (unit, string) result;
  faults : (Fault.t * fault_result) list;
}

let check_entry (e : Corpus.entry) =
  match Stage.find e.Corpus.stage with
  | None -> Error (Printf.sprintf "unknown stage %S" e.Corpus.stage)
  | Some stage -> (
    (* [prepare] is deterministic, so this is exactly the program the
       stage transformed. *)
    let before =
      if stage.Stage.name = "superblock" then Prog.copy e.Corpus.prog
      else Cpr_pipeline.Passes.prepare e.Corpus.prog e.Corpus.inputs
    in
    let errors prog =
      Cpr_verify.Verify.errors
        (Cpr_verify.Verify.check_stage ~stage:stage.Stage.name ~before prog)
    in
    match stage.Stage.apply e.Corpus.prog e.Corpus.inputs with
    | exception ex -> Error ("transform raised: " ^ Printexc.to_string ex)
    | candidate ->
      let clean =
        match errors candidate with
        | [] -> Ok ()
        | f :: _ -> Error (Format.asprintf "%a" Cpr_verify.Finding.pp f)
      in
      let faults =
        List.map
          (fun fault ->
            let cand = stage.Stage.apply e.Corpus.prog e.Corpus.inputs in
            let pristine = Printer.to_text cand in
            Fault.inject fault cand;
            if Printer.to_text cand = pristine then (fault, Inapplicable)
            else
              match errors cand with
              | [] -> (fault, Missed)
              | f :: _ ->
                (fault, Caught (Format.asprintf "%a" Cpr_verify.Finding.pp f)))
          Fault.all
      in
      Ok { entry = e; clean; faults })

let check_dir dir =
  List.map
    (fun (path, loaded) ->
      match loaded with
      | Error msg -> (path, Error msg)
      | Ok entry -> (path, check_entry entry))
    (Corpus.load_dir dir)
