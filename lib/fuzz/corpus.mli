open Cpr_ir

(** Corpus persistence: shrunk counterexamples as deterministic
    regression artifacts.

    An artifact is a single [.cpr] file: a block of [#]-prefixed
    metadata lines (seed, stage, failure reason, generator shape,
    serialized inputs) followed by the program in {!Cpr_ir.Printer}'s
    canonical textual form, so it round-trips through {!Cpr_ir.Parser_}
    and diffs readably.  [test/test_fuzz.ml] replays every committed
    artifact through the differential oracle on each test run. *)

type entry = {
  path : string;
  seed : int;
  stage : string;
  reason : string;  (** the failure this artifact was shrunk from *)
  shape : string;  (** advisory, human-readable *)
  prog : Prog.t;
  inputs : Cpr_sim.Equiv.input list;
}

val filename : stage:string -> seed:int -> string
(** ["<stage>-seed%04d.cpr"] — deterministic, so re-fuzzing the same
    failure overwrites rather than accumulates. *)

val save : dir:string -> Shrink.t -> string
(** Write the artifact (creating [dir] if needed); returns its path. *)

val load : string -> (entry, string) result
val load_dir : string -> (string * (entry, string) result) list
(** Every [.cpr] file in the directory, sorted by filename. *)

val replay : entry -> (unit, string) result
(** Push the artifact's program through its recorded stage and the full
    differential oracle (no fault injection).  [Ok] means the historical
    miscompile no longer reproduces. *)
