open Cpr_ir

type input = {
  memory : (int * int) list;
  gprs : (Reg.t * int) list;
  preds : (Reg.t * bool) list;
}

let no_input = { memory = []; gprs = []; preds = [] }
let input_of_memory memory = { no_input with memory }

let run_on prog input =
  let st = State.create () in
  State.set_memory st input.memory;
  List.iter (fun (r, v) -> State.write_gpr st r v) input.gprs;
  List.iter (fun (r, v) -> State.write_pred st r v) input.preds;
  Interp.run ~state:st prog

let per_address trace =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (a, v) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl a) in
      Hashtbl.replace tbl a (v :: prev))
    trace;
  Hashtbl.fold (fun a vs acc -> (a, List.rev vs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let check reference candidate input =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  match (run_on reference input, run_on candidate input) with
  | exception Interp.Stuck msg -> fail "interpreter stuck: %s" msg
  | ref_out, cand_out ->
    if ref_out.Interp.exit_label <> cand_out.Interp.exit_label then
      fail "exit labels differ: %s vs %s"
        (Option.value ~default:"<end>" ref_out.Interp.exit_label)
        (Option.value ~default:"<end>" cand_out.Interp.exit_label)
    else if
      State.memory_snapshot ref_out.Interp.state
      <> State.memory_snapshot cand_out.Interp.state
    then fail "final memories differ"
    else if
      per_address (State.store_trace ref_out.Interp.state)
      <> per_address (State.store_trace cand_out.Interp.state)
    then fail "store sequences differ"
    else begin
      let bad_reg =
        List.find_opt
          (fun r ->
            Reg.is_pred r = false
            && State.read_gpr ref_out.Interp.state r
               <> State.read_gpr cand_out.Interp.state r)
          reference.Prog.live_out
      in
      match bad_reg with
      | Some r -> fail "live-out register %s differs" (Reg.to_string r)
      | None -> Ok ()
    end

let check_many reference candidate inputs =
  List.fold_left
    (fun acc input -> match acc with Error _ -> acc | Ok () -> check reference candidate input)
    (Ok ()) inputs

(* ------------------------------------------------------------------ *)
(* One-line textual input serialization, shared by the fuzz corpus
   artifacts and the resilience layer's crash bundles (both store one
   [# input: ...] comment line per training input). *)

let reg_of_string s =
  if String.length s < 2 then invalid_arg ("bad register " ^ s)
  else begin
    let id = int_of_string (String.sub s 1 (String.length s - 1)) in
    match s.[0] with
    | 'r' -> Reg.gpr id
    | 'p' -> Reg.pred id
    | 'b' -> Reg.btr id
    | _ -> invalid_arg ("bad register " ^ s)
  end

let input_to_string i =
  let pair (k, v) = Printf.sprintf "%d=%d" k v in
  let rpair (r, v) = Printf.sprintf "%s=%d" (Reg.to_string r) v in
  let bpair (r, b) =
    Printf.sprintf "%s=%d" (Reg.to_string r) (if b then 1 else 0)
  in
  let groups =
    List.filter
      (fun s -> s <> "")
      [
        (if i.memory = [] then ""
         else "mem " ^ String.concat " " (List.map pair i.memory));
        (if i.gprs = [] then ""
         else "gpr " ^ String.concat " " (List.map rpair i.gprs));
        (if i.preds = [] then ""
         else "pred " ^ String.concat " " (List.map bpair i.preds));
      ]
  in
  String.concat " ; " groups

let input_of_string s =
  let parse_kv kv =
    match String.index_opt kv '=' with
    | Some i ->
      ( String.sub kv 0 i,
        int_of_string (String.sub kv (i + 1) (String.length kv - i - 1)) )
    | None -> invalid_arg ("bad binding " ^ kv)
  in
  let input = ref no_input in
  List.iter
    (fun group ->
      match
        List.filter
          (fun t -> t <> "")
          (String.split_on_char ' ' (String.trim group))
      with
      | [] -> ()
      | kind :: kvs ->
        let kvs = List.map parse_kv kvs in
        let i = !input in
        input :=
          (match kind with
          | "mem" ->
            { i with memory = List.map (fun (a, v) -> (int_of_string a, v)) kvs }
          | "gpr" ->
            { i with gprs = List.map (fun (r, v) -> (reg_of_string r, v)) kvs }
          | "pred" ->
            {
              i with
              preds = List.map (fun (r, v) -> (reg_of_string r, v <> 0)) kvs;
            }
          | k -> invalid_arg ("bad input group " ^ k)))
    (String.split_on_char ';' s);
  !input
