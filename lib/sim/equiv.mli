open Cpr_ir

(** Differential equivalence checking between a program and its
    transformed version.

    Two programs are considered equivalent on an input when they reach the
    same exit label, leave the same final memory, produce the same
    per-address store sequences (transformations may not reorder writes to
    one cell), and agree on the program's declared live-out registers. *)

type input = {
  memory : (int * int) list;
  gprs : (Reg.t * int) list;
  preds : (Reg.t * bool) list;
}

val no_input : input
val input_of_memory : (int * int) list -> input

val input_to_string : input -> string
(** One-line rendering ([mem a=v ... ; gpr rN=v ... ; pred pN=0/1 ...])
    used by the fuzz-corpus artifacts and the crash bundles. *)

val input_of_string : string -> input
(** Inverse of {!input_to_string}.  Raises [Invalid_argument] or
    [Failure] on malformed text. *)

val run_on : Prog.t -> input -> Interp.outcome

val check : Prog.t -> Prog.t -> input -> (unit, string) result
(** [check reference candidate input] *)

val check_many : Prog.t -> Prog.t -> input list -> (unit, string) result
