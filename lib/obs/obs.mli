(** Structured telemetry: nestable timed spans, named counters and
    gauges, an in-memory summary tree and a Chrome-trace-format exporter.

    Dependency-free by design (stdlib + one C stub for the monotonic
    clock) so that every layer of the compiler — IR analyses, the domain
    pool, the pipeline, the drivers — can emit telemetry without
    dependency cycles or new opam packages.  The subsystem is {e pull
    based}: instrumentation points record into process-global state and
    cost nothing until a sink ({!Summary}, {!Trace}) asks for the data.

    Telemetry is {b disabled by default}.  Every recording entry point
    first reads one atomic flag and returns — no allocation, no lock, no
    clock read — so instrumented hot paths (predicate queries, pool task
    hand-off) stay within a <1% overhead budget when nothing is
    listening.  Enable with {!set_enabled} (the [--trace] flag of the
    drivers does this) and the same call sites start recording.

    All entry points are safe to call from any domain: spans carry the
    recording domain's id as their track, counters are atomic, and the
    event log is mutex-protected (locked once per span {e exit}, never
    per query). *)

val now_ns : unit -> int64
(** Monotonic timestamp in nanoseconds (arbitrary epoch). *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Enabling for the first time (or after {!reset}) fixes the trace
    epoch: exported timestamps count from that moment. *)

val reset : unit -> unit
(** Drop recorded events and gauges and zero every counter.  Counter
    handles remain valid (they are created once at module
    initialization). *)

(** {2 Counters and gauges} *)

type counter

val counter : string -> counter
(** Intern a named monotonic counter.  Calling twice with the same name
    returns the same counter.  Create counters at module initialization,
    not per event: creation takes a lock, {!incr}/{!add} do not. *)

val incr : counter -> unit
val add : counter -> int -> unit

val counter_value : counter -> int

val counters : unit -> (string * int) list
(** Nonzero counters, sorted by name. *)

val gauge : string -> float -> unit
(** Record a point-in-time measurement (e.g. pool utilization of the
    last batch).  Last write per name wins. *)

val gauges : unit -> (string * float) list

(** {2 Spans} *)

val span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] and records a completed-span event on the
    calling domain's track.  Spans nest: a span entered while another is
    open on the same domain becomes its child in {!Summary.tree}.
    Exceptions propagate; the span still records.  When telemetry is
    disabled this is exactly [f ()]. *)

type event = {
  name : string;
  track : int;  (** id of the domain that ran the span *)
  start_ns : int64;  (** {!now_ns} at entry *)
  dur_ns : int64;
  depth : int;  (** nesting depth on the track at entry, outermost 0 *)
  args : (string * string) list;
}

val events : unit -> event list
(** Recorded spans in start order. *)

(** {2 Sinks} *)

module Summary : sig
  type node = {
    name : string;
    count : int;  (** spans merged into this node *)
    total_ns : int64;
    children : node list;
  }

  val tree : unit -> node list
  (** Spans aggregated by name path: two spans merge iff their names and
      the names of all their ancestors agree.  Tracks are merged (the
      per-domain split is the trace exporter's job); roots and children
      are sorted by total time, descending. *)

  val pp : Format.formatter -> unit -> unit
end

module Trace : sig
  (** Chrome-trace-format export: a JSON object whose [traceEvents]
      array holds one complete ("ph":"X") event per span — with the
      recording domain as its track ("tid") — plus thread-name metadata
      per track and one counter ("ph":"C") sample per counter and gauge.
      Load the file in [chrome://tracing] or {{:https://ui.perfetto.dev}
      Perfetto}. *)

  val to_string : unit -> string

  val export : path:string -> unit

  type parsed_event = {
    pname : string;
    pph : string;  (** "X", "M" or "C" *)
    ptid : int;
    pts : float;  (** microseconds since the trace epoch *)
    pdur : float;  (** microseconds; 0 for non-span events *)
  }

  val parse : string -> (parsed_event list, string) result
  (** Parse a trace produced by {!to_string} back into its events — a
      full JSON parse (objects, arrays, string escapes), not a line
      scrape, so the round-trip test also proves the export is
      well-formed JSON. *)
end
