/* Monotonic clock for Cpr_obs.

   CLOCK_MONOTONIC never jumps backwards under NTP adjustment, which is
   what span durations need; gettimeofday is only the fallback for
   platforms without POSIX clocks.  The native-code entry point returns
   an unboxed int64 so the enabled-path timestamp costs no allocation. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>

#if defined(_WIN32)
#include <windows.h>
#else
#include <time.h>
#include <sys/time.h>
#endif

int64_t cpr_obs_monotonic_ns_unboxed(value unit)
{
  (void)unit;
#if defined(_WIN32)
  LARGE_INTEGER freq, count;
  QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&count);
  return (int64_t)((double)count.QuadPart * 1e9 / (double)freq.QuadPart);
#elif defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
    return 0;
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
#else
  struct timeval tv;
  gettimeofday(&tv, NULL);
  return (int64_t)tv.tv_sec * 1000000000 + (int64_t)tv.tv_usec * 1000;
#endif
}

CAMLprim value cpr_obs_monotonic_ns_byte(value unit)
{
  return caml_copy_int64(cpr_obs_monotonic_ns_unboxed(unit));
}
