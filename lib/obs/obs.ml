external now_ns : unit -> (int64[@unboxed])
  = "cpr_obs_monotonic_ns_byte" "cpr_obs_monotonic_ns_unboxed"
[@@noalloc]

(* One atomic read guards every recording entry point: the disabled path
   must cost a load and a branch, nothing else. *)
let on = Atomic.make false
let enabled () = Atomic.get on

type event = {
  name : string;
  track : int;
  start_ns : int64;
  dur_ns : int64;
  depth : int;
  args : (string * string) list;
}

(* Global state: the event log and gauge table share one mutex, taken
   once per span exit / gauge write.  Counters are individually atomic
   and never touch the mutex after creation. *)
let mutex = Mutex.create ()
let recorded : event list ref = ref [] (* newest first *)
let gauge_tbl : (string * float) list ref = ref []
let epoch = ref 0L

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

type counter = { cname : string; cell : int Atomic.t }

let registry : counter list ref = ref []

let counter name =
  locked (fun () ->
      match List.find_opt (fun c -> c.cname = name) !registry with
      | Some c -> c
      | None ->
        let c = { cname = name; cell = Atomic.make 0 } in
        registry := c :: !registry;
        c)

let incr c = if Atomic.get on then ignore (Atomic.fetch_and_add c.cell 1 : int)

let add c n =
  if Atomic.get on && n <> 0 then ignore (Atomic.fetch_and_add c.cell n : int)

let counter_value c = Atomic.get c.cell

let counters () =
  let cs = locked (fun () -> !registry) in
  List.sort compare
    (List.filter_map
       (fun c ->
         let v = Atomic.get c.cell in
         if v = 0 then None else Some (c.cname, v))
       cs)

let gauge name v =
  if Atomic.get on then
    locked (fun () ->
        gauge_tbl := (name, v) :: List.remove_assoc name !gauge_tbl)

let gauges () = List.sort compare (locked (fun () -> !gauge_tbl))

let set_enabled v =
  if v && !epoch = 0L then epoch := now_ns ();
  Atomic.set on v

let reset () =
  locked (fun () ->
      recorded := [];
      gauge_tbl := [];
      List.iter (fun c -> Atomic.set c.cell 0) !registry);
  epoch := now_ns ()

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

(* Nesting depth lives in domain-local storage: each domain runs its
   spans serially, so a per-domain counter incremented at entry is
   exactly the tree depth, with no interval arithmetic at record time. *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let span ?(args = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let d = Domain.DLS.get depth_key in
    let my_depth = !d in
    d := my_depth + 1;
    let t0 = now_ns () in
    let finally () =
      let t1 = now_ns () in
      d := my_depth;
      let e =
        {
          name;
          track = (Domain.self () :> int);
          start_ns = t0;
          dur_ns = Int64.sub t1 t0;
          depth = my_depth;
          args;
        }
      in
      locked (fun () -> recorded := e :: !recorded)
    in
    Fun.protect ~finally f
  end

let events () =
  let es = locked (fun () -> !recorded) in
  List.stable_sort
    (fun a b ->
      match Int64.compare a.start_ns b.start_ns with
      | 0 -> compare a.depth b.depth
      | c -> c)
    es

(* ------------------------------------------------------------------ *)
(* Summary tree                                                        *)

module Summary = struct
  type node = {
    name : string;
    count : int;
    total_ns : int64;
    children : node list;
  }

  type agg = {
    mutable acount : int;
    mutable atotal : int64;
    mutable akids : (string * agg) list; (* reverse insertion order *)
  }

  let get_kid parent name =
    match List.assoc_opt name parent.akids with
    | Some a -> a
    | None ->
      let a = { acount = 0; atotal = 0L; akids = [] } in
      parent.akids <- (name, a) :: parent.akids;
      a

  (* Events arrive sorted by (start, depth); a stack of (depth, agg)
     rebuilds the nesting: an event's parent is the deepest stack entry
     shallower than it.  Tracks are processed separately (their spans
     interleave in time) and merged by landing in the same root table. *)
  let tree () =
    let root = { acount = 0; atotal = 0L; akids = [] } in
    let all = events () in
    let tracks = List.sort_uniq compare (List.map (fun e -> e.track) all) in
    List.iter
      (fun t ->
        let stack = ref [] in
        List.iter
          (fun e ->
            if e.track = t then begin
              while
                match !stack with
                | (d, _) :: rest when d >= e.depth ->
                  stack := rest;
                  true
                | _ -> false
              do
                ()
              done;
              let parent =
                match !stack with [] -> root | (_, a) :: _ -> a
              in
              let a = get_kid parent e.name in
              a.acount <- a.acount + 1;
              a.atotal <- Int64.add a.atotal e.dur_ns;
              stack := (e.depth, a) :: !stack
            end)
          all)
      tracks;
    let rec freeze a =
      let kids =
        List.map (fun (name, k) -> { (freeze k) with name }) (List.rev a.akids)
      in
      {
        name = "";
        count = a.acount;
        total_ns = a.atotal;
        children =
          List.sort (fun x y -> Int64.compare y.total_ns x.total_ns) kids;
      }
    in
    (freeze root).children

  let pp ppf () =
    let rec go indent n =
      Format.fprintf ppf "%s%-*s %6d x %10.3f ms@." indent
        (max 1 (36 - String.length indent))
        n.name n.count
        (Int64.to_float n.total_ns /. 1e6);
      List.iter (go (indent ^ "  ")) n.children
    in
    List.iter (go "") (tree ());
    match counters () with
    | [] -> ()
    | cs ->
      Format.fprintf ppf "counters:@.";
      List.iter (fun (n, v) -> Format.fprintf ppf "  %-34s %10d@." n v) cs
end

(* ------------------------------------------------------------------ *)
(* Chrome trace                                                        *)

module Trace = struct
  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (function
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let us_of ns = Int64.to_float (Int64.sub ns !epoch) /. 1e3

  let to_string () =
    let es = events () in
    let b = Buffer.create 4096 in
    let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    let sep = ref "" in
    let entry fmt =
      Buffer.add_string b !sep;
      sep := ",\n";
      add fmt
    in
    add "{\"traceEvents\":[\n";
    entry
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"cpr\"}}";
    List.iter
      (fun t ->
        entry
          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"domain-%d\"}}"
          t t)
      (List.sort_uniq compare (List.map (fun e -> e.track) es));
    let end_us = ref 0.0 in
    List.iter
      (fun e ->
        let ts = us_of e.start_ns in
        let dur = Int64.to_float e.dur_ns /. 1e3 in
        end_us := Float.max !end_us (ts +. dur);
        entry
          "{\"name\":\"%s\",\"cat\":\"cpr\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d"
          (escape e.name) ts dur e.track;
        if e.args <> [] then begin
          add ",\"args\":{";
          List.iteri
            (fun i (k, v) ->
              add "%s\"%s\":\"%s\""
                (if i = 0 then "" else ",")
                (escape k) (escape v))
            e.args;
          add "}"
        end;
        add "}")
      es;
    List.iter
      (fun (n, v) ->
        entry
          "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":0,\"args\":{\"value\":%d}}"
          (escape n) !end_us v)
      (counters ());
    List.iter
      (fun (n, v) ->
        entry
          "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":0,\"args\":{\"value\":%.6f}}"
          (escape n) !end_us v)
      (gauges ());
    add "\n]}\n";
    Buffer.contents b

  let export ~path =
    let oc = open_out path in
    output_string oc (to_string ());
    close_out oc

  (* --- a small but complete JSON reader, for the round-trip test --- *)

  type json =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of json list
    | Obj of (string * json) list

  exception Bad of string

  let parse_json s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = pos := !pos + 1 in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      if peek () = Some c then advance ()
      else fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail ("expected " ^ word)
    in
    let utf8 b code =
      if code < 0x80 then Buffer.add_char b (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
      end
    in
    let string_lit () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char b '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char b '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char b '/'; go ()
          | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
          | Some 'b' -> advance (); Buffer.add_char b '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char b '\012'; go ()
          | Some 'u' ->
            advance ();
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code -> utf8 b code
            | None -> fail "bad \\u escape");
            go ()
          | _ -> fail "bad escape")
        | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while match peek () with Some c when is_num_char c -> true | _ -> false do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '"' -> Str (string_lit ())
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ((k, v) :: acc)
            | Some '}' ->
              advance ();
              List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (members [])
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elements (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          Arr (elements [])
        end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (number ())
      | None -> fail "unexpected end of input"
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  type parsed_event = {
    pname : string;
    pph : string;
    ptid : int;
    pts : float;
    pdur : float;
  }

  let parse text =
    match parse_json text with
    | exception Bad msg -> Error msg
    | Obj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (Arr evs) -> (
        try
          Ok
            (List.map
               (function
                 | Obj f ->
                   let str k =
                     match List.assoc_opt k f with
                     | Some (Str s) -> s
                     | _ -> raise (Bad ("event missing " ^ k))
                   in
                   let num ?default k =
                     match (List.assoc_opt k f, default) with
                     | Some (Num x), _ -> x
                     | None, Some d -> d
                     | _ -> raise (Bad ("event missing " ^ k))
                   in
                   {
                     pname = str "name";
                     pph = str "ph";
                     ptid = int_of_float (num ~default:0.0 "tid");
                     pts = num ~default:0.0 "ts";
                     pdur = num ~default:0.0 "dur";
                   }
                 | _ -> raise (Bad "non-object event"))
               evs)
        with Bad msg -> Error msg)
      | _ -> Error "no traceEvents array")
    | _ -> Error "not a JSON object"
end
