open Cpr_ir
module B = Builder

type shape = {
  blocks : int;
  ops_per_block : int;
  loop : bool;
  stores : bool;
  loads : bool;
  fp : bool;
  exit_stubs : int;
}

type rng = { mutable state : int }

let step rng =
  rng.state <- Kernels.lcg rng.state;
  rng.state

let rand rng n = if n <= 0 then 0 else step rng mod n

let shape_of_seed seed =
  let rng = { state = Kernels.lcg (seed + 1) } in
  {
    blocks = 1 + rand rng 6;
    ops_per_block = 1 + rand rng 5;
    loop = rand rng 3 > 0;
    stores = rand rng 4 > 0;
    loads = rand rng 4 > 0;
    fp = rand rng 4 = 0;
    exit_stubs = 1 + rand rng 3;
  }

let conds = [| Op.Eq; Op.Ne; Op.Lt; Op.Le; Op.Gt; Op.Ge |]

let arr_a = 1000
let arr_b = 2000
let cnt_cell = 900

let prog_of ~shape seed =
  let rng = { state = Kernels.lcg (seed + 2) } in
  let ctx = B.create () in
  let pool = B.gprs ctx 8 in
  let base_a = B.gpr ctx and base_b = B.gpr ctx and base_z = B.gpr ctx in
  let cnt = B.gpr ctx in
  let pick () = pool.(rand rng (Array.length pool)) in
  let stub_label k = Printf.sprintf "Stub%d" (k + 1) in
  let random_op e =
    match rand rng 10 with
    | 0 | 1 when shape.loads ->
      let d = pick () in
      let (_ : Op.t) = B.load e d ~base:base_a ~off:(rand rng 16) in
      ()
    | 2 when shape.stores ->
      let (_ : Op.t) =
        B.store e ~base:base_b ~off:(rand rng 8) (Op.Reg (pick ()))
      in
      ()
    | 3 when shape.fp ->
      let d = pick () in
      let opc = if rand rng 2 = 0 then Op.Fadd else Op.Fmul in
      let (_ : Op.t) =
        B.emit e (Op.Falu opc) [ d ] [ Op.Reg (pick ()); Op.Reg (pick ()) ]
      in
      ()
    | n ->
      let d = pick () in
      let opc =
        match n mod 5 with
        | 0 -> Op.Add
        | 1 -> Op.Sub
        | 2 -> Op.Xor
        | 3 -> Op.And_
        | _ -> Op.Or_
      in
      let src2 =
        if rand rng 2 = 0 then Op.Reg (pick ()) else Op.Imm (rand rng 7 - 3)
      in
      let (_ : Op.t) = B.alu e opc d (Op.Reg (pick ())) src2 in
      ()
  in
  let main_label = "Main" in
  let start =
    B.region ctx "Start" ~fallthrough:main_label (fun e ->
        let (_ : Op.t) = B.movi e base_a arr_a in
        let (_ : Op.t) = B.movi e base_b arr_b in
        let (_ : Op.t) = B.movi e base_z 0 in
        Array.iteri
          (fun i r ->
            let (_ : Op.t) = B.load e r ~base:base_a ~off:(32 + i) in
            ())
          pool;
        if shape.loop then begin
          let (_ : Op.t) = B.load e cnt ~base:base_z ~off:cnt_cell in
          ()
        end)
  in
  let main =
    B.region ctx main_label ~fallthrough:"Exit" (fun e ->
        for _b = 1 to shape.blocks do
          for _o = 1 to shape.ops_per_block do
            random_op e
          done;
          let p = B.pred ctx in
          let cond = conds.(rand rng (Array.length conds)) in
          let (_ : Op.t) =
            B.cmpp1 e cond Op.Un p (Op.Reg (pick ())) (Op.Imm (rand rng 5 - 2))
          in
          let target = stub_label (rand rng shape.exit_stubs) in
          let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) target in
          ()
        done;
        if shape.loop then begin
          let p = B.pred ctx in
          let (_ : Op.t) = B.addi e cnt cnt (-1) in
          let (_ : Op.t) = B.cmpp1 e Op.Gt Op.Un p (Op.Reg cnt) (Op.Imm 0) in
          let (_ : Op.t) = B.branch_to e ~guard:(Op.If p) main_label in
          ()
        end)
  in
  let stubs =
    List.init shape.exit_stubs (fun k ->
        B.region ctx (stub_label k) ~fallthrough:"Exit" (fun e ->
            let d = pick () in
            let (_ : Op.t) = B.alu e Op.Add d (Op.Reg (pick ())) (Op.Imm k) in
            if shape.stores then begin
              let (_ : Op.t) =
                B.store e ~base:base_b ~off:(20 + k) (Op.Reg d)
              in
              ()
            end))
  in
  B.prog ctx ~entry:"Start" ~exit_labels:[ "Exit" ]
    ~live_out:[ pool.(0); pool.(1) ]
    ~noalias_bases:[ base_a; base_b; base_z ]
    (start :: main :: stubs)

let prog_of_seed seed = prog_of ~shape:(shape_of_seed seed) seed

let shape_to_string s =
  Printf.sprintf "blocks=%d ops=%d loop=%b stores=%b loads=%b fp=%b stubs=%d"
    s.blocks s.ops_per_block s.loop s.stores s.loads s.fp s.exit_stubs

let input_of_seed prog_seed ~seed =
  ignore prog_seed;
  let rng = { state = Kernels.lcg (seed + 3) } in
  let cells = ref [ (cnt_cell, 1 + rand rng 6) ] in
  for i = 0 to 63 do
    cells := (arr_a + i, rand rng 9 - 4) :: !cells
  done;
  Cpr_sim.Equiv.input_of_memory !cells

let inputs_of_seed prog_seed =
  List.init 4 (fun k -> input_of_seed prog_seed ~seed:(prog_seed + (k * 37)))
