open Cpr_ir

(** Seeded random program generator for property-based testing.

    Programs are guaranteed to terminate: the region graph is a chain of
    superblocks with side exits into small stub regions, optionally
    wrapped in a counted loop whose counter strictly decreases.  All
    constructions are deterministic functions of the seed. *)

type shape = {
  blocks : int;  (** basic blocks per superblock (branches + 1) *)
  ops_per_block : int;
  loop : bool;  (** wrap in a counted loop *)
  stores : bool;
  loads : bool;
  fp : bool;
  exit_stubs : int;  (** distinct side-exit stub regions *)
}

val shape_of_seed : int -> shape

val prog_of : shape:shape -> int -> Prog.t
(** Generate with an explicit shape (the seed still drives opcode and
    operand choice) — the hook the fuzzer's shrinker uses to regenerate
    structurally smaller variants of a failing program. *)

val prog_of_seed : int -> Prog.t
(** [prog_of ~shape:(shape_of_seed seed) seed]. *)

val shape_to_string : shape -> string
val input_of_seed : int -> seed:int -> Cpr_sim.Equiv.input
(** First argument is the program seed (sizes must match); [seed] varies
    the data. *)

val inputs_of_seed : int -> Cpr_sim.Equiv.input list
(** A handful of inputs with varying bias. *)
