open Cpr_ir

(** Experiment harness: reproduces the paper's Table 2 (speedups across
    the five processors) and Table 3 (static/dynamic operation-count
    ratios on the medium processor) for one benchmark program, and checks
    baseline/height-reduced semantic equivalence on every training input
    along the way. *)

type result = {
  name : string;
  speedups : (string * float) list;
      (** machine name -> baseline cycles / height-reduced cycles, in
          paper column order Seq Nar Med Wid Inf *)
  s_tot : float;
  s_br : float;
  d_tot : float;
  d_br : float;  (** Table 3 ratios (height-reduced / baseline) *)
  baseline_cycles : (string * int) list;
  reduced_cycles : (string * int) list;
  icbm : Cpr_core.Icbm.region_stats;
  equivalent : (unit, string) Result.t;
  failures : Cpr_resilience.Recover.failure list;
      (** per-stage recovery records; empty on a clean run.  Non-empty
          means the workload ran {e degraded}: the failing stage's
          output was replaced by the verified pre-pass fallback, so its
          numbers measure the fallback, not the optimization. *)
  bound_cycles : int;
      (** static lower bound on the height-reduced code's cycles on the
          medium machine ({!Perf.bound_estimate}): what a perfect
          scheduler could not beat *)
  achieved_cycles : int;
      (** the medium-machine entry of [reduced_cycles] — what list
          scheduling achieved *)
  height_gap : float;
      (** [(achieved - bound) / bound]; 0 when the schedule is provably
          optimal against the static model *)
  pressure : (string * int) list;
      (** class name ("gpr"/"pred"/"btr") -> worst-region predicate-aware
          scheduled MAXLIVE of the height-reduced code on the medium
          machine ({!Cpr_verify.Pressurecheck.summary}): the register
          cost paid for the height win, tracked warn-only by
          [bench --check] *)
  verify_s : float;
      (** wall time the static verifier spent on this benchmark (both
          compiled codes); tracked by [bench --json] against its
          <10%-of-suite budget *)
  total_s : float;
      (** wall time of the whole [run] for this benchmark — compilation,
          verification, equivalence oracle and performance estimation *)
}

val degraded : result -> bool
(** [failures <> []]. *)

val run :
  ?heur:Cpr_core.Heur.t -> ?recover:bool -> ?bundle_dir:string
  -> name:string -> Prog.t -> Cpr_sim.Equiv.input list -> result
(** [recover] (default [true]) runs both compilations under
    {!Passes.protected}: a pass failure degrades the workload (see
    {!type:result.failures}) instead of aborting the suite.  With
    [~recover:false] exceptions propagate as before.  [bundle_dir]
    writes a replayable crash bundle per recovered failure. *)

val run_many :
  ?pool:Cpr_par.Pool.t -> ?heur:Cpr_core.Heur.t -> ?recover:bool
  -> ?bundle_dir:string
  -> (string * Prog.t * Cpr_sim.Equiv.input list) list -> result list
(** {!run} over a whole suite.  [?pool] distributes benchmarks across
    domains; results come back in input order either way, so the two
    paths print identically.  Do not call from inside a task already
    running on [pool]. *)

val gmean : float list -> float

val print_table2 : Format.formatter -> result list -> unit
(** Rows per benchmark, columns Seq/Nar/Med/Wid/Inf, with geometric
    means — the layout of Table 2. *)

val print_table3 : Format.formatter -> result list -> unit
