open Cpr_ir

(** Compile-time performance estimation (Section 7).

    "Benchmark execution time is calculated as the sum across all blocks
    in the program of each block's schedule length weighted by its dynamic
    execution frequency."  Dynamic effects (caches, predictors) are
    ignored, as in the paper. *)

val estimate : Cpr_machine.Descr.t -> Prog.t -> int
(** Paper's estimator: Σ region schedule-length × profiled entry count. *)

val estimate_exit_aware : Cpr_machine.Descr.t -> Prog.t -> int
(** Ablation refinement: entries leaving through a side exit are charged
    only up to the exit branch's completion, instead of the full region
    schedule length. *)

val bound_estimate : Cpr_machine.Descr.t -> Prog.t -> int
(** {!estimate} with each region's schedule length replaced by its static
    lower bound ({!Cpr_analysis.Height.of_region}): Σ region bound ×
    profiled entry count, without scheduling.  Always at most
    {!estimate}; the difference is the schedule-quality gap the bench
    harness tracks as [height_gap]. *)

val speedup : baseline:int -> transformed:int -> float
