open Cpr_ir

let estimate machine prog =
  let schedules = Cpr_sched.List_sched.schedule_prog machine prog in
  List.fold_left
    (fun acc (label, (s : Cpr_sched.Schedule.t)) ->
      let region = Prog.find_exn prog label in
      acc + (s.Cpr_sched.Schedule.length * region.Region.entry_count))
    0 schedules

let estimate_exit_aware machine prog =
  let schedules = Cpr_sched.List_sched.schedule_prog machine prog in
  List.fold_left
    (fun acc (label, (s : Cpr_sched.Schedule.t)) ->
      let region = Prog.find_exn prog label in
      let taken_total = ref 0 in
      let exit_cycles = ref 0 in
      List.iter
        (fun (br : Op.t) ->
          let taken = Region.taken_count region br.Op.id in
          if taken > 0 then begin
            taken_total := !taken_total + taken;
            match Cpr_sched.Schedule.branch_issue s br.Op.id with
            | Some c ->
              exit_cycles :=
                !exit_cycles
                + (taken * (c + Cpr_machine.Descr.latency_of machine br))
            | None -> exit_cycles := !exit_cycles + (taken * s.length)
          end)
        (Region.branches region);
      let fallthrough_entries =
        max 0 (region.Region.entry_count - !taken_total)
      in
      acc + !exit_cycles + (fallthrough_entries * s.Cpr_sched.Schedule.length))
    0 schedules

let bound_estimate machine prog =
  let live = Cpr_analysis.Liveness.analyze prog in
  List.fold_left
    (fun acc (r : Region.t) ->
      if r.Region.ops = [] then acc
      else
        let s = Cpr_analysis.Height.of_region machine prog live r in
        acc + (s.Cpr_analysis.Height.bound * r.Region.entry_count))
    0 (Prog.regions prog)

let speedup ~baseline ~transformed =
  if transformed = 0 then 1.0 else float_of_int baseline /. float_of_int transformed
