let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* [Filename.dirname "x.json"] is "." — concatenating it back would turn
   a bare --json filename into "./BENCH_latest.json", a distinct string
   that defeats the dated = latest dedup and writes the same file twice
   (historically, after just having compared it against itself). *)
let targets ~is_dir ~date path =
  if is_dir then
    ( Filename.concat path (Printf.sprintf "BENCH_%s.json" date),
      Filename.concat path "BENCH_latest.json" )
  else begin
    let dir = Filename.dirname path in
    let latest =
      if dir = Filename.current_dir_name && Filename.is_implicit path then
        "BENCH_latest.json"
      else Filename.concat dir "BENCH_latest.json"
    in
    (path, latest)
  end

let suite_seconds results =
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 results in
  ( sum (fun (r : Report.result) -> r.Report.verify_s),
    sum (fun (r : Report.result) -> r.Report.total_s) )

let render ?(pqs = []) ~date ~domains ~results ~micro ~par () =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n  \"date\": \"%s\",\n" date;
  (if results <> [] then
     let verify_total, suite_total = suite_seconds results in
     add "  \"verify_total_s\": %.4f,\n  \"suite_total_s\": %.4f,\n"
       verify_total suite_total);
  (* Predicate-engine telemetry for the whole run, keyed by the full
     dotted counter name so [read_scalar] can find each line without
     clashing with any other key. *)
  if pqs <> [] then begin
    add "  \"pqs\": {";
    List.iteri
      (fun i (name, v) ->
        add "%s\n    \"%s\": %d" (if i = 0 then "" else ",") (json_escape name) v)
      (List.sort compare pqs);
    add "\n  },\n"
  end;
  let (s1, sn), (f1, fn) = par in
  add "  \"parallel\": {\n";
  add "    \"domains_requested\": %d,\n" domains;
  add "    \"suite_wall_s\": { \"domains_1\": %.3f, \"domains_requested\": \
       %.3f },\n"
    s1 sn;
  add "    \"fuzz_seeds_per_s\": { \"domains_1\": %.1f, \
       \"domains_requested\": %.1f }\n"
    f1 fn;
  add "  },\n";
  add "  \"benchmarks\": [";
  List.iteri
    (fun i (r : Report.result) ->
      add "%s\n    { \"name\": \"%s\",\n"
        (if i = 0 then "" else ",")
        (json_escape r.Report.name);
      add "      \"speedups\": {";
      List.iteri
        (fun j (m, s) ->
          add "%s \"%s\": %.4f" (if j = 0 then "" else ",") (json_escape m) s)
        r.Report.speedups;
      add " },\n";
      add "      \"op_ratios\": { \"s_tot\": %.4f, \"s_br\": %.4f, \
           \"d_tot\": %.4f, \"d_br\": %.4f },\n"
        r.Report.s_tot r.Report.s_br r.Report.d_tot r.Report.d_br;
      add "      \"verify_s\": %.4f,\n" r.Report.verify_s;
      add "      \"total_s\": %.4f,\n" r.Report.total_s;
      add "      \"degraded\": %b,\n" (Report.degraded r);
      add
        "      \"height\": { \"bound_cycles\": %d, \"achieved_cycles\": \
         %d, \"gap\": %.4f },\n"
        r.Report.bound_cycles r.Report.achieved_cycles r.Report.height_gap;
      if r.Report.pressure <> [] then begin
        add "      \"pressure\": {";
        List.iteri
          (fun j (cls, v) ->
            add "%s \"%s_maxlive\": %d" (if j = 0 then "" else ",")
              (json_escape cls) v)
          r.Report.pressure;
        add " },\n"
      end;
      let cycles key l =
        add "      \"%s\": {" key;
        List.iteri
          (fun j (m, c) ->
            add "%s \"%s\": %d" (if j = 0 then "" else ",") (json_escape m) c)
          l;
        add " }"
      in
      cycles "baseline_cycles" r.Report.baseline_cycles;
      add ",\n";
      cycles "reduced_cycles" r.Report.reduced_cycles;
      add " }")
    results;
  add "\n  ],\n  \"micro_ns_per_run\": {";
  List.iteri
    (fun i (name, est) ->
      add "%s\n    \"%s\": %s"
        (if i = 0 then "" else ",")
        (json_escape name)
        (match est with Some e -> Printf.sprintf "%.1f" e | None -> "null"))
    (List.sort compare micro);
  add "\n  }\n}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reading back                                                        *)

let read_file path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Some s
  end

let strip_comma v =
  if v <> "" && v.[String.length v - 1] = ',' then
    String.sub v 0 (String.length v - 1)
  else v

let read_scalar contents key =
  let prefix = Printf.sprintf "\"%s\":" key in
  let np = String.length prefix in
  List.find_map
    (fun line ->
      let line = String.trim line in
      if String.length line > np && String.sub line 0 np = prefix then
        float_of_string_opt
          (strip_comma (String.trim (String.sub line np (String.length line - np))))
      else None)
    (String.split_on_char '\n' contents)

let read_micro contents =
  let in_micro = ref false in
  List.filter_map
    (fun line ->
      let line = String.trim line in
      if not !in_micro then begin
        if
          String.length line >= 18
          && String.sub line 0 18 = "\"micro_ns_per_run\""
        then in_micro := true;
        None
      end
      else if String.length line > 0 && line.[0] = '}' then begin
        in_micro := false;
        None
      end
      else
        match String.index_opt line ':' with
        | Some i when String.length line > 1 && line.[0] = '"' -> (
          match String.rindex_from_opt line (i - 1) '"' with
          | Some q when q > 0 ->
            let name = String.sub line 1 (q - 1) in
            let v =
              strip_comma
                (String.trim
                   (String.sub line (i + 1) (String.length line - i - 1)))
            in
            Option.map (fun f -> (name, f)) (float_of_string_opt v)
          | _ -> None)
        | _ -> None)
    (String.split_on_char '\n' contents)

(* The benchmarks array: each entry opens with [{ "name": "...", ] and
   carries one ["verify_s":]/["total_s":] line (the top-level totals are
   spelled [verify_total_s]/[suite_total_s], so the prefixes cannot
   collide, and the micro table is reached only after the array closes). *)
let read_workloads contents =
  let entries = ref [] in
  let current = ref None in
  let value_after prefix line =
    let np = String.length prefix in
    if String.length line > np && String.sub line 0 np = prefix then
      float_of_string_opt
        (strip_comma (String.trim (String.sub line np (String.length line - np))))
    else None
  in
  let flush () =
    match !current with
    | Some (name, Some v, Some t) -> entries := (name, v, t) :: !entries
    | _ -> ()
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      let name_prefix = "{ \"name\": \"" in
      let np = String.length name_prefix in
      if String.length line > np && String.sub line 0 np = name_prefix then begin
        flush ();
        match String.index_from_opt line np '"' with
        | Some q -> current := Some (String.sub line np (q - np), None, None)
        | None -> current := None
      end
      else begin
        (match (value_after "\"verify_s\":" line, !current) with
        | Some v, Some (n, _, t) -> current := Some (n, Some v, t)
        | _ -> ());
        match (value_after "\"total_s\":" line, !current) with
        | Some t, Some (n, v, _) -> current := Some (n, v, Some t)
        | _ -> ()
      end)
    (String.split_on_char '\n' contents);
  flush ();
  List.rev !entries

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

(* A ["key": value] field anywhere in a single line (the height and
   pressure objects are rendered on one line each). *)
let field_after line key =
  let kp = Printf.sprintf "\"%s\":" key in
  match find_sub line kp with
  | None -> None
  | Some i ->
    let rest =
      String.trim
        (String.sub line
           (i + String.length kp)
           (String.length line - i - String.length kp))
    in
    let stop =
      match String.index_opt rest ' ' with
      | Some j -> j
      | None -> String.length rest
    in
    Some (strip_comma (String.sub rest 0 stop))

let float_field line key = Option.bind (field_after line key) float_of_string_opt
let int_field line key = Option.bind (field_after line key) int_of_string_opt

(* Per-benchmark single-line objects (["height": {...}] and
   ["pressure": {...}]) inside the entry whose ["name":] line last
   preceded them. *)
let read_entry_lines ~prefix ~f contents =
  let entries = ref [] in
  let current = ref None in
  List.iter
    (fun line ->
      let line = String.trim line in
      let name_prefix = "{ \"name\": \"" in
      let np = String.length name_prefix in
      if String.length line > np && String.sub line 0 np = name_prefix then begin
        match String.index_from_opt line np '"' with
        | Some q -> current := Some (String.sub line np (q - np))
        | None -> current := None
      end
      else if
        String.length line >= String.length prefix
        && String.sub line 0 (String.length prefix) = prefix
      then
        match !current with
        | None -> ()
        | Some name -> (
          match f line with
          | Some v -> entries := (name, v) :: !entries
          | None -> ()))
    (String.split_on_char '\n' contents);
  List.rev !entries

type height_entry = {
  gap : float;
  h_bound : int;
  h_achieved : int;
}

let read_height contents =
  read_entry_lines ~prefix:"\"height\":" contents ~f:(fun line ->
      match
        (float_field line "gap", int_field line "bound_cycles",
         int_field line "achieved_cycles")
      with
      | Some gap, Some h_bound, Some h_achieved ->
        Some { gap; h_bound; h_achieved }
      | _ -> None)

let read_pressure contents =
  read_entry_lines ~prefix:"\"pressure\":" contents ~f:(fun line ->
      let classes = [ "gpr"; "pred"; "btr" ] in
      let vals =
        List.filter_map
          (fun cls ->
            Option.map (fun v -> (cls, v)) (int_field line (cls ^ "_maxlive")))
          classes
      in
      if vals = [] then None else Some vals)

(* Warn-only regression tests for the quality metrics, shared by bench
   --check and its unit tests.

   The height gap is a ratio: on a tiny workload one cycle of schedule
   noise swings it past any percentage tolerance, so a regression must
   also grow the *absolute* cycle gap by at least
   [height_gap_floor_cycles] — the schedule-quality analogue of the 20ms
   wall-clock noise floor. *)
let height_gap_floor_cycles = 2

let height_regressed ~base ~cur =
  let abs_gap e = e.h_achieved - e.h_bound in
  cur.gap > base.gap +. 0.01
  && abs_gap cur - abs_gap base >= height_gap_floor_cycles

(* MAXLIVE counts are small integers; a couple of registers of movement
   is routine when block formation shifts. *)
let pressure_floor_regs = 2

let pressure_regressed ~base ~cur = cur - base > pressure_floor_regs

(* ------------------------------------------------------------------ *)
(* Baseline comparison                                                 *)

type delta = {
  workload : string;
  metric : string;
  base : float;
  cur : float;
  change_pct : float;
  regressed : bool;
}

(* Shared-runner wall clocks are noisy in both relative and absolute
   terms: a regression must clear the percentage tolerance AND a 20ms
   absolute floor before the gate trips. *)
let noise_floor_s = 0.02

let delta ~tolerance ~workload ~metric ~base ~cur =
  let change_pct = if base > 0. then (cur -. base) /. base *. 100. else 0. in
  let regressed =
    base > 0.
    && cur > base *. (1. +. (tolerance /. 100.))
    && cur -. base > noise_floor_s
  in
  { workload; metric; base; cur; change_pct; regressed }

let check ~tolerance ~baseline ~current =
  let base_workloads = read_workloads baseline in
  let matched =
    List.filter_map
      (fun (name, cur_v, cur_t) ->
        List.find_map
          (fun (bname, base_v, base_t) ->
            if bname = name then Some (name, base_v, base_t, cur_v, cur_t)
            else None)
          base_workloads)
      current
  in
  let per_workload =
    List.concat_map
      (fun (name, base_v, base_t, cur_v, cur_t) ->
        [
          delta ~tolerance ~workload:name ~metric:"total_s" ~base:base_t
            ~cur:cur_t;
          delta ~tolerance ~workload:name ~metric:"verify_s" ~base:base_v
            ~cur:cur_v;
        ])
      matched
  in
  (* Suite wall time over the *matched* workloads, so gating a --quick
     run against a full-suite baseline compares like with like. *)
  let suite =
    match matched with
    | [] -> []
    | _ ->
      let base =
        List.fold_left (fun a (_, _, bt, _, _) -> a +. bt) 0.0 matched
      in
      let cur =
        List.fold_left (fun a (_, _, _, _, ct) -> a +. ct) 0.0 matched
      in
      [ delta ~tolerance ~workload:"(suite)" ~metric:"suite_total_s" ~base ~cur ]
  in
  per_workload @ suite

let missing_from_current ~baseline ~current =
  List.filter_map
    (fun (name, _, _) ->
      if List.exists (fun (n, _, _) -> n = name) current then None
      else Some name)
    (read_workloads baseline)

let regressions deltas = List.filter (fun d -> d.regressed) deltas

let pp_deltas ppf deltas =
  Format.fprintf ppf "%-14s%-14s%12s%12s%10s  %s@." "workload" "metric"
    "baseline" "current" "change" "";
  List.iter
    (fun d ->
      Format.fprintf ppf "%-14s%-14s%11.3fs%11.3fs%9.1f%%  %s@." d.workload
        d.metric d.base d.cur d.change_pct
        (if d.regressed then "REGRESSED" else "ok"))
    deltas
