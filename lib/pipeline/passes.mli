open Cpr_ir

(** Pass composition: the two compiled codes the paper compares.

    The {e baseline} is the input superblock program with its training
    profile.  The {e height-reduced} code is the baseline after FRP
    conversion and the ICBM schema (predicate speculation, match,
    restructure, off-trace motion, DCE), re-profiled on the same training
    inputs so that the estimator and Table 3 see the transformed program's
    own execution frequencies. *)

type compiled = {
  prog : Prog.t;
  icbm : Cpr_core.Icbm.region_stats option;  (** None for the baseline *)
}

val profile : Prog.t -> Cpr_sim.Equiv.input list -> unit
(** Clear and re-record region profiles by interpreting each input. *)

val prepare : Prog.t -> Cpr_sim.Equiv.input list -> Prog.t
(** Profile a copy, form superblocks along the hot fall-through edges
    (tail-duplicating join points), prune unreachable regions, and
    re-profile — the IMPACT role; both compiled codes start here. *)

val baseline :
  ?verify:bool -> ?verify_time:float ref -> Prog.t
  -> Cpr_sim.Equiv.input list -> compiled
(** {!prepare} only; the input program is untouched.

    Every entry point statically verifies its own output by default
    ([verify] defaults to [true]): the {!Cpr_verify} lint plus per-stage
    translation validation against the pre-transformation program, with
    error findings raised as {!Cpr_verify.Verify.Verify_error}.  Pass
    [~verify:false] to skip (micro-benchmarks; drivers that verify
    separately), and [~verify_time] to accumulate the wall time spent
    verifying.

    Every entry point also runs inside a [pass/<stage>] {!Cpr_obs.Obs}
    span, with the verifier under a nested [verify/<stage>] span and
    op-count/ICBM counters alongside — all dark unless a [--trace] sink
    enabled telemetry.  [~verify_time] keeps working either way. *)

val height_reduce :
  ?heur:Cpr_core.Heur.t -> ?verify:bool -> ?verify_time:float ref -> Prog.t
  -> Cpr_sim.Equiv.input list -> compiled
(** Full pipeline on a fresh copy: profile, FRP-convert, ICBM, validate,
    re-profile.  Raises [Invalid_argument] if the transformed program
    fails structural validation. *)

(** {2 Per-stage entry points}

    Each runs one transformation (with its prerequisites) on a
    {!prepare}d copy, then re-validates and re-profiles.  The
    differential fuzzer ({!Cpr_fuzz}) drives these individually so that a
    miscompile is attributed to the narrowest stage exhibiting it; they
    are also convenient for ablation benches.  All raise
    [Invalid_argument] on a validation failure, like {!height_reduce}. *)

val superblock_only :
  ?verify:bool -> ?verify_time:float ref -> Prog.t
  -> Cpr_sim.Equiv.input list -> compiled
(** Alias of {!baseline}: superblock formation is the whole stage. *)

val if_convert :
  ?verify:bool -> ?verify_time:float ref -> Prog.t
  -> Cpr_sim.Equiv.input list -> compiled
(** {!prepare} + classic if-conversion of unbiased side exits. *)

val frp_convert :
  ?verify:bool -> ?verify_time:float ref -> Prog.t
  -> Cpr_sim.Equiv.input list -> compiled
(** {!prepare} + FRP conversion of every region. *)

val speculate :
  ?verify:bool -> ?verify_time:float ref -> Prog.t
  -> Cpr_sim.Equiv.input list -> compiled
(** {!prepare} + FRP conversion + predicate speculation. *)

val full_cpr :
  ?heur:Cpr_core.Heur.t -> ?verify:bool -> ?verify_time:float ref -> Prog.t
  -> Cpr_sim.Equiv.input list -> compiled
(** {!prepare} + per-region FRP conversion, speculation and the full
    (redundant) CPR scheme of Schlansker & Kathail.  [heur] only feeds
    the optional pressure gate (see {!Cpr_core.Heur.pressure_gate}). *)

val unroll :
  ?factor:int -> ?verify:bool -> ?verify_time:float ref -> Prog.t
  -> Cpr_sim.Equiv.input list -> compiled
(** {!prepare} + unrolling of every unrollable self-loop ([factor]
    default 2). *)

(** {2 Stage dispatch and sandboxed execution} *)

type entry =
  ?verify:bool -> ?verify_time:float ref -> Prog.t
  -> Cpr_sim.Equiv.input list -> compiled

val stage_names : string list
(** Every dispatchable stage name, in pipeline order: [superblock],
    [ifconv], [frp], [spec], [unroll], [fullcpr], [icbm]. *)

val by_name : string -> entry option
(** The entry point for a stage name ([baseline] is an alias of
    [superblock]); [None] for unknown names.  Crash-bundle replay and
    the chaos harness dispatch through this. *)

val fallback_compiled : Prog.t -> Cpr_sim.Equiv.input list -> compiled
(** The verified fallback for a failed stage: a plain profiled copy of
    the {e pre-pass} IR — never a partially transformed working copy,
    whose in-place mid-pass state may violate invariants downstream
    stages rely on.  Infallible by construction (profiling is
    best-effort): {!Cpr_resilience.Recover.protect} does not sandbox
    the fallback thunk. *)

val protected :
  ?heur:Cpr_core.Heur.t ->
  ?verify:bool ->
  ?verify_time:float ref ->
  ?retries:int ->
  ?bundle_dir:string ->
  ?machine:string ->
  stage:string ->
  Prog.t ->
  Cpr_sim.Equiv.input list ->
  compiled Cpr_resilience.Recover.protected
(** Run the named stage under {!Cpr_resilience.Recover.protect}: on an
    exception or a verifier rejection the result is
    [Fell_back (fallback_compiled prog inputs, failure)] instead of a
    raised exception, with one retry for transient faults (default
    [retries = 1]).  [bundle_dir] additionally writes a replayable
    crash bundle on failure ([machine] is recorded in its metadata;
    [heur] applies to the [icbm] stage).  Raises [Invalid_argument] on
    an unknown stage name. *)
