open Cpr_ir
module Descr = Cpr_machine.Descr
module Recover = Cpr_resilience.Recover

type result = {
  name : string;
  speedups : (string * float) list;
  s_tot : float;
  s_br : float;
  d_tot : float;
  d_br : float;
  baseline_cycles : (string * int) list;
  reduced_cycles : (string * int) list;
  icbm : Cpr_core.Icbm.region_stats;
  equivalent : (unit, string) Result.t;
  failures : Recover.failure list;
  bound_cycles : int;
  achieved_cycles : int;
  height_gap : float;
  pressure : (string * int) list;
  verify_s : float;
  total_s : float;
}

let degraded r = r.failures <> []

let run ?heur ?(recover = true) ?bundle_dir ~name prog inputs =
  Cpr_obs.Obs.span ~args:[ ("workload", name) ] ("workload/" ^ name)
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let verify_time = ref 0.0 in
  let stage_p stage =
    if recover then
      Passes.protected ?heur ~verify_time ?bundle_dir ~stage prog inputs
    else
      Recover.Committed
        (match stage with
        | "icbm" -> Passes.height_reduce ?heur ~verify_time prog inputs
        | _ -> Passes.baseline ~verify_time prog inputs)
  in
  let base_p = stage_p "superblock" in
  let reduced_p = stage_p "icbm" in
  let base = Recover.value base_p in
  let reduced = Recover.value reduced_p in
  let equivalent =
    Cpr_sim.Equiv.check_many base.Passes.prog reduced.Passes.prog inputs
  in
  let baseline_cycles =
    List.map
      (fun (m : Descr.t) -> (m.Descr.name, Perf.estimate m base.Passes.prog))
      Descr.all
  in
  let reduced_cycles =
    List.map
      (fun (m : Descr.t) -> (m.Descr.name, Perf.estimate m reduced.Passes.prog))
      Descr.all
  in
  let speedups =
    List.map2
      (fun (mname, b) (_, t) -> (mname, Perf.speedup ~baseline:b ~transformed:t))
      baseline_cycles reduced_cycles
  in
  (* Schedule quality on the medium machine: the static lower bound the
     height analyzer proves vs the cycles the scheduler achieves, both
     entry-weighted.  The gap is tracked by bench --check (warn-only)
     so scheduler or analyzer regressions show up in the perf
     trajectory, not just wall time. *)
  let bound_cycles = Perf.bound_estimate Descr.medium reduced.Passes.prog in
  let achieved_cycles =
    Option.value ~default:0
      (List.assoc_opt Descr.medium.Descr.name reduced_cycles)
  in
  let height_gap =
    if bound_cycles = 0 then 0.
    else float_of_int (achieved_cycles - bound_cycles) /. float_of_int bound_cycles
  in
  (* Register-pressure summary of the transformed program (worst region,
     predicate-aware scheduled MAXLIVE per class, medium machine) — the
     resource half of the cost CPR pays for its height win; tracked by
     bench --check warn-only like the height gap. *)
  let pressure =
    List.map
      (fun (cls, v) -> (Cpr_verify.Pressurecheck.cls_name cls, v))
      (Cpr_verify.Pressurecheck.summary ~machine:Descr.medium
         reduced.Passes.prog)
  in
  let sb = Stats_ir.of_prog base.Passes.prog in
  let sr = Stats_ir.of_prog reduced.Passes.prog in
  let s_tot, s_br, d_tot, d_br = Stats_ir.ratio sr sb in
  {
    name;
    speedups;
    s_tot;
    s_br;
    d_tot;
    d_br;
    baseline_cycles;
    reduced_cycles;
    icbm =
      (match reduced.Passes.icbm with
      | Some s -> s
      | None -> Cpr_core.Icbm.zero_stats);
    equivalent;
    failures = List.filter_map Recover.failure [ base_p; reduced_p ];
    bound_cycles;
    achieved_cycles;
    height_gap;
    pressure;
    verify_s = !verify_time;
    total_s = Unix.gettimeofday () -. t0;
  }

let c_workloads = Cpr_obs.Obs.counter "report.workloads"

let run_many ?pool ?heur ?recover ?bundle_dir jobs =
  Cpr_obs.Obs.span "report/run_many" @@ fun () ->
  Cpr_obs.Obs.add c_workloads (List.length jobs);
  let one (name, prog, inputs) =
    run ?heur ?recover ?bundle_dir ~name prog inputs
  in
  match pool with
  | Some p ->
    Cpr_par.Pool.map ~label:(fun (name, _, _) -> name) p one jobs
  | None -> List.map one jobs

let gmean = function
  | [] -> 1.0
  | xs ->
    exp (List.fold_left (fun acc x -> acc +. log (max x 1e-9)) 0.0 xs
         /. float_of_int (List.length xs))

let machine_names = List.map (fun (m : Descr.t) -> m.Descr.name) Descr.all

let print_table2 ppf results =
  Format.fprintf ppf "%-14s" "Benchmark";
  List.iter (fun m -> Format.fprintf ppf "%8s" m) machine_names;
  Format.fprintf ppf "@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-14s" r.name;
      List.iter (fun (_, s) -> Format.fprintf ppf "%8.2f" s) r.speedups;
      Format.fprintf ppf "@.")
    results;
  Format.fprintf ppf "%-14s" "Gmean-all";
  List.iter
    (fun m ->
      let col = List.map (fun r -> List.assoc m r.speedups) results in
      Format.fprintf ppf "%8.2f" (gmean col))
    machine_names;
  Format.fprintf ppf "@."

let print_table3 ppf results =
  Format.fprintf ppf "%-14s%8s%8s%8s%8s@." "Benchmark" "S tot" "S br" "D tot"
    "D br";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-14s%8.2f%8.2f%8.2f%8.2f@." r.name r.s_tot r.s_br
        r.d_tot r.d_br)
    results;
  let col f = gmean (List.map f results) in
  Format.fprintf ppf "%-14s%8.2f%8.2f%8.2f%8.2f@." "Gmean-all"
    (col (fun r -> r.s_tot))
    (col (fun r -> r.s_br))
    (col (fun r -> r.d_tot))
    (col (fun r -> r.d_br))
