open Cpr_ir
module Obs = Cpr_obs.Obs
module Chaos = Cpr_resilience.Chaos
module Recover = Cpr_resilience.Recover
module Deadline = Cpr_deadline.Deadline

type compiled = {
  prog : Prog.t;
  icbm : Cpr_core.Icbm.region_stats option;
}

let c_regions_formed = Obs.counter "superblock.regions_formed"
let c_branches_bypassed = Obs.counter "icbm.branches_bypassed"
let c_comp_ops = Obs.counter "icbm.compensation_ops"
let c_blocks_transformed = Obs.counter "icbm.blocks_transformed"
let c_blocks_demoted = Obs.counter "icbm.blocks_demoted"

(* Wrap one pipeline entry point in a span, recording program size on
   the way in and out ("ops in/out per pass").  The counts are only
   computed when a telemetry sink is listening. *)
let with_pass ~stage input f =
  (* Cooperative cancellation point: a pooled caller running past its
     budget unwinds here rather than starting another pass. *)
  Deadline.check_current ();
  Obs.span ("pass/" ^ stage) (fun () ->
      let ops_in =
        if Obs.enabled () then Prog.static_op_count input else 0
      in
      let compiled = f () in
      if Obs.enabled () then begin
        Obs.add (Obs.counter ("pass." ^ stage ^ ".ops_in")) ops_in;
        Obs.add
          (Obs.counter ("pass." ^ stage ^ ".ops_out"))
          (Prog.static_op_count compiled.prog)
      end;
      compiled)

(* Call after the transformed program has been re-profiled: "branches
   bypassed" is the drop in dynamic branch count (off-trace motion keeps
   branches in the text, so the static count barely moves — the paper's
   D-br column is the honest measure). *)
let record_icbm before (stats : Cpr_core.Icbm.region_stats) after =
  if Obs.enabled () then begin
    Obs.add c_blocks_transformed stats.Cpr_core.Icbm.blocks_transformed;
    Obs.add c_blocks_demoted stats.Cpr_core.Icbm.blocks_demoted;
    Obs.add c_comp_ops
      (stats.Cpr_core.Icbm.ops_moved + stats.Cpr_core.Icbm.ops_split);
    let branches p = (Stats_ir.of_prog p).Stats_ir.dynamic_branches in
    Obs.add c_branches_bypassed (max 0 (branches before - branches after))
  end

let profile prog inputs =
  Obs.span "profile" (fun () ->
      Prog.clear_profile prog;
      List.iter
        (fun input ->
          let st = Cpr_sim.State.create () in
          Cpr_sim.State.set_memory st input.Cpr_sim.Equiv.memory;
          List.iter
            (fun (r, v) -> Cpr_sim.State.write_gpr st r v)
            input.Cpr_sim.Equiv.gprs;
          List.iter
            (fun (r, v) -> Cpr_sim.State.write_pred st r v)
            input.Cpr_sim.Equiv.preds;
          let (_ : Cpr_sim.Interp.outcome) =
            Cpr_sim.Interp.run ~state:st ~profile:true prog
          in
          ())
        inputs)

(* Both compiled codes start from the same superblock formation — the
   paper's baseline is "optimized superblock code produced by the IMPACT
   compiler", not the raw region graph. *)
let prepare prog inputs =
  Obs.span "pass/prepare" (fun () ->
      (* Program boundary: trim the predicate engine's arena and memo
         tables so a long suite/fuzz run's footprint stays bounded by
         one program's working set, not the whole run. *)
      Cpr_analysis.Pqs.trim ();
      let p = Prog.copy prog in
      profile p inputs;
      let formed = Cpr_core.Superblock.form p in
      Obs.add c_regions_formed formed;
      let (_ : int) = Cpr_core.Superblock.prune_unreachable p in
      Validate.check_exn p;
      profile p inputs;
      p)

(* Static verification of one transformation step: raises
   {!Cpr_verify.Verify.Verify_error} on any error-severity finding.  The
   whole check runs inside a [verify/<stage>] span; the [verify_time]
   ref keeps the pre-span accounting contract (the <10%-of-suite budget
   the bench harness tracks) for callers that do not read traces. *)
let verify_stage ?(verify = true) ?verify_time ~stage ~before p =
  if verify then
    Obs.span ("verify/" ^ stage) (fun () ->
        let t0 = Unix.gettimeofday () in
        (* Superblock formation lays out traces without reordering ops,
           so the schedule-hazard re-derivation cannot find anything the
           transformed stages would not also see; skip it there. *)
        let sched = stage <> "superblock" in
        Cpr_verify.Verify.check_stage_exn ~sched ~stage ~before p;
        match verify_time with
        | Some r -> r := !r +. (Unix.gettimeofday () -. t0)
        | None -> ())

let baseline ?verify ?verify_time prog inputs =
  with_pass ~stage:"baseline" prog (fun () ->
      let p = prepare prog inputs in
      Chaos.trip ~stage:"superblock" p;
      verify_stage ?verify ?verify_time ~stage:"superblock" ~before:prog p;
      { prog = p; icbm = None })

let height_reduce ?heur ?verify ?verify_time prog inputs =
  with_pass ~stage:"icbm" prog (fun () ->
      let p = prepare prog inputs in
      let before = Prog.copy p in
      let stats = Cpr_core.Icbm.run ?heur p in
      Chaos.trip ~stage:"icbm" p;
      Validate.check_exn p;
      verify_stage ?verify ?verify_time ~stage:"icbm" ~before p;
      profile p inputs;
      record_icbm before stats p;
      { prog = p; icbm = Some stats })

(* Per-stage entry points: each runs one transformation (plus its
   prerequisites) on a prepared copy, re-validates and re-profiles.  The
   differential fuzzer drives these individually so a miscompile is
   attributed to the narrowest stage that exhibits it. *)

let finish ?verify ?verify_time ~stage ~before p inputs =
  (* Chaos injection point: fires only when the chaos harness armed this
     stage on this domain; a no-op in production.  Placed after the
     transform and before validation so a [Corrupt] fault exercises
     exactly the detection path (validate -> verify -> fallback) a real
     miscompile would take. *)
  Chaos.trip ~stage p;
  Validate.check_exn p;
  verify_stage ?verify ?verify_time ~stage ~before p;
  profile p inputs;
  { prog = p; icbm = None }

let superblock_only ?verify ?verify_time prog inputs =
  baseline ?verify ?verify_time prog inputs

let if_convert ?verify ?verify_time prog inputs =
  with_pass ~stage:"ifconv" prog (fun () ->
      let p = prepare prog inputs in
      let before = Prog.copy p in
      let (_ : Cpr_core.Ifconv.stats) = Cpr_core.Ifconv.convert p in
      finish ?verify ?verify_time ~stage:"ifconv" ~before p inputs)

let frp_convert ?verify ?verify_time prog inputs =
  with_pass ~stage:"frp" prog (fun () ->
      let p = prepare prog inputs in
      let before = Prog.copy p in
      let (_ : int) = Cpr_core.Frp.convert p in
      finish ?verify ?verify_time ~stage:"frp" ~before p inputs)

let speculate ?verify ?verify_time prog inputs =
  with_pass ~stage:"spec" prog (fun () ->
      let p = prepare prog inputs in
      let before = Prog.copy p in
      let (_ : int) = Cpr_core.Frp.convert p in
      let (_ : Cpr_core.Spec.stats) = Cpr_core.Spec.speculate p in
      finish ?verify ?verify_time ~stage:"spec" ~before p inputs)

let full_cpr ?heur ?verify ?verify_time prog inputs =
  with_pass ~stage:"fullcpr" prog (fun () ->
      let p = prepare prog inputs in
      let before = Prog.copy p in
      List.iter
        (fun (r : Region.t) ->
          if Cpr_core.Frp.convert_region p r then begin
            let (_ : Cpr_core.Spec.stats) =
              Cpr_core.Spec.speculate_region p r
            in
            ignore (Cpr_core.Fullcpr.transform_region ?heur p r : bool)
          end)
        (Prog.regions p);
      finish ?verify ?verify_time ~stage:"fullcpr" ~before p inputs)

let unroll ?(factor = 2) ?verify ?verify_time prog inputs =
  with_pass ~stage:"unroll" prog (fun () ->
      let p = prepare prog inputs in
      let before = Prog.copy p in
      List.iter
        (fun (r : Region.t) ->
          if Cpr_core.Unroll.unrollable p r then
            ignore (Cpr_core.Unroll.unroll_region p r ~factor : bool))
        (Prog.regions p);
      finish ?verify ?verify_time ~stage:"unroll" ~before p inputs)

type entry =
  ?verify:bool ->
  ?verify_time:float ref ->
  Prog.t ->
  Cpr_sim.Equiv.input list ->
  compiled

let stage_names =
  [ "superblock"; "ifconv"; "frp"; "spec"; "unroll"; "fullcpr"; "icbm" ]

let by_name : string -> entry option = function
  | "superblock" | "baseline" -> Some baseline
  | "ifconv" -> Some if_convert
  | "frp" -> Some frp_convert
  | "spec" -> Some speculate
  | "unroll" -> Some (fun ?verify ?verify_time p i -> unroll ?verify ?verify_time p i)
  | "fullcpr" ->
    Some (fun ?verify ?verify_time p i -> full_cpr ?verify ?verify_time p i)
  | "icbm" ->
    Some (fun ?verify ?verify_time p i -> height_reduce ?verify ?verify_time p i)
  | _ -> None

(* The verified fallback: a plain copy of the pre-pass IR, the last
   program known good.  Never a partially transformed working copy —
   passes mutate in place, so mid-pass state may violate invariants the
   rest of the pipeline relies on, while the input was validated on the
   way in.  Must be infallible ({!Recover.protect} does not sandbox the
   fallback), hence the best-effort profile. *)
let fallback_compiled prog inputs =
  let p = Prog.copy prog in
  (try profile p inputs with _ -> Prog.clear_profile p);
  { prog = p; icbm = None }

let protected ?heur ?verify ?verify_time ?(retries = 1) ?bundle_dir ?machine
    ~stage prog inputs =
  let run =
    match stage with
    | "icbm" ->
      Some
        (fun ?verify ?verify_time p i ->
          height_reduce ?heur ?verify ?verify_time p i)
    | "fullcpr" ->
      Some
        (fun ?verify ?verify_time p i ->
          full_cpr ?heur ?verify ?verify_time p i)
    | s -> by_name s
  in
  match run with
  | None -> invalid_arg ("Passes.protected: unknown stage " ^ stage)
  | Some run ->
    let on_failure =
      Option.map
        (fun dir fail -> Recover.bundle_to ~dir ?machine ~inputs prog fail)
        bundle_dir
    in
    Recover.protect ~retries ?on_failure ~stage
      ~fallback:(fun () -> fallback_compiled prog inputs)
      (fun () -> run ?verify ?verify_time prog inputs)
