open Cpr_ir

type compiled = {
  prog : Prog.t;
  icbm : Cpr_core.Icbm.region_stats option;
}

let profile prog inputs =
  Prog.clear_profile prog;
  List.iter
    (fun input ->
      let st = Cpr_sim.State.create () in
      Cpr_sim.State.set_memory st input.Cpr_sim.Equiv.memory;
      List.iter
        (fun (r, v) -> Cpr_sim.State.write_gpr st r v)
        input.Cpr_sim.Equiv.gprs;
      List.iter
        (fun (r, v) -> Cpr_sim.State.write_pred st r v)
        input.Cpr_sim.Equiv.preds;
      let (_ : Cpr_sim.Interp.outcome) =
        Cpr_sim.Interp.run ~state:st ~profile:true prog
      in
      ())
    inputs

(* Both compiled codes start from the same superblock formation — the
   paper's baseline is "optimized superblock code produced by the IMPACT
   compiler", not the raw region graph. *)
let prepare prog inputs =
  let p = Prog.copy prog in
  profile p inputs;
  let (_ : int) = Cpr_core.Superblock.form p in
  let (_ : int) = Cpr_core.Superblock.prune_unreachable p in
  Validate.check_exn p;
  profile p inputs;
  p

let baseline prog inputs = { prog = prepare prog inputs; icbm = None }

let height_reduce ?heur prog inputs =
  let p = prepare prog inputs in
  let stats = Cpr_core.Icbm.run ?heur p in
  Validate.check_exn p;
  profile p inputs;
  { prog = p; icbm = Some stats }

(* Per-stage entry points: each runs one transformation (plus its
   prerequisites) on a prepared copy, re-validates and re-profiles.  The
   differential fuzzer drives these individually so a miscompile is
   attributed to the narrowest stage that exhibits it. *)

let finish p inputs =
  Validate.check_exn p;
  profile p inputs;
  { prog = p; icbm = None }

let superblock_only prog inputs = baseline prog inputs

let if_convert prog inputs =
  let p = prepare prog inputs in
  let (_ : Cpr_core.Ifconv.stats) = Cpr_core.Ifconv.convert p in
  finish p inputs

let frp_convert prog inputs =
  let p = prepare prog inputs in
  let (_ : int) = Cpr_core.Frp.convert p in
  finish p inputs

let speculate prog inputs =
  let p = prepare prog inputs in
  let (_ : int) = Cpr_core.Frp.convert p in
  let (_ : Cpr_core.Spec.stats) = Cpr_core.Spec.speculate p in
  finish p inputs

let full_cpr prog inputs =
  let p = prepare prog inputs in
  List.iter
    (fun (r : Region.t) ->
      if Cpr_core.Frp.convert_region p r then begin
        let (_ : Cpr_core.Spec.stats) = Cpr_core.Spec.speculate_region p r in
        ignore (Cpr_core.Fullcpr.transform_region p r : bool)
      end)
    (Prog.regions p);
  finish p inputs

let unroll ?(factor = 2) prog inputs =
  let p = prepare prog inputs in
  List.iter
    (fun (r : Region.t) ->
      if Cpr_core.Unroll.unrollable p r then
        ignore (Cpr_core.Unroll.unroll_region p r ~factor : bool))
    (Prog.regions p);
  finish p inputs
