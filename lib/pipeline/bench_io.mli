(** Bench-harness persistence: writing the [BENCH_*.json] artifacts,
    reading them back, and comparing a fresh run against a committed
    baseline ([bench --check]).

    Lives in the library (rather than inline in [bench/main.ml]) so the
    path normalization, JSON escaping and regression-detection logic are
    unit-testable — each has regressed silently before.

    The JSON layout is fixed: one key/value pair per line.  The readers
    below only promise to parse what {!render} writes; they are scanners
    for that layout, not a general JSON parser (see {!Cpr_obs.Obs.Trace}
    for one of those). *)

val json_escape : string -> string
(** Escape for a JSON string literal: quote, backslash, and every
    control character below [0x20] (as [\n] or [\u00XX]). *)

val targets : is_dir:bool -> date:string -> string -> string * string
(** [targets ~is_dir ~date path]: the [(dated, latest)] file pair for
    [--json path].  A directory gets [BENCH_<date>.json] and
    [BENCH_latest.json] inside it.  A file path is used verbatim with
    [BENCH_latest.json] as a sibling — normalized so a bare filename
    (no directory component) yields a bare [BENCH_latest.json] rather
    than [./BENCH_latest.json], and [dated = latest] whenever both
    resolve to the same file (so it is written once). *)

(** {2 Writing} *)

val render :
  ?pqs:(string * int) list ->
  date:string ->
  domains:int ->
  results:Report.result list ->
  micro:(string * float option) list ->
  par:(float * float) * (float * float) ->
  unit ->
  string
(** The full bench JSON document: per-workload speedups, op ratios,
    [verify_s]/[total_s] and cycle counts, top-level
    [verify_total_s]/[suite_total_s], parallel wall-clock numbers,
    micro-benchmark ns/run figures, and (when [pqs] is non-empty) the
    predicate-engine counters ([pqs.queries], [pqs.memo_hits], ...) for
    the whole run, each on its own line under a ["pqs"] object so
    {!read_scalar} can read them back by full dotted name. *)

val suite_seconds : Report.result list -> float * float
(** [(verify_total_s, suite_total_s)]: sums over the per-workload
    [verify_s] and [total_s]. *)

(** {2 Reading back} *)

val read_file : string -> string option

val read_scalar : string -> string -> float option
(** [read_scalar contents key]: a top-level numeric value. *)

val read_micro : string -> (string * float) list
(** The [micro_ns_per_run] table. *)

val read_workloads : string -> (string * float * float) list
(** [(name, verify_s, total_s)] per entry of the [benchmarks] array. *)

type height_entry = {
  gap : float;
  h_bound : int;  (** [bound_cycles] *)
  h_achieved : int;  (** [achieved_cycles] *)
}

val read_height : string -> (string * height_entry) list
(** One entry per element of the [benchmarks] array (entries predating
    the height triple are absent).  [bench --check] warns — without
    failing — when a workload's gap grows past the baseline's: schedule
    quality is a trajectory signal, not a hard gate, because the gap
    also moves when the optimizer legitimately changes the code. *)

val read_pressure : string -> (string * (string * int) list) list
(** [(name, [class, maxlive; ...])] per entry of the [benchmarks] array
    carrying a ["pressure"] object (older baselines have none). *)

val height_gap_floor_cycles : int
(** 2: minimum growth of the {e absolute} cycle gap
    ([achieved - bound]) before a height-gap warning fires — the ratio
    alone flaps on tiny workloads where one cycle of schedule noise is
    a large percentage. *)

val height_regressed : base:height_entry -> cur:height_entry -> bool
(** The [bench --check] height-gap warning test: the gap ratio grew
    past the baseline by more than a percentage point {e and} the
    absolute cycle gap grew by at least {!height_gap_floor_cycles}. *)

val pressure_floor_regs : int
(** 2: registers of MAXLIVE growth ignored as noise by
    {!pressure_regressed}. *)

val pressure_regressed : base:int -> cur:int -> bool
(** The [bench --check] per-class pressure warning test (warn-only,
    like the height gap). *)

(** {2 Baseline comparison — the CI perf gate} *)

type delta = {
  workload : string;  (** benchmark name, or ["(suite)"] *)
  metric : string;  (** ["total_s"], ["verify_s"] or ["suite_total_s"] *)
  base : float;
  cur : float;
  change_pct : float;  (** [(cur - base) / base * 100] *)
  regressed : bool;
}

val check :
  tolerance:float ->
  baseline:string ->
  current:(string * float * float) list ->
  delta list
(** Compare a fresh run against baseline JSON [contents].  [current]
    rows are [(name, verify_s, total_s)].  A metric regresses when it
    exceeds the baseline by more than [tolerance] percent {e and} by
    more than an absolute 20ms noise floor — sub-hundredth-second
    metrics on shared runners are indistinguishable from jitter.
    Workloads present on only one side are skipped, and the suite row
    sums over the {e matched} workloads only, so a [--quick] run gates
    cleanly against a full-suite baseline. *)

val missing_from_current :
  baseline:string -> current:(string * float * float) list -> string list
(** Baseline workloads with no row in the current run.  {!check} skips
    them (a [--quick] run must still gate against a full-suite
    baseline), but silence would also hide a workload that stopped
    running at all — [bench --check] warns with this list instead. *)

val regressions : delta list -> delta list

val pp_deltas : Format.formatter -> delta list -> unit
(** The delta table [bench --check] prints. *)
