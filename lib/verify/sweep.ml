open Cpr_ir
module Liveness = Cpr_analysis.Liveness

(* Shared scaffolding for the whole-program quality lints (Heightcheck,
   Pressurecheck): which regions a per-region analysis runs over, and a
   runner that computes liveness once for all of them.  Unreachable
   regions are dead text — scheduling or counting them would lint code
   the program cannot execute — and empty regions have nothing to
   analyze. *)

let regions_of prog =
  let reachable = Dataflow.reachable_labels prog in
  List.filter
    (fun (r : Region.t) ->
      Hashtbl.mem reachable r.Region.label && r.Region.ops <> [])
    (Prog.regions prog)

let map_regions prog ~f =
  let live = Liveness.analyze prog in
  List.map (f live) (regions_of prog)

let concat_map_regions prog ~f =
  let live = Liveness.analyze prog in
  List.concat_map (f live) (regions_of prog)
