open Cpr_ir

(** Predicate-aware dataflow lint over a single program.

    Checks (reachable regions only):
    - [pred-undef] / [btr-undef] (errors): a use of a predicate or branch
      target register whose use condition is provably disjoint from its
      definedness condition — the register is undefined on {e every}
      execution that reaches the use.  Definedness is tracked as a {!Pqs}
      expression per region ([Un]/[Uc] compare destinations and unguarded
      [Pred_init] define unconditionally; guarded writes and accumulator
      fires define under their guard expression); registers that are
      may-defined on region entry, or never defined anywhere (program
      inputs), count as defined.
    - [gpr-undef] (warning): plain boolean use-before-def for data
      registers, same entry/input conventions.
    - [dead-pbr] (warning): a [pbr] whose btr is never read by any branch
      in a reachable region.
    - [unreachable-guard] (warning): an op whose guard expression is
      provably constant false — dead code under every input.
    - [comp-coverage] (error): for a bypass branch into a compensation
      region whose fallthrough is {!Cpr_core.Restructure.unreachable_label},
      prove that taking the bypass implies one of the compensation
      branches takes; a satisfiable path to the unreachable label is the
      classic "bypass without compensation" miscompile. *)

val lint :
  ?only_checks:string list -> stats:Finding.stats -> Prog.t
  -> Finding.t list
(** [only_checks] restricts the lint to the named checks (as they appear
    in {!Finding.t}[.check]); the baseline-subtraction pass of
    {!Verify.check_stage} uses it to re-check the stage input against
    only the check kinds its output actually reported. *)

type verdict =
  | Undefined  (** reported: use provably disjoint from definedness *)
  | Proved  (** use condition implies definedness *)
  | Unknown

type query = {
  region : string;
  op_id : int;
  reg : Reg.t;
  use : Cpr_analysis.Pqs.t;  (** condition under which the use executes *)
  defined : Cpr_analysis.Pqs.t;  (** condition under which the register
                                     is defined at that point *)
  verdict : verdict;
}

val queries : Prog.t -> query list
(** Every predicate/btr use-before-def query {!lint} poses, with both
    sides of the Pqs comparison — the hook the soundness property tests
    brute-force with {!Cpr_analysis.Pqs.eval}. *)

val reachable_labels : Prog.t -> (string, unit) Hashtbl.t
(** Region labels reachable from the program entry (exit labels
    excluded); shared with the translation validator. *)

val reachable_regions : Prog.t -> Region.t list
(** The regions behind {!reachable_labels}, in layout order. *)
