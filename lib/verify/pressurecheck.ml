open Cpr_ir
module Pressure = Cpr_analysis.Pressure
module Descr = Cpr_machine.Descr
module List_sched = Cpr_sched.List_sched

type row = {
  region : string;
  cls : Reg.cls;
  sweep_maxlive : int;
  sched_maxlive : int;
  maxlive_blind : int;
  file_size : int;
  margin : int;
}

let cls_name = function
  | Reg.Gpr -> "gpr"
  | Reg.Pred -> "pred"
  | Reg.Btr -> "btr"

let classes = [ Reg.Gpr; Reg.Pred; Reg.Btr ]

let region_rows machine prog live (r : Region.t) =
  let sw = Pressure.sweep live prog r in
  let sched = List_sched.schedule machine prog live r in
  let sc =
    Pressure.of_schedule live prog r ~ops:sched.Cpr_sched.Schedule.ops
      ~cycle:sched.Cpr_sched.Schedule.cycle
      ~length:sched.Cpr_sched.Schedule.length
  in
  List.map
    (fun cls ->
      let sweep_maxlive = Pressure.maxlive sw cls in
      let sched_maxlive = Pressure.maxlive sc cls in
      let file_size = Descr.regfile_size machine cls in
      {
        region = r.Region.label;
        cls;
        sweep_maxlive;
        sched_maxlive;
        maxlive_blind =
          max (Pressure.maxlive_blind sw cls) (Pressure.maxlive_blind sc cls);
        file_size;
        margin = file_size - max sweep_maxlive sched_maxlive;
      })
    classes

let rows ?(machine = Descr.medium) prog =
  List.concat (Sweep.map_regions prog ~f:(region_rows machine prog))

(* Program-level figure per class: the worst region's scheduled
   (allocator-visible) predicate-aware MAXLIVE. *)
let summary ?(machine = Descr.medium) prog =
  let rs = rows ~machine prog in
  List.map
    (fun cls ->
      ( cls,
        List.fold_left
          (fun acc row -> if row.cls = cls then max acc row.sched_maxlive else acc)
          0 rs ))
    classes

let check ?(machine = Descr.medium) ?(growth_factor = 1.5) ?baseline ~stats
    prog =
  let rs = rows ~machine prog in
  let findings = ref [] in
  List.iter
    (fun row ->
      (* Allocatability is judged on the scheduled count — that is the
         pressure a post-scheduling allocator actually faces; the sweep
         is reported for context but scheduling may legitimately exceed
         it by overlapping lifetimes. *)
      if row.sched_maxlive > row.file_size then
        findings :=
          Finding.make ~check:"pressure-unallocatable" ~severity:Finding.Error
            ~region:row.region ~subject:(cls_name row.cls)
            (Printf.sprintf
               "%s MAXLIVE %d exceeds the %d-register %s file of %s — the \
                region cannot be allocated without spill code"
               (cls_name row.cls) row.sched_maxlive row.file_size
               (cls_name row.cls) machine.Descr.name)
          :: !findings
      else stats.Finding.proved <- stats.Finding.proved + 1)
    rs;
  (match baseline with
  | None -> ()
  | Some before ->
    let base = summary ~machine before in
    List.iter
      (fun (cls, cur) ->
        let b = List.assoc cls base in
        (* Small absolute grace on top of the ratio: CPR legitimately
           mints a handful of FRPs, and tiny baselines (maxlive 1-2)
           would otherwise flag any growth at all. *)
        if cur > int_of_float (growth_factor *. float_of_int b) + 4 then
          findings :=
            Finding.make ~check:"pressure-growth" ~severity:Finding.Warning
              ~region:"(program)" ~subject:(cls_name cls)
              (Printf.sprintf
                 "%s MAXLIVE grew from %d to %d (more than %.1fx + 4) across \
                  the transformation — CPR is trading register pressure for \
                  height"
                 (cls_name cls) b cur growth_factor)
            :: !findings)
      (summary ~machine prog));
  List.rev !findings
