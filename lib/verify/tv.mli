open Cpr_ir

(** Per-stage translation validation.

    Matches a transformed program against its input through op identity:
    an operation of the input is {e instantiated} in the output by the op
    with the same id (in-place transformation) and by every op whose
    [orig] field points at it (copies made by tail duplication,
    if-conversion inlining, unrolling, lookahead insertion, off-trace
    splitting).  On that matching the validator proves, per stage:

    - [tv-exit] (error): every program exit label reachable in the input
      is still reachable in the output — a transformation must not lose a
      way out of the program.
    - [tv-store] (error): every store of a reachable input region has at
      least one instance — the "emitted the bypass, forgot the off-trace
      code" miscompile deletes instances wholesale.
    - [tv-liveout] (error): every definition of a program live-out
      register in a reachable input region has at least one instance.
    - [tv-branch] (error): every exit branch of a reachable input region
      has an instance that still targets the original label, targets a
      region from which that label is reachable (bypass/compensation
      indirection), or targets a static successor of the original region
      (condition-inverted loop exits of unrolling).  Disabled for
      if-conversion, whose whole point is deleting converted branches.
    - [tv-order] (error): for every register/memory dependence edge of a
      reachable input region, instances placed in a common output region
      must not have {e all} sources after {e all} destinations — the
      sunk-past-a-dependence bug class, checked when the dependence is
      still real on the instances (off-trace rewiring may retire it).
    - [tv-store-guard] (error): for a store present under the same id on
      both sides, the execution conditions (path condition conjoined with
      the guard expression) are compared as {!Cpr_analysis.Pqs}
      expressions — output condition literals are normalized through
      [orig] onto input literals, and when the literal bases coincide the
      two expressions are brute-force enumerated; a differing assignment
      is a proven guard change on a store, which no stage may make.
      Enabled for the FRP-based stages ([frp], [spec], [fullcpr],
      [icbm]), where store guards must be exactly the original path
      conditions.

    Checks that cannot decide (instances missing, literal bases that do
    not line up, expressions past the enumeration cap) count as
    [unknown] in the stats rather than reporting. *)

val validate :
  ?machine:Cpr_machine.Descr.t -> stats:Finding.stats -> stage:string
  -> before:Prog.t -> Prog.t -> Finding.t list
(** [validate ~stats ~stage ~before after].  [stage] is a
    {!Cpr_fuzz.Stage} name ([ifconv], [frp], [spec], [unroll],
    [fullcpr], [icbm], [fullpipe]); unknown names get every check except
    [tv-store-guard].  [machine] (default {!Cpr_machine.Descr.medium})
    only affects dependence-graph construction for [tv-order]. *)
