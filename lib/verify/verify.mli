open Cpr_ir

(** Entry points of the static verifier.

    Two layers share the {!Finding} vocabulary: {!check_program} runs
    the single-program checks (the predicate-aware dataflow lint of
    {!Dataflow} and the EQ-model schedule hazard re-derivation of
    {!Schedcheck}); {!check_stage} additionally runs the per-stage
    translation validation of {!Tv} against the stage's input program,
    and subtracts findings already present in the input (keyed through
    {!Finding.key} with op ids normalized through [orig]) so that
    replaying a shrunk reproducer whose input is already suspicious only
    reports what the stage {e introduced}.

    The verifier never simulates: no {!Cpr_sim} oracle runs, no witness
    inputs.  Everything it reports is established by predicate algebra,
    dependence re-derivation or instance matching alone. *)

type report = {
  findings : Finding.t list;
  stats : Finding.stats;
}

val check_program :
  ?machine:Cpr_machine.Descr.t -> ?sched:bool -> ?only_checks:string list
  -> Prog.t -> report
(** Dataflow lint plus (unless [sched:false]) schedule hazard checks.
    [machine] defaults to {!Cpr_machine.Descr.medium}; [only_checks]
    restricts the run to the named checks, see {!Dataflow.lint}. *)

val check_stage :
  ?machine:Cpr_machine.Descr.t -> ?sched:bool -> stage:string
  -> before:Prog.t -> Prog.t -> report
(** [check_stage ~stage ~before after]: {!check_program} on the
    transformed program [after], minus the findings [before] already
    exhibits, plus translation validation of the [stage] (skipped for
    [superblock] and [baseline], which are the identity on region
    content). *)

val errors : report -> Finding.t list

exception Verify_error of Finding.t list
(** Carries only the error-severity findings; a printer is registered. *)

val check_stage_exn :
  ?machine:Cpr_machine.Descr.t -> ?sched:bool -> stage:string
  -> before:Prog.t -> Prog.t -> unit
(** Raise {!Verify_error} if {!check_stage} reports any error. *)
