open Cpr_ir

(** EQ-model schedule hazard check.

    Re-derives the dependence graph of every reachable region from
    scratch ({!Cpr_analysis.Depgraph.build}), schedules the region with
    the production list scheduler and asserts the result respects every
    edge and the machine's per-cycle resources
    ({!Cpr_sched.Schedule.check}).  On top of the edge check it scans
    for same-completion-cycle write-after-write hazards: two operations
    whose destinations overlap, whose completion cycles
    ([issue + latency]) coincide and whose execution conditions are not
    provably disjoint race in the EQ model — the bug class of a sinking
    transformation that forgets an output dependence, caught without a
    witness input.  Wired-or / wired-and [cmpp] destinations of the same
    wiring class are unordered by construction and excluded.

    Checks: [sched] (error, one per {!Cpr_sched.Schedule.check}
    violation), [sched-waw] (error). *)

val check :
  ?machine:Cpr_machine.Descr.t -> stats:Finding.stats -> Prog.t
  -> Finding.t list
(** [machine] defaults to {!Cpr_machine.Descr.medium}. *)
