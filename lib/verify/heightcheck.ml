open Cpr_ir
module Depgraph = Cpr_analysis.Depgraph
module Height = Cpr_analysis.Height
module Liveness = Cpr_analysis.Liveness
module Descr = Cpr_machine.Descr
module List_sched = Cpr_sched.List_sched

type row = {
  region : string;
  n_ops : int;
  dep_height : int;
  branch_height : int;
  res_bound : int;
  bound : int;
  achieved : int;
}

let region_row machine prog live (r : Region.t) =
  let dg = Depgraph.build machine prog live r in
  let s = Height.summarize machine dg in
  let sched = List_sched.schedule machine prog live r in
  {
    region = r.Region.label;
    n_ops = List.length r.Region.ops;
    dep_height = s.Height.dep_height;
    branch_height = s.Height.branch_height;
    res_bound = s.Height.res_bound;
    bound = s.Height.bound;
    achieved = sched.Cpr_sched.Schedule.length;
  }

let rows ?(machine = Descr.medium) prog =
  Sweep.map_regions prog ~f:(region_row machine prog)

(* A side exit is "cold" when its profiled taken fraction stays at or
   below the default exit-weight threshold — the same notion CPR block
   growth uses, so "missed" means missed by the heuristics' own
   standard.  Unprofiled programs (entry count 0) have no cold/hot
   information and are skipped. *)
let cold_branch (r : Region.t) (op : Op.t) =
  r.Region.entry_count > 0
  && float_of_int (Region.taken_count r op.Op.id)
     /. float_of_int r.Region.entry_count
     <= Cpr_core.Heur.default.Cpr_core.Heur.exit_weight_threshold

let check_region machine ~factor ~missed ~stats prog live (r : Region.t) =
  let dg = Depgraph.build machine prog live r in
  let s = Height.summarize machine dg in
  let sched = List_sched.schedule machine prog live r in
  let achieved = sched.Cpr_sched.Schedule.length in
  let findings = ref [] in
  if achieved < s.Height.bound then
    findings :=
      Finding.make ~check:"height-bound" ~severity:Finding.Error
        ~region:r.Region.label
        (Printf.sprintf
           "achieved schedule length %d is below the static lower bound \
            %d (dep %d, res %d) — the bound or the scheduler is wrong"
           achieved s.Height.bound s.Height.dep_height s.Height.res_bound)
      :: !findings
  else begin
    stats.Finding.proved <- stats.Finding.proved + 1;
    if float_of_int achieved > (factor *. float_of_int s.Height.bound) +. 2.
    then
      findings :=
        Finding.make ~check:"sched-quality" ~severity:Finding.Warning
          ~region:r.Region.label
          (Printf.sprintf
             "achieved schedule length %d exceeds the static lower bound \
              %d by more than %.1fx (dep height %d, resource bound %d)"
             achieved s.Height.bound factor s.Height.dep_height
             s.Height.res_bound)
        :: !findings
  end;
  if missed && s.Height.dep_height >= s.Height.res_bound then begin
    let slack = Height.slack dg in
    let ops = Array.of_list r.Region.ops in
    (* The region's last branch is its hot exit/backedge — off-trace
       motion keeps it by design — so only earlier (side-exit) branches
       can be missed opportunities. *)
    let last_branch = ref (-1) in
    Array.iteri
      (fun i op -> if Op.is_branch op then last_branch := i)
      ops;
    Array.iteri
      (fun i (op : Op.t) ->
        if
          Op.is_branch op && i < !last_branch && slack.(i) = 0
          && cold_branch r op
        then
          findings :=
            Finding.make ~check:"height-missed-cpr"
              ~severity:Finding.Warning ~region:r.Region.label ~op:op.Op.id
              (Printf.sprintf
                 "cold side exit %d (taken %d of %d entries) still on the \
                  critical path of a dependence-bound region (height %d) \
                  after height reduction"
                 op.Op.id
                 (Region.taken_count r op.Op.id)
                 r.Region.entry_count s.Height.dep_height)
            :: !findings)
      ops
  end;
  List.rev !findings

let check ?(machine = Descr.medium) ?(factor = 2.0) ?(missed = false) ~stats
    prog =
  Sweep.concat_map_regions prog
    ~f:(fun live r -> check_region machine ~factor ~missed ~stats prog live r)
