open Cpr_ir

(** Allocatability lint: predicate-aware MAXLIVE vs register-file size.

    For every reachable non-empty region (the {!Sweep} enumeration) and
    every register class, computes the {!Cpr_analysis.Pressure} figures —
    the unscheduled program-point sweep and the exact per-cycle count
    over the {!Cpr_sched.List_sched} schedule — and reports:

    - [pressure-unallocatable] (error): the scheduled MAXLIVE exceeds
      the machine's register file for that class; no allocator can place
      the region without spill code the cycles-only cost model never
      accounted for.
    - [pressure-growth] (warning, only with [baseline]): the program's
      worst-region MAXLIVE for a class grew past [growth_factor] times
      the baseline figure (plus an absolute grace of 4) — CPR is paying
      heavily in registers for its height win.

    Like {!Heightcheck}, none of this runs in default pipeline
    verification; it is quality lint surfaced through [lint --pressure]. *)

type row = {
  region : string;
  cls : Reg.cls;
  sweep_maxlive : int;  (** predicate-aware, unscheduled program points *)
  sched_maxlive : int;  (** predicate-aware, per schedule cycle *)
  maxlive_blind : int;  (** without disjoint-guard sharing (worst of both) *)
  file_size : int;
  margin : int;  (** [file_size - max sweep_maxlive sched_maxlive] *)
}

val cls_name : Reg.cls -> string
(** ["gpr"], ["pred"], ["btr"]. *)

val rows : ?machine:Cpr_machine.Descr.t -> Prog.t -> row list
(** Three rows (one per class) per reachable non-empty region. *)

val summary : ?machine:Cpr_machine.Descr.t -> Prog.t -> (Reg.cls * int) list
(** Worst-region scheduled MAXLIVE per class — the figure bench reports
    per workload and the growth warning compares. *)

val check :
  ?machine:Cpr_machine.Descr.t ->
  ?growth_factor:float ->
  ?baseline:Prog.t ->
  stats:Finding.stats ->
  Prog.t ->
  Finding.t list
(** [growth_factor] defaults to 1.5.  Every in-budget (region, class)
    pair counts as one proved query in [stats]. *)
