open Cpr_ir

(** Schedule-quality lint: static lower bound vs achieved schedule.

    For every reachable non-empty region, computes the {!Height} /
    {!Resbound} lower bound and the length {!List_sched} actually
    achieves, and reports:

    - [height-bound] (error): the achieved length is {e below} the
      static bound.  The bound is proved sound, so this can only mean an
      analyzer or scheduler bug — it is the lint that keeps the two
      honest against each other.
    - [sched-quality] (warning): the achieved length exceeds the bound
      by more than [factor] (plus a small absolute grace), i.e. the
      scheduler left cycles on the table that neither dependences nor
      resources account for.
    - [height-missed-cpr] (warning, only with [missed:true] — callers
      pass it for post-CPR programs): a cold side exit (taken fraction
      at most the exit-weight threshold of {!Cpr_core.Heur}) whose
      branch still sits on the region's critical path with zero slack
      while the region is dependence-bound — exactly the opportunity
      height reduction exists to take.

    None of this runs in the default pipeline verification: the checks
    are quality lint, not correctness, and are surfaced through
    [lint --heights]. *)

type row = {
  region : string;
  n_ops : int;
  dep_height : int;
  branch_height : int;
  res_bound : int;
  bound : int;  (** [max dep_height res_bound] *)
  achieved : int;  (** {!List_sched} schedule length *)
}

val rows : ?machine:Cpr_machine.Descr.t -> Prog.t -> row list
(** One row per reachable non-empty region, in program order. *)

val check :
  ?machine:Cpr_machine.Descr.t ->
  ?factor:float ->
  ?missed:bool ->
  stats:Finding.stats ->
  Prog.t ->
  Finding.t list
(** [factor] defaults to 2.0; a region only trips [sched-quality] when
    [achieved > factor * bound + 2].  Every region whose achieved length
    respects the bound counts as one proved query in [stats]. *)
