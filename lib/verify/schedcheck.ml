open Cpr_ir
module Pqs = Cpr_analysis.Pqs
module Pred_env = Cpr_analysis.Pred_env
module Depgraph = Cpr_analysis.Depgraph
module Liveness = Cpr_analysis.Liveness
module Descr = Cpr_machine.Descr
module List_sched = Cpr_sched.List_sched
module Schedule = Cpr_sched.Schedule

(* Wiring class of a cmpp destination, when it is an accumulator
   destination: same-class writes to a common register are unordered by
   construction and must not be reported as WAW hazards. *)
let acc_class (op : Op.t) (d : Reg.t) =
  match op.Op.opcode with
  | Op.Cmpp (_, a1, a2) ->
    let action_at i = if i = 0 then Some a1 else a2 in
    let rec find i = function
      | [] -> None
      | d' :: rest ->
        if Reg.equal d d' then action_at i else find (i + 1) rest
    in
    (match find 0 op.Op.dests with
    | Some (Op.On | Op.Oc) -> Some `Or
    | Some (Op.An | Op.Ac) -> Some `And
    | _ -> None)
  | _ -> None

let check_region machine prog live ~stats (r : Region.t) =
  let dg = Depgraph.build machine prog live r in
  let sched = List_sched.schedule machine prog live r in
  let findings = ref [] in
  List.iter
    (fun v ->
      findings :=
        Finding.make ~check:"sched" ~severity:Finding.Error
          ~region:r.Region.label v
        :: !findings)
    (Schedule.check machine dg sched);
  let env = Pred_env.analyze r in
  let ops = sched.Schedule.ops in
  let pc = Pred_env.path_conds env in
  (* Execution condition of a write: path condition to reach the op, and
     its guard unless the destination writes even under a false guard. *)
  let write_cond i (op : Op.t) d =
    let exec = pc.(i) in
    if List.exists (Reg.equal d) (Op.writes_when_guard_false op) then exec
    else Pqs.and_ exec (Pred_env.guard_expr env i)
  in
  let defs_at = Hashtbl.create 17 in
  Array.iteri
    (fun i (op : Op.t) ->
      let completes = sched.Schedule.cycle.(i) + Descr.latency_of machine op in
      List.iter
        (fun d ->
          let key = (d, completes) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt defs_at key) in
          let wc_i = lazy (write_cond i op d) in
          List.iter
            (fun j ->
              let oj = ops.(j) in
              let same_acc =
                match (acc_class op d, acc_class oj d) with
                | Some a, Some b -> a = b
                | _ -> false
              in
              if not same_acc then
                if Pqs.disjoint (Lazy.force wc_i) (write_cond j oj d) then
                  stats.Finding.proved <- stats.Finding.proved + 1
                else
                  findings :=
                    Finding.make ~check:"sched-waw" ~severity:Finding.Error
                      ~region:r.Region.label ~op:op.Op.id
                      ~subject:(Reg.to_string d)
                      (Printf.sprintf
                         "ops %d and %d both write %s completing in cycle \
                          %d and are not provably disjoint"
                         oj.Op.id op.Op.id (Reg.to_string d) completes)
                    :: !findings)
            prev;
          Hashtbl.replace defs_at key (i :: prev))
        (Op.defs op))
    ops;
  List.rev !findings

let check ?(machine = Descr.medium) ~stats prog =
  let reachable = Dataflow.reachable_labels prog in
  let live = Liveness.analyze prog in
  List.concat_map
    (fun (r : Region.t) ->
      if Hashtbl.mem reachable r.Region.label && r.Region.ops <> [] then
        check_region machine prog live ~stats r
      else [])
    (Prog.regions prog)
