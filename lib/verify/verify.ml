open Cpr_ir
module Obs = Cpr_obs.Obs

type report = {
  findings : Finding.t list;
  stats : Finding.stats;
}

(* Aggregate verifier telemetry across every entry point: how many
   findings were reported, and how the predicate analysis did on the
   queries behind them (proved vs degraded-to-unknown). *)
let c_findings = Obs.counter "verify.findings"
let c_proved = Obs.counter "verify.proved"
let c_unknown = Obs.counter "verify.unknown"

let observe r =
  if Obs.enabled () then begin
    Obs.add c_findings (List.length r.findings);
    Obs.add c_proved r.stats.Finding.proved;
    Obs.add c_unknown r.stats.Finding.unknown
  end;
  r

(* Uncounted core shared by both entry points, so [check_stage]'s
   internal baseline re-lint is not double-counted in the telemetry. *)
let lint_program ?machine ?(sched = true) ?only_checks prog =
  let stats = Finding.new_stats () in
  let findings = Dataflow.lint ?only_checks ~stats prog in
  let sched =
    sched
    &&
    match only_checks with
    | None -> true
    | Some cs -> List.mem "sched" cs || List.mem "sched-waw" cs
  in
  let findings =
    if sched then findings @ Schedcheck.check ?machine ~stats prog
    else findings
  in
  { findings; stats }

let check_program ?machine ?sched ?only_checks prog =
  (* Standalone entry point (the [lint] binary, direct API use): bound
     the predicate engine's memo footprint per program checked.  The
     staged pipeline trims in [Passes.prepare] instead, keeping the
     caches warm across its own verify stages. *)
  Cpr_analysis.Pqs.trim ();
  observe (lint_program ?machine ?sched ?only_checks prog)

let errors r = List.filter Finding.is_error r.findings

let check_stage ?machine ?sched ~stage ~before after =
  let aft = lint_program ?machine ?sched after in
  (* Baseline subtraction only matters when the output has findings at
     all, so the input program is checked lazily: in the common
     all-clean case the input check is skipped entirely (the report's
     stats are the output's either way). *)
  let fresh =
    match aft.findings with
    | [] -> []
    | aft_findings ->
      (* The base run only exists to subtract same-kind findings
         (Finding.key starts with the check name), so restrict it to the
         check kinds the output actually reported — typically a handful
         of warnings, far cheaper than a full re-lint. *)
      let wanted =
        List.sort_uniq compare
          (List.map (fun f -> f.Finding.check) aft_findings)
      in
      let base = lint_program ?machine ?sched ~only_checks:wanted before in
      (* Key the input's findings with the identity resolver (its ops are
         the originals) and the output's through one-step [orig] chasing,
         so a finding inherited from the input doesn't re-report just
         because the op carrying it was copied. *)
      let origs = Hashtbl.create 64 in
      List.iter
        (fun (r : Region.t) ->
          List.iter
            (fun (op : Op.t) ->
              match op.Op.orig with
              | Some o -> Hashtbl.replace origs op.Op.id o
              | None -> ())
            r.Region.ops)
        (Prog.regions after);
      let resolve id =
        Option.value ~default:id (Hashtbl.find_opt origs id)
      in
      let base_keys = Hashtbl.create 17 in
      List.iter
        (fun f ->
          Hashtbl.replace base_keys
            (Finding.key ~resolve_op:(fun id -> id) f)
            ())
        base.findings;
      List.filter
        (fun f ->
          not (Hashtbl.mem base_keys (Finding.key ~resolve_op:resolve f)))
        aft_findings
  in
  let tv =
    match stage with
    | "superblock" | "baseline" -> []
    | _ -> Tv.validate ?machine ~stats:aft.stats ~stage ~before after
  in
  observe { findings = fresh @ tv; stats = aft.stats }

exception Verify_error of Finding.t list

let () =
  Printexc.register_printer (function
    | Verify_error fs ->
      Some
        (Format.asprintf "Verify_error:@,%a"
           (Format.pp_print_list Finding.pp)
           fs)
    | _ -> None)

let check_stage_exn ?machine ?sched ~stage ~before after =
  match errors (check_stage ?machine ?sched ~stage ~before after) with
  | [] -> ()
  | errs -> raise (Verify_error errs)
