open Cpr_ir
module Pqs = Cpr_analysis.Pqs
module Pred_env = Cpr_analysis.Pred_env
module Bitset = Cpr_analysis.Bitset

type verdict =
  | Undefined
  | Proved
  | Unknown

type query = {
  region : string;
  op_id : int;
  reg : Reg.t;
  use : Pqs.t;
  defined : Pqs.t;
  verdict : verdict;
}

let reachable_labels (prog : Prog.t) =
  let seen = Hashtbl.create 17 in
  let rec go label =
    if (not (Hashtbl.mem seen label)) && not (Prog.is_exit prog label) then begin
      match Prog.find prog label with
      | None -> ()
      | Some r ->
        Hashtbl.replace seen label ();
        List.iter go (Region.successors r)
    end
  in
  go prog.Prog.entry;
  seen

let reachable_regions prog =
  let seen = reachable_labels prog in
  List.filter
    (fun (r : Region.t) -> Hashtbl.mem seen r.Region.label)
    (Prog.regions prog)

(* The boolean half of the lint (may-defined entry sets, the edge-wise
   refinement, gpr availability) runs over packed bitsets: registers
   defined by at least one op of the program get dense indices —
   everything else is a program input, conventionally defined at entry,
   and never needs a bit. *)
type ctx = {
  idx : int Reg.Tbl.t;
  n : int;
}

let make_ctx regions =
  let idx = Reg.Tbl.create 64 in
  List.iter
    (fun (r : Region.t) ->
      List.iter
        (fun op ->
          List.iter
            (fun d ->
              if not (Reg.Tbl.mem idx d) then
                Reg.Tbl.replace idx d (Reg.Tbl.length idx))
            (Op.defs op))
        r.Region.ops)
    regions;
  { idx; n = Reg.Tbl.length idx }

let region_defs ctx (r : Region.t) =
  let bits = Bitset.create ctx.n in
  List.iter
    (fun op ->
      List.iter (fun d -> Bitset.set bits (Reg.Tbl.find ctx.idx d)) (Op.defs op))
    r.Region.ops;
  bits

(* May-defined-on-entry per region label: forward fixpoint over the
   reachable region graph, [out r = in r + defs r].  "May" rather than
   "must" deliberately under-reports (a register defined only on the
   loop-back path counts as defined), which is the sound direction for a
   lint that must never flag correct code.  The edge-wise pass in [lint]
   recovers the cases this hides. *)
let may_defined_on_entry ctx prog regions =
  let by_label = Hashtbl.create 17 in
  let defs_of = Hashtbl.create 17 in
  List.iter
    (fun (r : Region.t) ->
      Hashtbl.replace by_label r.Region.label r;
      Hashtbl.replace defs_of r.Region.label (region_defs ctx r))
    regions;
  let in_of = Hashtbl.create 17 in
  let cell l =
    match Hashtbl.find_opt in_of l with
    | Some b -> b
    | None ->
      let b = Bitset.create ctx.n in
      Hashtbl.replace in_of l b;
      b
  in
  (* Worklist instead of repeated whole-list sweeps: a region is
     reprocessed only when its entry set actually grew. *)
  let work = Queue.create () in
  let queued = Hashtbl.create 17 in
  let enqueue l =
    if not (Hashtbl.mem queued l) then begin
      Hashtbl.replace queued l ();
      Queue.add l work
    end
  in
  List.iter (fun (r : Region.t) -> enqueue r.Region.label) regions;
  while not (Queue.is_empty work) do
    let l = Queue.pop work in
    Hashtbl.remove queued l;
    match Hashtbl.find_opt by_label l with
    | None -> ()
    | Some r ->
      let out = Bitset.copy (cell l) in
      ignore (Bitset.union_into ~into:out (Hashtbl.find defs_of l));
      List.iter
        (fun succ ->
          if (not (Prog.is_exit prog succ)) && Hashtbl.mem by_label succ
          then
            if Bitset.union_into ~into:(cell succ) out then enqueue succ)
        (Region.successors r)
  done;
  cell

(* ------------------------------------------------------------------ *)
(* Predicate/btr use-before-def under guard implication.               *)

(* For each use of a predicate or btr register, [use] is the condition
   the use executes (region path condition, plus the guard for ops that
   only read when executing guarded) and [defined] the accumulated
   definedness expression.  A use with [disjoint use defined] (and a
   satisfiable [use]) is undefined on every execution reaching it.
   Registers may-defined on region entry or never defined anywhere
   (program inputs) start out defined. *)
let region_queries ctx ?env ?only ~entry_defined (r : Region.t) =
  let env =
    match env with Some e -> e | None -> Pred_env.analyze r
  in
  (* [only] restricts the analysis to a subset of the defined registers:
     the edge-wise pass in [lint] re-queries a region once per incoming
     edge, but each edge can only change verdicts for the handful of
     registers it stops covering, so tracking anything else there is
     wasted work. *)
  let tracked reg =
    match only with
    | None -> true
    | Some bits -> (
      match Reg.Tbl.find_opt ctx.idx reg with
      | Some i -> Bitset.mem bits i
      | None -> false)
  in
  let ops = Pred_env.ops env in
  let defined : Pqs.t Reg.Tbl.t = Reg.Tbl.create 17 in
  let get_defined reg =
    match Reg.Tbl.find_opt defined reg with
    | Some e -> e
    | None -> (
      match Reg.Tbl.find_opt ctx.idx reg with
      | None -> Pqs.tru (* never defined anywhere: program input *)
      | Some i -> if Bitset.mem entry_defined i then Pqs.tru else Pqs.fls)
  in
  let add_defined reg cond =
    Reg.Tbl.replace defined reg (Pqs.or_ (get_defined reg) cond)
  in
  let queries = ref [] in
  let query op_id reg use =
    if not (tracked reg) then ()
    else
      let d = get_defined reg in
      let verdict =
        (* fast path for the overwhelmingly common fully-defined case *)
        if Pqs.is_const_true d then Proved
        else if (not (Pqs.is_const_false use)) && Pqs.disjoint use d then
          Undefined
        else if Pqs.implies use d then Proved
        else Unknown
      in
      queries :=
        { region = r.Region.label; op_id; reg; use; defined = d; verdict }
        :: !queries
  in
  (* The path condition grows one conjunct per branch passed, so build
     it incrementally instead of re-deriving the whole prefix product at
     every op (that made the lint quadratic in branchy regions). *)
  let path = ref Pqs.tru in
  Array.iteri
    (fun i (op : Op.t) ->
      let exec = !path in
      let guard = Pred_env.guard_expr env i in
      (* Uses first: the guard read happens whenever the op is reached;
         an accumulator destination's old value flows through whenever
         the op is reached; a branch reads its btr only when it executes
         guarded. *)
      (match op.Op.guard with
      | Op.True -> ()
      | Op.If g -> query op.Op.id g exec);
      List.iter (fun d -> query op.Op.id d exec) (Op.accumulator_dests op);
      if Op.is_branch op then
        List.iter
          (function
            | Op.Reg b when b.Reg.cls = Reg.Btr ->
              query op.Op.id b (Pqs.and_ exec guard)
            | _ -> ())
          op.Op.srcs;
      (* Then definitions.  UN/UC compare destinations write even under a
         false guard; everything else defines under path and guard. *)
      let unconditional = Op.writes_when_guard_false op in
      List.iter
        (fun d ->
          if (Reg.is_pred d || d.Reg.cls = Reg.Btr) && tracked d then
            if List.exists (Reg.equal d) unconditional then add_defined d exec
            else add_defined d (Pqs.and_ exec guard))
        (Op.defs op);
      if Op.is_branch op then
        path := Pqs.and_ !path (Pqs.not_ (Pred_env.taken_expr env i)))
    ops;
  List.rev !queries

let queries prog =
  let regions = reachable_regions prog in
  let ctx = make_ctx regions in
  let entry_of = may_defined_on_entry ctx prog regions in
  List.concat_map
    (fun (r : Region.t) ->
      region_queries ctx ~entry_defined:(entry_of r.Region.label) r)
    regions

(* ------------------------------------------------------------------ *)
(* Compensation coverage: a bypass branch into a region whose
   fallthrough is the unreachable sentinel must be proven to always take
   one of the compensation branches.  The proof runs [Pred_env] over a
   synthetic region made of the bypass region's prefix followed by the
   compensation ops: value numbering unifies the lookahead compares with
   the moved original compares, so the off-trace FRP and the negated
   compensation taken-conditions contradict syntactically. *)

let comp_coverage ~stats prog regions =
  let unreach = Cpr_core.Restructure.unreachable_label in
  let findings = ref [] in
  List.iter
    (fun (r : Region.t) ->
      List.iteri
        (fun b (op : Op.t) ->
          if Op.is_branch op then
            match Region.branch_target r op with
            | Some l when l <> r.Region.label -> (
              match Prog.find prog l with
              | Some (c : Region.t) when c.Region.fallthrough = Some unreach
                ->
                let prefix = List.filteri (fun i _ -> i <= b) r.Region.ops in
                let synth =
                  Region.make "<comp-coverage>" (prefix @ c.Region.ops)
                in
                let env = Pred_env.analyze synth in
                let n = Array.length (Pred_env.ops env) in
                let nb = List.length prefix - 1 in
                let reach =
                  Pqs.and_
                    (Pred_env.path_cond env 0 nb)
                    (Pqs.and_
                       (Pred_env.taken_expr env nb)
                       (Pred_env.path_cond env (nb + 1) n))
                in
                if Pqs.is_unknown reach then
                  stats.Finding.unknown <- stats.Finding.unknown + 1
                else if Pqs.is_const_false reach then
                  stats.Finding.proved <- stats.Finding.proved + 1
                else
                  findings :=
                    Finding.make ~check:"comp-coverage"
                      ~severity:Finding.Error ~region:r.Region.label
                      ~op:op.Op.id ~subject:l
                      (Format.asprintf
                         "bypass into %s can fall through to %s (reach \
                          condition %a)"
                         l unreach Pqs.pp reach)
                    :: !findings
              | _ -> ())
            | _ -> ())
        r.Region.ops)
    regions;
  List.rev !findings

(* ------------------------------------------------------------------ *)

let lint ?only_checks ~stats prog =
  let enabled c =
    match only_checks with None -> true | Some cs -> List.mem c cs
  in
  let regions = reachable_regions prog in
  let ctx = make_ctx regions in
  let entry_of = may_defined_on_entry ctx prog regions in
  (* [Pred_env.analyze] depends only on region content, so one env per
     region serves the merged query pass, every edge-wise re-query and
     the unreachable-guard scan. *)
  let envs = Hashtbl.create 17 in
  let env_of (r : Region.t) =
    match Hashtbl.find_opt envs r.Region.label with
    | Some e -> e
    | None ->
      let e = Pred_env.analyze r in
      Hashtbl.replace envs r.Region.label e;
      e
  in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  (* predicate / btr use-before-def *)
  let flagged = Hashtbl.create 17 in
  let undef_finding ?edge (q : query) =
    Hashtbl.replace flagged (q.op_id, q.reg) ();
    add
      (Finding.make
         ~check:(if Reg.is_pred q.reg then "pred-undef" else "btr-undef")
         ~severity:Finding.Error ~region:q.region ~op:q.op_id
         ~subject:(Reg.to_string q.reg)
         (Format.asprintf
            "%s is provably undefined at every execution of this use%s (use \
             %a, defined %a)"
            (Reg.to_string q.reg)
            (match edge with
            | None -> ""
            | Some p -> Printf.sprintf " reached from %s" p)
            Pqs.pp q.use Pqs.pp q.defined))
  in
  let merged_queries = Hashtbl.create 17 in
  if enabled "pred-undef" || enabled "btr-undef" then begin
    List.iter
    (fun (r : Region.t) ->
      let qs =
        region_queries ctx ~env:(env_of r)
          ~entry_defined:(entry_of r.Region.label) r
      in
      Hashtbl.replace merged_queries r.Region.label qs;
      List.iter
        (fun q ->
          match q.verdict with
          | Undefined -> undef_finding q
          | Proved -> stats.Finding.proved <- stats.Finding.proved + 1
          | Unknown -> stats.Finding.unknown <- stats.Finding.unknown + 1)
        qs)
    regions;
  (* Edge-wise refinement: the may-entry set above merges every incoming
     edge, so a register defined only on a loop-back edge looks defined
     on the first iteration too.  Re-run the queries per predecessor edge
     (plus the implicit program-entry edge) with that edge's own out-set;
     an Undefined verdict there is a real first-execution bug the merged
     analysis hides.  Proved/unknown counters are left alone to avoid
     double counting. *)
  let preds_of = Hashtbl.create 17 in
  List.iter
    (fun (r : Region.t) ->
      List.iter
        (fun succ ->
          if not (Prog.is_exit prog succ) then
            Hashtbl.replace preds_of succ
              (r.Region.label
              :: Option.value ~default:[] (Hashtbl.find_opt preds_of succ)))
        (Region.successors r))
    regions;
  List.iter
    (fun (r : Region.t) ->
      let merged = entry_of r.Region.label in
      (* An edge can only change verdicts for registers it stops
         covering, so edges whose difference from the merged entry set
         misses every queried register are skipped outright. *)
      let queried = Bitset.create ctx.n in
      List.iter
        (fun q ->
          match Reg.Tbl.find_opt ctx.idx q.reg with
          | Some i -> Bitset.set queried i
          | None -> ())
        (Option.value ~default:[]
           (Hashtbl.find_opt merged_queries r.Region.label));
      let edges =
        let from_preds =
          List.filter_map
            (fun p ->
              match Prog.find prog p with
              | Some pr ->
                let out = Bitset.copy (entry_of p) in
                ignore (Bitset.union_into ~into:out (region_defs ctx pr));
                Some (p, out)
              | None -> None)
            (List.sort_uniq compare
               (Option.value ~default:[]
                  (Hashtbl.find_opt preds_of r.Region.label)))
        in
        if r.Region.label = prog.Prog.entry then
          ("program entry", Bitset.create ctx.n) :: from_preds
        else from_preds
      in
      List.iter
        (fun (p, entry_defined) ->
          let relevant =
            Bitset.inter (Bitset.diff merged entry_defined) queried
          in
          if not (Bitset.is_empty relevant) then
            List.iter
              (fun q ->
                if
                  q.verdict = Undefined
                  && not (Hashtbl.mem flagged (q.op_id, q.reg))
                then undef_finding ~edge:p q)
              (region_queries ctx ~env:(env_of r) ~only:relevant
                 ~entry_defined r))
        edges)
      regions
  end;
  (* plain boolean use-before-def for data registers *)
  if enabled "gpr-undef" then
    List.iter
    (fun (r : Region.t) ->
      let available = Bitset.copy (entry_of r.Region.label) in
      List.iter
        (fun (op : Op.t) ->
          List.iter
            (fun u ->
              match Reg.Tbl.find_opt ctx.idx u with
              | Some i ->
                if u.Reg.cls = Reg.Gpr && not (Bitset.mem available i) then
                  add
                    (Finding.make ~check:"gpr-undef" ~severity:Finding.Warning
                       ~region:r.Region.label ~op:op.Op.id
                       ~subject:(Reg.to_string u)
                       (Printf.sprintf
                          "%s is read before any definition reaches this use"
                          (Reg.to_string u)));
                (* a use makes the value "seen": flag only the first one *)
                Bitset.set available i
              | None -> () (* never defined: program input *))
            (Op.uses op);
          List.iter
            (fun d -> Bitset.set available (Reg.Tbl.find ctx.idx d))
            (Op.defs op))
        r.Region.ops)
      regions;
  (* dead pbr: btr never consumed by any reachable branch *)
  (if enabled "dead-pbr" then
     let consumed_btrs =
    List.fold_left
      (fun acc (r : Region.t) ->
        List.fold_left
          (fun acc (op : Op.t) ->
            if Op.is_branch op then
              List.fold_left
                (fun acc s ->
                  match s with
                  | Op.Reg b when b.Reg.cls = Reg.Btr -> Reg.Set.add b acc
                  | _ -> acc)
                acc op.Op.srcs
            else acc)
          acc r.Region.ops)
      Reg.Set.empty regions
  in
  List.iter
    (fun (r : Region.t) ->
      List.iter
        (fun (op : Op.t) ->
          if Op.is_pbr op then
            List.iter
              (fun d ->
                if d.Reg.cls = Reg.Btr && not (Reg.Set.mem d consumed_btrs)
                then
                  add
                    (Finding.make ~check:"dead-pbr" ~severity:Finding.Warning
                       ~region:r.Region.label ~op:op.Op.id
                       ~subject:(Reg.to_string d)
                       (Printf.sprintf
                          "pbr target %s is never read by any branch"
                          (Reg.to_string d))))
              (Op.defs op))
           r.Region.ops)
       regions);
  (* unreachable guards *)
  if enabled "unreachable-guard" then
    List.iter
    (fun (r : Region.t) ->
      let env = env_of r in
      Array.iteri
        (fun i (op : Op.t) ->
          if
            op.Op.guard <> Op.True
            && Pqs.is_const_false (Pred_env.guard_expr env i)
          then
            add
              (Finding.make ~check:"unreachable-guard"
                 ~severity:Finding.Warning ~region:r.Region.label
                 ~op:op.Op.id "guard is provably constant false: dead code"))
        (Pred_env.ops env))
      regions;
  List.rev !findings
  @ (if enabled "comp-coverage" then comp_coverage ~stats prog regions else [])
