type severity =
  | Error
  | Warning

type t = {
  check : string;
  severity : severity;
  region : string;
  op : int option;
  subject : string;
  msg : string;
}

type stats = {
  mutable proved : int;
  mutable unknown : int;
}

let new_stats () = { proved = 0; unknown = 0 }

let make ~check ~severity ~region ?op ?(subject = "") msg =
  { check; severity; region; op; subject; msg }

let is_error f = f.severity = Error

let key ~resolve_op f =
  Printf.sprintf "%s|%s|%d" f.check f.subject
    (match f.op with Some id -> resolve_op id | None -> -1)

let pp ppf f =
  Format.fprintf ppf "%s %s [%s]%t: %s"
    (match f.severity with Error -> "error" | Warning -> "warning")
    f.check f.region
    (fun ppf ->
      match f.op with
      | Some id -> Format.fprintf ppf " op %d" id
      | None -> ())
    f.msg
