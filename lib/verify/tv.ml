open Cpr_ir
module Pqs = Cpr_analysis.Pqs
module Pred_env = Cpr_analysis.Pred_env
module Depgraph = Cpr_analysis.Depgraph
module Liveness = Cpr_analysis.Liveness

type config = {
  check_branches : bool;
  check_store_guard : bool;
}

(* ifconv deletes the branches it converts (and fullpipe contains
   ifconv); the FRP stages must leave store execution conditions exactly
   the original path conditions, so only they get tv-store-guard. *)
let config_of_stage = function
  | "ifconv" | "fullpipe" ->
    { check_branches = false; check_store_guard = false }
  | "frp" | "spec" | "fullcpr" | "icbm" ->
    { check_branches = true; check_store_guard = true }
  | _ -> { check_branches = true; check_store_guard = false }

(* ------------------------------------------------------------------ *)
(* Instance matching.                                                  *)

type instance = {
  label : string;
  idx : int;  (** position within the region's op list *)
  op : Op.t;
}

type index = {
  by_id : (int, instance list) Hashtbl.t;
  by_orig : (int, instance list) Hashtbl.t;
}

let build_index regions =
  let by_id = Hashtbl.create 64 in
  let by_orig = Hashtbl.create 64 in
  let push tbl k v =
    Hashtbl.replace tbl k (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
  in
  List.iter
    (fun (r : Region.t) ->
      List.iteri
        (fun idx (op : Op.t) ->
          let inst = { label = r.Region.label; idx; op } in
          push by_id op.Op.id inst;
          match op.Op.orig with
          | Some o -> push by_orig o inst
          | None -> ())
        r.Region.ops)
    regions;
  { by_id; by_orig }

let instances index id =
  Option.value ~default:[] (Hashtbl.find_opt index.by_id id)
  @ Option.value ~default:[] (Hashtbl.find_opt index.by_orig id)

(* One-step orig resolution over the whole output program, for
   normalizing output Pqs condition literals onto input op ids. *)
let orig_map prog =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (r : Region.t) ->
      List.iter
        (fun (op : Op.t) ->
          match op.Op.orig with
          | Some o -> Hashtbl.replace tbl op.Op.id o
          | None -> ())
        r.Region.ops)
    (Prog.regions prog);
  tbl

(* ------------------------------------------------------------------ *)

let reachable_exit_labels prog =
  let reach = Dataflow.reachable_labels prog in
  let s = Hashtbl.create 7 in
  Hashtbl.iter
    (fun l () ->
      match Prog.find prog l with
      | Some r ->
        List.iter
          (fun succ -> if Prog.is_exit prog succ then Hashtbl.replace s succ ())
          (Region.successors r)
      | None -> ())
    reach;
  s

(* Is [target] reachable from label [l] in [prog] (following region
   successors; exit labels only match directly)? *)
let label_reaches prog l target =
  let seen = Hashtbl.create 17 in
  let rec go l =
    l = target
    || (not (Hashtbl.mem seen l))
       && begin
            Hashtbl.replace seen l ();
            match Prog.find prog l with
            | None -> false
            | Some r -> List.exists go (Region.successors r)
          end
  in
  go l

let validate ?(machine = Cpr_machine.Descr.medium) ~stats ~stage ~before
    after =
  let cfg = config_of_stage stage in
  let findings = ref [] in
  let add ~check ~region ?op ?subject msg =
    findings :=
      Finding.make ~check ~severity:Finding.Error ~region ?op ?subject msg
      :: !findings
  in
  let before_regions = Dataflow.reachable_regions before in
  let after_regions = Dataflow.reachable_regions after in
  let index = build_index after_regions in
  let origs = orig_map after in
  (* Normalize an output op id onto the id the *input* program knows the
     op by.  Ops that survived the transformation keep their id — their
     [orig] (if any) points further back, to an ancestor of an earlier
     stage, and chasing it would tear matching literals apart.  Only ops
     the input has never seen resolve through [orig]. *)
  let before_ids = Hashtbl.create 64 in
  List.iter
    (fun (r : Region.t) ->
      List.iter
        (fun (op : Op.t) -> Hashtbl.replace before_ids op.Op.id ())
        r.Region.ops)
    (Prog.regions before);
  let resolve id =
    if Hashtbl.mem before_ids id then id
    else Option.value ~default:id (Hashtbl.find_opt origs id)
  in
  (* tv-exit *)
  let after_exits = reachable_exit_labels after in
  Hashtbl.iter
    (fun l () ->
      if not (Hashtbl.mem after_exits l) then
        add ~check:"tv-exit" ~region:l ~subject:l
          (Printf.sprintf
             "program exit %s is reachable before the transformation but \
              not after"
             l))
    (reachable_exit_labels before);
  (* tv-store / tv-liveout: instance existence *)
  let live_out =
    List.fold_left
      (fun acc r -> Reg.Set.add r acc)
      Reg.Set.empty before.Prog.live_out
  in
  List.iter
    (fun (r : Region.t) ->
      List.iter
        (fun (op : Op.t) ->
          let missing () = instances index op.Op.id = [] in
          if Op.is_store op && missing () then
            add ~check:"tv-store" ~region:r.Region.label ~op:op.Op.id
              (Printf.sprintf "store %d has no instance in the output"
                 op.Op.id)
          else if
            List.exists (fun d -> Reg.Set.mem d live_out) (Op.defs op)
            && missing ()
          then
            add ~check:"tv-liveout" ~region:r.Region.label ~op:op.Op.id
              ~subject:
                (String.concat ","
                   (List.map Reg.to_string
                      (List.filter
                         (fun d -> Reg.Set.mem d live_out)
                         (Op.defs op))))
              (Printf.sprintf
                 "definition %d of a live-out register has no instance in \
                  the output"
                 op.Op.id))
        r.Region.ops)
    before_regions;
  (* tv-branch *)
  if cfg.check_branches then
    List.iter
      (fun (r : Region.t) ->
        List.iter
          (fun (bop : Op.t) ->
            match Region.branch_target r bop with
            | None -> ()
            | Some target ->
              let succs = Region.successors r in
              let preserved inst =
                match Prog.find after inst.label with
                | None -> false
                | Some p -> (
                  match Region.branch_target p inst.op with
                  | None -> false
                  | Some t ->
                    t = target
                    || label_reaches after t target
                    || List.mem t succs)
              in
              let insts =
                List.filter
                  (fun i -> Op.is_branch i.op)
                  (instances index bop.Op.id)
              in
              if not (List.exists preserved insts) then
                add ~check:"tv-branch" ~region:r.Region.label ~op:bop.Op.id
                  ~subject:target
                  (Printf.sprintf
                     "no instance of branch %d still reaches its target %s"
                     bop.Op.id target))
          (Region.branches r))
      before_regions;
  (* tv-order *)
  let live = Liveness.analyze before in
  let dep_still_real kind xs ys =
    match kind with
    | Depgraph.Flow reg ->
      List.exists (fun i -> List.exists (Reg.equal reg) (Op.defs i.op)) xs
      && List.exists (fun i -> List.exists (Reg.equal reg) (Op.uses i.op)) ys
    | Depgraph.Anti reg ->
      List.exists (fun i -> List.exists (Reg.equal reg) (Op.uses i.op)) xs
      && List.exists (fun i -> List.exists (Reg.equal reg) (Op.defs i.op)) ys
    | Depgraph.Output reg ->
      List.exists (fun i -> List.exists (Reg.equal reg) (Op.defs i.op)) xs
      && List.exists (fun i -> List.exists (Reg.equal reg) (Op.defs i.op)) ys
    | Depgraph.Mem_flow | Depgraph.Mem_anti | Depgraph.Mem_output ->
      List.exists (fun i -> Op.is_mem i.op) xs
      && List.exists (fun i -> Op.is_mem i.op) ys
    | Depgraph.Ctrl | Depgraph.Exit_live _ | Depgraph.Br_anticipation ->
      false
  in
  List.iter
    (fun (r : Region.t) ->
      if r.Region.ops <> [] then begin
        let dg = Depgraph.build machine before live r in
        List.iter
          (fun (e : Depgraph.edge) ->
            match e.Depgraph.kind with
            | Depgraph.Ctrl | Depgraph.Exit_live _
            | Depgraph.Br_anticipation ->
              ()
            | kind -> (
              let x = Depgraph.op dg e.Depgraph.src in
              let y = Depgraph.op dg e.Depgraph.dst in
              let xi = instances index x.Op.id in
              let yi = instances index y.Op.id in
              match (xi, yi) with
              | [], _ | _, [] -> ()
              | _ ->
                (* instances co-located in one output region must keep
                   at least one source before some destination; only
                   labels hosting instances of both ends can matter *)
                let labels =
                  List.sort_uniq String.compare
                    (List.filter
                       (fun l -> List.exists (fun i -> i.label = l) yi)
                       (List.map (fun (i : instance) -> i.label) xi))
                in
                List.iter
                  (fun label ->
                    let here insts =
                      List.filter (fun i -> i.label = label) insts
                    in
                    let xs = here xi and ys = here yi in
                    if
                      xs <> [] && ys <> []
                      && dep_still_real kind xs ys
                      && List.for_all
                           (fun xinst ->
                             List.for_all
                               (fun yinst -> xinst.idx > yinst.idx)
                               ys)
                           xs
                    then
                      (* Copies of different unroll iterations can land
                         in one compensation region with the later
                         iteration's source after the earlier
                         iteration's destination — a pairing the
                         intra-iteration edge does not constrain.  Ids
                         record creation order, so a genuine inversion
                         keeps some source id below a destination id;
                         cross-generation pairings reverse all of them
                         and degrade to unknown instead. *)
                      let min_id insts =
                        List.fold_left
                          (fun acc i -> min acc i.op.Op.id)
                          max_int insts
                      in
                      let max_id insts =
                        List.fold_left
                          (fun acc i -> max acc i.op.Op.id)
                          min_int insts
                      in
                      if min_id xs > max_id ys then
                        stats.Finding.unknown <- stats.Finding.unknown + 1
                      else
                        add ~check:"tv-order" ~region:label ~op:y.Op.id
                          ~subject:
                            (Format.asprintf "%d->%d" x.Op.id y.Op.id)
                          (Printf.sprintf
                             "dependence %d -> %d of input region %s is \
                              inverted in output region %s"
                             x.Op.id y.Op.id r.Region.label label))
                  labels))
          (Depgraph.edges dg)
      end)
    before_regions;
  (* tv-store-guard *)
  if cfg.check_store_guard then begin
    let norm = function
      | Pqs.Cond id -> Pqs.Cond (resolve id)
      | Pqs.Entry _ as k -> k
    in
    let after_envs = Hashtbl.create 7 in
    let env_of (label : string) (r : Region.t) =
      match Hashtbl.find_opt after_envs label with
      | Some e -> e
      | None ->
        let env = Pred_env.analyze r in
        let e = (env, Pred_env.path_conds env) in
        Hashtbl.replace after_envs label e;
        e
    in
    (* A store hoisted into a compensation region executes under a
       condition expressed over the comp region's *own* entry literals
       — opaque [Entry] keys the input condition never mentions.  Those
       literals are not free: the comp region has exactly one entering
       edge, and the predicate's value along it is the symbolic value
       [Pred_env.reg_expr_before] assigns at the edge point in the
       parent region, expressed over the parent's condition literals
       (which [norm] maps back onto input op ids).  Record every
       entering edge so the per-instance check below can substitute. *)
    let entering_edges = Hashtbl.create 7 in
    List.iter
      (fun (q : Region.t) ->
        let push l v =
          Hashtbl.replace entering_edges l
            (v
            :: Option.value ~default:[]
                 (Hashtbl.find_opt entering_edges l))
        in
        List.iteri
          (fun k (op : Op.t) ->
            if Op.is_branch op then
              match Region.branch_target q op with
              | Some t -> push t (q, Some k)
              | None -> ())
          q.Region.ops;
        match q.Region.fallthrough with
        | Some t -> push t (q, None)
        | None -> ())
      after_regions;
    (* Entry-literal resolver for [label], valid only when its unique
       predecessor is the transformed parent region itself (same label
       as the input region being validated) — that alignment makes the
       parent's own entry literals coincide with the input region's, so
       the substituted expression and the input condition range over
       one shared literal space. *)
    let entry_value ~parent label =
      match Hashtbl.find_opt entering_edges label with
      | Some [ ((q : Region.t), at) ] when q.Region.label = parent ->
        let env_q, _ = env_of q.Region.label q in
        Some
          (fun rid ->
            let reg = { Reg.id = rid; cls = Reg.Pred } in
            match at with
            | Some k -> Pred_env.reg_expr_before env_q k reg
            | None -> Pred_env.reg_expr_at_end env_q reg)
      | _ -> None
    in
    List.iter
      (fun (r : Region.t) ->
        let env_b = Pred_env.analyze r in
        let pc_b = lazy (Pred_env.path_conds env_b) in
        List.iteri
          (fun i (op : Op.t) ->
            if Op.is_store op then begin
              let same_id =
                List.filter
                  (fun inst -> inst.op.Op.id = op.Op.id)
                  (Option.value ~default:[]
                     (Hashtbl.find_opt index.by_id op.Op.id))
              in
              List.iter
                (fun inst ->
                  match Prog.find after inst.label with
                  | None -> ()
                  | Some p ->
                    let env_a, pc_a = env_of inst.label p in
                    let eb =
                      Pqs.and_
                        (Lazy.force pc_b).(i)
                        (Pred_env.guard_expr env_b i)
                    in
                    let ea =
                      Pqs.and_ pc_a.(inst.idx)
                        (Pred_env.guard_expr env_a inst.idx)
                    in
                    (* Entry literals of [ea] are shared free variables
                       when the instance stayed in its own region; in a
                       different output region they denote *that*
                       region's entry state and must be substituted
                       through its entering edge (or the comparison
                       degrades to unknown — a free reading would
                       manufacture witnesses no execution exhibits). *)
                    let entry_defs =
                      if inst.label = r.Region.label then Some []
                      else
                        let ids =
                          List.filter_map
                            (function
                              | Pqs.Entry id -> Some id
                              | Pqs.Cond _ -> None)
                            (Pqs.keys ea)
                        in
                        if ids = [] then Some []
                        else
                          match
                            entry_value ~parent:r.Region.label inst.label
                          with
                          | None -> None
                          | Some value ->
                            let defs =
                              List.map (fun id -> (id, value id)) ids
                            in
                            if
                              List.exists
                                (fun (_, e) -> Pqs.is_unknown e)
                                defs
                            then None
                            else Some defs
                    in
                    match entry_defs with
                    | None ->
                      stats.Finding.unknown <- stats.Finding.unknown + 1
                    | Some entry_defs ->
                      let keys_b =
                        List.sort_uniq compare (Pqs.keys eb)
                      in
                      let keys_a =
                        List.concat_map
                          (fun k ->
                            match k with
                            | Pqs.Cond _ -> [ norm k ]
                            | Pqs.Entry id -> (
                              match List.assoc_opt id entry_defs with
                              | Some e -> List.map norm (Pqs.keys e)
                              | None -> [ k ]))
                          (Pqs.keys ea)
                      in
                      (* The two conditions need not mention the same
                         literals — compensation-region path conditions
                         routinely carry extra predicates that cancel —
                         so enumerate assignments over the *union* of
                         their key sets; each expression is total over
                         a superset of its own keys. *)
                      let keys =
                        List.sort_uniq compare (keys_b @ keys_a)
                      in
                      if
                        Pqs.is_unknown eb || Pqs.is_unknown ea
                        || List.length keys > 12
                      then stats.Finding.unknown <- stats.Finding.unknown + 1
                      else begin
                        let arr = Array.of_list keys in
                        let n = Array.length arr in
                        let lookup mask k =
                          let rec find j =
                            if j >= n then false
                            else if arr.(j) = k then
                              mask land (1 lsl j) <> 0
                            else find (j + 1)
                          in
                          find 0
                        in
                        let witness = ref None in
                        let undecided = ref false in
                        let mask = ref 0 in
                        while !witness = None && (not !undecided)
                              && !mask < 1 lsl n do
                          let sigma = lookup !mask in
                          let sigma_a k =
                            match k with
                            | Pqs.Cond _ -> sigma (norm k)
                            | Pqs.Entry id -> (
                              match List.assoc_opt id entry_defs with
                              | None -> sigma k
                              | Some e -> (
                                match
                                  Pqs.eval (fun k' -> sigma (norm k')) e
                                with
                                | Some v -> v
                                | None ->
                                  undecided := true;
                                  false))
                          in
                          (match
                             (Pqs.eval sigma eb, Pqs.eval sigma_a ea)
                           with
                          | Some a, Some b when a <> b ->
                            witness := Some !mask
                          | Some _, Some _ -> ()
                          | None, _ | _, None -> undecided := true);
                          incr mask
                        done;
                        if !undecided then
                          stats.Finding.unknown <-
                            stats.Finding.unknown + 1
                        else
                          match !witness with
                          | None ->
                            stats.Finding.proved <-
                              stats.Finding.proved + 1
                          | Some m ->
                            add ~check:"tv-store-guard"
                              ~region:inst.label ~op:op.Op.id
                              (Format.asprintf
                                 "store %d executes under a different \
                                  condition after the transformation \
                                  (witness assignment %d: before %a, \
                                  after %a)"
                                 op.Op.id m Pqs.pp eb Pqs.pp ea)
                      end)
                same_id
            end)
          r.Region.ops)
      before_regions
  end;
  List.rev !findings
