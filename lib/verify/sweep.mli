open Cpr_ir

(** Shared per-region sweep scaffolding for the quality lints.

    {!Heightcheck} and {!Pressurecheck} both analyze every reachable
    non-empty region of a program against one liveness solution; this
    module owns that enumeration so the two checks (and any future
    per-region lint) agree on which regions count. *)

val regions_of : Prog.t -> Region.t list
(** Reachable (from the program entry) regions with at least one op, in
    program layout order. *)

val map_regions :
  Prog.t -> f:(Cpr_analysis.Liveness.t -> Region.t -> 'a) -> 'a list
(** Run [f] over {!regions_of}, computing liveness once. *)

val concat_map_regions :
  Prog.t -> f:(Cpr_analysis.Liveness.t -> Region.t -> 'a list) -> 'a list
