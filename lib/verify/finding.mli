(** Findings reported by the static verifier.

    A finding names the check that produced it, the region and (when
    known) the op it is anchored at, and a [subject] — the register or
    label the finding is about — used to build keys that stay stable
    across a transformation (op ids are normalized through [Op.orig]
    before keys are compared). *)

type severity =
  | Error  (** provable miscompile: fails lint, raises in [Passes] *)
  | Warning  (** suspicious but not provably wrong *)

type t = {
  check : string;  (** short check name, e.g. ["pred-undef"] *)
  severity : severity;
  region : string;
  op : int option;
  subject : string;  (** register / label the finding concerns *)
  msg : string;
}

type stats = {
  mutable proved : int;
      (** queries the predicate analysis settled positively *)
  mutable unknown : int;
      (** queries that degraded to "cannot prove" (no finding emitted) *)
}

val new_stats : unit -> stats

val make :
  check:string -> severity:severity -> region:string -> ?op:int
  -> ?subject:string -> string -> t

val is_error : t -> bool

val key : resolve_op:(int -> int) -> t -> string
(** Stable identity of a finding across a transformation: check name,
    subject and the op id after [resolve_op] (callers pass the
    [Op.orig]-chasing normalizer).  The region label is deliberately
    excluded — transformations rename and merge regions. *)

val pp : Format.formatter -> t -> unit
