open Cpr_ir

(** Full (redundant) control CPR, after Schlansker & Kathail's MICRO-28
    scheme — the baseline the paper contrasts ICBM against (Section 4):

    "Some approaches to control CPR are redundant like full CPR which
    aggressively accelerates all paths within a region at the cost of a
    quadratic growth in the number of compares."

    For every exit branch [j] of an FRP-converted superblock a fresh
    fully-resolved taken-predicate is computed from scratch with a column
    of wired-and compares — [q_j = !c_1 & ... & !c_(j-1) & c_j] — so every
    branch's predicate is available without waiting for the serial UC
    chain, and (with value-numbered condition literals) all branches are
    mutually disjoint and may issue in parallel.  No branch is removed and
    no code moves off-trace: every path is accelerated, at the cost of
    n(n+1)/2 compare operations.

    Used by the ablation benches to reproduce the ICBM-vs-full-CPR
    trade-off the paper describes: full CPR favours very wide machines,
    ICBM wins on processors with limited issue width. *)

val transform_region : ?heur:Heur.t -> Prog.t -> Region.t -> bool
(** Requires the FRP-converted shape (first controlling compare unguarded,
    each subsequent controlling compare guarded by the previous fall-
    through predicate); returns false leaving the region untouched
    otherwise.  With [heur.pressure_gate] set, also refuses regions whose
    chain of fresh taken-predicates would overflow the predicate file
    (default heuristics leave the gate off, preserving behaviour). *)

val transform : Prog.t -> int
(** Apply to every region; number transformed. *)
