open Cpr_ir
module Depgraph = Cpr_analysis.Depgraph
module Liveness = Cpr_analysis.Liveness
module Obs = Cpr_obs.Obs

type region_stats = {
  blocks_formed : int;
  blocks_transformed : int;
  blocks_demoted : int;
  ops_moved : int;
  ops_split : int;
}

let zero_stats =
  {
    blocks_formed = 0;
    blocks_transformed = 0;
    blocks_demoted = 0;
    ops_moved = 0;
    ops_split = 0;
  }

let add_stats a b =
  {
    blocks_formed = a.blocks_formed + b.blocks_formed;
    blocks_transformed = a.blocks_transformed + b.blocks_transformed;
    blocks_demoted = a.blocks_demoted + b.blocks_demoted;
    ops_moved = a.ops_moved + b.ops_moved;
    ops_split = a.ops_split + b.ops_split;
  }

let uc_dests_of (op : Op.t) =
  match op.Op.opcode with
  | Op.Cmpp (_, a1, a2) ->
    List.filter_map
      (fun (a, d) -> if a = Op.Uc then Some d else None)
      (List.combine (a1 :: Option.to_list a2) op.Op.dests)
  | _ -> []

(* Conservative legality pre-check for one prospective CPR block, on the
   pre-restructure region.  Computes the prospective move set (the same
   closure off-trace motion will compute, modulo the re-wiring of
   fall-through predicate uses past the block's last branch) and rejects
   the block if

   - some dependence (of any kind) leads from a moved op to a staying op
     positioned no later than the block's last branch — such a staying op
     would read or be ordered against a value that has moved below the
     bypass; or
   - a moved op whose effect is needed on-trace (a store, or a producer
     of a value consumed by a staying op) has a guard that cannot be
     substituted by the on-trace FRP. *)
let block_legal liveness (region : Region.t) graph ops
    (block : Restructure.block_ref) =
  let n = Array.length ops in
  let idx_of_id id =
    let found = ref (-1) in
    Array.iteri (fun i (o : Op.t) -> if o.Op.id = id then found := i) ops;
    !found
  in
  let cmp_idxs = List.map idx_of_id block.Restructure.compare_ids in
  let br_idxs = List.map idx_of_id block.Restructure.branch_ids in
  if List.exists (fun i -> i < 0) (cmp_idxs @ br_idxs) then false
  else begin
    let last_branch = List.fold_left max 0 br_idxs in
    let uc_dests =
      List.concat_map (fun i -> uc_dests_of ops.(i)) cmp_idxs
    in
    let is_uc r = List.exists (Reg.equal r) uc_dests in
    let root_pred =
      match block.Restructure.root_guard with
      | Op.True -> None
      | Op.If p -> Some p
    in
    (* Prospective move set: closure over flow/memory-flow successors,
       skipping fall-through-predicate uses past the last branch (those
       are re-wired to the on-trace FRP by restructure). *)
    let in_move = Array.make n false in
    let skip (e : Depgraph.edge) =
      e.Depgraph.dst > last_branch
      &&
      match e.Depgraph.kind with
      | Depgraph.Flow r -> is_uc r
      | _ -> false
    in
    let definitely_splittable k =
      let op = ops.(k) in
      (not (Op.is_branch op))
      && (not
            (List.exists
               (fun id -> op.Op.id = id)
               block.Restructure.compare_ids))
      && (match op.Op.guard with
         | Op.True -> true
         | Op.If q ->
           is_uc q || Option.fold ~none:false ~some:(Reg.equal q) root_pred)
    in
    (* Mirrors Offtrace.apply: the reaching pbr of each block branch is
       part of the prospective move set (the branch reads its btr off
       trace; a conservatively-live btr makes the pbr a split
       candidate). *)
    let pbr_idxs =
      List.filter_map
        (fun bi ->
          if bi < 0 then None
          else
            match Region.reaching_pbr region ops.(bi) with
            | Some pbr ->
              let i = idx_of_id pbr.Op.id in
              if i < 0 then None else Some i
            | None -> None)
        br_idxs
    in
    let queue = Queue.create () in
    List.iter
      (fun i ->
        if not in_move.(i) then begin
          in_move.(i) <- true;
          Queue.add i queue
        end)
      (cmp_idxs @ br_idxs @ pbr_idxs);
    while not (Queue.is_empty queue) do
      let k = Queue.pop queue in
      if not (definitely_splittable k) then
        List.iter
          (fun (e : Depgraph.edge) ->
            match e.Depgraph.kind with
            | Depgraph.Flow _ | Depgraph.Mem_flow ->
              if (not (skip e)) && not in_move.(e.Depgraph.dst) then begin
                in_move.(e.Depgraph.dst) <- true;
                Queue.add e.Depgraph.dst queue
              end
            | _ -> ())
          (Depgraph.succs graph k)
    done;
    (* The final branch of a taken-variation block stays on-trace as the
       bypass, but keeping it in the prospective move set is conservative
       (its dependences are a superset). *)
    let hazard_edge =
      List.exists
        (fun (e : Depgraph.edge) ->
          let hit =
            in_move.(e.Depgraph.src)
            && (not in_move.(e.Depgraph.dst))
            && e.Depgraph.dst <= last_branch
            && not (skip e)
          in
          if hit && Sys.getenv_opt "CPR_DEBUG_LEGAL" <> None then
            Format.eprintf "  hazard edge %d -> %d@."
              ops.(e.Depgraph.src).Op.id ops.(e.Depgraph.dst).Op.id;
          hit)
        (Depgraph.edges graph)
    in
    (if Sys.getenv_opt "CPR_DEBUG_LEGAL" <> None then
       Format.eprintf "block last_branch=%d moveset=[%s]@." last_branch
         (String.concat ","
            (List.filteri (fun i _ -> in_move.(i)) (List.init n Fun.id)
            |> List.map (fun i -> string_of_int ops.(i).Op.id))));
    let substitutable i =
      match ops.(i).Op.guard with
      | Op.True -> true
      | Op.If q ->
        is_uc q
        || Option.fold ~none:false ~some:(Reg.equal q) root_pred
        ||
        (* guard defined by ops that stay on-trace above the bypass *)
        List.for_all
          (fun k ->
            if List.exists (Reg.equal q) (Op.defs ops.(k)) then
              (not in_move.(k)) && k <= last_branch
            else true)
          (List.init n Fun.id)
    in
    (* Prospective split set: moved ops whose effect the on-trace path
       needs (stores, producers for staying consumers, live-out values),
       closed over the inputs their on-trace copies read.  If any member
       cannot be split — a branch, one of the block's own compares, or an
       op whose guard is neither substitutable nor computed on-trace —
       the block is demoted. *)
    let live_on_trace =
      if block.Restructure.taken_variation then
        Liveness.live_at_target liveness region ops.(last_branch)
      else Liveness.live_out_region liveness region
    in
    let live_exposed = Array.make (n + 1) live_on_trace in
    for i = n - 1 downto 0 do
      live_exposed.(i) <-
        (if Op.is_branch ops.(i) && not in_move.(i) then
           Reg.Set.union live_exposed.(i + 1)
             (Liveness.live_at_target liveness region ops.(i))
         else live_exposed.(i + 1))
    done;
    let final_branch_idx = last_branch in
    let needed = Array.make n false in
    let splittable i =
      let op = ops.(i) in
      (not (Op.is_branch op))
      && (not
            (List.exists (fun id -> op.Op.id = id) block.Restructure.compare_ids))
      && substitutable i
    in
    let bad = ref false in
    let work = Queue.create () in
    let mark i =
      if in_move.(i) && not needed.(i) then begin
        needed.(i) <- true;
        if not (splittable i) then begin
          if Sys.getenv_opt "CPR_DEBUG_LEGAL" <> None then
            Format.eprintf "  unsplittable needed: %a@." Op.pp ops.(i);
          bad := true
        end
        else Queue.add i work
      end
    in
    for i = 0 to n - 1 do
      if
        in_move.(i)
        && not (block.Restructure.taken_variation && i > last_branch)
      then begin
        let op = ops.(i) in
        let staying_consumer =
          List.exists
            (fun (e : Depgraph.edge) ->
              match e.Depgraph.kind with
              | Depgraph.Flow _ ->
                (not in_move.(e.Depgraph.dst))
                && e.Depgraph.dst <> final_branch_idx
                (* uses of fall-through predicates past the last branch
                   are re-wired to the on-trace FRP by restructure *)
                && not (skip e)
              | _ -> false)
            (Depgraph.succs graph i)
        in
        if
          Op.is_store op || staying_consumer
          || List.exists
               (fun d -> Reg.Set.mem d live_exposed.(i + 1))
               (Op.defs op)
        then mark i
      end
    done;
    while not (Queue.is_empty work) do
      let m = Queue.pop work in
      (* The on-trace copy reads the op's sources and accumulator inputs;
         its guard is substituted by the on-trace FRP (or already computed
         on-trace), so guard-flow producers do not propagate. *)
      let src_regs =
        List.filter_map
          (function Op.Reg r -> Some r | Op.Imm _ | Op.Lab _ -> None)
          ops.(m).Op.srcs
        @ Op.accumulator_dests ops.(m)
      in
      List.iter
        (fun (e : Depgraph.edge) ->
          match e.Depgraph.kind with
          | Depgraph.Flow r
            when in_move.(e.Depgraph.src) && List.exists (Reg.equal r) src_regs
            -> mark e.Depgraph.src
          | _ -> ())
        (Depgraph.preds graph m)
    done;
    (if Sys.getenv_opt "CPR_DEBUG_LEGAL" <> None then
       if hazard_edge || !bad then begin
         Format.eprintf "DEMOTE block (branches %s): hazard=%b bad_split=%b@."
           (String.concat ","
              (List.map string_of_int block.Restructure.branch_ids))
           hazard_edge !bad;
         if hazard_edge then
           List.iter
             (fun (e : Depgraph.edge) ->
               if
                 in_move.(e.Depgraph.src)
                 && (not in_move.(e.Depgraph.dst))
                 && e.Depgraph.dst <= last_branch
                 && not (skip e)
               then
                 Format.eprintf "  hazard: %d -> %d@." ops.(e.Depgraph.src).Op.id
                   ops.(e.Depgraph.dst).Op.id)
             (Depgraph.edges graph)
       end);
    (not hazard_edge) && not !bad
  end

let to_block_refs ops (blocks : Match_blocks.cpr_block list) =
  List.filter_map
    (fun (b : Match_blocks.cpr_block) ->
      if not (Match_blocks.nontrivial b) then None
      else if
        List.length b.Match_blocks.compare_idxs
        <> List.length b.Match_blocks.branch_idxs
      then None
      else
        Some
          {
            Restructure.compare_ids =
              List.map (fun i -> ops.(i).Op.id) b.Match_blocks.compare_idxs;
            Restructure.branch_ids =
              List.map (fun i -> ops.(i).Op.id) b.Match_blocks.branch_idxs;
            Restructure.root_guard =
              (match b.Match_blocks.compare_idxs with
              | c0 :: _ -> ops.(c0).Op.guard
              | [] -> Op.True);
            Restructure.taken_variation = b.Match_blocks.taken_variation;
          })
    blocks

let transform_region_with_blocks prog (region : Region.t) block_refs =
  let subst = Reg.Tbl.create 17 in
  let plans = ref [] in
  let stopped = ref false in
  List.iter
    (fun block ->
      if not !stopped then begin
        let plan = Restructure.transform_block prog region ~subst block in
        if Sys.getenv_opt "CPR_DEBUG_OFFTRACE" <> None then
          Format.eprintf "plan: bypass=%d comp=%s compares=[%s] branches=[%s]@."
            plan.Restructure.bypass_id plan.Restructure.comp_label
            (String.concat ","
               (List.map string_of_int block.Restructure.compare_ids))
            (String.concat ","
               (List.map string_of_int block.Restructure.branch_ids));
        plans := plan :: !plans;
        if block.Restructure.taken_variation then stopped := true
      end)
    block_refs;
  let plans = List.rev !plans in
  (* One Pred_init at region top covering every transformed block
     (Figure 7(b), op 31). *)
  let pairs = List.concat_map Restructure.pred_init_pairs plans in
  if pairs <> [] then begin
    let init =
      Op.make ~id:(Prog.fresh_op_id prog)
        (Op.Pred_init (List.map snd pairs))
        (List.map fst pairs) []
    in
    region.Region.ops <- init :: region.Region.ops
  end;
  List.fold_left
    (fun acc plan ->
      let s = Offtrace.apply prog region plan in
      {
        acc with
        blocks_transformed = acc.blocks_transformed + 1;
        ops_moved = acc.ops_moved + s.Offtrace.moved;
        ops_split = acc.ops_split + s.Offtrace.split;
      })
    { zero_stats with blocks_formed = List.length block_refs }
    plans

(* Profitability gate (behind [Heur.height_gate]): a CPR block whose
   branches all sit off the region's critical path with at least
   [height_slack_min] cycles of slack cannot shorten the schedule —
   dependence height is set elsewhere — so bypassing it would buy
   compensation code and no cycles.  Slack is measured on the same
   medium-machine graph the legality check uses; the pre/post-CPR
   height estimate is one {!Height.summarize} per gated region (the
   post-CPR dependence height of a skipped block's region is by
   definition unchanged). *)
let c_candidates_skipped = Obs.counter "height.candidates_skipped"

let height_gate heur graph ops refs =
  if not heur.Heur.height_gate || refs = [] then refs
  else begin
    let (_ : Cpr_analysis.Height.summary) =
      Cpr_analysis.Height.summarize Cpr_machine.Descr.medium graph
    in
    let slack = Cpr_analysis.Height.slack graph in
    let idx_of_id id =
      let found = ref (-1) in
      Array.iteri (fun i (o : Op.t) -> if o.Op.id = id then found := i) ops;
      !found
    in
    let on_critical_path (b : Restructure.block_ref) =
      List.exists
        (fun id ->
          let i = idx_of_id id in
          i >= 0 && slack.(i) < heur.Heur.height_slack_min)
        b.Restructure.branch_ids
    in
    let keep, skipped = List.partition on_critical_path refs in
    Obs.add c_candidates_skipped (List.length skipped);
    keep
  end

(* Resource gate (behind [Heur.pressure_gate]): bypassing a CPR block
   mints two fresh FRPs (p_on/p_off in {!Restructure.transform_block})
   and, except for taken-variation blocks, one btr for the bypass pbr —
   and the bypass lengthens live ranges across the block.  When the
   region's predicted MAXLIVE (predicate-aware {!Pressure.sweep}) plus
   the cumulative delta of the blocks kept so far would not leave
   [pressure_margin] registers of headroom in the register file, the
   block is skipped: an unallocatable region costs spills the paper's
   cycles-only model never sees.  Like the height gate, budgets are
   measured on the medium machine. *)
let c_pressure_skipped = Obs.counter "pressure.candidates_skipped"

let pressure_gate heur prog liveness (region : Region.t) refs =
  if not heur.Heur.pressure_gate || refs = [] then refs
  else begin
    let p = Cpr_analysis.Pressure.sweep liveness prog region in
    let m = Cpr_machine.Descr.medium in
    let budget cls =
      Cpr_machine.Descr.regfile_size m cls - heur.Heur.pressure_margin
    in
    (* CPR mints no fresh GPRs, but longer ranges leave no room to spare
       in a region already at the GPR budget. *)
    let gpr_ok = Cpr_analysis.Pressure.maxlive p Reg.Gpr <= budget Reg.Gpr in
    let pred_live = Cpr_analysis.Pressure.maxlive p Reg.Pred in
    let btr_live = Cpr_analysis.Pressure.maxlive p Reg.Btr in
    let kept = ref 0 in
    let keep, skipped =
      List.partition
        (fun (_ : Restructure.block_ref) ->
          let fits =
            gpr_ok
            && pred_live + (2 * (!kept + 1)) <= budget Reg.Pred
            && btr_live + !kept + 1 <= budget Reg.Btr
          in
          if fits then incr kept;
          fits)
        refs
    in
    Obs.add c_pressure_skipped (List.length skipped);
    keep
  end

let transform_region heur prog liveness (region : Region.t) =
  let blocks = Match_blocks.run heur prog liveness region in
  let ops = Array.of_list region.Region.ops in
  let graph = Depgraph.build Cpr_machine.Descr.medium prog liveness region in
  let refs = height_gate heur graph ops (to_block_refs ops blocks) in
  let refs = pressure_gate heur prog liveness region refs in
  let legal, demoted =
    List.partition (fun b -> block_legal liveness region graph ops b) refs
  in
  let stats = transform_region_with_blocks prog region legal in
  {
    stats with
    blocks_formed = List.length blocks;
    blocks_demoted = List.length demoted;
  }

let run ?(heur = Heur.default) (prog : Prog.t) =
  let hottest =
    List.fold_left
      (fun acc (r : Region.t) -> max acc r.Region.entry_count)
      0 (Prog.regions prog)
  in
  let threshold =
    max 1 (int_of_float (heur.Heur.hot_region_fraction *. float_of_int hottest))
  in
  let original = Prog.regions prog in
  let stats =
    List.fold_left
      (fun acc (r : Region.t) ->
        if r.Region.entry_count < threshold then acc
        else begin
          (* Section 7: "where control CPR has not been applied, the
             performance of the unoptimized code is measured" — regions
             in which no CPR block forms revert to their original
             (pre-FRP-conversion) code. *)
          let snapshot = r.Region.ops in
          if not (Frp.convert_region prog r) then acc
          else begin
            let (_ : Spec.stats) = Spec.speculate_region prog r in
            let liveness = Liveness.analyze prog in
            let s = transform_region heur prog liveness r in
            if s.blocks_transformed = 0 then begin
              r.Region.ops <- snapshot;
              add_stats acc { s with blocks_formed = s.blocks_formed }
            end
            else add_stats acc s
          end
        end)
      zero_stats original
  in
  let (_ : int) = Dce.run prog in
  stats

let pp_stats ppf s =
  Format.fprintf ppf
    "blocks formed %d, transformed %d, demoted %d; ops moved %d, split %d"
    s.blocks_formed s.blocks_transformed s.blocks_demoted s.ops_moved
    s.ops_split
