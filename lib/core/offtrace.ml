open Cpr_ir
module Depgraph = Cpr_analysis.Depgraph
module Liveness = Cpr_analysis.Liveness

type stats = {
  moved : int;
  split : int;
}

let apply (prog : Prog.t) (region : Region.t) (plan : Restructure.plan) =
  let ops = Array.of_list region.Region.ops in
  let n = Array.length ops in
  let idx_of_id =
    let tbl = Hashtbl.create 64 in
    Array.iteri (fun i (op : Op.t) -> Hashtbl.replace tbl op.Op.id i) ops;
    fun id ->
      match Hashtbl.find_opt tbl id with
      | Some i -> i
      | None -> invalid_arg (Printf.sprintf "Offtrace: op id %d not in region %s" id region.Region.label)
  in
  let bypass_pos = idx_of_id plan.Restructure.bypass_id in
  let liveness = Liveness.analyze prog in
  let graph = Depgraph.build Cpr_machine.Descr.medium prog liveness region in
  let block = plan.Restructure.block in
  let taken_var = block.Restructure.taken_variation in
  (* Set 1: the original compares and branches (minus, in the taken
     variation, the final branch which stays as the bypass) and their
     transitive register/memory flow successors. *)
  let in_move = Array.make n false in
  let branch_seeds =
    List.filter_map
      (fun id ->
        if taken_var && id = plan.Restructure.bypass_id then None
        else Some (idx_of_id id))
      block.Restructure.branch_ids
  in
  (* A moved branch's prepare-to-branch moves with it — the branch reads
     its btr in the compensation region, and an in-region reaching pbr is
     a structural invariant.  Usually set 3 would move the pbr anyway
     (its btr has no other use); seeding it here also covers hyperblocks
     in which predicated pbr definitions keep the btr conservatively
     live, where the split machinery then emits an on-trace copy. *)
  let pbr_seeds =
    List.filter_map
      (fun bi ->
        Option.map
          (fun (pbr : Op.t) -> idx_of_id pbr.Op.id)
          (Region.reaching_pbr region ops.(bi)))
      branch_seeds
  in
  let seeds =
    List.map idx_of_id block.Restructure.compare_ids @ branch_seeds @ pbr_seeds
  in
  let root_pred_early =
    match block.Restructure.root_guard with
    | Op.True -> None
    | Op.If p -> Some p
  in
  (* An op whose guard is definitely substitutable by the on-trace FRP
     can always be split if needed, so the move closure need not
     propagate through it: its consumers will read the on-trace copy. *)
  let definitely_splittable k =
    let op = ops.(k) in
    (not (Op.is_branch op))
    && (not
          (List.exists
             (fun id -> op.Op.id = id)
             block.Restructure.compare_ids))
    && (match op.Op.guard with
       | Op.True -> true
       | Op.If q ->
         List.exists (Reg.equal q) plan.Restructure.uc_dests
         || Option.fold ~none:false ~some:(Reg.equal q) root_pred_early)
  in
  let queue = Queue.create () in
  List.iter
    (fun i ->
      if not in_move.(i) then begin
        in_move.(i) <- true;
        Queue.add i queue
      end)
    seeds;
  while not (Queue.is_empty queue) do
    let k = Queue.pop queue in
    if not (definitely_splittable k) then
      List.iter
        (fun (e : Depgraph.edge) ->
          match e.Depgraph.kind with
          | Depgraph.Flow _ | Depgraph.Mem_flow ->
            let j = e.Depgraph.dst in
            (* The bypass branch reads the off-trace FRP computed by the
               lookaheads, never a moved value; everything else reachable
               moves. *)
            if (not in_move.(j)) && j <> bypass_pos then begin
              in_move.(j) <- true;
              Queue.add j queue
            end
          | _ -> ())
        (Depgraph.succs graph k)
  done;
  (* Taken variation: the hyperblock tail past the final branch also goes
     to the compensation region. *)
  if taken_var then
    for i = bypass_pos + 1 to n - 1 do
      in_move.(i) <- true
    done;
  let uses_of =
    (* For each op index, the indices of later ops reading one of its
       destinations (before an unconditional overwrite is not tracked:
       over-approximating users keeps the tests conservative). *)
    Array.init n (fun i ->
        List.filter_map
          (fun (e : Depgraph.edge) ->
            match e.Depgraph.kind with
            | Depgraph.Flow _ -> Some e.Depgraph.dst
            | _ -> None)
          (Depgraph.succs graph i))
  in
  let live_on_trace =
    if taken_var then
      Liveness.live_at_target liveness region ops.(bypass_pos)
    else Liveness.live_out_region liveness region
  in
  (* live_exposed.(i): registers whose value some on-trace continuation
     past op [i] may read — the on-trace fall-through (or taken target)
     plus the targets of every *staying* branch after [i] (exits outside
     this CPR block still leave through the original code). *)
  let live_exposed = Array.make (n + 1) live_on_trace in
  for i = n - 1 downto 0 do
    live_exposed.(i) <-
      (if Op.is_branch ops.(i) && (not in_move.(i)) && i <> bypass_pos then
         Reg.Set.union live_exposed.(i + 1)
           (Liveness.live_at_target liveness region ops.(i))
       else live_exposed.(i + 1))
  done;
  (* Set 2: moved ops whose effect the on-trace path needs are split.  An
     op is split only when its guard is substitutable by the on-trace FRP
     (true, the root predicate, or one of the block's fall-through
     predicates) or its guard's definition stays on-trace; ops guarded by
     moved taken-predicates are no-ops on trace and are never split. *)
  let root_pred =
    match block.Restructure.root_guard with
    | Op.True -> None
    | Op.If p -> Some p
  in
  let substitutable_guard (op : Op.t) =
    match op.Op.guard with
    | Op.True -> Some (Op.If plan.Restructure.p_on)
    | Op.If q ->
      if
        List.exists (Reg.equal q) plan.Restructure.uc_dests
        || Option.fold ~none:false ~some:(Reg.equal q) root_pred
      then Some (Op.If plan.Restructure.p_on)
      else
        (* keep the guard only when its definition stays on-trace AND
           precedes the bypass — the compensation block (and the copies at
           the bypass) read the guard's value as of the bypass point *)
        let def_ok =
          List.for_all
            (fun i ->
              if List.exists (Reg.equal q) (Op.defs ops.(i)) then
                (not in_move.(i)) && i < bypass_pos
              else true)
            (List.init n Fun.id)
        in
        if def_ok then Some op.Op.guard else None
  in
  let needed_on_trace i =
    let op = ops.(i) in
    (* The tail of a taken-variation block executes only off-trace (the
       on-trace continuation is the branch target); its values are never
       needed on trace. *)
    (not (taken_var && i > bypass_pos))
    && (Op.is_store op
       || List.exists (fun j -> not in_move.(j)) uses_of.(i)
       || List.exists (fun d -> Reg.Set.mem d live_exposed.(i + 1)) op.Op.dests)
  in
  let is_split = Array.make n false in
  let split_guard = Array.make n Op.True in
  let split_count = ref 0 in
  let work = Queue.create () in
  let mark i =
    if in_move.(i) && not is_split.(i) then begin
      let op = ops.(i) in
      let can_split =
        (not (Op.is_branch op))
        && not
             (Op.is_cmpp op
             && List.exists
                  (fun id -> ops.(i).Op.id = id)
                  block.Restructure.compare_ids)
      in
      match (can_split, substitutable_guard op) with
      | true, Some guard ->
        incr split_count;
        is_split.(i) <- true;
        split_guard.(i) <- guard;
        Queue.add i work
      | _ ->
        invalid_arg
          (Printf.sprintf
             "Offtrace: op %d needed on-trace but not splittable (pre-check \
              should have demoted this block)"
             op.Op.id)
    end
  in
  for i = 0 to n - 1 do
    if in_move.(i) && needed_on_trace i then begin
      if Sys.getenv_opt "CPR_DEBUG_OFFTRACE" <> None then
        Format.eprintf
          "needed %d idx=%d bypass_pos=%d taken=%b (%s): store=%b staying_use=[%s] live=%b@."
          ops.(i).Op.id i bypass_pos taken_var plan.Restructure.comp_label (Op.is_store ops.(i))
          (String.concat ","
             (List.filter_map
                (fun j ->
                  if not in_move.(j) then Some (string_of_int ops.(j).Op.id)
                  else None)
                uses_of.(i)))
          (List.exists
             (fun d -> Reg.Set.mem d live_exposed.(i + 1))
             (Op.defs ops.(i)));
      mark i
    end
  done;
  (* Close the split set over inputs: the on-trace copy of a split op
     reads its sources (and its guard, unless substituted) on trace, so a
     moved producer of those values must be split as well. *)
  while not (Queue.is_empty work) do
    let m = Queue.pop work in
    let src_regs =
      List.filter_map
        (function Op.Reg r -> Some r | Op.Imm _ | Op.Lab _ -> None)
        ops.(m).Op.srcs
      @ (match split_guard.(m) with
        | Op.If g when split_guard.(m) = ops.(m).Op.guard -> [ g ]
        | _ -> [])
      @ Op.accumulator_dests ops.(m)
    in
    List.iter
      (fun (e : Depgraph.edge) ->
        match e.Depgraph.kind with
        | Depgraph.Flow r
          when in_move.(e.Depgraph.src)
               && (not is_split.(e.Depgraph.src))
               && List.exists (Reg.equal r) src_regs -> mark e.Depgraph.src
        | _ -> ())
      (Depgraph.preds graph m)
  done;
  let copy_of i =
    {
      (ops.(i)) with
      Op.id = Prog.fresh_op_id prog;
      Op.guard = split_guard.(i);
      Op.orig = Some ops.(i).Op.id;
    }
  in
  (* Copies of ops originally above the bypass materialize at the bypass
     (after it in the fall-through variation, before it in the taken one,
     where the on-trace FRP is fully accumulated); copies of ops below it
     stay in place, preserving order against the staying ops around
     them. *)
  let early_copies =
    List.filter_map
      (fun i -> if is_split.(i) && i < bypass_pos then Some (copy_of i) else None)
      (List.init n Fun.id)
  in
  (* Set 3: operations whose results are consumed only off-trace (paper
     order: after the split set, since the on-trace copy of a split op
     still consumes its inputs on trace).  Memory operations and branches
     are excluded (moving a load past on-trace stores could change its
     value). *)
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let op = ops.(i) in
      if
        (not in_move.(i))
        && (not (Op.is_mem op))
        && (not (Op.is_branch op))
        && i <> bypass_pos
        && op.Op.dests <> []
        (* zero remaining uses means dead code (DCE's job), not
           off-trace-only code -- and it may be a later CPR block's
           compare whose uses its own restructure already re-wired *)
        && uses_of.(i) <> []
        && List.for_all
             (fun j -> in_move.(j) && not is_split.(j))
             uses_of.(i)
        && not
             (List.exists (fun d -> Reg.Set.mem d live_exposed.(i + 1)) op.Op.dests)
        (* Sinking [i] into the compensation region re-orders it after
           every staying op; a staying (or split — its on-trace copy runs
           above the bypass) later redefinition of a register [i] reads or
           writes would then clobber it first.  Flow hazards are covered
           by the staying-use and liveness tests above; anti and output
           hazards must be checked explicitly. *)
        && List.for_all
             (fun (e : Cpr_analysis.Depgraph.edge) ->
               match e.Depgraph.kind with
               | Depgraph.Anti _ | Depgraph.Output _ ->
                 in_move.(e.Depgraph.dst) && not is_split.(e.Depgraph.dst)
               | _ -> true)
             (Depgraph.succs graph i)
      then begin
        in_move.(i) <- true;
        changed := true
      end
    done
  done;
  (if Sys.getenv_opt "CPR_DEBUG_OFFTRACE" <> None then
     Array.iteri
       (fun i (op : Op.t) ->
         if Op.is_pbr op && not in_move.(i) then
           Format.eprintf "pbr %d stays: uses=[%s] in_move=[%s] split=[%s] live=%b@."
             op.Op.id
             (String.concat "," (List.map string_of_int uses_of.(i)))
             (String.concat ","
                (List.map (fun j -> string_of_bool in_move.(j)) uses_of.(i)))
             (String.concat ","
                (List.map (fun j -> string_of_bool is_split.(j)) uses_of.(i)))
             (List.exists (fun d -> Reg.Set.mem d live_on_trace) op.Op.dests))
       ops);
  (* Rebuild the on-trace op list and fill the compensation region. *)
  let comp = Prog.find_exn prog plan.Restructure.comp_label in
  comp.Region.ops <-
    List.filteri (fun i _ -> in_move.(i)) (Array.to_list ops);
  let on_trace = ref [] in
  Array.iteri
    (fun i op ->
      if in_move.(i) then begin
        if is_split.(i) && i > bypass_pos then
          on_trace := copy_of i :: !on_trace
      end
      else begin
        if taken_var && i = bypass_pos then
          on_trace := List.rev_append early_copies !on_trace;
        on_trace := op :: !on_trace;
        if (not taken_var) && i = bypass_pos then
          on_trace := List.rev_append early_copies !on_trace
      end)
    ops;
  region.Region.ops <- List.rev !on_trace;
  { moved = List.length comp.Region.ops; split = !split_count }
