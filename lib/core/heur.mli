(** Heuristic knobs controlling CPR block formation (Section 5.2).

    As in the paper, a single setting — tuned for the medium processor —
    is used unchanged for every machine configuration; the paper explicitly
    notes (and Table 2 shows) that this costs performance on the
    sequential and narrow machines. *)

type t = {
  exit_weight_threshold : float;
      (** stop growing a CPR block when cumulative exit frequency divided
          by block entry frequency would exceed this *)
  predict_taken_threshold : float;
      (** a candidate branch whose taken frequency divided by block entry
          frequency exceeds this closes the block as a likely-taken CPR
          block (taken restructure variation) *)
  max_block_branches : int;  (** hard cap on branches per CPR block *)
  hot_region_fraction : float;
      (** regions whose profiled entry count is below this fraction of the
          hottest region are left untransformed (the paper's control of
          static code growth) *)
  height_gate : bool;
      (** when set, skip candidate CPR blocks whose branches are all
          provably off the region's critical path (static {!Height}
          analysis): bypassing them cannot shorten the schedule, so the
          compensation code is pure cost.  Off by default — the paper's
          heuristics are profile-only and the baseline output is
          reproduced bit-for-bit with the gate off. *)
  height_slack_min : int;
      (** minimum per-branch scheduling slack (cycles of freedom off the
          critical path, {!Height.slack}) before the gate may skip a
          block; higher values make the gate more conservative *)
  pressure_gate : bool;
      (** when set, skip candidate CPR blocks (and [Fullcpr] regions)
          whose predicted predicate/GPR pressure delta would push the
          region's static MAXLIVE ({!Cpr_analysis.Pressure}) past the
          machine's register file less {!pressure_margin}: an
          unallocatable region costs spills the cycles-only model never
          sees.  Off by default — the baseline output is reproduced
          byte-for-byte with the gate off. *)
  pressure_margin : int;
      (** registers of headroom the pressure gate keeps free per class;
          higher values make the gate skip more aggressively *)
}

val default : t

val tuned_for : Cpr_machine.Descr.t -> t
(** Per-machine settings (the paper's "future work": distinct heuristics
    per configuration): tighter exit-weight blocking for the sequential
    and narrow machines, looser for the wide ones. *)
