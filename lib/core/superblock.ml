open Cpr_ir

let merge_threshold = 0.6

(* Entries of [b] arriving from [a]'s fall-through = a's entries minus
   its taken side exits (profiled). *)
let fallthrough_count (a : Region.t) =
  List.fold_left
    (fun acc (br : Op.t) -> acc - Region.taken_count a br.Op.id)
    a.Region.entry_count (Region.branches a)

(* Clone a region's ops with fresh op ids (tail duplication shares
   registers — it is plain code duplication, not renaming). *)
let clone_ops prog ops =
  List.map
    (fun (op : Op.t) ->
      Op.make ~id:(Prog.fresh_op_id prog) ~guard:op.Op.guard ~orig:op.Op.id
        op.Op.opcode op.Op.dests op.Op.srcs)
    ops

let try_grow prog threshold (a : Region.t) =
  let merged = ref 0 in
  let absorbed = ref [ a.Region.label ] in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    match a.Region.fallthrough with
    | None -> ()
    | Some next ->
      if
        (not (Prog.is_exit prog next))
        && (not (List.mem next !absorbed))
        && a.Region.entry_count > 0
      then begin
        match Prog.find prog next with
        | None -> ()
        | Some b ->
          let ft = fallthrough_count a in
          if
            b.Region.entry_count > 0
            && float_of_int ft
               >= threshold *. float_of_int b.Region.entry_count
          then begin
            (* absorb a copy of b; other predecessors (if any) keep the
               original *)
            let copy = clone_ops prog b.Region.ops in
            (* carry b's branch profile onto the copies, scaled by the
               share of b's entries that arrived from a *)
            let share =
              float_of_int ft /. float_of_int b.Region.entry_count
            in
            List.iter2
              (fun (orig : Op.t) (dup : Op.t) ->
                if Op.is_branch orig then
                  let t =
                    int_of_float
                      (share *. float_of_int (Region.taken_count b orig.Op.id))
                  in
                  Hashtbl.replace a.Region.taken dup.Op.id t)
              b.Region.ops copy;
            a.Region.ops <- a.Region.ops @ copy;
            a.Region.fallthrough <- b.Region.fallthrough;
            absorbed := next :: !absorbed;
            incr merged;
            continue_ := true
          end
      end
  done;
  !merged

let form ?(threshold = merge_threshold) (prog : Prog.t) =
  (* hottest first, so traces grow from the loops outward *)
  let regions =
    List.sort
      (fun (a : Region.t) (b : Region.t) ->
        Int.compare b.Region.entry_count a.Region.entry_count)
      (Prog.regions prog)
  in
  List.fold_left (fun acc r -> acc + try_grow prog threshold r) 0 regions

(* Remove regions no longer reachable from the entry (a fully absorbed
   region whose only predecessor was the trace). *)
let prune_unreachable (prog : Prog.t) =
  let reachable = Hashtbl.create 17 in
  let rec visit label =
    if (not (Hashtbl.mem reachable label)) && not (Prog.is_exit prog label)
    then begin
      Hashtbl.replace reachable label ();
      match Prog.find prog label with
      | None -> ()
      | Some r ->
        List.iter visit (Region.successors r);
        (* A label operand without a consuming branch (e.g. a pbr whose
           branch another pass removed) still references the region:
           dropping the target would leave a dangling label. *)
        List.iter
          (fun (op : Op.t) ->
            List.iter
              (function Op.Lab l -> visit l | Op.Reg _ | Op.Imm _ -> ())
              op.Op.srcs)
          r.Region.ops
    end
  in
  visit prog.Prog.entry;
  let dead =
    List.filter
      (fun (r : Region.t) -> not (Hashtbl.mem reachable r.Region.label))
      (Prog.regions prog)
  in
  List.iter
    (fun (r : Region.t) ->
      Hashtbl.remove prog.Prog.tbl r.Region.label;
      prog.Prog.order <-
        List.filter (fun l -> l <> r.Region.label) prog.Prog.order)
    dead;
  List.length dead
