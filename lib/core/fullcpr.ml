open Cpr_ir

(* The chain of (controlling compare, branch) pairs of an FRP-converted
   superblock: compare 1 unguarded, compare i+1 guarded by compare i's UC
   destination. *)
let frp_chain (region : Region.t) =
  let ops = region.Region.ops in
  let controlling (br : Op.t) =
    match br.Op.guard with
    | Op.True -> None
    | Op.If p -> (
      match
        List.filter
          (fun (op : Op.t) -> List.exists (Reg.equal p) (Op.defs op))
          ops
      with
      | [ cmp ] -> (
        match cmp.Op.opcode with
        | Op.Cmpp (_, Op.Un, _) when List.hd cmp.Op.dests |> Reg.equal p ->
          Some cmp
        | _ -> None)
      | _ -> None)
  in
  let rec chain expected acc = function
    | [] -> Some (List.rev acc)
    | (br : Op.t) :: rest -> (
      match controlling br with
      | None -> None
      | Some cmp -> (
        let guard_ok =
          match (cmp.Op.guard, expected) with
          | Op.True, None -> true
          | Op.If g, Some prev_uc -> Reg.equal g prev_uc
          | _ -> false
        in
        if not guard_ok then None
        else
          match (cmp.Op.opcode, cmp.Op.dests) with
          | Op.Cmpp (_, Op.Un, Some Op.Uc), [ _; uc ] ->
            chain (Some uc) ((cmp, br) :: acc) rest
          | Op.Cmpp (_, Op.Un, None), [ _ ] when rest = [] ->
            chain expected ((cmp, br) :: acc) rest
          | _ -> None))
  in
  chain None [] (Region.branches region)

let c_pressure_skipped = Cpr_obs.Obs.counter "pressure.candidates_skipped"

(* Full CPR mints one fresh taken-predicate per branch of the chain, all
   live from the region top to their branch.  Behind [Heur.pressure_gate]
   the region is skipped when that delta would push the predicate file
   (predicate-aware MAXLIVE, medium-machine budget) past capacity less
   [pressure_margin] — the same criterion {!Icbm.pressure_gate} applies
   per block. *)
let pressure_fits heur prog region ~n =
  (not heur.Heur.pressure_gate)
  ||
  let liveness = Cpr_analysis.Liveness.analyze prog in
  let p = Cpr_analysis.Pressure.sweep liveness prog region in
  let budget =
    Cpr_machine.Descr.regfile_size Cpr_machine.Descr.medium Reg.Pred
    - heur.Heur.pressure_margin
  in
  let fits = Cpr_analysis.Pressure.maxlive p Reg.Pred + n <= budget in
  if not fits then Cpr_obs.Obs.incr c_pressure_skipped;
  fits

let transform_region ?(heur = Heur.default) (prog : Prog.t) (region : Region.t)
    =
  match frp_chain region with
  | None | Some ([] | [ _ ]) -> false
  | Some pairs when not (pressure_fits heur prog region ~n:(List.length pairs))
    -> false
  | Some pairs ->
    let n = List.length pairs in
    (* one fresh taken-predicate per branch, wired-and initialized true *)
    let qs = Array.init n (fun _ -> Prog.fresh_pred prog) in
    let init =
      Op.make ~id:(Prog.fresh_op_id prog)
        (Op.Pred_init (List.init n (fun _ -> true)))
        (Array.to_list qs) []
    in
    (* after compare i (0-based), insert the column of wired-and copies:
       q_j for j > i accumulates !c_i, and q_i accumulates c_i (kill when
       the branch would not take) *)
    let columns = Hashtbl.create 7 in
    List.iteri
      (fun i ((cmp : Op.t), _) ->
        let cond j =
          match cmp.Op.opcode with
          | Op.Cmpp (c, _, _) -> if j = i then Op.negate_cond c else c
          | _ -> assert false
        in
        let copies =
          (* pair destinations two per compare where possible *)
          let rec emit js acc =
            match js with
            | [] -> List.rev acc
            | [ j ] ->
              List.rev
                (Op.make ~id:(Prog.fresh_op_id prog) ~orig:cmp.Op.id
                   (Op.Cmpp (cond j, Op.Ac, None))
                   [ qs.(j) ] cmp.Op.srcs
                :: acc)
            | j :: k :: rest when cond j = cond k ->
              emit rest
                (Op.make ~id:(Prog.fresh_op_id prog) ~orig:cmp.Op.id
                   (Op.Cmpp (cond j, Op.Ac, Some Op.Ac))
                   [ qs.(j); qs.(k) ] cmp.Op.srcs
                :: acc)
            | j :: rest ->
              emit rest
                (Op.make ~id:(Prog.fresh_op_id prog) ~orig:cmp.Op.id
                   (Op.Cmpp (cond j, Op.Ac, None))
                   [ qs.(j) ] cmp.Op.srcs
                :: acc)
          in
          emit (List.init (n - i) (fun k -> i + k)) []
        in
        Hashtbl.replace columns cmp.Op.id copies)
      pairs;
    (* rewire each branch to its fresh predicate *)
    let branch_q = Hashtbl.create 7 in
    List.iteri
      (fun j ((_ : Op.t), (br : Op.t)) ->
        Hashtbl.replace branch_q br.Op.id qs.(j))
      pairs;
    region.Region.ops <-
      init
      :: List.concat_map
           (fun (op : Op.t) ->
             let op =
               match Hashtbl.find_opt branch_q op.Op.id with
               | Some q -> { op with Op.guard = Op.If q }
               | None -> op
             in
             match Hashtbl.find_opt columns op.Op.id with
             | Some copies -> op :: copies
             | None -> [ op ])
           region.Region.ops;
    true

let transform prog =
  List.fold_left
    (fun acc r -> if transform_region prog r then acc + 1 else acc)
    0 (Prog.regions prog)
