type t = {
  exit_weight_threshold : float;
  predict_taken_threshold : float;
  max_block_branches : int;
  hot_region_fraction : float;
  height_gate : bool;
  height_slack_min : int;
  pressure_gate : bool;
  pressure_margin : int;
}

let default =
  {
    exit_weight_threshold = 0.12;
    predict_taken_threshold = 0.60;
    max_block_branches = 16;
    hot_region_fraction = 0.001;
    (* Off by default: the paper's heuristics are profile-only, and the
       published numbers (Table 2) are reproduced without the gate. *)
    height_gate = false;
    height_slack_min = 1;
    (* Off by default for the same reason as [height_gate]: Table 2 is
       reproduced without it, and the paper's cost model is cycles-only. *)
    pressure_gate = false;
    pressure_margin = 2;
  }

(* Section 7: "the further development of distinct heuristics for each
   machine configuration would alleviate this problem" — narrow machines
   want small CPR blocks (cheap exits, little parallelism to feed), wide
   machines tolerate large ones. *)
let tuned_for (m : Cpr_machine.Descr.t) =
  match m.Cpr_machine.Descr.issue with
  | Cpr_machine.Descr.Sequential ->
    (* the sequential machine gains from removed operations, which favours
       large CPR blocks *)
    { default with exit_weight_threshold = 0.25 }
  | Cpr_machine.Descr.Regular { i; _ } ->
    if i <= 2 then { default with exit_weight_threshold = 0.05 }
    else if i <= 4 then default
    else { default with exit_weight_threshold = 0.25 }
