open Cpr_ir

type fu =
  | I
  | F
  | M
  | B

type issue =
  | Regular of {
      i : int;
      f : int;
      m : int;
      b : int;
    }
  | Sequential

type regfile = {
  gprs : int;
  preds : int;
  btrs : int;
}

type t = {
  name : string;
  issue : issue;
  latency : Op.opcode -> int;
  files : regfile;
}

let fu_of_op (op : Op.t) =
  match op.Op.opcode with
  | Op.Alu _ | Op.Cmpp _ | Op.Pred_init _ -> I
  | Op.Falu _ -> F
  | Op.Load | Op.Store -> M
  | Op.Pbr | Op.Branch -> B

let paper_latency = function
  | Op.Alu (Op.Mul) -> 3
  | Op.Alu (Op.Div) -> 8
  | Op.Alu _ -> 1
  | Op.Falu (Op.Fmul) -> 3
  | Op.Falu (Op.Fdiv) -> 8
  | Op.Falu _ -> 3
  | Op.Load -> 2
  | Op.Store -> 1
  | Op.Cmpp _ -> 1
  | Op.Pbr -> 1
  | Op.Branch -> 1
  | Op.Pred_init _ -> 1

let latency_of t (op : Op.t) = t.latency op.Op.opcode

(* Register-file sizes scale with issue width, HPL-PD style: PlayDoh's
   baseline files are 32 GPRs / 32 one-bit predicates / 8 branch-target
   registers, and wider machines get proportionally larger files.  The
   sequential machine models a minimal scalar core with a small predicate
   file; the infinite machine is effectively unconstrained. *)
let regular ?(files = { gprs = 64; preds = 64; btrs = 8 }) name i f m b =
  { name; issue = Regular { i; f; m; b }; latency = paper_latency; files }

let sequential =
  {
    name = "Seq";
    issue = Sequential;
    latency = paper_latency;
    files = { gprs = 32; preds = 16; btrs = 4 };
  }

(* FRP conversion deliberately keeps every exit's prepare-to-branch on
   trace, so post-CPR regions of the shipped workloads hold up to ~17
   branch targets and ~70 GPRs live at once — the medium files (IA-64
   sized for GPRs/preds, btrs scaled for the FRP shape) leave headroom
   over that. *)
let narrow = regular ~files:{ gprs = 64; preds = 32; btrs = 16 } "Nar" 2 1 1 1
let medium = regular ~files:{ gprs = 128; preds = 64; btrs = 24 } "Med" 4 2 2 1

let wide =
  regular ~files:{ gprs = 256; preds = 128; btrs = 32 } "Wid" 8 4 4 2

let infinite =
  regular ~files:{ gprs = 1024; preds = 1024; btrs = 256 } "Inf" 75 25 25 25

let all = [ sequential; narrow; medium; wide; infinite ]

let regfile_size t = function
  | Reg.Gpr -> t.files.gprs
  | Reg.Pred -> t.files.preds
  | Reg.Btr -> t.files.btrs

let slots t fu =
  match t.issue with
  | Sequential -> 1
  | Regular r -> ( match fu with I -> r.i | F -> r.f | M -> r.m | B -> r.b)
