open Cpr_ir

(** EPIC machine descriptions.

    The paper's experiments (Section 7) use a family of regular machines
    described by an (I, F, M, B) tuple of functional-unit counts, plus a
    degenerate {e sequential} machine that issues exactly one operation of
    any type per cycle. *)

(** Functional-unit classes. *)
type fu =
  | I  (** integer ALU, compares, predicate initialization *)
  | F  (** floating point *)
  | M  (** memory *)
  | B  (** branch and prepare-to-branch *)

type issue =
  | Regular of {
      i : int;
      f : int;
      m : int;
      b : int;
    }
  | Sequential  (** exactly one operation of any type per cycle *)

type regfile = {
  gprs : int;
  preds : int;
  btrs : int;
}
(** Architectural register-file sizes, one capacity per {!Reg.cls}. *)

type t = {
  name : string;
  issue : issue;
  latency : Op.opcode -> int;
  files : regfile;
}

val fu_of_op : Op.t -> fu
val latency_of : t -> Op.t -> int

val paper_latency : Op.opcode -> int
(** Section 7: simple integer 1, simple fp 3, load 2, store 1, int/fp
    multiply 3, int/fp divide 8, branch 1.  Compares, [pbr] and predicate
    initialization are simple class-I/B operations with latency 1. *)

val sequential : t

val narrow : t
(** (2, 1, 1, 1) *)

val medium : t
(** (4, 2, 2, 1) *)

val wide : t
(** (8, 4, 4, 2) *)

val infinite : t
(** (75, 25, 25, 25) *)

val all : t list
(** The five machines in the paper's column order. *)

val regfile_size : t -> Reg.cls -> int
(** Architectural register-file capacity for a class.  The paper's cost
    model is cycles-only; these sizes (HPL-PD-flavoured, scaled with
    issue width) give the pressure analyzer a budget to lint and gate
    against.  The infinite machine is effectively unconstrained. *)

val slots : t -> fu -> int
(** Per-cycle issue slots for a class; [max_int] conventions are avoided —
    the sequential machine reports 1 for every class but is additionally
    limited to one total op per cycle (see {!Resource}). *)
