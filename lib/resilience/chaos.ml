open Cpr_ir
module Obs = Cpr_obs.Obs

type kind = Raise | Corrupt | Stall

let kind_name = function
  | Raise -> "raise"
  | Corrupt -> "corrupt"
  | Stall -> "stall"

let all_kinds = [ Raise; Corrupt; Stall ]
let kind_of_string s = List.find_opt (fun k -> kind_name k = s) all_kinds

exception Chaos_fault of string

type armed_point = { stage : string; kind : kind; mutable fired : bool }

let point : armed_point option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let arm ~stage kind =
  Domain.DLS.get point := Some { stage; kind; fired = false }

let disarm () = Domain.DLS.get point := None

let armed () =
  match !(Domain.DLS.get point) with
  | Some a -> Some (a.stage, a.kind)
  | None -> None

let c_injected = Obs.counter "chaos.injected"

(* Drop one op, preferring corruption classes the detection path
   provably flags: a store first (the translation validator's tv-store
   check demands every input store keep an instance, for every
   transform stage), then an op defining a predicate a later op in the
   region consumes (the dataflow lint errors on the use when no other
   definition reaches it).  Last resort is any op with a
   later-consumed def — a wrong-value miscompile that a
   coverage-limited per-region verifier may or may not see, kept so
   chaos still exercises that path on programs without predicates or
   stores. *)
let corrupt prog =
  let later_uses arr i d =
    let used = ref false in
    for j = i + 1 to Array.length arr - 1 do
      let later = arr.(j) in
      if
        (match Op.guard_reg later with
        | Some g -> Reg.equal g d
        | None -> false)
        || List.exists (Reg.equal d) (Op.uses later)
      then used := true
    done;
    !used
  in
  let candidate cls (r : Region.t) =
    let arr = Array.of_list r.Region.ops in
    let found = ref None in
    for i = Array.length arr - 1 downto 0 do
      let op = arr.(i) in
      let droppable = not (Op.is_branch op || Op.is_pbr op) in
      let hit =
        match cls with
        | `Pred ->
          droppable
          && List.exists
               (fun d -> Reg.is_pred d && later_uses arr i d)
               (Op.defs op)
        | `Store -> Op.is_store op
        | `Any -> droppable && List.exists (later_uses arr i) (Op.defs op)
      in
      if hit then found := Some i
    done;
    !found
  in
  let pick cls =
    List.find_map
      (fun r -> Option.map (fun i -> (r, i)) (candidate cls r))
      (Prog.regions prog)
  in
  match List.find_map pick [ `Store; `Pred; `Any ] with
  | Some (r, i) ->
    r.Region.ops <- List.filteri (fun k _ -> k <> i) r.Region.ops
  | None -> ()

let trip ~stage prog =
  match !(Domain.DLS.get point) with
  | Some a when a.stage = stage && ((not a.fired) || a.kind = Corrupt) ->
    let first = not a.fired in
    a.fired <- true;
    if first then Obs.incr c_injected;
    (match a.kind with
    | Raise -> raise (Chaos_fault ("injected exception at stage " ^ stage))
    | Stall ->
      (* As if a watchdog had poisoned this task's token and the pass
         hit its next checkpoint. *)
      raise
        (Cpr_deadline.Deadline.Deadline_exceeded
           { label = "chaos:" ^ stage; elapsed_ns = 0L; budget_ns = 0L })
    | Corrupt -> corrupt prog)
  | _ -> ()
