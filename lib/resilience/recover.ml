module Obs = Cpr_obs.Obs

type failure = {
  stage : string;
  reason : string;
  findings : Cpr_verify.Finding.t list;
  retries : int;
  bundle : string option;
}

type 'a protected = Committed of 'a | Fell_back of 'a * failure

let c_fallbacks = Obs.counter "recover.fallbacks"
let c_retries = Obs.counter "recover.retries"
let value = function Committed v | Fell_back (v, _) -> v
let failure = function Committed _ -> None | Fell_back (_, f) -> Some f
let degraded p = failure p <> None

let pp_failure ppf f =
  Format.fprintf ppf "stage %s degraded: %s" f.stage f.reason;
  if f.retries > 0 then Format.fprintf ppf " (after %d retry)" f.retries;
  (match f.bundle with
  | Some dir -> Format.fprintf ppf " [bundle %s]" dir
  | None -> ());
  List.iter (fun fi -> Format.fprintf ppf "@,  %a" Cpr_verify.Finding.pp fi)
    f.findings

let reason_of = function
  | Cpr_verify.Verify.Verify_error fs ->
    Format.asprintf "verification rejected the output (%d error finding(s)): %a"
      (List.length fs)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         Cpr_verify.Finding.pp)
      fs
  | e -> Printexc.to_string e

let findings_of = function
  | Cpr_verify.Verify.Verify_error fs -> fs
  | _ -> []

(* A verifier rejection is a pure function of the IR: re-running the
   stage reproduces it exactly, so retrying only doubles the cost.
   Everything else — a pass exception, a deadline trip, an injected
   chaos fault — may be once-only, and one retry is cheap next to
   losing the optimization level. *)
let transient = function Cpr_verify.Verify.Verify_error _ -> false | _ -> true

let protect ?(retries = 1) ?on_failure ~stage ~fallback f =
  let rec attempt n =
    match f () with
    | v -> Committed v
    | exception e ->
      if n < retries && transient e then begin
        Obs.incr c_retries;
        attempt (n + 1)
      end
      else begin
        Obs.incr c_fallbacks;
        let fail =
          {
            stage;
            reason = reason_of e;
            findings = findings_of e;
            retries = n;
            bundle = None;
          }
        in
        let bundle =
          match on_failure with
          | None -> None
          | Some g -> ( try g fail with _ -> None)
        in
        Fell_back (fallback (), { fail with bundle })
      end
  in
  attempt 0

let bundle_to ?dir ?machine ?(inputs = []) prog fail =
  match
    Bundle.write ?dir ?machine ~retries:fail.retries ~findings:fail.findings
      ~inputs ~stage:fail.stage ~reason:fail.reason ~prog ()
  with
  | Ok path -> Some path
  | Error _ -> None
