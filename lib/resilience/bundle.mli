(** Replayable crash bundles.

    Every recovered (or fatal) failure can be quarantined as a directory
    [_crash/<id>/] holding everything needed to re-run it
    deterministically:

    {v
    _crash/<stage>-<digest>/
      input.cpr     input IR + "# stage:"/"# reason:"/"# input:" header
                    (the fuzz-corpus artifact format, so Cpr_fuzz.Corpus
                    loads it unchanged)
      meta.json     structured failure record: stage, reason, retries,
                    machine config, findings
      findings.txt  pretty-printed verifier findings (when any)
      trace.json    Chrome-trace telemetry snapshot (when Cpr_obs is
                    enabled)
    v}

    The id is a content digest of the stage, reason and program text, so
    re-hitting the same failure overwrites the same bundle instead of
    accumulating duplicates.  [lint --replay-bundle DIR] re-verifies the
    bundle statically; [fuzz --replay-bundle DIR] re-runs the full
    differential oracle battery on it. *)

val default_dir : string
(** ["_crash"]. *)

val write :
  ?dir:string ->
  ?machine:string ->
  ?retries:int ->
  ?findings:Cpr_verify.Finding.t list ->
  ?inputs:Cpr_sim.Equiv.input list ->
  stage:string ->
  reason:string ->
  prog:Cpr_ir.Prog.t ->
  unit ->
  (string, string) result
(** Write a bundle under [dir] (default {!default_dir}); returns the
    bundle directory, or [Error] with the OS message if the filesystem
    refused — writing a bundle must never raise out of a recovery
    path.  Bumps the [bundle.written] counter on success. *)

val input_file : string -> string
(** [input_file dir] is the [input.cpr] path inside a bundle dir. *)
