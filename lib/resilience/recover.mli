(** Per-pass sandboxing with verified fallback.

    A speculative, region-restructuring optimization can trip — on its
    own invariants ([Invalid_argument] from structural validation), on
    the static verifier ({!Cpr_verify.Verify.Verify_error}), or on an
    injected chaos fault.  {!protect} turns any of those into a
    {e degraded} result instead of a dead run: the failing stage's
    output is discarded, the caller-supplied fallback (the last
    known-good IR — correct but unoptimized) is returned, and the
    failure is recorded as data.

    The fallback is always the {e pre-pass} IR, never a partially
    transformed program: the pipeline's passes mutate their working copy
    in place, so mid-pass state may violate invariants the next stage
    relies on, while the pre-pass IR was validated on the way in.

    Transient faults (anything but a verifier rejection, which is
    deterministic) are retried once before falling back, so a one-shot
    glitch costs a retry rather than an optimization level.  Counters:
    [recover.fallbacks], [recover.retries]. *)

type failure = {
  stage : string;
  reason : string;  (** printable rendering of the exception *)
  findings : Cpr_verify.Finding.t list;
      (** the verifier's error findings when the failure was a
          [Verify_error]; [[]] otherwise *)
  retries : int;  (** attempts re-run before giving up *)
  bundle : string option;  (** crash-bundle directory, when one was written *)
}

type 'a protected =
  | Committed of 'a  (** the stage ran (and verified) clean *)
  | Fell_back of 'a * failure
      (** the stage failed; the value is the fallback *)

val value : 'a protected -> 'a
val failure : 'a protected -> failure option
val degraded : 'a protected -> bool

val pp_failure : Format.formatter -> failure -> unit

val protect :
  ?retries:int ->
  ?on_failure:(failure -> string option) ->
  stage:string ->
  fallback:(unit -> 'a) ->
  (unit -> 'a) ->
  'a protected
(** [protect ~stage ~fallback f] runs [f ()].  On success the result is
    [Committed].  On [Verify_error] it falls back immediately (the
    verifier is deterministic); on any other exception it retries up to
    [retries] times (default 1) and then falls back.  [on_failure] runs
    once, after the failure record is built but before the fallback is
    computed — the hook for writing a crash bundle; its return value
    lands in [failure.bundle], and an exception it raises is swallowed
    (recovery must not crash on a full disk).

    The fallback thunk itself is {b not} sandboxed: it must be
    infallible (a pre-validated copy of the input IR).  If it raises,
    the exception escapes — that is the fatal path. *)

val bundle_to :
  ?dir:string ->
  ?machine:string ->
  ?inputs:Cpr_sim.Equiv.input list ->
  Cpr_ir.Prog.t ->
  failure ->
  string option
(** An [on_failure] hook that writes a {!Bundle} for the given input
    program and returns its directory (or [None] if the write failed). *)
