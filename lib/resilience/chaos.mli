(** Pass-level fault injection for the chaos harness.

    A domain-local injection point is {!arm}ed with a pipeline stage
    name and a fault kind; when the pipeline's instrumentation reaches
    that stage it calls {!trip}, which fires the fault.  Everything is
    per-domain ([Domain.DLS]), so a pool fanning chaos seeds across
    domains keeps each seed's injection isolated.

    Kinds model the three failure classes the resilience layer must
    absorb:

    - {!Raise}: a pass exception.  Fires {e once} — a transient fault,
      so {!Recover.protect}'s single retry recovers it cleanly.
    - {!Stall}: a deadline overrun, simulated by raising
      {!Deadline.Deadline_exceeded} as a watchdog-poisoned checkpoint
      would.  Also fires once.
    - {!Corrupt}: silently drops an op — preferring a store, then an op
      defining a predicate a later op in its region consumes, the two
      corruption classes the translation validator and the dataflow
      lint provably flag — a miscompile the static verifier must catch.
      Fires on {e every} attempt (the corruption is deterministic), so
      the retry fails too and the run degrades to the verified
      fallback. *)

type kind = Raise | Corrupt | Stall

val kind_name : kind -> string
val kind_of_string : string -> kind option
val all_kinds : kind list

exception Chaos_fault of string

val arm : stage:string -> kind -> unit
(** Arm this domain's injection point.  Replaces any previous one. *)

val disarm : unit -> unit
val armed : unit -> (string * kind) option

val trip : stage:string -> Cpr_ir.Prog.t -> unit
(** Called by the pipeline at each pass's injection point.  Fires the
    armed fault iff its stage matches; a no-op otherwise (and always a
    no-op in production, where nothing is armed).  Bumps
    [chaos.injected] when it fires. *)
