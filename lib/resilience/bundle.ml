module Obs = Cpr_obs.Obs

let default_dir = "_crash"
let c_written = Obs.counter "bundle.written"
let input_file dir = Filename.concat dir "input.cpr"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let one_line s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let write ?(dir = default_dir) ?machine ?(retries = 0) ?(findings = [])
    ?(inputs = []) ~stage ~reason ~prog () =
  match
    let text = Cpr_ir.Printer.to_text prog in
    let id =
      Printf.sprintf "%s-%s" stage
        (String.sub
           (Digest.to_hex (Digest.string (stage ^ "\x00" ^ reason ^ "\x00" ^ text)))
           0 12)
    in
    let bdir = Filename.concat dir id in
    mkdir_p bdir;
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      "# cpr crash bundle (replay with `lint --replay-bundle` or `fuzz \
       --replay-bundle`)\n";
    Buffer.add_string buf (Printf.sprintf "# stage: %s\n" stage);
    Buffer.add_string buf (Printf.sprintf "# reason: %s\n" (one_line reason));
    List.iter
      (fun i ->
        Buffer.add_string buf
          (Printf.sprintf "# input: %s\n" (Cpr_sim.Equiv.input_to_string i)))
      inputs;
    Buffer.add_string buf text;
    write_file (input_file bdir) (Buffer.contents buf);
    let rendered_findings =
      List.map (fun f -> Format.asprintf "%a" Cpr_verify.Finding.pp f) findings
    in
    let meta = Buffer.create 256 in
    let add fmt = Printf.ksprintf (Buffer.add_string meta) fmt in
    add "{\n  \"id\": \"%s\",\n" (json_escape id);
    add "  \"stage\": \"%s\",\n" (json_escape stage);
    add "  \"reason\": \"%s\",\n" (json_escape (one_line reason));
    add "  \"retries\": %d,\n" retries;
    (match machine with
    | Some m -> add "  \"machine\": \"%s\",\n" (json_escape m)
    | None -> ());
    add "  \"inputs\": %d,\n" (List.length inputs);
    add "  \"findings\": [";
    List.iteri
      (fun i f ->
        add "%s\n    \"%s\"" (if i = 0 then "" else ",") (json_escape f))
      rendered_findings;
    add "%s]\n}\n" (if rendered_findings = [] then "" else "\n  ");
    write_file (Filename.concat bdir "meta.json") (Buffer.contents meta);
    if rendered_findings <> [] then
      write_file
        (Filename.concat bdir "findings.txt")
        (String.concat "\n" rendered_findings ^ "\n");
    if Obs.enabled () then
      write_file (Filename.concat bdir "trace.json") (Obs.Trace.to_string ());
    Obs.incr c_written;
    bdir
  with
  | bdir -> Ok bdir
  | exception Sys_error msg -> Error msg
  | exception e -> Error (Printexc.to_string e)
