module Obs = Cpr_obs.Obs

exception
  Deadline_exceeded of {
    label : string;
    elapsed_ns : int64;
    budget_ns : int64;
  }

let () =
  Printexc.register_printer (function
    | Deadline_exceeded { label; elapsed_ns; budget_ns } ->
      Some
        (Printf.sprintf "Deadline_exceeded(%s: %.1fms elapsed, %.1fms budget)"
           label
           (Int64.to_float elapsed_ns /. 1e6)
           (Int64.to_float budget_ns /. 1e6))
    | _ -> None)

(* [started] doubles as the running flag: 0 means not started or already
   finished, so a watchdog scanning a batch's tokens skips idle slots
   without extra state.  Both fields are written by the owning task and
   read (or, for [poisoned], written) by other domains, hence atomic. *)
type t = {
  label : string;
  budget_ns : int64;
  started : int64 Atomic.t;
  poisoned : bool Atomic.t;
}

let c_trips = Obs.counter "pool.deadline_trips"

let create ?(label = "task") ~budget_ns () =
  { label; budget_ns; started = Atomic.make 0L; poisoned = Atomic.make false }

let of_ms ?label ms = create ?label ~budget_ns:(Int64.of_float (ms *. 1e6)) ()
let start t = Atomic.set t.started (Obs.now_ns ())
let finish t = Atomic.set t.started 0L
let running t = Atomic.get t.started <> 0L

let elapsed_ns t =
  match Atomic.get t.started with
  | 0L -> 0L
  | s -> Int64.sub (Obs.now_ns ()) s

let overdue t = running t && elapsed_ns t > t.budget_ns
let poison t = Atomic.set t.poisoned true
let poisoned t = Atomic.get t.poisoned

let trip t =
  Obs.incr c_trips;
  raise
    (Deadline_exceeded
       { label = t.label; elapsed_ns = elapsed_ns t; budget_ns = t.budget_ns })

let check t = if poisoned t || overdue t then trip t

let ambient : t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_current v = Domain.DLS.set ambient v
let current () = Domain.DLS.get ambient

let check_current () =
  match Domain.DLS.get ambient with None -> () | Some t -> check t

let with_budget ?label ~ms f =
  let t = of_ms ?label ms in
  let saved = current () in
  start t;
  set_current (Some t);
  Fun.protect
    ~finally:(fun () ->
      set_current saved;
      finish t)
    f
