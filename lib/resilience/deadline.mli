(** Cooperative per-task deadlines.

    A token carries a time budget.  The code doing the work calls
    {!check} (directly or through the domain-local ambient token and
    {!check_current}) at convenient safe points; once the budget is
    exhausted — or a watchdog has {!poison}ed the token from another
    domain — the next checkpoint raises {!Deadline_exceeded}.  This is
    {e cancellation by poisoning}: nothing is interrupted mid-flight,
    the computation unwinds at a point it chose itself, so invariants
    (locks, pool batches) are never torn.

    Tokens are safe to read and poison from any domain.  The ambient
    token is per-domain ([Domain.DLS]), set by the pool around each
    task, so deeply nested code ({!Cpr_sched.List_sched}'s scheduling
    loop, the pipeline's pass entries) can checkpoint without threading
    a token through every signature.  {!check_current} with no ambient
    token is a few nanoseconds — cheap enough for hot loops. *)

exception
  Deadline_exceeded of {
    label : string;  (** the overrunning task, for attribution *)
    elapsed_ns : int64;
    budget_ns : int64;
  }

type t

val create : ?label:string -> budget_ns:int64 -> unit -> t
(** A fresh, not-yet-started token.  [label] defaults to ["task"]. *)

val of_ms : ?label:string -> float -> t
(** [create] with the budget given in milliseconds. *)

val start : t -> unit
(** Begin the clock.  Idempotent restarts are not supported: one token
    guards one task attempt. *)

val finish : t -> unit
(** Stop the clock; a finished token no longer counts as {!running} and
    never trips again. *)

val running : t -> bool
val elapsed_ns : t -> int64
(** 0 when not running. *)

val overdue : t -> bool
(** Running and past its budget (poisoning aside). *)

val poison : t -> unit
(** Mark the token from outside (a watchdog): the owner's next {!check}
    raises.  Safe from any domain; idempotent. *)

val poisoned : t -> bool

val check : t -> unit
(** Raise {!Deadline_exceeded} if the token is poisoned or overdue,
    bumping the [pool.deadline_trips] counter.  Otherwise free. *)

(** {2 The ambient (domain-local) token} *)

val set_current : t option -> unit
val current : unit -> t option

val check_current : unit -> unit
(** {!check} on this domain's ambient token; no-op when none is set. *)

val with_budget : ?label:string -> ms:float -> (unit -> 'a) -> 'a
(** Run [f] under a fresh started token installed as the ambient one
    (restoring the previous ambient token afterwards).  [f]'s
    checkpoints then bound its runtime to [ms] milliseconds. *)
