(** Linear code regions.

    A region is a single-entry linear sequence of operations with inline
    (side-)exit branches — the program form on which control CPR operates.
    Conventional superblocks, FRP-converted superblocks, hyperblocks and the
    compensation blocks created by ICBM are all regions.  Control falls
    through to [fallthrough] when no branch takes.

    Regions carry the branch-profile data used by the exit-weight and
    predict-taken heuristics: an entry count and a per-branch taken count. *)

type t = {
  label : string;
  mutable ops : Op.t list;
  mutable fallthrough : string option;
      (** successor label when all branches fall through; [None] means the
          program terminates *)
  mutable entry_count : int;
  taken : (int, int) Hashtbl.t;  (** branch op id -> times taken *)
}

val make : ?fallthrough:string -> string -> Op.t list -> t

val branches : t -> Op.t list
(** Branch operations in program order. *)

val branch_target : t -> Op.t -> string option
(** Static target of a branch: the label prepared by the unique [pbr]
    writing the branch's btr source that last precedes it.  [None] when the
    branch has no btr source or no preceding [pbr] defines it. *)

val reaching_pbr : t -> Op.t -> Op.t option
(** The [pbr] operation {!branch_target} resolves through: the last one
    before the branch defining its btr source. *)

val taken_count : t -> int -> int
(** Profiled taken count of the branch with the given op id (0 if never
    recorded). *)

val record_entry : t -> unit
val record_taken : t -> int -> unit

val clear_profile : t -> unit

val successors : t -> string list
(** All static successor labels: branch targets then fallthrough,
    deduplicated. *)

val find_op : t -> int -> Op.t option

val op_index : t -> int -> int
(** Position of the op with the given id; raises [Not_found]. *)

val static_op_count : t -> int

val copy : t -> t
(** Deep copy (fresh op list cells, fresh profile table) sharing op ids. *)

val pp : Format.formatter -> t -> unit
