type t = {
  label : string;
  mutable ops : Op.t list;
  mutable fallthrough : string option;
  mutable entry_count : int;
  taken : (int, int) Hashtbl.t;
}

let make ?fallthrough label ops =
  { label; ops; fallthrough; entry_count = 0; taken = Hashtbl.create 7 }

let branches t = List.filter Op.is_branch t.ops

(* Resolve the label a branch transfers to by scanning for the last pbr
   that defines the branch's btr source before the branch itself. *)
let branch_target t (br : Op.t) =
  let btr =
    List.find_map
      (function Op.Reg r when r.Reg.cls = Reg.Btr -> Some r | _ -> None)
      br.Op.srcs
  in
  match btr with
  | None -> None
  | Some btr ->
    let rec scan best = function
      | [] -> best
      | (op : Op.t) :: rest ->
        if op.Op.id = br.Op.id then best
        else if Op.is_pbr op && List.exists (Reg.equal btr) op.Op.dests then
          let lab =
            List.find_map
              (function Op.Lab l -> Some l | Op.Reg _ | Op.Imm _ -> None)
              op.Op.srcs
          in
          scan lab rest
        else scan best rest
    in
    scan None t.ops

let taken_count t id = Option.value ~default:0 (Hashtbl.find_opt t.taken id)
let record_entry t = t.entry_count <- t.entry_count + 1

let record_taken t id =
  Hashtbl.replace t.taken id (taken_count t id + 1)

let clear_profile t =
  t.entry_count <- 0;
  Hashtbl.reset t.taken

let reaching_pbr t (br : Op.t) =
  let btr =
    List.find_map
      (function Op.Reg r when r.Reg.cls = Reg.Btr -> Some r | _ -> None)
      br.Op.srcs
  in
  match btr with
  | None -> None
  | Some btr ->
    let rec scan best = function
      | [] -> best
      | (op : Op.t) :: rest ->
        if op.Op.id = br.Op.id then best
        else if Op.is_pbr op && List.exists (Reg.equal btr) op.Op.dests then
          scan (Some op) rest
        else scan best rest
    in
    scan None t.ops

let successors t =
  let targets = List.filter_map (branch_target t) (branches t) in
  let all = targets @ Option.to_list t.fallthrough in
  List.fold_left (fun acc l -> if List.mem l acc then acc else acc @ [ l ]) [] all

let find_op t id = List.find_opt (fun (op : Op.t) -> op.Op.id = id) t.ops

let op_index t id =
  let rec go i = function
    | [] -> raise Not_found
    | (op : Op.t) :: rest -> if op.Op.id = id then i else go (i + 1) rest
  in
  go 0 t.ops

let static_op_count t = List.length t.ops

let copy t =
  {
    label = t.label;
    ops = t.ops;
    fallthrough = t.fallthrough;
    entry_count = t.entry_count;
    taken = Hashtbl.copy t.taken;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>%s:  (entry %d, fallthrough %s)@,%a@]" t.label
    t.entry_count
    (Option.value ~default:"<exit>" t.fallthrough)
    (Format.pp_print_list Op.pp)
    t.ops
