(** Virtual registers of the PlayDoh-style IR.

    PlayDoh distinguishes three register files that matter to control CPR:
    general-purpose registers ([Gpr], the [r] registers of the paper),
    one-bit predicate registers ([Pred], the [p] registers), and
    branch-target registers ([Btr], the targets prepared by [pbr]). *)

type cls =
  | Gpr
  | Pred
  | Btr

type t = {
  id : int;  (** unique within a program, per class *)
  cls : cls;
}

val gpr : int -> t
val pred : int -> t
val btr : int -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val cls_rank : cls -> int
(** [Gpr] 0, [Pred] 1, [Btr] 2 — the major key of {!compare}; analyses
    use it to index registers densely as [cls_rank cls * stride + id],
    which enumerates in exactly {!compare} order. *)

val is_pred : t -> bool

val pp : Format.formatter -> t -> unit
(** [r12], [p5], [b3] — the naming convention of the paper's figures. *)

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
