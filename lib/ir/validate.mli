(** Structural well-formedness checks for programs.

    Run after construction and after every transformation phase in tests:
    a transformation bug usually shows up here (dangling labels, wrong
    register classes, duplicated op ids) before it shows up as a wrong
    answer. *)

type error = {
  where : string;  (** region label or "<program>" *)
  op : int option;  (** offending op id, when one is known *)
  what : string;
}

val check : Prog.t -> error list
(** Empty list = well-formed. *)

val check_exn : Prog.t -> unit
(** Raises [Invalid_argument] with a report when {!check} finds errors. *)

val pp_error : Format.formatter -> error -> unit
