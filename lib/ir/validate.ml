type error = {
  where : string;
  op : int option;
  what : string;
}

let pp_error ppf e =
  match e.op with
  | None -> Format.fprintf ppf "[%s] %s" e.where e.what
  | Some id -> Format.fprintf ppf "[%s] op %d: %s" e.where id e.what

let check (p : Prog.t) =
  let errors = ref [] in
  let err ?op where fmt =
    Format.kasprintf (fun what -> errors := { where; op; what } :: !errors) fmt
  in
  let seen_ids = Hashtbl.create 97 in
  if Prog.find p p.Prog.entry = None then
    err "<program>" "entry label %s has no region" p.Prog.entry;
  let check_label ?op where l =
    if Prog.find p l = None && not (Prog.is_exit p l) then
      err ?op where "reference to undefined label %s" l
  in
  let check_op (r : Region.t) (op : Op.t) =
    let where = r.Region.label in
    let op_id = op.Op.id in
    let err fmt = err ~op:op_id where fmt in
    (match Hashtbl.find_opt seen_ids op.Op.id with
    | Some prev -> err "duplicate op id %d (also in %s)" op.Op.id prev
    | None -> Hashtbl.replace seen_ids op.Op.id where);
    (match op.Op.guard with
    | Op.True -> ()
    | Op.If g ->
      if not (Reg.is_pred g) then
        err "guarded by non-predicate %s" (Reg.to_string g));
    match op.Op.opcode with
    | Op.Cmpp (_, _, a2) ->
      let expected = match a2 with Some _ -> 2 | None -> 1 in
      if List.length op.Op.dests <> expected then
        err "cmpp with %d dests, expected %d" (List.length op.Op.dests)
          expected;
      List.iter
        (fun d ->
          if not (Reg.is_pred d) then
            err "cmpp dest %s is not a predicate" (Reg.to_string d))
        op.Op.dests;
      if List.length op.Op.srcs <> 2 then err "cmpp needs 2 sources"
    | Op.Pred_init bits ->
      if List.length bits <> List.length op.Op.dests then
        err "pred_init arity mismatch";
      List.iter
        (fun d ->
          if not (Reg.is_pred d) then
            err "pred_init dest %s is not a predicate" (Reg.to_string d))
        op.Op.dests
    | Op.Pbr -> (
      match (op.Op.dests, op.Op.srcs) with
      | [ d ], Op.Lab l :: _ ->
        if d.Reg.cls <> Reg.Btr then
          err "pbr dest %s is not a btr" (Reg.to_string d);
        check_label ~op:op_id where l
      | _ -> err "malformed pbr")
    | Op.Branch -> (
      match op.Op.srcs with
      | [ Op.Reg b ] when b.Reg.cls = Reg.Btr -> (
        match Region.branch_target r op with
        | Some l -> check_label ~op:op_id where l
        | None -> err "branch btr has no reaching pbr")
      | _ -> err "malformed branch")
    | Op.Load ->
      if List.length op.Op.dests <> 1 then err "load needs one dest"
    | Op.Store ->
      if op.Op.dests <> [] then err "store has dests";
      if List.length op.Op.srcs <> 3 then err "store needs base/off/value"
    | Op.Alu _ | Op.Falu _ ->
      (match op.Op.dests with
      | [ d ] ->
        if d.Reg.cls <> Reg.Gpr then
          err "alu dest %s is not a gpr" (Reg.to_string d)
      | _ -> err "alu needs one dest");
      if List.length op.Op.srcs <> 2 then err "alu needs two sources"
  in
  List.iter
    (fun (r : Region.t) ->
      Option.iter (check_label r.Region.label) r.Region.fallthrough;
      List.iter (check_op r) r.Region.ops)
    (Prog.regions p);
  List.rev !errors

let check_exn p =
  match check p with
  | [] -> ()
  | errs ->
    let report =
      String.concat "; " (List.map (Format.asprintf "%a" pp_error) errs)
    in
    invalid_arg ("Validate: " ^ report)
