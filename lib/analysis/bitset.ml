(* Packed bitsets over a dense [0, n) universe: one int array, Sys.int_size
   bits per word.  The dataflow fixpoints (Liveness, Cpr_verify.Dataflow)
   run their transfer functions over these and convert to Reg.Set only at
   the API boundary, so the inner loops do word-wide boolean algebra with
   zero allocation instead of rebalancing polymorphic set trees. *)

type t = int array

let bpw = Sys.int_size
let create n = Array.make ((n + bpw - 1) / bpw) 0
let copy = Array.copy
let[@inline] mem (t : t) i = t.(i / bpw) land (1 lsl (i mod bpw)) <> 0

let[@inline] set (t : t) i =
  let w = i / bpw in
  t.(w) <- t.(w) lor (1 lsl (i mod bpw))

let[@inline] unset (t : t) i =
  let w = i / bpw in
  t.(w) <- t.(w) land lnot (1 lsl (i mod bpw))

let union_into ~into (src : t) =
  let changed = ref false in
  for w = 0 to Array.length src - 1 do
    let u = into.(w) lor src.(w) in
    if u <> into.(w) then begin
      into.(w) <- u;
      changed := true
    end
  done;
  !changed

let equal (a : t) (b : t) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go w = w >= n || (a.(w) = b.(w) && go (w + 1)) in
  go 0

let is_empty (t : t) = Array.for_all (fun w -> w = 0) t
let inter (a : t) (b : t) : t = Array.mapi (fun w x -> x land b.(w)) a
let diff (a : t) (b : t) : t = Array.mapi (fun w x -> x land lnot b.(w)) a

let fold f (t : t) init =
  let acc = ref init in
  Array.iteri
    (fun w bits ->
      let bits = ref bits in
      while !bits <> 0 do
        let low = !bits land - !bits in
        (* count trailing zeros via the de-facto log2 of the isolated bit *)
        let rec tz i v = if v = 1 then i else tz (i + 1) (v lsr 1) in
        acc := f ((w * bpw) + tz 0 low) !acc;
        bits := !bits land lnot low
      done)
    t;
  !acc
