open Cpr_ir
module Obs = Cpr_obs.Obs

type summary = {
  dep_height : int;
  branch_height : int;
  res_bound : int;
  bound : int;
}

let c_bound_queries = Obs.counter "height.bound_queries"

let asap = Depgraph.asap
let dep_height = Depgraph.height

(* Longest chain through branch/pbr nodes only: a forward max over the
   subgraph they induce.  Program order is a topological order of the
   full graph (every edge has src < dst), hence of any induced subgraph
   too.  Predicate-awareness needs no work here — Depgraph.build already
   omitted the Ctrl edges between disjointly-guarded branches. *)
let branch_height t =
  let n = Depgraph.n_ops t in
  let chains = function
    | (op : Op.t) -> Op.is_branch op || Op.is_pbr op
  in
  let a = Array.make n 0 in
  let h = ref 0 in
  for j = 0 to n - 1 do
    if chains (Depgraph.op t j) then begin
      List.iter
        (fun (e : Depgraph.edge) ->
          if chains (Depgraph.op t e.Depgraph.src) then
            a.(j) <- max a.(j) (a.(e.Depgraph.src) + e.Depgraph.latency))
        (Depgraph.preds t j);
      h := max !h (a.(j) + Depgraph.latency t j)
    end
  done;
  !h

let priority t =
  let n = Depgraph.n_ops t in
  let p = Array.make n 0 in
  for i = n - 1 downto 0 do
    p.(i) <- Depgraph.latency t i;
    List.iter
      (fun (e : Depgraph.edge) ->
        p.(i) <- max p.(i) (e.Depgraph.latency + p.(e.Depgraph.dst)))
      (Depgraph.succs t i)
  done;
  p

let slack t =
  let a = asap t in
  let p = priority t in
  let h = dep_height t in
  Array.init (Depgraph.n_ops t) (fun i -> h - (a.(i) + p.(i)))

let summarize machine t =
  Obs.incr c_bound_queries;
  let ops = Array.init (Depgraph.n_ops t) (Depgraph.op t) in
  let res_bound = (Resbound.of_ops machine ops).Resbound.bound in
  let dep_height = dep_height t in
  {
    dep_height;
    branch_height = branch_height t;
    res_bound;
    bound = max dep_height res_bound;
  }

let of_region machine prog liveness region =
  summarize machine (Depgraph.build machine prog liveness region)
