open Cpr_ir

(** Predicate-cognizant dependence graphs for one region.

    Encodes the EPIC execution model of the paper (Section 3):

    - register flow/anti/output dependences, where wired-or / wired-and
      [cmpp] writes to a common destination are unordered among themselves;
    - memory dependences, relaxed by alias analysis and by guard
      disjointness;
    - control dependences from a branch to later branches and
      non-speculatable ops, relaxed when the predicate query system proves
      the branch's taken-condition disjoint from the later op's guard
      (this is how FRP conversion makes branches freely reorderable);
    - speculation constraints: an op may move into/above a branch's
      latency window only if it cannot clobber a register live at the
      branch target;
    - branch-anticipation constraints: everything the taken path needs
      must have completed by the time a taken branch transfers control.

    Edge latencies follow the EQ model: an op issued at cycle [t] writes
    its destinations at [t + latency]; a branch issued at [t] transfers
    control at [t + latency]; region boundaries synchronize pending
    writes.  Latencies may be zero or negative (the constraint is
    [issue(dst) >= issue(src) + latency], with program order broken only
    where an edge exists). *)

type kind =
  | Flow of Reg.t
  | Anti of Reg.t
  | Output of Reg.t
  | Mem_flow
  | Mem_anti
  | Mem_output
  | Ctrl  (** branch to later branch/store that must stay below it *)
  | Exit_live of Reg.t
      (** branch to later op that would clobber a register live at the
          branch target *)
  | Br_anticipation
      (** earlier op whose effect the taken path needs, to the branch *)

type edge = {
  src : int;  (** op index within the region *)
  dst : int;
  kind : kind;
  latency : int;
}

type t

val build : Cpr_machine.Descr.t -> Prog.t -> Liveness.t -> Region.t -> t

val n_ops : t -> int
val op : t -> int -> Op.t

val latency : t -> int -> int
(** Latency of the op at this index on the machine the graph was built
    for (the node contribution; edge latencies are derived from it). *)

val edges : t -> edge list
val preds : t -> int -> edge list
val succs : t -> int -> edge list

val height : t -> int
(** Dependence height: the longest path through the graph where each node
    contributes [max latency 1] beyond its issue... concretely
    [max over ops of (asap op + latency op)] with
    [asap op = max over incoming edges of (asap src + edge latency)]. *)

val asap : t -> int array
(** Earliest issue cycle of each op ignoring resources. *)

val pp : Format.formatter -> t -> unit
(** The list-scheduling priority (longest path to a sink) lives in
    {!Height.priority}, alongside the rest of the critical-path
    toolkit. *)
