open Cpr_ir

type base =
  | Entry_base of Reg.t
  | Const_base
  | Segment of Reg.t * int
  | Opaque of int

type addr = {
  base : base;
  off : int;
}

type t = {
  noalias : Reg.Set.t;
  addrs : addr option array;
}

let base_equal a b =
  match (a, b) with
  | Entry_base r, Entry_base r' -> Reg.equal r r'
  | Const_base, Const_base -> true
  | Segment (r, i), Segment (r', j) -> Reg.equal r r' && i = j
  | Opaque i, Opaque j -> i = j
  | (Entry_base _ | Const_base | Segment _ | Opaque _), _ -> false

let root = function
  | Entry_base r | Segment (r, _) -> Some r
  | Const_base | Opaque _ -> None

(* Ascending def-site indices per register, computed in one pass so that
   [chase] resolves "last def of [r] before [idx]" by walking a small
   per-register array instead of rescanning the whole op prefix (which
   made address resolution O(ops^2) per region).  Registers index the
   slot array arithmetically — [Reg.cls_rank cls * stride + id], with
   [stride] bounding every per-class id in the region — so no hashing. *)
type sites = {
  stride : int;
  defs : int array array;  (* slot -> ascending def op indices *)
}

let def_sites ops =
  let stride =
    let s = ref 1 in
    let see (r : Reg.t) = if r.Reg.id >= !s then s := r.Reg.id + 1 in
    Array.iter
      (fun (op : Op.t) ->
        List.iter
          (function Op.Reg x -> see x | Op.Imm _ | Op.Lab _ -> ())
          op.Op.srcs;
        (match op.Op.guard with Op.If g -> see g | Op.True -> ());
        List.iter see op.Op.dests)
      ops;
    !s
  in
  let rev = Array.make (3 * stride) [] in
  Array.iteri
    (fun k op ->
      List.iter
        (fun (d : Reg.t) ->
          let ix = (Reg.cls_rank d.Reg.cls * stride) + d.Reg.id in
          rev.(ix) <- k :: rev.(ix))
        (Op.defs op))
    ops;
  { stride; defs = Array.map (fun l -> Array.of_list (List.rev l)) rev }

(* Index of the last def of [r] strictly before [idx]. *)
let last_def sites (r : Reg.t) idx =
  let a = sites.defs.((Reg.cls_rank r.Reg.cls * sites.stride) + r.Reg.id) in
  let rec go i =
    if i < 0 then None else if a.(i) < idx then Some a.(i) else go (i - 1)
  in
  go (Array.length a - 1)

let rec chase ops sites r idx fuel =
  if fuel = 0 then None
  else
    match last_def sites r idx with
    | None -> Some { base = Entry_base r; off = 0 }
    | Some k -> (
      let op = ops.(k) in
      let opaque = Some { base = Opaque op.Op.id; off = 0 } in
      if op.Op.guard <> Op.True then opaque
      else
        match (op.Op.opcode, op.Op.srcs) with
        | Op.Alu Op.Add, [ Op.Reg a; Op.Imm c ] | Op.Alu Op.Add, [ Op.Imm c; Op.Reg a ]
          -> (
          match chase ops sites a k (fuel - 1) with
          | Some addr -> Some { addr with off = addr.off + c }
          | None -> None)
        | Op.Alu Op.Add, [ Op.Reg a; Op.Reg b ] -> (
          (* base + computed index: rooted at whichever side resolves to a
             region-entry register *)
          match (chase ops sites a k (fuel - 1), chase ops sites b k (fuel - 1))
          with
          | Some { base = Entry_base ra; off }, _ ->
            Some { base = Segment (ra, op.Op.id); off }
          | _, Some { base = Entry_base rb; off } ->
            Some { base = Segment (rb, op.Op.id); off }
          | _ -> opaque)
        | Op.Alu Op.Sub, [ Op.Reg a; Op.Imm c ] -> (
          match chase ops sites a k (fuel - 1) with
          | Some addr -> Some { addr with off = addr.off - c }
          | None -> None)
        | Op.Alu Op.Mov, [ _; Op.Reg a ] -> chase ops sites a k (fuel - 1)
        | Op.Alu Op.Mov, [ _; Op.Imm c ] -> Some { base = Const_base; off = c }
        | _ -> opaque)

let addr_of_op ops sites idx =
  let op = ops.(idx) in
  match (op.Op.opcode, op.Op.srcs) with
  | Op.Load, [ Op.Reg base; Op.Imm off ]
  | Op.Store, [ Op.Reg base; Op.Imm off; _ ] -> (
    match chase ops sites base idx 32 with
    | Some a -> Some { a with off = a.off + off }
    | None -> None)
  | _ -> None

let analyze (prog : Prog.t) (r : Region.t) =
  let ops = Array.of_list r.Region.ops in
  let sites = def_sites ops in
  {
    noalias = Reg.Set.of_list prog.Prog.noalias_bases;
    addrs = Array.init (Array.length ops) (addr_of_op ops sites);
  }

let addr_of t idx = t.addrs.(idx)

let independent t i j =
  match (t.addrs.(i), t.addrs.(j)) with
  | Some a, Some b ->
    if base_equal a.base b.base then a.off <> b.off
    else (
      match (root a.base, root b.base) with
      | Some ra, Some rb ->
        (not (Reg.equal ra rb))
        && Reg.Set.mem ra t.noalias && Reg.Set.mem rb t.noalias
      | _ -> false)
  | _ -> false
