open Cpr_ir

(** Predicate query system (hash-consed production engine).

    Elcor's "predicate-cognizant" analyses (Johnson & Schlansker, MICRO-29)
    answer queries such as "are these two predicates disjoint?".  We
    represent each predicate value as a boolean expression in
    disjunctive normal form over {e condition literals}: one literal per
    [cmpp] operation instance (both destinations of a [cmpp] share the
    literal, with opposite polarities for UN/UC), plus opaque literals for
    predicates that are live into a region.

    Distinct literals are treated as independent, which makes every
    positive answer sound (a syntactic contradiction in every conjunction
    pair is a genuine one) and negative answers conservative.  Expressions
    that exceed a size cap degrade to {!unknown}, for which every query
    answers "cannot prove".

    This engine interns every expression into a per-domain arena with a
    unique small-int id — maximal sharing, O(1) structural equality — and
    memoizes the binary operations and queries on id pairs.  All cache
    misses are computed by {!Pqs_reference} (the original engine, kept as
    the equivalence oracle), so both engines agree by construction; the
    oracle tests pin the caching layer on top.  See DESIGN.md
    "Hash-consed predicate engine". *)

type key = Pqs_intf.key =
  | Cond of int  (** condition computed by the [cmpp] with this op id *)
  | Entry of int  (** opaque: predicate register live into the region *)

type t

val tru : t
val fls : t
val unknown : t
val const : bool -> t
val cond_lit : int -> t
val entry_lit : Reg.t -> t

val and_ : t -> t -> t
val or_ : t -> t -> t
val not_ : t -> t

val is_const_false : t -> bool
val is_const_true : t -> bool
val is_unknown : t -> bool

val equal : t -> t -> bool
(** O(1) interned structural equality. *)

val disjoint : t -> t -> bool
(** [disjoint a b] proves that [a] and [b] are never simultaneously true.
    False means "cannot prove". *)

val implies : t -> t -> bool
(** [implies a b] proves that whenever [a] holds, [b] holds. *)

val eval : (key -> bool) -> t -> bool option
(** Evaluate under a truth assignment of the literals; [None] for
    {!unknown}.  Used by property tests to cross-check {!disjoint} and
    {!implies} against brute force. *)

val keys : t -> key list
(** Distinct literal keys appearing in the expression (empty for
    {!unknown}). *)

val pp : Format.formatter -> t -> unit

val invalidate : unit -> unit
(** Drop the calling domain's arena and memo tables (fresh ids keep
    counting, so stale entries can never alias new nodes).  Outstanding
    values remain valid — they only lose sharing with expressions
    interned later. *)

val trim : unit -> unit
(** {!invalidate}, but only once the arena exceeds a real program's
    working set.  Cached nodes and memoized answers are correct across
    programs (literals are keyed by op id and queries are purely
    syntactic), so invalidation exists to bound memory, not for
    correctness; program-boundary hooks ({!Cpr_pipeline.Passes}
    preparation, {!Cpr_verify.Verify.check_program}) call [trim] to keep
    caches warm across small programs in long fuzz/suite runs. *)

val to_reference : t -> Pqs_reference.t
(** The underlying node, for the equivalence oracle: feed the same
    construction through both engines and compare answers/structure. *)
