open Cpr_ir
open Cpr_obs

let c_queries = Obs.counter "pressure.queries"

type class_stat = {
  cls : Reg.cls;
  maxlive : int;
  maxlive_blind : int;
  peak_at : int;
}

type t = {
  n_points : int;
  per_point : int array array;
  per_point_blind : int array array;
  stats : class_stat array;
}

let classes = [| Reg.Gpr; Reg.Pred; Reg.Btr |]

let stat t cls = t.stats.(Reg.cls_rank cls)
let maxlive t cls = (stat t cls).maxlive
let maxlive_blind t cls = (stat t cls).maxlive_blind

(* Condition under which a cmpp destination is actually written: the
   unconditional (Un/Uc) destinations write 0 even under a false guard
   (Table 1), so they occupy their register from the op onward no matter
   what; every other destination is written only when the guard holds. *)
let write_cond env i (op : Op.t) d =
  if List.exists (Reg.equal d) (Op.writes_when_guard_false op) then Pqs.tru
  else Pred_env.guard_expr env i

(* Greedy slot packing: registers whose occupancy conditions are pairwise
   disjoint share one physical slot (Johnson & Schlansker-style
   predicate-cognizant counting).  A register joins the first slot whose
   accumulated condition it is provably disjoint from; [tru] and [unknown]
   conditions can never share, so they skip the queries entirely. *)
let place slots c =
  if Pqs.is_const_true c || Pqs.is_unknown c then c :: slots
  else
    let rec go = function
      | [] -> [ c ]
      | s :: rest ->
        Obs.incr c_queries;
        if Pqs.disjoint s c then Pqs.or_ s c :: rest else s :: go rest
    in
    go slots

(* Count one program point / cycle: [live] is the blind live list per
   class rank; [cond] gives each register's occupancy condition. *)
let count_point ~refine ~cond live_per_class =
  let blind = Array.map List.length live_per_class in
  let pa =
    if not refine then Array.copy blind
    else
      Array.map
        (fun regs ->
          let slots =
            List.fold_left
              (fun slots r ->
                let c = cond r in
                if Pqs.is_const_false c then slots else place slots c)
              []
              (List.sort Reg.compare regs)
          in
          List.length slots)
        live_per_class
  in
  (blind, pa)

let finish ~n_points ~per_point ~per_point_blind =
  let stats =
    Array.mapi
      (fun k cls ->
        let maxlive = ref 0 and maxlive_blind = ref 0 and peak = ref 0 in
        Array.iteri
          (fun p c ->
            if c > !maxlive then begin
              maxlive := c;
              peak := p
            end)
          per_point.(k);
        Array.iter
          (fun c -> if c > !maxlive_blind then maxlive_blind := c)
          per_point_blind.(k);
        {
          cls;
          maxlive = !maxlive;
          maxlive_blind = !maxlive_blind;
          peak_at = !peak;
        })
      classes
  in
  { n_points; per_point; per_point_blind; stats }

let by_class set =
  let per = Array.make 3 [] in
  Reg.Set.iter
    (fun (r : Reg.t) ->
      let k = Reg.cls_rank r.Reg.cls in
      per.(k) <- r :: per.(k))
    set;
  per

(* Does a register's region-entry value matter?  The blind liveness
   transfer keeps guarded defs alive all the way back to entry (a guarded
   def does not kill), so [live_in] grossly overstates the set of entry
   values anyone can read.  The entry value of [r] is consumable only at
   a demand site with no kill of [r] before it whose execution condition
   is not covered by the write conditions of the preceding defs — the
   Johnson & Schlansker covering test.  In the canonical CPR shape (def
   under [p], use under [p]) the def covers the use, the entry value is
   dead, and the refinement below is what lets the two arms of a cmpp
   share their slots. *)
let entry_matters env liveness (region : Region.t) (ops : Op.t array) =
  let n = Array.length ops in
  let defs = Reg.Tbl.create 16 and kills = Reg.Tbl.create 16 in
  let push tbl r i =
    Reg.Tbl.replace tbl r
      (i :: Option.value ~default:[] (Reg.Tbl.find_opt tbl r))
  in
  Array.iteri
    (fun i op ->
      List.iter (fun d -> push defs d i) op.Op.dests;
      List.iter (fun d -> push kills d i) (Liveness.kills op))
    ops;
  let sites tbl r = Option.value ~default:[] (Reg.Tbl.find_opt tbl r) in
  let needed = Reg.Tbl.create 16 in
  let demand r ~u ~guard =
    if not (Reg.Tbl.mem needed r) then begin
      let killed = List.exists (fun k -> k < u) (sites kills r) in
      if not killed then begin
        let written =
          List.fold_left
            (fun acc d ->
              if d < u then Pqs.or_ acc (write_cond env d ops.(d) r) else acc)
            Pqs.fls (sites defs r)
        in
        Obs.incr c_queries;
        if not (Pqs.implies guard written) then Reg.Tbl.replace needed r ()
      end
    end
  in
  Array.iteri
    (fun i op ->
      let g = Pred_env.guard_expr env i in
      (* src operands are read only when the guard holds; the guard
         register itself and accumulator destinations are read
         unconditionally *)
      List.iter
        (function
          | Op.Reg r -> demand r ~u:i ~guard:g | Op.Imm _ | Op.Lab _ -> ())
        op.Op.srcs;
      Option.iter (fun p -> demand p ~u:i ~guard:Pqs.tru) (Op.guard_reg op);
      List.iter (fun r -> demand r ~u:i ~guard:Pqs.tru) (Op.accumulator_dests op);
      if Op.is_branch op then
        Reg.Set.iter
          (fun r -> demand r ~u:i ~guard:g)
          (Liveness.live_at_target liveness region op))
    ops;
  Reg.Set.iter
    (fun r -> demand r ~u:n ~guard:Pqs.tru)
    (Liveness.live_out_region liveness region);
  fun r -> Reg.Tbl.mem needed r

(* Occupancy conditions accumulate forward: once a register has been
   written under condition [c], it may hold a needed value whenever [c]
   held; an unconditional write ([write_cond] = tru) pins it to tru.
   Registers whose entry value matters (see {!entry_matters}) are
   occupied from entry, hence tru. *)
let make_cond_env env liveness (region : Region.t) (ops : Op.t array) =
  let entry_live = Liveness.live_in liveness region.Region.label in
  let entry_needed =
    match env with
    | None -> fun _ -> true
    | Some env -> entry_matters env liveness region ops
  in
  let tbl = Reg.Tbl.create 16 in
  let get r =
    match Reg.Tbl.find_opt tbl r with
    | Some c -> c
    | None ->
      if Reg.Set.mem r entry_live && entry_needed r then Pqs.tru else Pqs.fls
  in
  let record env i (op : Op.t) =
    List.iter
      (fun d -> Reg.Tbl.replace tbl d (Pqs.or_ (get d) (write_cond env i op d)))
      op.Op.dests
  in
  (get, record)

let sweep ?(refine = true) liveness (_prog : Prog.t) (region : Region.t) =
  let ops = Array.of_list region.Region.ops in
  let n = Array.length ops in
  (* Backward pass: blind live set at each of the n+1 program points
     (point i = just before op i; point n = region exit), using the same
     transfer as [Liveness] — guarded defs do not kill, branches merge
     their target's live-in. *)
  let live = Array.make (n + 1) Reg.Set.empty in
  live.(n) <- Liveness.live_out_region liveness region;
  for i = n - 1 downto 0 do
    let op = ops.(i) in
    let s = live.(i + 1) in
    let s =
      if Op.is_branch op then
        Reg.Set.union s (Liveness.live_at_target liveness region op)
      else s
    in
    let s = List.fold_left (fun s d -> Reg.Set.remove d s) s (Liveness.kills op) in
    let s = List.fold_left (fun s u -> Reg.Set.add u s) s (Op.uses op) in
    live.(i) <- s
  done;
  let env = if refine then Some (Pred_env.analyze region) else None in
  let get_cond, record = make_cond_env env liveness region ops in
  let per_point = Array.init 3 (fun _ -> Array.make (n + 1) 0) in
  let per_point_blind = Array.init 3 (fun _ -> Array.make (n + 1) 0) in
  for i = 0 to n do
    let blind, pa =
      count_point ~refine ~cond:get_cond (by_class live.(i))
    in
    Array.iteri (fun k c -> per_point_blind.(k).(i) <- c) blind;
    Array.iteri (fun k c -> per_point.(k).(i) <- c) pa;
    if i < n then
      Option.iter (fun env -> record env i ops.(i)) env
  done;
  finish ~n_points:(n + 1) ~per_point ~per_point_blind

let contribution t cls i =
  let k = Reg.cls_rank cls in
  if i + 1 >= t.n_points then 0
  else t.per_point_blind.(k).(i + 1) - t.per_point_blind.(k).(i)

(* ------------------------------------------------------------------ *)
(* Exact per-cycle counts over a schedule                              *)

(* Each demand for a register value (a use, a taken exit whose target
   needs it, or region fall-through) pins the register from the cycle of
   the last unconditional write before it (region entry if none) to the
   demand's cycle.  Guarded writes in between only widen the occupancy
   condition, not the interval: if no guard held, an older value (or the
   entry value) is still the one being kept alive. *)
let of_schedule ?(refine = true) liveness (_prog : Prog.t) (region : Region.t)
    ~(ops : Op.t array) ~(cycle : int array) ~length =
  let n = Array.length ops in
  let env = if refine then Some (Pred_env.analyze region) else None in
  let entry_live = Liveness.live_in liveness region.Region.label in
  let entry_needed =
    match env with
    | None -> fun _ -> true
    | Some env -> entry_matters env liveness region ops
  in
  let live_out = Liveness.live_out_region liveness region in
  (* Per register, in program order: definition sites and kill sites. *)
  let defs = Reg.Tbl.create 16 and kills = Reg.Tbl.create 16 in
  let push tbl r i =
    Reg.Tbl.replace tbl r (i :: (Option.value ~default:[] (Reg.Tbl.find_opt tbl r)))
  in
  Array.iteri
    (fun i op ->
      List.iter (fun d -> push defs d i) op.Op.dests;
      List.iter (fun d -> push kills d i) (Liveness.kills op))
    ops;
  (* Occupancy condition at a demand site: tru when the entry value can
     still reach it, else the disjunction of the write conditions of the
     preceding definitions. *)
  let cond_at r u =
    match env with
    | None -> Pqs.tru
    | Some env ->
      let has_kill_before =
        match Reg.Tbl.find_opt kills r with
        | Some l -> List.exists (fun k -> k < u) l
        | None -> false
      in
      if (not has_kill_before) && Reg.Set.mem r entry_live && entry_needed r
      then Pqs.tru
      else
        List.fold_left
          (fun acc d ->
            if d < u then Pqs.or_ acc (write_cond env d ops.(d) r) else acc)
          Pqs.fls
          (Option.value ~default:[] (Reg.Tbl.find_opt defs r))
  in
  let start_of r u =
    match Reg.Tbl.find_opt kills r with
    | None -> 0
    | Some l ->
      List.fold_left
        (fun acc k -> if k < u then max acc cycle.(k) else acc)
        0 l
  in
  (* Collect occupancy intervals (lo, hi, cond) per register. *)
  let ivals : (Reg.t * (int * int * Pqs.t Lazy.t)) list ref = ref [] in
  let add_demand r ~end_cycle ~u =
    let lo = start_of r u in
    let lo, hi = (min lo end_cycle, max lo end_cycle) in
    ivals := (r, (lo, hi, lazy (cond_at r u))) :: !ivals
  in
  Array.iteri
    (fun i op ->
      List.iter (fun r -> add_demand r ~end_cycle:cycle.(i) ~u:i) (Op.uses op);
      if Op.is_branch op then
        Reg.Set.iter
          (fun r -> add_demand r ~end_cycle:cycle.(i) ~u:i)
          (Liveness.live_at_target liveness region op))
    ops;
  Reg.Set.iter
    (fun r -> add_demand r ~end_cycle:(max 0 (length - 1)) ~u:n)
    live_out;
  let n_cycles = max length 0 in
  let per_point = Array.init 3 (fun _ -> Array.make n_cycles 0) in
  let per_point_blind = Array.init 3 (fun _ -> Array.make n_cycles 0) in
  (* Group intervals per register once, then count each cycle. *)
  let by_reg = Reg.Tbl.create 16 in
  List.iter
    (fun (r, iv) ->
      Reg.Tbl.replace by_reg r
        (iv :: (Option.value ~default:[] (Reg.Tbl.find_opt by_reg r))))
    !ivals;
  for c = 0 to n_cycles - 1 do
    let live_per_class = Array.make 3 [] in
    let conds = Reg.Tbl.create 16 in
    Reg.Tbl.iter
      (fun r ivs ->
        let covering = List.filter (fun (lo, hi, _) -> lo <= c && c <= hi) ivs in
        if covering <> [] then begin
          let k = Reg.cls_rank r.Reg.cls in
          live_per_class.(k) <- r :: live_per_class.(k);
          if refine then
            Reg.Tbl.replace conds r
              (List.fold_left
                 (fun acc (_, _, cond) -> Pqs.or_ acc (Lazy.force cond))
                 Pqs.fls covering)
        end)
      by_reg;
    let cond r =
      match Reg.Tbl.find_opt conds r with Some c -> c | None -> Pqs.tru
    in
    let blind, pa = count_point ~refine ~cond live_per_class in
    Array.iteri (fun k v -> per_point_blind.(k).(c) <- v) blind;
    Array.iteri (fun k v -> per_point.(k).(c) <- v) pa
  done;
  finish ~n_points:n_cycles ~per_point ~per_point_blind

let pp ppf t =
  Array.iter
    (fun s ->
      Format.fprintf ppf "%s maxlive %d (blind %d, peak at %d)@."
        (match s.cls with
        | Reg.Gpr -> "gpr"
        | Reg.Pred -> "pred"
        | Reg.Btr -> "btr")
        s.maxlive s.maxlive_blind s.peak_at)
    t.stats
