open Cpr_ir

(** Predicate-aware global liveness over the region graph.

    Guarded definitions do not kill (the guard may be false); the
    unconditional destinations of [cmpp] and unguarded [Pred_init] do.
    Exit labels use the program's [live_out] declaration as boundary
    condition. *)

type t

val kills : Op.t -> Reg.t list
(** Destinations an op writes unconditionally (its guard is [True] and
    the destination is not an accumulator), plus the [cmpp] destinations
    written even under a false guard.  Exposed so {!Pressure} counts
    value lifetimes with exactly the transfer the fixpoint uses. *)

val analyze : Prog.t -> t

val live_in : t -> string -> Reg.Set.t
(** Registers live on entry to a label (program [live_out] for exit
    labels). *)

val live_at_target : t -> Region.t -> Op.t -> Reg.Set.t
(** Registers live at the target of a branch of the region. *)

val live_out_region : t -> Region.t -> Reg.Set.t
(** Registers live when the region is exited by falling through. *)

val live_expr_after : t -> Pred_env.t -> Region.t -> int -> Reg.t -> Pqs.t
(** Symbolic condition under which register [r] is live just after the op
    at the given index: the disjunction over downstream uses (and exits
    where [r] is live) of the path condition to reach them conjoined with
    the use's guard expression.  Over-approximate; used to decide predicate
    promotion legality ([live_expr] must imply the current guard). *)
