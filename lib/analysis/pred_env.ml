open Cpr_ir

module type S = sig
  type pqs
  type t

  val analyze : Region.t -> t
  val ops : t -> Op.t array
  val guard_expr : t -> int -> pqs
  val reg_expr_before : t -> int -> Reg.t -> pqs
  val reg_expr_at_end : t -> Reg.t -> pqs
  val taken_expr : t -> int -> pqs
  val path_cond : t -> int -> int -> pqs
  val path_conds : t -> pqs array
  val fallthrough_expr : t -> pqs
end

(* The whole analysis is functorized over the query engine so the
   equivalence oracle can replay identical constructions through
   [Pqs_reference]; production code uses the [include Make (Pqs)] at the
   bottom. *)
module Make (P : Pqs_intf.S) = struct
  type pqs = P.t

  type t = {
    ops : Op.t array;
    before : P.t Reg.Map.t array;  (* predicate env just before each op *)
    at_end : P.t Reg.Map.t;
  }

  let ops t = t.ops

  let lookup env (r : Reg.t) =
    match Reg.Map.find_opt r env with
    | Some e -> e
    | None -> P.entry_lit r

  let guard_expr_in env (op : Op.t) =
    match op.Op.guard with Op.True -> P.tru | Op.If p -> lookup env p

  (* Value numbering for condition sharing: two cmpps with the same
     (canonicalized) condition over the same register *versions* compute
     the same boolean, so they share one PQS literal — this is what lets
     duplicated compares (ICBM lookaheads, full-CPR predicate columns) be
     recognized as equal or complementary by the scheduler's disjointness
     queries. *)
  type vn_state = {
    versions : int Reg.Tbl.t;  (* reg -> id of its last def op (0 = entry) *)
    cond_ids : (Op.cond * int * int, int) Hashtbl.t;
  }

  let vn_create () =
    { versions = Reg.Tbl.create 32; cond_ids = Hashtbl.create 32 }

  let operand_version st = function
    | Op.Imm i -> -1000000 - i  (* immediates get negative pseudo-versions *)
    | Op.Lab _ -> -2
    | Op.Reg r -> (
      match Reg.Tbl.find_opt st.versions r with
      | Some v -> v
      | None -> -(3 + Reg.hash r))  (* entry version, per register *)

  (* canonical condition: Eq/Lt/Le are canonical; Ne/Ge/Gt are their
     negations *)
  let canonical = function
    | Op.Eq -> (Op.Eq, true)
    | Op.Ne -> (Op.Eq, false)
    | Op.Lt -> (Op.Lt, true)
    | Op.Ge -> (Op.Lt, false)
    | Op.Le -> (Op.Le, true)
    | Op.Gt -> (Op.Le, false)

  let vn_defs st (op : Op.t) =
    List.iter (fun d -> Reg.Tbl.replace st.versions d op.Op.id) (Op.defs op)

  let cond_expr st (op : Op.t) =
    (* Constant-fold conditions on two immediates (e.g. the on-trace FRP
       initialization trick [cmpp.un eq (0, 0) if root], op 36 of Fig. 7). *)
    match (op.Op.opcode, op.Op.srcs) with
    | Op.Cmpp (c, _, _), [ Op.Imm a; Op.Imm b ] -> P.const (Op.eval_cond c a b)
    | Op.Cmpp (c, _, _), [ x; y ] ->
      let ccond, pos = canonical c in
      let key = (ccond, operand_version st x, operand_version st y) in
      let id =
        match Hashtbl.find_opt st.cond_ids key with
        | Some id -> id
        | None ->
          Hashtbl.replace st.cond_ids key op.Op.id;
          op.Op.id
      in
      if pos then P.cond_lit id else P.not_ (P.cond_lit id)
    | Op.Cmpp _, _ -> P.cond_lit op.Op.id
    | _ -> invalid_arg "Pred_env.cond_expr: not a cmpp"

  let apply_action st env (op : Op.t) dest action =
    let g = guard_expr_in env op in
    let c = cond_expr st op in
    let value =
      match action with
      | Op.Un -> P.and_ g c
      | Op.Uc -> P.and_ g (P.not_ c)
      | Op.On -> P.or_ (lookup env dest) (P.and_ g c)
      | Op.Oc -> P.or_ (lookup env dest) (P.and_ g (P.not_ c))
      | Op.An -> P.and_ (lookup env dest) (P.not_ (P.and_ g (P.not_ c)))
      | Op.Ac -> P.and_ (lookup env dest) (P.not_ (P.and_ g c))
    in
    Reg.Map.add dest value env

  let step st env (op : Op.t) =
    let env =
      match op.Op.opcode with
      | Op.Cmpp (_, a1, a2) -> (
        match (op.Op.dests, a2) with
        | [ d1 ], None -> apply_action st env op d1 a1
        | [ d1; d2 ], Some a2 ->
          apply_action st (apply_action st env op d1 a1) op d2 a2
        | _ -> env (* malformed; Validate reports it *))
      | Op.Pred_init bits ->
        List.fold_left2
          (fun env d b -> Reg.Map.add d (P.const b) env)
          env op.Op.dests bits
      | Op.Alu _ | Op.Falu _ | Op.Load | Op.Store | Op.Pbr | Op.Branch -> env
    in
    vn_defs st op;
    env

  let analyze (r : Region.t) =
    let ops = Array.of_list r.Region.ops in
    let n = Array.length ops in
    let before = Array.make n Reg.Map.empty in
    let env = ref Reg.Map.empty in
    let st = vn_create () in
    for i = 0 to n - 1 do
      before.(i) <- !env;
      env := step st !env ops.(i)
    done;
    { ops; before; at_end = !env }

  let guard_expr t i = guard_expr_in t.before.(i) t.ops.(i)
  let reg_expr_before t i r = lookup t.before.(i) r
  let reg_expr_at_end t r = lookup t.at_end r

  let taken_expr t i =
    assert (Op.is_branch t.ops.(i));
    guard_expr t i

  let path_cond t i j =
    let acc = ref P.tru in
    for k = i to j - 1 do
      if Op.is_branch t.ops.(k) then
        acc := P.and_ !acc (P.not_ (taken_expr t k))
    done;
    !acc

  let fallthrough_expr t = path_cond t 0 (Array.length t.ops)

  let path_conds t =
    let n = Array.length t.ops in
    let pc = Array.make (n + 1) P.tru in
    for i = 0 to n - 1 do
      pc.(i + 1) <-
        (if Op.is_branch t.ops.(i) then
           P.and_ pc.(i) (P.not_ (taken_expr t i))
         else pc.(i))
    done;
    pc
end

include Make (Pqs)
