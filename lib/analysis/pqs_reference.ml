open Cpr_ir

type key = Pqs_intf.key =
  | Cond of int
  | Entry of int

type lit = {
  key : key;
  pos : bool;
}

(* A conjunction is a list of literals sorted by key with unique keys; a
   contradictory conjunction is represented by its absence.  The whole
   expression is a disjunction of conjunctions; [Dnf []] is false and
   [Dnf [ [] ]] is true. *)
type t =
  | Unknown
  | Dnf of lit list list

let max_conjs = 256
let key_compare = Pqs_intf.key_compare
let tru = Dnf [ [] ]
let fls = Dnf []
let unknown = Unknown
let const b = if b then tru else fls
let cond_lit id = Dnf [ [ { key = Cond id; pos = true } ] ]
let entry_lit (r : Reg.t) = Dnf [ [ { key = Entry r.Reg.id; pos = true } ] ]

(* Merge two sorted conjunctions; [None] on contradiction. *)
let conj_and c1 c2 =
  let rec go acc c1 c2 =
    match (c1, c2) with
    | [], rest | rest, [] -> Some (List.rev_append acc rest)
    | l1 :: t1, l2 :: t2 -> (
      match key_compare l1.key l2.key with
      | 0 -> if l1.pos = l2.pos then go (l1 :: acc) t1 t2 else None
      | c when c < 0 -> go (l1 :: acc) t1 c2
      | _ -> go (l2 :: acc) c1 t2)
  in
  go [] c1 c2

let conj_subsumes small big =
  (* [small] implies [big] as conjunctions when big ⊆ small *)
  List.for_all (fun l -> List.exists (fun l' -> l = l') small) big

let add_conj conjs c =
  if List.exists (fun c' -> conj_subsumes c c') conjs then conjs
  else c :: List.filter (fun c' -> not (conj_subsumes c' c)) conjs

let dnf cs = if List.length cs > max_conjs then Unknown else Dnf cs

(* Constant operands dominate in practice (unguarded ops, straight-line
   prefixes), so short-circuit them before touching the DNF machinery:
   the general paths below re-run subsumption over every conjunction. *)
let or_ a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> Unknown
  | Dnf [], x | x, Dnf [] -> x
  | Dnf [ [] ], _ | _, Dnf [ [] ] -> tru
  | Dnf ca, Dnf cb -> dnf (List.fold_left add_conj ca cb)

let and_ a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> Unknown
  | Dnf [ [] ], x | x, Dnf [ [] ] -> x
  | Dnf [], _ | _, Dnf [] -> fls
  | Dnf ca, Dnf cb ->
    let product =
      List.concat_map
        (fun c1 -> List.filter_map (fun c2 -> conj_and c1 c2) cb)
        ca
    in
    dnf (List.fold_left add_conj [] product)

let not_ = function
  | Unknown -> Unknown
  | Dnf conjs ->
    (* De Morgan: the negation of a DNF is the conjunction, over its
       conjunctions, of the disjunction of the negated literals. *)
    List.fold_left
      (fun acc conj ->
        let negated =
          Dnf (List.map (fun l -> [ { l with pos = not l.pos } ]) conj)
        in
        and_ acc negated)
      tru conjs

let is_const_false = function Dnf [] -> true | Dnf _ | Unknown -> false
let is_const_true = function Dnf [ [] ] -> true | Dnf _ | Unknown -> false
let is_unknown = function Unknown -> true | Dnf _ -> false

let disjoint a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> false
  | Dnf [], _ | _, Dnf [] -> true
  | Dnf ca, Dnf cb ->
    List.for_all
      (fun c1 -> List.for_all (fun c2 -> conj_and c1 c2 = None) cb)
      ca

let implies a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> false
  | Dnf [], _ -> true
  | Dnf ca, Dnf cb ->
    List.for_all (fun c1 -> List.exists (fun c2 -> conj_subsumes c1 c2) cb) ca

let iter_lits f = function
  | Unknown -> ()
  | Dnf conjs -> List.iter (List.iter (fun l -> f l.key l.pos)) conjs

let eval assign = function
  | Unknown -> None
  | Dnf conjs ->
    Some
      (List.exists
         (fun conj -> List.for_all (fun l -> assign l.key = l.pos) conj)
         conjs)

let keys = function
  | Unknown -> []
  | Dnf conjs ->
    List.sort_uniq key_compare (List.concat_map (List.map (fun l -> l.key)) conjs)

let pp_key ppf = function
  | Cond id -> Format.fprintf ppf "c%d" id
  | Entry id -> Format.fprintf ppf "p%d@entry" id

let pp ppf = function
  | Unknown -> Format.pp_print_string ppf "?"
  | Dnf [] -> Format.pp_print_string ppf "false"
  | Dnf [ [] ] -> Format.pp_print_string ppf "true"
  | Dnf conjs ->
    let pp_lit ppf l =
      Format.fprintf ppf "%s%a" (if l.pos then "" else "~") pp_key l.key
    in
    let pp_conj ppf = function
      | [] -> Format.pp_print_string ppf "true"
      | c ->
        Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "&")
          pp_lit ppf c
    in
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
      pp_conj ppf conjs
