(** The original structural-recursion predicate query engine, kept
    verbatim as the equivalence oracle for the hash-consed {!Pqs}
    (mirroring the [schedule_reference] pattern): every operation
    recomputes over freshly built DNF trees, with no interning and no
    memoization.  {!Pqs} delegates its cache-miss computations to this
    module, so the two engines are algorithmically identical by
    construction; the oracle tests in [test_pqs]/[test_verify] then pin
    the caching layer itself (same answers, same printed structure) over
    random expressions and real programs. *)

include Pqs_intf.S

val iter_lits : (Pqs_intf.key -> bool -> unit) -> t -> unit
(** Every literal occurrence (key, polarity), in DNF order; nothing for
    {!unknown}.  {!Pqs} folds this into per-node polarity fingerprints
    at intern time. *)
