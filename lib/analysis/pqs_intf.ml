open Cpr_ir

(** The shared contract of the predicate query engines.

    Two implementations exist: {!Pqs}, the production hash-consed engine
    (interned expressions, memoized queries), and {!Pqs_reference}, the
    original structural-recursion engine kept as the equivalence oracle —
    the same pattern as [List_sched.schedule_reference].  Analyses that
    need to run under either engine ({!Pred_env.Make}) are functorized
    over this signature. *)

type key =
  | Cond of int  (** condition computed by the [cmpp] with this op id *)
  | Entry of int  (** opaque: predicate register live into the region *)

let key_compare a b =
  match (a, b) with
  | Cond x, Cond y -> Int.compare x y
  | Entry x, Entry y -> Int.compare x y
  | Cond _, Entry _ -> -1
  | Entry _, Cond _ -> 1

module type S = sig
  type t

  val tru : t
  val fls : t
  val unknown : t
  val const : bool -> t
  val cond_lit : int -> t
  val entry_lit : Reg.t -> t

  val and_ : t -> t -> t
  val or_ : t -> t -> t
  val not_ : t -> t

  val is_const_false : t -> bool
  val is_const_true : t -> bool
  val is_unknown : t -> bool

  val disjoint : t -> t -> bool
  (** [disjoint a b] proves that [a] and [b] are never simultaneously
      true.  False means "cannot prove". *)

  val implies : t -> t -> bool
  (** [implies a b] proves that whenever [a] holds, [b] holds. *)

  val eval : (key -> bool) -> t -> bool option
  (** Evaluate under a truth assignment of the literals; [None] for
      {!unknown}. *)

  val keys : t -> key list
  (** Distinct literal keys appearing in the expression (empty for
      {!unknown}). *)

  val pp : Format.formatter -> t -> unit
end
