open Cpr_ir

(** Static height analysis of one region.

    Answers, without running the scheduler or simulator, "how short can
    this region's schedule possibly be, and is the branch chain the
    reason it is not shorter?" — the profitability question Schlansker et
    al. leave open (Section 8).  Two lower bounds over the region's
    {!Depgraph}:

    - {e dependence height}: the longest latency-weighted dependence
      chain ([max over ops of asap + latency]);
    - {e branch height}: the same chain restricted to branch and [pbr]
      operations — the quantity control CPR exists to reduce.  It is
      predicate-aware for free: {!Depgraph.build} already omits Ctrl
      edges between branches whose taken-conditions {!Pqs.disjoint}
      proves incompatible, so disjointly-guarded branches do not
      serialize.

    Combined with the {!Resbound} resource bound,
    [bound = max dep_height res_bound] is a true lower bound on every
    {!List_sched} schedule length (soundness: any legal schedule
    satisfies [cycle op >= asap op] edge by edge, and its length is
    [max (cycle + latency)]; the resource argument is {!Resbound}'s).
    The QCheck battery in [test/test_height.ml] checks the inequality on
    fuzz-generated programs across every machine description.

    This module also owns the list scheduler's critical-path priority
    (longest path from each op to a sink) — one implementation serves
    the scheduler, the CPR profitability gate and the schedule-quality
    lint, so their notions of "critical path" cannot drift. *)

type summary = {
  dep_height : int;
  branch_height : int;
  res_bound : int;
  bound : int;  (** [max dep_height res_bound] *)
}

val asap : Depgraph.t -> int array
(** Earliest issue cycle of each op ignoring resources
    (re-export of {!Depgraph.asap}). *)

val dep_height : Depgraph.t -> int
(** Longest dependence chain: [max (asap + latency)] over all ops. *)

val branch_height : Depgraph.t -> int
(** Longest dependence chain through branch/[pbr] ops only. *)

val priority : Depgraph.t -> int array
(** List-scheduling priority: longest latency-weighted path from each op
    to any sink (critical-path height at and below the op). *)

val slack : Depgraph.t -> int array
(** Per-op scheduling freedom: [dep_height - (asap + priority)].
    Zero exactly on the critical path(s); always non-negative. *)

val summarize : Cpr_machine.Descr.t -> Depgraph.t -> summary
(** All four numbers for one region.  Counts one [height.bound_queries]
    observation. *)

val of_region :
  Cpr_machine.Descr.t -> Prog.t -> Liveness.t -> Region.t -> summary
(** Convenience: build the region's {!Depgraph} and summarize it. *)
