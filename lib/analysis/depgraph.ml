open Cpr_ir

type kind =
  | Flow of Reg.t
  | Anti of Reg.t
  | Output of Reg.t
  | Mem_flow
  | Mem_anti
  | Mem_output
  | Ctrl
  | Exit_live of Reg.t
  | Br_anticipation

type edge = {
  src : int;
  dst : int;
  kind : kind;
  latency : int;
}

type t = {
  ops : Op.t array;
  lat : int array;
  edges : edge list;
  preds : edge list array;
  succs : edge list array;
}

type flavor =
  | Or_acc
  | And_acc

type access =
  | Use
  | Def  (** plain destination write *)
  | Acc of flavor  (** wired-or / wired-and read-modify-write *)

let flavor_of_action = function
  | Op.On | Op.Oc -> Some Or_acc
  | Op.An | Op.Ac -> Some And_acc
  | Op.Un | Op.Uc -> None

(* Per-register access events over a whole op array, in one pass:
   [events.(r)] lists [(op index, access)] with indices ascending and,
   within one op, accesses in evaluation order (uses first).  Replaces
   the old per-register rescan of every op, which made register edge
   construction O(ops x registers). *)
let access_events ops =
  let events : (int * access) list ref Reg.Tbl.t =
    Reg.Tbl.create (2 * Array.length ops)
  in
  let push r ev =
    match Reg.Tbl.find_opt events r with
    | Some l -> l := ev :: !l
    | None -> Reg.Tbl.add events r (ref [ ev ])
  in
  Array.iteri
    (fun i (op : Op.t) ->
      List.iter
        (function Op.Reg x -> push x (i, Use) | Op.Imm _ | Op.Lab _ -> ())
        op.Op.srcs;
      (match op.Op.guard with
      | Op.If g -> push g (i, Use)
      | Op.True -> ());
      match op.Op.opcode with
      | Op.Cmpp (_, a1, a2) ->
        List.iter2
          (fun act d ->
            push d
              ( i,
                match flavor_of_action act with
                | Some f -> Acc f
                | None -> Def ))
          (a1 :: Option.to_list a2)
          op.Op.dests
      | _ -> List.iter (fun d -> push d (i, Def)) op.Op.dests)
    ops;
  events

(* Does the op unconditionally kill [r]?  Guarded plain defs and
   accumulator writes do not; UN/UC cmpp destinations write even under a
   false guard. *)
let kills_unconditionally (op : Op.t) r =
  List.exists (Reg.equal r) (Op.writes_when_guard_false op)
  || (op.Op.guard = Op.True
     && List.exists (Reg.equal r) (Op.defs op)
     && not (List.exists (Reg.equal r) (Op.accumulator_dests op)))

let build machine (prog : Prog.t) liveness (region : Region.t) =
  let ops = Array.of_list region.Region.ops in
  let n = Array.length ops in
  let lat = Array.map (Cpr_machine.Descr.latency_of machine) ops in
  let env = Pred_env.analyze region in
  let guard_expr = Array.init n (Pred_env.guard_expr env) in
  (* Edges accumulate in a preallocated, doubling array; the exposed
     [edges] list and the [preds]/[succs] adjacency lists are carved out
     of it at the end in exactly the order the old list-accumulating
     construction produced (several core passes iterate them). *)
  let dummy = { src = 0; dst = 0; kind = Ctrl; latency = 0 } in
  let earr = ref (Array.make (max 16 (4 * n)) dummy) in
  let n_edges = ref 0 in
  let add src dst kind latency =
    if !n_edges = Array.length !earr then begin
      let bigger = Array.make (2 * !n_edges) dummy in
      Array.blit !earr 0 bigger 0 !n_edges;
      earr := bigger
    end;
    !earr.(!n_edges) <- { src; dst; kind; latency };
    incr n_edges
  in

  (* Register dependences, one register at a time. *)
  let reg_edges r evs =
    let rec pairs = function
      | [] -> ()
      | (i, ai) :: rest ->
        let killed = ref false in
        List.iter
          (fun (j, aj) ->
            if i <> j && not !killed then begin
              (match (ai, aj) with
              | Acc f1, Acc f2 when f1 = f2 -> ()
              | (Def | Acc _), Use -> add i j (Flow r) lat.(i)
              | Use, (Def | Acc _) -> add i j (Anti r) (1 - lat.(j))
              | (Def | Acc _), Acc _ -> add i j (Flow r) lat.(i)
              | (Def | Acc _), Def -> add i j (Output r) (lat.(i) - lat.(j) + 1)
              | Use, Use -> ());
              (* Stop extending pairs from [i] past an unconditional kill:
                 transitivity through the killer preserves ordering.  The
                 kill takes effect at the killer's *definition* event —
                 a read-modify-write op's own use event must not hide its
                 def from earlier events. *)
              if
                (match aj with
                | Def -> kills_unconditionally ops.(j) r
                | Acc _ | Use -> false)
                && j > i
              then killed := true
            end)
          rest;
        pairs rest
    in
    pairs evs
  in
  (* Visit registers in the same sorted order [Reg.Set.iter] over the
     region's registers used to, so edge order is unchanged. *)
  let events = access_events ops in
  let regs =
    Reg.Tbl.fold (fun r _ acc -> Reg.Set.add r acc) events Reg.Set.empty
  in
  Reg.Set.iter
    (fun r -> reg_edges r (List.rev !(Reg.Tbl.find events r)))
    regs;

  (* Memory dependences. *)
  let alias = Alias.analyze prog region in
  for i = 0 to n - 1 do
    if Op.is_mem ops.(i) then
      for j = i + 1 to n - 1 do
        if
          Op.is_mem ops.(j)
          && (Op.is_store ops.(i) || Op.is_store ops.(j))
          && (not (Alias.independent alias i j))
          && not (Pqs.disjoint guard_expr.(i) guard_expr.(j))
        then
          match (Op.is_store ops.(i), Op.is_store ops.(j)) with
          | true, false -> add i j Mem_flow lat.(i)
          | false, true -> add i j Mem_anti 0
          | true, true -> add i j Mem_output 1
          | false, false -> ()
      done
  done;

  (* Control dependences around branches. *)
  for b = 0 to n - 1 do
    if Op.is_branch ops.(b) then begin
      let taken = guard_expr.(b) in
      let live = Liveness.live_at_target liveness region ops.(b) in
      (* Forward: ops after the branch. *)
      for j = b + 1 to n - 1 do
        let opj = ops.(j) in
        if not (Pqs.disjoint taken guard_expr.(j)) then
          if Op.is_branch opj || Op.is_store opj then add b j Ctrl lat.(b)
          else
            List.iter
              (fun d ->
                if Reg.Set.mem d live then add b j (Exit_live d) lat.(b))
              (Op.defs opj)
      done;
      (* Backward: effects the taken path needs must land before control
         transfers at [issue(b) + lat(b)]. *)
      for i = 0 to b - 1 do
        let opi = ops.(i) in
        if not (Pqs.disjoint guard_expr.(i) taken) then
          if Op.is_store opi then
            add i b Br_anticipation (lat.(i) - lat.(b))
          else if
            List.exists (fun d -> Reg.Set.mem d live) (Op.defs opi)
          then add i b Br_anticipation (lat.(i) - lat.(b))
      done
    end
  done;

  (* The old code prepended each edge onto a list, so the exposed list is
     in reverse addition order and the adjacency lists (built by a second
     prepend pass over it) are in addition order.  Reproduce both. *)
  let preds = Array.make n [] and succs = Array.make n [] in
  let edges = ref [] in
  let arr = !earr in
  for k = 0 to !n_edges - 1 do
    edges := arr.(k) :: !edges
  done;
  for k = !n_edges - 1 downto 0 do
    let e = arr.(k) in
    succs.(e.src) <- e :: succs.(e.src);
    preds.(e.dst) <- e :: preds.(e.dst)
  done;
  { ops; lat; edges = !edges; preds; succs }

let n_ops t = Array.length t.ops
let op t i = t.ops.(i)
let edges t = t.edges
let preds t i = t.preds.(i)
let succs t i = t.succs.(i)

(* Edges always point from lower to higher op index except none do —
   all constructed edges satisfy src < dst — so program order is a
   topological order. *)
let asap t =
  let n = n_ops t in
  let a = Array.make n 0 in
  for j = 0 to n - 1 do
    List.iter
      (fun e -> a.(j) <- max a.(j) (a.(e.src) + e.latency))
      t.preds.(j)
  done;
  a

let height t =
  let a = asap t in
  let h = ref 0 in
  for i = 0 to n_ops t - 1 do
    h := max !h (a.(i) + t.lat.(i))
  done;
  !h

let priority t =
  let n = n_ops t in
  let p = Array.make n 0 in
  for i = n - 1 downto 0 do
    p.(i) <- t.lat.(i);
    List.iter (fun e -> p.(i) <- max p.(i) (e.latency + p.(e.dst))) t.succs.(i)
  done;
  p

let kind_name = function
  | Flow r -> "flow:" ^ Reg.to_string r
  | Anti r -> "anti:" ^ Reg.to_string r
  | Output r -> "out:" ^ Reg.to_string r
  | Mem_flow -> "mem-flow"
  | Mem_anti -> "mem-anti"
  | Mem_output -> "mem-out"
  | Ctrl -> "ctrl"
  | Exit_live r -> "exit-live:" ^ Reg.to_string r
  | Br_anticipation -> "br-anticipation"

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf ppf "%d -> %d  %s (lat %d)@,"
        t.ops.(e.src).Op.id t.ops.(e.dst).Op.id (kind_name e.kind) e.latency)
    (List.rev t.edges);
  Format.fprintf ppf "@]"
