open Cpr_ir

type kind =
  | Flow of Reg.t
  | Anti of Reg.t
  | Output of Reg.t
  | Mem_flow
  | Mem_anti
  | Mem_output
  | Ctrl
  | Exit_live of Reg.t
  | Br_anticipation

type edge = {
  src : int;
  dst : int;
  kind : kind;
  latency : int;
}

type t = {
  ops : Op.t array;
  lat : int array;
  edges : edge list;
  preds : edge list array;
  succs : edge list array;
}

(* Access events are packed small ints, [(op index lsl 3) lor code]:
   code 0 = use, 1 = unconditionally-killing def (unguarded plain def,
   or a UN/UC [cmpp] destination, which writes even under a false
   guard), 2 = guarded def, 3/4 = wired-or / wired-and accumulator
   read-modify-write.  The kill bit is precomputed here so the pairwise
   edge loop below never re-derives it per pair. *)
let ev_use = 0
let ev_def_kill = 1
let ev_def = 2
let ev_acc_or = 3
let ev_acc_and = 4

let acc_code_of_action = function
  | Op.On | Op.Oc -> ev_acc_or
  | Op.An | Op.Ac -> ev_acc_and
  | Op.Un | Op.Uc -> ev_def_kill

(* A per-register growing buffer of packed events, appended in program
   order (no per-event tuple or list cell — the pair loops below scan
   flat int arrays). *)
type evbuf = {
  mutable buf : int array;
  mutable len : int;
}

let ev_push b ev =
  if b.len = Array.length b.buf then begin
    let bigger = Array.make (2 * b.len) 0 in
    Array.blit b.buf 0 bigger 0 b.len;
    b.buf <- bigger
  end;
  b.buf.(b.len) <- ev;
  b.len <- b.len + 1

(* Per-register access events over a whole op array, in one pass:
   events per register in ascending op-index order and, within one op,
   in evaluation order (uses first).  Replaces the old per-register
   rescan of every op, which made register edge construction
   O(ops x registers).  Registers index the slot array arithmetically
   ([Reg.cls_rank cls * stride + id]), so the pass does no hashing and
   ascending slot order is exactly [Reg.compare] order. *)
let access_events stride ops =
  let events : evbuf option array = Array.make (3 * stride) None in
  let push (r : Reg.t) ev =
    let ix = (Reg.cls_rank r.Reg.cls * stride) + r.Reg.id in
    match events.(ix) with
    | Some b -> ev_push b ev
    | None -> events.(ix) <- Some { buf = Array.make 4 ev; len = 1 }
  in
  Array.iteri
    (fun i (op : Op.t) ->
      List.iter
        (function
          | Op.Reg x -> push x ((i lsl 3) lor ev_use)
          | Op.Imm _ | Op.Lab _ -> ())
        op.Op.srcs;
      (match op.Op.guard with
      | Op.If g -> push g ((i lsl 3) lor ev_use)
      | Op.True -> ());
      match op.Op.opcode with
      | Op.Cmpp (_, a1, a2) ->
        List.iter2
          (fun act d -> push d ((i lsl 3) lor acc_code_of_action act))
          (a1 :: Option.to_list a2)
          op.Op.dests
      | _ ->
        let code = if op.Op.guard = Op.True then ev_def_kill else ev_def in
        List.iter (fun d -> push d ((i lsl 3) lor code)) op.Op.dests)
    ops;
  events

let build machine (prog : Prog.t) liveness (region : Region.t) =
  let ops = Array.of_list region.Region.ops in
  let n = Array.length ops in
  let lat = Array.map (Cpr_machine.Descr.latency_of machine) ops in
  let env = Pred_env.analyze region in
  let guard_expr = Array.init n (Pred_env.guard_expr env) in
  (* Edges accumulate in a preallocated, doubling array; the exposed
     [edges] list and the [preds]/[succs] adjacency lists are carved out
     of it at the end in exactly the order the old list-accumulating
     construction produced (several core passes iterate them). *)
  let dummy = { src = 0; dst = 0; kind = Ctrl; latency = 0 } in
  let earr = ref (Array.make (max 16 (4 * n)) dummy) in
  let n_edges = ref 0 in
  let add src dst kind latency =
    if !n_edges = Array.length !earr then begin
      let bigger = Array.make (2 * !n_edges) dummy in
      Array.blit !earr 0 bigger 0 !n_edges;
      earr := bigger
    end;
    !earr.(!n_edges) <- { src; dst; kind; latency };
    incr n_edges
  in

  (* Register dependences, one register at a time: every ordered event
     pair (a, b) with a before b in program order, truncated past an
     unconditional kill — transitivity through the killer preserves
     ordering.  The kill takes effect at the killer's *definition* event
     (a read-modify-write op's own use event must not hide its def from
     earlier events), and same-op pairs are skipped.  The edge cases
     mirror the old variant match: same-flavor accumulator pairs
     commute, def/acc-to-use is flow, use-to-def/acc is anti,
     def/acc-to-acc is flow, def/acc-to-def is output. *)
  let reg_edges r (ev : evbuf) =
    let buf = ev.buf and m = ev.len in
    for a = 0 to m - 1 do
      let ea = buf.(a) in
      let i = ea lsr 3 and ca = ea land 7 in
      let killed = ref false in
      let b = ref (a + 1) in
      while (not !killed) && !b < m do
        let eb = buf.(!b) in
        let j = eb lsr 3 and cb = eb land 7 in
        if i <> j then begin
          if ca >= ev_acc_or && ca = cb then ()
          else if ca <> ev_use && cb = ev_use then add i j (Flow r) lat.(i)
          else if ca = ev_use && cb <> ev_use then
            add i j (Anti r) (1 - lat.(j))
          else if ca <> ev_use && cb >= ev_acc_or then add i j (Flow r) lat.(i)
          else if ca <> ev_use && cb <> ev_use then
            add i j (Output r) (lat.(i) - lat.(j) + 1);
          if cb = ev_def_kill && j > i then killed := true
        end;
        incr b
      done
    done
  in
  (* Visit registers in ascending [Reg.compare] order — the same order
     [Reg.Set.iter] used to produce — so edge order is unchanged; with
     arithmetic indexing that is simply ascending slot order. *)
  let stride =
    let s =
      ref
        (max 1
           (max prog.Prog.next_gpr
              (max prog.Prog.next_pred prog.Prog.next_btr)))
    in
    let see (r : Reg.t) = if r.Reg.id >= !s then s := r.Reg.id + 1 in
    Array.iter
      (fun (op : Op.t) ->
        List.iter
          (function Op.Reg x -> see x | Op.Imm _ | Op.Lab _ -> ())
          op.Op.srcs;
        (match op.Op.guard with Op.If g -> see g | Op.True -> ());
        List.iter see op.Op.dests)
      ops;
    !s
  in
  let events = access_events stride ops in
  for ix = 0 to Array.length events - 1 do
    match events.(ix) with
    | Some ev ->
      let cls =
        if ix < stride then Reg.Gpr
        else if ix < 2 * stride then Reg.Pred
        else Reg.Btr
      in
      reg_edges { Reg.id = ix mod stride; cls } ev
    | None -> ()
  done;

  (* Memory dependences. *)
  let alias = Alias.analyze prog region in
  for i = 0 to n - 1 do
    if Op.is_mem ops.(i) then
      for j = i + 1 to n - 1 do
        if
          Op.is_mem ops.(j)
          && (Op.is_store ops.(i) || Op.is_store ops.(j))
          && (not (Alias.independent alias i j))
          && not (Pqs.disjoint guard_expr.(i) guard_expr.(j))
        then
          match (Op.is_store ops.(i), Op.is_store ops.(j)) with
          | true, false -> add i j Mem_flow lat.(i)
          | false, true -> add i j Mem_anti 0
          | true, true -> add i j Mem_output 1
          | false, false -> ()
      done
  done;

  (* Control dependences around branches. *)
  for b = 0 to n - 1 do
    if Op.is_branch ops.(b) then begin
      let taken = guard_expr.(b) in
      (* [disjoint x tru] holds only when [x] is const-false (or proves
         so), so the dominant unguarded-op case resolves on one constant
         test instead of a full query. *)
      let taken_live = not (Pqs.is_const_false taken) in
      let live = Liveness.live_at_target liveness region ops.(b) in
      (* Forward: ops after the branch. *)
      for j = b + 1 to n - 1 do
        let opj = ops.(j) in
        let compatible =
          if Pqs.is_const_true guard_expr.(j) then taken_live
          else not (Pqs.disjoint taken guard_expr.(j))
        in
        if compatible then
          if Op.is_branch opj || Op.is_store opj then add b j Ctrl lat.(b)
          else
            List.iter
              (fun d ->
                if Reg.Set.mem d live then add b j (Exit_live d) lat.(b))
              (Op.defs opj)
      done;
      (* Backward: effects the taken path needs must land before control
         transfers at [issue(b) + lat(b)]. *)
      for i = 0 to b - 1 do
        let opi = ops.(i) in
        let compatible =
          if Pqs.is_const_true guard_expr.(i) then taken_live
          else not (Pqs.disjoint guard_expr.(i) taken)
        in
        if compatible then
          if Op.is_store opi then
            add i b Br_anticipation (lat.(i) - lat.(b))
          else if
            List.exists (fun d -> Reg.Set.mem d live) (Op.defs opi)
          then add i b Br_anticipation (lat.(i) - lat.(b))
      done
    end
  done;

  (* The old code prepended each edge onto a list, so the exposed list is
     in reverse addition order and the adjacency lists (built by a second
     prepend pass over it) are in addition order.  Reproduce both. *)
  let preds = Array.make n [] and succs = Array.make n [] in
  let edges = ref [] in
  let arr = !earr in
  for k = 0 to !n_edges - 1 do
    edges := arr.(k) :: !edges
  done;
  for k = !n_edges - 1 downto 0 do
    let e = arr.(k) in
    succs.(e.src) <- e :: succs.(e.src);
    preds.(e.dst) <- e :: preds.(e.dst)
  done;
  { ops; lat; edges = !edges; preds; succs }

let n_ops t = Array.length t.ops
let op t i = t.ops.(i)
let latency t i = t.lat.(i)
let edges t = t.edges
let preds t i = t.preds.(i)
let succs t i = t.succs.(i)

(* Edges always point from lower to higher op index except none do —
   all constructed edges satisfy src < dst — so program order is a
   topological order. *)
let asap t =
  let n = n_ops t in
  let a = Array.make n 0 in
  for j = 0 to n - 1 do
    List.iter
      (fun e -> a.(j) <- max a.(j) (a.(e.src) + e.latency))
      t.preds.(j)
  done;
  a

let height t =
  let a = asap t in
  let h = ref 0 in
  for i = 0 to n_ops t - 1 do
    h := max !h (a.(i) + t.lat.(i))
  done;
  !h

let kind_name = function
  | Flow r -> "flow:" ^ Reg.to_string r
  | Anti r -> "anti:" ^ Reg.to_string r
  | Output r -> "out:" ^ Reg.to_string r
  | Mem_flow -> "mem-flow"
  | Mem_anti -> "mem-anti"
  | Mem_output -> "mem-out"
  | Ctrl -> "ctrl"
  | Exit_live r -> "exit-live:" ^ Reg.to_string r
  | Br_anticipation -> "br-anticipation"

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf ppf "%d -> %d  %s (lat %d)@,"
        t.ops.(e.src).Op.id t.ops.(e.dst).Op.id (kind_name e.kind) e.latency)
    (List.rev t.edges);
  Format.fprintf ppf "@]"
