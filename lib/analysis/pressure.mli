open Cpr_ir

(** Predicate-aware register-pressure (MAXLIVE) analysis.

    Control CPR spends predicate registers and longer live ranges to buy
    branch height; this module measures that cost statically, per
    register class ({!Reg.cls}), two ways:

    - {!sweep} counts live registers at every program point of an
      {e unscheduled} region, walking the {!Liveness} transfer backward —
      a cheap pre-schedule estimate used by the CPR gates.
    - {!of_schedule} counts live values at every {e cycle} of a
      {!Cpr_sched}-style schedule (passed as parallel ops/cycle arrays so
      this library does not depend on the scheduler): each demand for a
      value pins its register from the last unconditional write before it
      to the demand's cycle.  This is what a post-scheduling allocator
      sees, so allocatability checks use it.

    Both refine the count through {!Pqs.disjoint}: two registers whose
    occupancy conditions (definition-site guard expressions from
    {!Pred_env}; [tru] for entry values that some demand can actually
    consume — a guarded def covering all its uses makes the entry value
    dead even though the predicate-blind {!Liveness} keeps it live-in)
    are provably mutually exclusive can share one physical register —
    the predicate-cognizant counting of Johnson & Schlansker.  The refined
    figure is sandwiched between the true dynamic maximum and the
    predicate-blind count; [test/test_pressure.ml] holds the oracle.

    Note the sweep and the schedule counts are not ordered in general:
    scheduling can overlap lifetimes that program order kept apart, so
    neither bounds the other.  Consumers wanting a single conservative
    figure take the max of both. *)

type class_stat = {
  cls : Reg.cls;
  maxlive : int;  (** predicate-aware maximum over points/cycles *)
  maxlive_blind : int;  (** without the disjointness refinement *)
  peak_at : int;  (** point (sweep) or cycle ({!of_schedule}) of the peak *)
}

type t = {
  n_points : int;
  per_point : int array array;
      (** predicate-aware count, indexed [Reg.cls_rank cls].(point) *)
  per_point_blind : int array array;
  stats : class_stat array;  (** indexed by {!Reg.cls_rank} *)
}

val stat : t -> Reg.cls -> class_stat
val maxlive : t -> Reg.cls -> int
val maxlive_blind : t -> Reg.cls -> int

val sweep : ?refine:bool -> Liveness.t -> Prog.t -> Region.t -> t
(** Program-point sweep over the unscheduled region: point [i] is just
    before op [i]; point [n] is the region exit.  [refine:false] skips
    the {!Pqs} work entirely (counts equal the blind figures). *)

val of_schedule :
  ?refine:bool -> Liveness.t -> Prog.t -> Region.t -> ops:Op.t array
  -> cycle:int array -> length:int -> t
(** Exact per-cycle live counts for a schedule of the region given as
    program-ordered [ops] with per-op issue [cycle]s (the fields of
    [Cpr_sched.Schedule.t]). *)

val contribution : t -> Reg.cls -> int -> int
(** [contribution t cls i] (sweep results only): net change in the blind
    live count of [cls] across op [i] — positive when the op lengthens
    pressure, negative when its operands die. *)

val pp : Format.formatter -> t -> unit
