open Cpr_ir

let kills (op : Op.t) =
  let unconditional =
    match op.Op.guard with
    | Op.True ->
      List.filter
        (fun d -> not (List.exists (Reg.equal d) (Op.accumulator_dests op)))
        op.Op.dests
    | Op.If _ -> []
  in
  unconditional @ Op.writes_when_guard_false op

(* The fixpoint runs over packed bitsets with registers indexed densely
   (every register appearing in an op or in [live_out] gets a slot) and
   each region precompiled into reverse-order transfer steps, so the
   per-iteration work is word-wide boolean algebra on preresolved index
   arrays — no per-op [Reg.Set.of_list], no tree rebalancing.  Reg.Set
   views are materialized lazily (and cached per label) at the API
   boundary only. *)
type step = {
  target : string option;  (* branch target to merge, for branches *)
  kill_ix : int array;
  use_ix : int array;
}

type t = {
  prog : Prog.t;
  stride : int;  (* per-class id bound: index = rank * stride + id *)
  table : (string, Bitset.t) Hashtbl.t;
  boundary_bits : Bitset.t;
  boundary_set : Reg.Set.t;
  set_cache : (string, Reg.Set.t) Hashtbl.t;
}

let rank = function Reg.Gpr -> 0 | Reg.Pred -> 1 | Reg.Btr -> 2

let reg_of_ix stride ix =
  let cls =
    if ix < stride then Reg.Gpr else if ix < 2 * stride then Reg.Pred
    else Reg.Btr
  in
  { Reg.id = ix mod stride; cls }

(* The register universe is indexed arithmetically — [rank cls * stride
   + id], with [stride] bounding every per-class id — so compiling ops
   to transfer steps involves no hash table at all.  The generator
   counters usually give the bound, but hand-assembled regions can lag
   them ([Prog.replace_region] does not resync), so an allocation-free
   prescan takes the max with what actually appears. *)
let analyze (prog : Prog.t) =
  let regions = Prog.regions prog in
  let stride =
    ref
      (max 1
         (max prog.Prog.next_gpr (max prog.Prog.next_pred prog.Prog.next_btr)))
  in
  let see (r : Reg.t) = if r.Reg.id >= !stride then stride := r.Reg.id + 1 in
  List.iter see prog.Prog.live_out;
  List.iter
    (fun (r : Region.t) ->
      List.iter
        (fun (op : Op.t) ->
          List.iter
            (function Op.Reg x -> see x | Op.Imm _ | Op.Lab _ -> ())
            op.Op.srcs;
          (match op.Op.guard with Op.If g -> see g | Op.True -> ());
          List.iter see op.Op.dests)
        r.Region.ops)
    regions;
  let stride = !stride in
  let ix_of (r : Reg.t) = (rank r.Reg.cls * stride) + r.Reg.id in
  let ix l = Array.of_list (List.map ix_of l) in
  let order =
    List.rev_map
      (fun (r : Region.t) ->
        let steps =
          Array.of_list
            (List.rev_map
               (fun (op : Op.t) ->
                 {
                   target =
                     (if Op.is_branch op then Region.branch_target r op
                      else None);
                   kill_ix = ix (kills op);
                   use_ix = ix (Op.uses op);
                 })
               r.Region.ops)
        in
        (r.Region.label, r.Region.fallthrough, steps))
      regions
  in
  let n = 3 * stride in
  let boundary_bits = Bitset.create n in
  List.iter
    (fun r -> Bitset.set boundary_bits (ix_of r))
    prog.Prog.live_out;
  let table = Hashtbl.create 17 in
  let live_bits label =
    if Prog.is_exit prog label then boundary_bits
    else
      match Hashtbl.find_opt table label with
      | Some b -> b
      | None -> Bitset.create n
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (label, fallthrough, steps) ->
        let live =
          Bitset.copy
            (match fallthrough with
            | Some l -> live_bits l
            | None -> boundary_bits)
        in
        for si = 0 to Array.length steps - 1 do
          let s = steps.(si) in
          (match s.target with
          | Some l -> ignore (Bitset.union_into ~into:live (live_bits l))
          | None -> ());
          let kill = s.kill_ix and use = s.use_ix in
          for k = 0 to Array.length kill - 1 do
            Bitset.unset live kill.(k)
          done;
          for k = 0 to Array.length use - 1 do
            Bitset.set live use.(k)
          done
        done;
        if not (Bitset.equal live (live_bits label)) then begin
          Hashtbl.replace table label live;
          changed := true
        end)
      order
  done;
  {
    prog;
    stride;
    table;
    boundary_bits;
    boundary_set = Reg.Set.of_list prog.Prog.live_out;
    set_cache = Hashtbl.create 17;
  }

let to_set t bits =
  Bitset.fold
    (fun i s -> Reg.Set.add (reg_of_ix t.stride i) s)
    bits Reg.Set.empty

let live_in t label =
  if Prog.is_exit t.prog label then t.boundary_set
  else
    match Hashtbl.find_opt t.set_cache label with
    | Some s -> s
    | None ->
      let s =
        match Hashtbl.find_opt t.table label with
        | Some bits -> to_set t bits
        | None -> Reg.Set.empty
      in
      Hashtbl.replace t.set_cache label s;
      s

let live_at_target t (r : Region.t) (br : Op.t) =
  match Region.branch_target r br with
  | Some target -> live_in t target
  | None -> t.boundary_set

let live_out_region t (r : Region.t) =
  match r.Region.fallthrough with
  | Some l -> live_in t l
  | None -> t.boundary_set

let live_expr_after t env (r : Region.t) idx reg =
  let ops = Pred_env.ops env in
  let n = Array.length ops in
  let acc = ref Pqs.fls in
  let path = ref Pqs.tru in
  (try
     for j = idx + 1 to n - 1 do
       let op = ops.(j) in
       if List.exists (Reg.equal reg) (Op.uses op) then
         acc := Pqs.or_ !acc (Pqs.and_ !path (Pred_env.guard_expr env j));
       if Op.is_branch op then begin
         if Reg.Set.mem reg (live_at_target t r op) then
           acc :=
             Pqs.or_ !acc (Pqs.and_ !path (Pred_env.taken_expr env j));
         path := Pqs.and_ !path (Pqs.not_ (Pred_env.taken_expr env j))
       end;
       (* An unconditional kill ends the scan: nothing past it can read the
          value present after [idx]. *)
       if List.exists (Reg.equal reg) (kills op) then raise Exit
     done;
     if Reg.Set.mem reg (live_out_region t r) then
       acc := Pqs.or_ !acc !path
   with Exit -> ());
  (* Everything above is relative to control being at [idx]; conjoining
     with the path condition that reaches [idx] removes spurious
     "an earlier exit was taken" disjuncts introduced by negating later
     branches' taken-expressions. *)
  Pqs.and_ (Pred_env.path_cond env 0 (idx + 1)) !acc
