(** Mutable packed bitsets over a dense [0, n) universe.

    The backing store is one int array ([Sys.int_size] bits per word), so
    the set operations the dataflow fixpoints live on — union, kill,
    equality — are word-wide boolean algebra with no allocation.
    {!Liveness} and [Cpr_verify.Dataflow] index registers densely, run
    their transfer functions over these, and convert to [Reg.Set] only at
    the API boundary (cached). *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0, n). *)

val copy : t -> t
val mem : t -> int -> bool
val set : t -> int -> unit
val unset : t -> int -> unit

val union_into : into:t -> t -> bool
(** Destructive union; returns whether [into] grew.  Both sets must share
    a universe. *)

val equal : t -> t -> bool
val is_empty : t -> bool

val inter : t -> t -> t
(** Fresh intersection; same-universe operands. *)

val diff : t -> t -> t
(** Fresh difference; same-universe operands. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over set indices in increasing order. *)
