module R = Pqs_reference

type key = Pqs_intf.key =
  | Cond of int
  | Entry of int

(* A hash-consed handle: [node] is the underlying DNF value (computed by
   the reference engine, so the algebra is the reference algebra by
   construction) and [uid] identifies the node in the interning arena of
   the domain that built it — equal uids mean structurally equal nodes,
   so memo tables key binary operations on uid pairs in O(1).

   [pos_mask]/[neg_mask] are 62-bit polarity fingerprints computed once
   at intern time: bit [hash(key) mod 62] of [pos_mask] is set when the
   node contains a positive occurrence of [key] (and symmetrically for
   [neg_mask]).  The reference [disjoint] can only prove two DNFs
   disjoint when some key occurs with opposite polarities across them,
   so two ANDs over the fingerprints refute most queries without
   touching the memo tables — this is where interning pays on the
   scheduler's hot path, where almost all guard pairs are compatible.

   Handles are self-contained: invalidating the arena (per program, or
   when a table outgrows its cap) never dangles an outstanding handle —
   it only costs future sharing.  A structurally equal node interned
   after an invalidation gets a fresh uid, and uids are never reused
   within a domain, so stale memo entries can never be confused with new
   nodes. *)
type t = {
  uid : int;
  node : R.t;
  pos_mask : int;
  neg_mask : int;
}

let lit_bit key =
  let h = match key with Cond i -> 2 * i | Entry i -> (2 * i) + 1 in
  1 lsl (h mod 62)

let masks_of node =
  let pos = ref 0 and neg = ref 0 in
  R.iter_lits
    (fun key p ->
      let bit = lit_bit key in
      if p then pos := !pos lor bit else neg := !neg lor bit)
    node;
  (!pos, !neg)

(* The three constants are process-global with reserved uids, so a
   handle built on one domain (e.g. [tru] captured at module
   initialization) keys the same memo entry on every domain. *)
let unknown = { uid = 0; node = R.unknown; pos_mask = 0; neg_mask = 0 }
let fls = { uid = 1; node = R.fls; pos_mask = 0; neg_mask = 0 }
let tru = { uid = 2; node = R.tru; pos_mask = 0; neg_mask = 0 }
let first_uid = 3

module Node_tbl = Hashtbl.Make (struct
  type t = R.t

  let equal = ( = )

  (* The default polymorphic hash folds only ~10 meaningful nodes —
     DNFs sharing a prefix would all collide.  Deepen the traversal;
     expressions are capped (max_conjs) so this stays bounded. *)
  let hash (x : t) = Hashtbl.hash_param 64 256 x
end)

module Int_tbl = Hashtbl.Make (struct
  type t = int

  let equal (a : int) b = a = b
  let hash (x : int) = Hashtbl.hash x
end)

(* Per-domain state: the scheduler's domain pool runs whole workloads in
   parallel, and a shared arena would need a lock on the hottest path in
   the compiler.  Handles never cross domains (pool results carry
   schedules, findings and strings, not predicate expressions), so each
   domain interns and memoizes privately; only the three fixed-uid
   constants are shared. *)
type state = {
  intern : t Node_tbl.t;
  mutable next_uid : int;
  and_tbl : t Int_tbl.t;
  or_tbl : t Int_tbl.t;
  not_tbl : t Int_tbl.t;
  dis_tbl : bool Int_tbl.t;
  imp_tbl : bool Int_tbl.t;
}

let seed st =
  Node_tbl.replace st.intern unknown.node unknown;
  Node_tbl.replace st.intern fls.node fls;
  Node_tbl.replace st.intern tru.node tru

let state_key =
  Domain.DLS.new_key (fun () ->
      let st =
        {
          intern = Node_tbl.create 1024;
          next_uid = first_uid;
          and_tbl = Int_tbl.create 1024;
          or_tbl = Int_tbl.create 1024;
          not_tbl = Int_tbl.create 256;
          dis_tbl = Int_tbl.create 1024;
          imp_tbl = Int_tbl.create 256;
        }
      in
      seed st;
      st)

let state () = Domain.DLS.get state_key

(* Caps bound a pathological program (or a driver that never calls
   [invalidate]) rather than tune steady state: a full table is dropped
   wholesale and rebuilt warm.  Uid allocation keeps counting across
   drops, preserving the never-reused invariant. *)
let intern_cap = 1 lsl 18
let memo_cap = 1 lsl 16

(* Binary memo keys are the two uids packed into one immediate int, so a
   lookup neither allocates nor runs the polymorphic hash over a tuple.
   Packing is injective while uids stay below 2^31 — reaching that
   ceiling would take billions of interns in one domain, but if it ever
   happens the memo is skipped (losing sharing, never soundness). *)
let pack_limit = 1 lsl 31
let pack a b = (a.uid lsl 31) lor b.uid
let packable a b = a.uid < pack_limit && b.uid < pack_limit

(* Query telemetry: totals and constant short-circuits as before, plus
   the cache-effectiveness triple of the hash-consing layer.  The
   counters are dark (one atomic load each) unless a [--trace] or
   [--json] sink enabled Cpr_obs. *)
module Obs = Cpr_obs.Obs

let q_queries = Obs.counter "pqs.queries"
let q_fast = Obs.counter "pqs.fast_path_hits"
let q_interned = Obs.counter "pqs.interned"
let q_hits = Obs.counter "pqs.memo_hits"
let q_misses = Obs.counter "pqs.memo_misses"

let intern st node =
  match Node_tbl.find_opt st.intern node with
  | Some t -> t
  | None ->
    Obs.incr q_interned;
    let pos_mask, neg_mask = masks_of node in
    let t = { uid = st.next_uid; node; pos_mask; neg_mask } in
    st.next_uid <- st.next_uid + 1;
    if Node_tbl.length st.intern >= intern_cap then begin
      Node_tbl.reset st.intern;
      seed st
    end;
    Node_tbl.replace st.intern node t;
    t

let memo1 tbl key compute =
  match Int_tbl.find_opt tbl key with
  | Some r ->
    Obs.incr q_hits;
    r
  | None ->
    Obs.incr q_misses;
    let r = compute () in
    if Int_tbl.length tbl >= memo_cap then Int_tbl.reset tbl;
    Int_tbl.replace tbl key r;
    r

let memo2 tbl a b compute =
  if packable a b then memo1 tbl (pack a b) compute else compute ()

let invalidate () =
  let st = state () in
  Node_tbl.reset st.intern;
  seed st;
  Int_tbl.reset st.and_tbl;
  Int_tbl.reset st.or_tbl;
  Int_tbl.reset st.not_tbl;
  Int_tbl.reset st.dis_tbl;
  Int_tbl.reset st.imp_tbl

(* Program-boundary hook: predicate literals are keyed by op id, so
   cached nodes and memoized answers stay correct across programs —
   invalidation only bounds memory.  Dropping warm caches on every small
   program costs more than it saves, so [trim] resets only once the
   arena has grown past a real program's working set. *)
let trim_threshold = 1 lsl 14

let trim () =
  if Node_tbl.length (state ()).intern > trim_threshold then invalidate ()

let const b = if b then tru else fls
let cond_lit id = intern (state ()) (R.cond_lit id)
let entry_lit r = intern (state ()) (R.entry_lit r)
let is_const_false t = R.is_const_false t.node
let is_const_true t = R.is_const_true t.node
let is_unknown t = R.is_unknown t.node
let equal a b = a == b || (a.uid = b.uid && a.node = b.node)

(* The constant short-circuits mirror the reference engine's match arms
   exactly (including returning the argument handle itself where the
   reference returns the argument), so only genuinely structural
   operands reach the memo tables. *)
let and_ a b =
  if is_unknown a || is_unknown b then unknown
  else if is_const_true a then b
  else if is_const_true b then a
  else if is_const_false a || is_const_false b then fls
  else
    let st = state () in
    memo2 st.and_tbl a b (fun () -> intern st (R.and_ a.node b.node))

let or_ a b =
  if is_unknown a || is_unknown b then unknown
  else if is_const_false a then b
  else if is_const_false b then a
  else if is_const_true a || is_const_true b then tru
  else
    let st = state () in
    memo2 st.or_tbl a b (fun () -> intern st (R.or_ a.node b.node))

let not_ a =
  if is_unknown a then unknown
  else if is_const_true a then fls
  else if is_const_false a then tru
  else
    let st = state () in
    memo1 st.not_tbl a.uid (fun () -> intern st (R.not_ a.node))

let disjoint a b =
  Obs.incr q_queries;
  if is_unknown a || is_unknown b then begin
    Obs.incr q_fast;
    false
  end
  else if is_const_false a || is_const_false b then begin
    Obs.incr q_fast;
    true
  end
  else if a.pos_mask land b.neg_mask = 0 && a.neg_mask land b.pos_mask = 0
  then begin
    (* The reference proof needs every conjunction pair to contradict,
       and a pair can only contradict on a key present with opposite
       polarities on the two sides.  No fingerprint overlap means no
       such key exists anywhere, so (both operands being satisfiable
       DNFs here) the proof cannot exist.  Collisions only ever add
       phantom overlaps, which fall through — never a wrong answer. *)
    Obs.incr q_fast;
    false
  end
  else if a.uid = b.uid then
    (* a shared satisfiable node can never contradict itself: every
       conjunction merges with itself *)
    false
  else
    let st = state () in
    memo2 st.dis_tbl a b (fun () -> R.disjoint a.node b.node)

let implies a b =
  Obs.incr q_queries;
  if is_unknown a || is_unknown b then begin
    Obs.incr q_fast;
    false
  end
  else if is_const_false a then begin
    Obs.incr q_fast;
    true
  end
  else if a.uid = b.uid then true
  else
    let st = state () in
    memo2 st.imp_tbl a b (fun () -> R.implies a.node b.node)

let eval assign t = R.eval assign t.node
let keys t = R.keys t.node
let pp ppf t = R.pp ppf t.node
let to_reference t = t.node
