open Cpr_ir
module Descr = Cpr_machine.Descr

type class_bound = {
  fu : Descr.fu;
  count : int;
  slots : int;
  bound : int;
}

type t = {
  total_ops : int;
  classes : class_bound list;
  bound : int;
}

let fu_rank = function Descr.I -> 0 | Descr.F -> 1 | Descr.M -> 2 | Descr.B -> 3

(* [(ceil (count / slots)) - 1] is the earliest cycle the class's last op
   can issue; completing it costs at least the smallest latency in the
   class.  Latencies are >= 1 on every machine in {!Descr.all}, but the
   formula stays sound even if a zero-latency opcode appeared. *)
let class_lower ~count ~slots ~min_lat =
  if count = 0 then 0 else (((count + slots - 1) / slots) - 1) + min_lat

let of_ops machine ops =
  let n = Array.length ops in
  let counts = Array.make 4 0 in
  let min_lats = Array.make 4 max_int in
  Array.iter
    (fun op ->
      let r = fu_rank (Descr.fu_of_op op) in
      counts.(r) <- counts.(r) + 1;
      min_lats.(r) <- min min_lats.(r) (Descr.latency_of machine op))
    ops;
  let slots_of fu =
    match machine.Descr.issue with
    | Descr.Sequential -> 1
    | Descr.Regular _ -> Descr.slots machine fu
  in
  let classes =
    List.filter_map
      (fun fu ->
        let r = fu_rank fu in
        if counts.(r) = 0 then None
        else
          let slots = slots_of fu in
          Some
            {
              fu;
              count = counts.(r);
              slots;
              bound =
                class_lower ~count:counts.(r) ~slots ~min_lat:min_lats.(r);
            })
      [ Descr.I; Descr.F; Descr.M; Descr.B ]
  in
  let bound =
    List.fold_left (fun acc (c : class_bound) -> max acc c.bound) 0 classes
  in
  let bound =
    match machine.Descr.issue with
    | Descr.Sequential when n > 0 ->
      (* One op of any class per cycle: the total count bounds like a
         single class of width 1. *)
      let min_lat = Array.fold_left min max_int min_lats in
      max bound (class_lower ~count:n ~slots:1 ~min_lat)
    | Descr.Sequential | Descr.Regular _ -> bound
  in
  { total_ops = n; classes; bound }

let of_region machine (r : Region.t) =
  of_ops machine (Array.of_list r.Region.ops)
