open Cpr_ir

(** Symbolic predicate environments for a region.

    Scans a region top-down and assigns each predicate definition a {!Pqs}
    expression (relative to region entry): [cmpp] destinations get
    expressions over that cmpp's condition literal and the guard's
    expression, honouring the UN/UC/ON/OC/AN/AC semantics of Table 1;
    predicates live into the region get opaque entry literals; a [cmpp]
    whose two sources are both immediates folds to a constant. *)

module type S = sig
  type pqs
  (** The query-engine expression type ({!Pqs.t} in production). *)

  type t

  val analyze : Region.t -> t

  val ops : t -> Op.t array

  val guard_expr : t -> int -> pqs
  (** Expression of the guard of the op at this index, in the environment
      at that point.  [tru] for unguarded ops. *)

  val reg_expr_before : t -> int -> Reg.t -> pqs
  (** Value of a predicate register just before the op at this index. *)

  val reg_expr_at_end : t -> Reg.t -> pqs

  val taken_expr : t -> int -> pqs
  (** For a branch at this index: the condition under which it takes
      (its guard expression). *)

  val path_cond : t -> int -> int -> pqs
  (** [path_cond t i j] with [i <= j]: the condition that sequential
      control started at op [i] reaches op [j], i.e. the conjunction of
      the negated taken-expressions of the branches in [i, j). *)

  val path_conds : t -> pqs array
  (** All prefix path conditions at once: [(path_conds t).(i) = path_cond
      t 0 i].  One linear product instead of a quadratic family — use it
      whenever more than one prefix of the same region is needed. *)

  val fallthrough_expr : t -> pqs
  (** Condition that the region is exited by falling through: no branch
      takes. *)
end

module Make (P : Pqs_intf.S) : S with type pqs = P.t
(** The analysis functorized over the query engine, so the equivalence
    oracle can replay identical constructions through {!Pqs_reference}
    and compare answers against the hash-consed {!Pqs}. *)

include S with type pqs = Pqs.t
