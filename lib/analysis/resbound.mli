open Cpr_ir

(** Resource-bound lower bound on a region's schedule length.

    The ResMII-style bound of modulo-scheduling literature (Rau, MICRO-27),
    applied to acyclic regions: if a functional-unit class [c] must issue
    [n_c] operations through [s_c] slots per cycle, the last of them cannot
    issue before cycle [ceil(n_c / s_c) - 1], and the schedule cannot
    finish before that issue completes — so
    [(ceil(n_c / s_c) - 1) + min-latency-of-class] is a true lower bound
    on the achieved length, whatever order the scheduler picks.  The
    sequential machine additionally issues at most one operation of any
    class per cycle, bounding the total the same way.

    Deliberately {e not} an exact resource model (no slot assignment, no
    issue-window packing): the bound must be sound and cheap — it is
    queried per candidate block inside the CPR profitability gate — and
    counting per class over {!Cpr_machine.Descr} issue widths is both.
    Exactness is the scheduler's job; see DESIGN.md "Static height
    analysis". *)

type class_bound = {
  fu : Cpr_machine.Descr.fu;
  count : int;  (** operations of this class in the region *)
  slots : int;  (** issue slots per cycle for this class *)
  bound : int;  (** lower bound this class alone imposes *)
}

type t = {
  total_ops : int;
  classes : class_bound list;
      (** classes with at least one operation, in [I; F; M; B] order *)
  bound : int;
      (** the resource lower bound: max over class bounds, and over the
          total-issue-width bound on the sequential machine; 0 for an
          empty region *)
}

val of_ops : Cpr_machine.Descr.t -> Op.t array -> t
val of_region : Cpr_machine.Descr.t -> Region.t -> t
