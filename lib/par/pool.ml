(* A batch is an array of thunks plus a cursor.  Workers (and the
   caller) race on [next] under the pool mutex, run the claimed thunk
   outside the lock, and the last finisher signals [batch_done].  Thunks
   never raise: [map] wraps each task so failures land in the result
   slot and re-raise deterministically in the caller. *)

type batch = {
  tasks : (unit -> unit) array;
  mutable next : int;
  mutable finished : int;
}

type t = {
  mutex : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  mutable batch : batch option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  domains : int;
}

let domains t = t.domains

let default_domains () = min 8 (Domain.recommended_domain_count ())

(* Batch telemetry (dark unless Cpr_obs is enabled): how many tasks and
   batches went through the pool, cumulative busy vs wall nanoseconds,
   and a utilization gauge (busy / (wall * domains)) for the last batch. *)
module Obs = Cpr_obs.Obs

let c_tasks = Obs.counter "pool.tasks"
let c_batches = Obs.counter "pool.batches"
let c_busy = Obs.counter "pool.busy_ns"
let c_wall = Obs.counter "pool.wall_ns"

(* Run tasks from [b] until its cursor is exhausted.  Called with
   [t.mutex] held; returns with it held. *)
let drain t b =
  while b.next < Array.length b.tasks do
    let i = b.next in
    b.next <- i + 1;
    Mutex.unlock t.mutex;
    b.tasks.(i) ();
    Mutex.lock t.mutex;
    b.finished <- b.finished + 1;
    if b.finished = Array.length b.tasks then begin
      (match t.batch with Some b' when b' == b -> t.batch <- None | _ -> ());
      Condition.broadcast t.batch_done
    end
  done

let worker t () =
  Mutex.lock t.mutex;
  let rec loop () =
    match t.batch with
    | Some b when b.next < Array.length b.tasks ->
      drain t b;
      loop ()
    | _ ->
      if not t.stop then begin
        Condition.wait t.work_available t.mutex;
        loop ()
      end
  in
  loop ();
  Mutex.unlock t.mutex

let create ~domains =
  let domains = max 1 domains in
  let t =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      batch = None;
      stop = false;
      workers = [];
      domains;
    }
  in
  t.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let map t f xs =
  if t.domains = 1 then begin
    if Obs.enabled () then begin
      Obs.add c_tasks (List.length xs);
      Obs.incr c_batches
    end;
    List.map f xs
  end
  else begin
    let args = Array.of_list xs in
    let n = Array.length args in
    if n = 0 then []
    else begin
      let observed = Obs.enabled () in
      let busy = Atomic.make 0 in
      let wall0 = if observed then Obs.now_ns () else 0L in
      let results = Array.make n None in
      let tasks =
        Array.init n (fun i ->
            fun () ->
              let t0 = if observed then Obs.now_ns () else 0L in
              results.(i) <-
                Some
                  (match f args.(i) with
                  | y -> Ok y
                  | exception e ->
                    Error (e, Printexc.get_raw_backtrace ()));
              if observed then
                ignore
                  (Atomic.fetch_and_add busy
                     (Int64.to_int (Int64.sub (Obs.now_ns ()) t0))
                    : int))
      in
      let b = { tasks; next = 0; finished = 0 } in
      Mutex.lock t.mutex;
      (* Serialize concurrent maps: wait for any in-flight batch. *)
      while t.batch <> None do
        Condition.wait t.batch_done t.mutex
      done;
      t.batch <- Some b;
      Condition.broadcast t.work_available;
      drain t b;
      while b.finished < n do
        Condition.wait t.batch_done t.mutex
      done;
      Mutex.unlock t.mutex;
      if observed then begin
        let wall = Int64.to_int (Int64.sub (Obs.now_ns ()) wall0) in
        Obs.add c_tasks n;
        Obs.incr c_batches;
        Obs.add c_busy (Atomic.get busy);
        Obs.add c_wall wall;
        if wall > 0 then
          Obs.gauge "pool.utilization"
            (float_of_int (Atomic.get busy)
            /. (float_of_int wall *. float_of_int t.domains))
      end;
      (* Earliest failure in submission order wins, deterministically. *)
      Array.iter
        (function
          | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
          | Some (Ok _) | None -> ())
        results;
      Array.to_list
        (Array.map
           (function Some (Ok y) -> y | Some (Error _) | None -> assert false)
           results)
    end
  end

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
