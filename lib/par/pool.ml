(* A batch is an array of thunks plus a cursor.  Workers (and the
   caller) race on [next] under the pool mutex, run the claimed thunk
   outside the lock, and the last finisher signals [batch_done].  Thunks
   never raise: [map] wraps each task so failures land in the result
   slot and re-raise deterministically in the caller. *)

type batch = {
  tasks : (unit -> unit) array;
  mutable next : int;
  mutable finished : int;
}

type t = {
  mutex : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  mutable batch : batch option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  domains : int;
}

let domains t = t.domains

let default_domains () = min 8 (Domain.recommended_domain_count ())

(* Batch telemetry (dark unless Cpr_obs is enabled): how many tasks and
   batches went through the pool, cumulative busy vs wall nanoseconds,
   and a utilization gauge (busy / (wall * domains)) for the last batch. *)
module Obs = Cpr_obs.Obs
module Deadline = Cpr_deadline.Deadline

let c_tasks = Obs.counter "pool.tasks"
let c_batches = Obs.counter "pool.batches"
let c_busy = Obs.counter "pool.busy_ns"
let c_wall = Obs.counter "pool.wall_ns"

exception
  Task_failed of {
    index : int;
    label : string;
    elapsed_ns : int64;
    cause : exn;
  }

let () =
  Printexc.register_printer (function
    | Task_failed { index; label; elapsed_ns; cause } ->
      Some
        (Printf.sprintf "Task_failed(task %d %S after %.1fms: %s)" index label
           (Int64.to_float elapsed_ns /. 1e6)
           (Printexc.to_string cause))
    | _ -> None)

(* The watchdog: poisons any running token past its budget; the owning
   task unwinds at its next cooperative checkpoint.  Polls rather than
   waits — stdlib [Condition] has no timed wait — but only exists for
   deadline-carrying batches, so the idle cost is zero on the default
   path. *)
let watch tokens stopped =
  while not (Atomic.get stopped) do
    Array.iter
      (fun d ->
        if Deadline.running d && Deadline.overdue d && not (Deadline.poisoned d)
        then Deadline.poison d)
      tokens;
    Unix.sleepf 0.001
  done

(* Run tasks from [b] until its cursor is exhausted.  Called with
   [t.mutex] held; returns with it held. *)
let drain t b =
  while b.next < Array.length b.tasks do
    let i = b.next in
    b.next <- i + 1;
    Mutex.unlock t.mutex;
    b.tasks.(i) ();
    Mutex.lock t.mutex;
    b.finished <- b.finished + 1;
    if b.finished = Array.length b.tasks then begin
      (match t.batch with Some b' when b' == b -> t.batch <- None | _ -> ());
      Condition.broadcast t.batch_done
    end
  done

let worker t () =
  Mutex.lock t.mutex;
  let rec loop () =
    match t.batch with
    | Some b when b.next < Array.length b.tasks ->
      drain t b;
      loop ()
    | _ ->
      if not t.stop then begin
        Condition.wait t.work_available t.mutex;
        loop ()
      end
  in
  loop ();
  Mutex.unlock t.mutex

let create ~domains =
  let domains = max 1 domains in
  let t =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      batch = None;
      stop = false;
      workers = [];
      domains;
    }
  in
  t.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let map ?budget_ms ?label t f xs =
  let args = Array.of_list xs in
  let n = Array.length args in
  if n = 0 then begin
    if Obs.enabled () then Obs.incr c_batches;
    []
  end
  else begin
    let observed = Obs.enabled () in
    let lbl i =
      match label with Some g -> g args.(i) | None -> "#" ^ string_of_int i
    in
    let tokens =
      Option.map
        (fun ms -> Array.init n (fun i -> Deadline.of_ms ~label:(lbl i) ms))
        budget_ms
    in
    let busy = Atomic.make 0 in
    let wall0 = if observed then Obs.now_ns () else 0L in
    let results = Array.make n None in
    (* Every task runs under this wrapper on whichever domain claims it:
       a failure lands in the result slot wrapped with the submission
       index, label and elapsed time, so a pool failure is attributable
       without re-running; the ambient deadline token (when a budget was
       given) lets nested checkpoints — List_sched's scheduling loop,
       the pipeline's pass entries — cancel the task cooperatively. *)
    let run_one i =
      let t0 = Obs.now_ns () in
      (match
         match tokens with
         | None -> f args.(i)
         | Some ts ->
           let d = ts.(i) in
           Deadline.start d;
           Deadline.set_current (Some d);
           Fun.protect
             ~finally:(fun () ->
               Deadline.set_current None;
               Deadline.finish d)
             (fun () -> f args.(i))
       with
      | y -> results.(i) <- Some (Ok y)
      | exception cause ->
        let bt = Printexc.get_raw_backtrace () in
        results.(i) <-
          Some
            (Error
               ( Task_failed
                   {
                     index = i;
                     label = lbl i;
                     elapsed_ns = Int64.sub (Obs.now_ns ()) t0;
                     cause;
                   },
                 bt )));
      if observed then
        ignore
          (Atomic.fetch_and_add busy
             (Int64.to_int (Int64.sub (Obs.now_ns ()) t0))
            : int)
    in
    let stopped = Atomic.make false in
    let monitor =
      Option.map (fun ts -> Domain.spawn (fun () -> watch ts stopped)) tokens
    in
    Fun.protect
      ~finally:(fun () ->
        Atomic.set stopped true;
        Option.iter Domain.join monitor)
      (fun () ->
        if t.domains = 1 then
          for i = 0 to n - 1 do
            run_one i
          done
        else begin
          let tasks = Array.init n (fun i -> fun () -> run_one i) in
          let b = { tasks; next = 0; finished = 0 } in
          Mutex.lock t.mutex;
          (* Serialize concurrent maps: wait for any in-flight batch. *)
          while t.batch <> None do
            Condition.wait t.batch_done t.mutex
          done;
          t.batch <- Some b;
          Condition.broadcast t.work_available;
          drain t b;
          while b.finished < n do
            Condition.wait t.batch_done t.mutex
          done;
          Mutex.unlock t.mutex
        end);
    if observed then begin
      let wall = Int64.to_int (Int64.sub (Obs.now_ns ()) wall0) in
      Obs.add c_tasks n;
      Obs.incr c_batches;
      Obs.add c_busy (Atomic.get busy);
      Obs.add c_wall wall;
      if wall > 0 then
        Obs.gauge "pool.utilization"
          (float_of_int (Atomic.get busy)
          /. (float_of_int wall *. float_of_int t.domains))
    end;
    (* Earliest failure in submission order wins, deterministically. *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) | None -> ())
      results;
    Array.to_list
      (Array.map
         (function Some (Ok y) -> y | Some (Error _) | None -> assert false)
         results)
  end

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
