(** A fixed-size domain pool for embarrassingly parallel maps.

    Hand-rolled on stdlib [Domain]/[Mutex]/[Condition] — no external
    dependencies, no work stealing.  A pool owns [domains - 1] worker
    domains; the caller participates in every batch, so [domains] is the
    total parallelism.  With [domains = 1] no domain is ever spawned and
    {!map} degenerates to [List.map], guaranteeing byte-identical
    behavior on the sequential path.

    Determinism: {!map} returns results in submission order regardless
    of completion order, and tasks must not communicate through shared
    mutable state.  Every parallel call site in this codebase is
    required to produce output identical to [~domains:1]. *)

type t

val create : domains:int -> t
(** Spawn a pool of total parallelism [max 1 domains].  The pool stays
    alive (workers block on a condition variable between batches) until
    {!shutdown}. *)

val domains : t -> int
(** Total parallelism, including the calling domain. *)

exception
  Task_failed of {
    index : int;  (** submission index of the failing task *)
    label : string;  (** [?label] rendering, or ["#<index>"] *)
    elapsed_ns : int64;  (** time the task ran before failing *)
    cause : exn;  (** the task's own exception *)
  }
(** Wrapper for any exception escaping a pooled task, so a failure is
    attributable (which task, how long it ran) without re-running the
    batch.  Match on [cause] for the underlying exception. *)

val map :
  ?budget_ms:float -> ?label:('a -> string) -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element of [xs], possibly in
    parallel, and returns the results in the order of [xs].

    If one or more tasks raise, the exception of the {e earliest} such
    task (in submission order) is re-raised in the caller — wrapped as
    {!Task_failed} with the task's submission index, label and elapsed
    time — after every task of the batch has finished, so the pool
    remains usable afterwards.  At most one batch runs at a time per
    pool; concurrent {!map} calls on the same pool are serialized.

    [budget_ms] gives every task a per-task deadline: a watchdog domain
    poisons the token of any task running past its budget, and the task
    unwinds with [Deadline_exceeded] at its next cooperative checkpoint
    ({!Cpr_deadline.Deadline.check_current} — the scheduler's main loop
    and the pipeline's pass entries call it).  The watchdog only exists
    for deadline-carrying batches; without [budget_ms] the path is
    unchanged.  [label] names tasks for {!Task_failed} and deadline
    reports (defaults to ["#<index>"]). *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent; the pool must not be used
    afterwards. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] capped at 8 — the default for
    the [--domains] command-line flags. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exception). *)
