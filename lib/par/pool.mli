(** A fixed-size domain pool for embarrassingly parallel maps.

    Hand-rolled on stdlib [Domain]/[Mutex]/[Condition] — no external
    dependencies, no work stealing.  A pool owns [domains - 1] worker
    domains; the caller participates in every batch, so [domains] is the
    total parallelism.  With [domains = 1] no domain is ever spawned and
    {!map} degenerates to [List.map], guaranteeing byte-identical
    behavior on the sequential path.

    Determinism: {!map} returns results in submission order regardless
    of completion order, and tasks must not communicate through shared
    mutable state.  Every parallel call site in this codebase is
    required to produce output identical to [~domains:1]. *)

type t

val create : domains:int -> t
(** Spawn a pool of total parallelism [max 1 domains].  The pool stays
    alive (workers block on a condition variable between batches) until
    {!shutdown}. *)

val domains : t -> int
(** Total parallelism, including the calling domain. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element of [xs], possibly in
    parallel, and returns the results in the order of [xs].

    If one or more tasks raise, the exception of the {e earliest} such
    task (in submission order) is re-raised in the caller with its
    backtrace, after every task of the batch has finished — so the pool
    remains usable afterwards.  At most one batch runs at a time per
    pool; concurrent {!map} calls on the same pool are serialized. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent; the pool must not be used
    afterwards. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] capped at 8 — the default for
    the [--domains] command-line flags. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exception). *)
