open Cpr_ir
module Descr = Cpr_machine.Descr
module Resource = Cpr_machine.Resource
module Depgraph = Cpr_analysis.Depgraph
module Deadline = Cpr_deadline.Deadline
module IntSet = Set.Make (Int)

(* Shared by both schedulers: candidate order is decreasing critical-path
   priority, ties broken by program order. *)
let compare_candidates priority a b =
  match Int.compare priority.(b) priority.(a) with
  | 0 -> Int.compare a b
  | c -> c

let finish machine region ops cycle =
  let length =
    Array.to_seqi ops
    |> Seq.fold_left
         (fun acc (i, op) ->
           max acc (cycle.(i) + Descr.latency_of machine op))
         0
  in
  { Schedule.region; ops; cycle; length }

(* The original O(n^2 * cycles) scheduler: every round rescans all
   unscheduled ops and recomputes readiness from scratch.  Kept verbatim
   as the oracle for [schedule] — test/test_sched.ml asserts the two
   produce identical cycle arrays on every workload, machine and a fuzz
   battery. *)
let schedule_reference machine prog liveness (region : Region.t) =
  let graph = Depgraph.build machine prog liveness region in
  let n = Depgraph.n_ops graph in
  let ops = Array.init n (Depgraph.op graph) in
  let priority = Cpr_analysis.Height.priority graph in
  let cycle = Array.make n (-1) in
  let resources = Resource.create machine in
  let unscheduled = ref n in
  let ready_time i =
    (* Defined only once all predecessors are placed. *)
    List.fold_left
      (fun acc (e : Depgraph.edge) ->
        if cycle.(e.Depgraph.src) < 0 then max_int
        else max acc (cycle.(e.Depgraph.src) + e.Depgraph.latency))
      0
      (Depgraph.preds graph i)
  in
  let current = ref 0 in
  (* Upper bound on useful cycles: everything sequential at max latency. *)
  let fuel = ref ((n + 1) * 16) in
  while !unscheduled > 0 && !fuel > 0 do
    decr fuel;
    (* Cooperative cancellation point: unwinds with [Deadline_exceeded]
       when the pool watchdog has poisoned this task's budget. *)
    Deadline.check_current ();
    (* Zero- and negative-latency edges (branch anticipation, anti
       dependences) allow producer and consumer in the same cycle, so
       placements cascade within a cycle until fixpoint. *)
    let progress = ref true in
    while !progress do
      progress := false;
      let candidates = ref [] in
      for i = 0 to n - 1 do
        if cycle.(i) < 0 then begin
          let r = ready_time i in
          if r <> max_int && r <= !current then candidates := i :: !candidates
        end
      done;
      let ordered = List.sort (compare_candidates priority) !candidates in
      List.iter
        (fun i ->
          if Resource.available resources ~cycle:!current ops.(i) then begin
            Resource.reserve resources ~cycle:!current ops.(i);
            cycle.(i) <- !current;
            decr unscheduled;
            progress := true
          end)
        ordered
    done;
    incr current
  done;
  if !unscheduled > 0 then
    invalid_arg
      (Printf.sprintf "List_sched: no progress in region %s"
         region.Region.label);
  finish machine region ops cycle

(* Ready-queue scheduler: same greedy policy, without the per-round
   rescan.  Each op carries its unplaced-predecessor count and a running
   [earliest] issue bound (the max over already-placed predecessors of
   [cycle src + latency]); when the count hits zero the op is released —
   into the current cycle's candidate pool if [earliest] has passed,
   otherwise into a bucket keyed by that future cycle.  Within a cycle,
   placements cascade exactly like the reference: each round sorts the
   live candidates, issues what the resource table admits, and feeds
   zero/negative-latency releases back into the same cycle.  Candidate
   sets per round are provably the reference's (leftovers keep their
   readiness; releases join when ready), so the emitted cycle array is
   identical — the oracle test enforces this.  Idle stretches between
   release buckets are skipped in O(log buckets) instead of burning a
   rescan per cycle, with fuel charged for the skipped cycles so the
   no-progress failure mode is unchanged. *)
let schedule machine prog liveness (region : Region.t) =
  let graph = Depgraph.build machine prog liveness region in
  let n = Depgraph.n_ops graph in
  let ops = Array.init n (Depgraph.op graph) in
  let priority = Cpr_analysis.Height.priority graph in
  let cycle = Array.make n (-1) in
  let resources = Resource.create machine in
  let unscheduled = ref n in
  let npreds = Array.make n 0 in
  let earliest = Array.make n 0 in
  for i = 0 to n - 1 do
    npreds.(i) <- List.length (Depgraph.preds graph i)
  done;
  (* Future releases: cycle -> ops becoming ready then. *)
  let buckets : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let occupied = ref IntSet.empty in
  let push_bucket c i =
    let prev = Option.value ~default:[] (Hashtbl.find_opt buckets c) in
    Hashtbl.replace buckets c (i :: prev);
    occupied := IntSet.add c !occupied
  in
  let avail = ref [] in
  let current = ref 0 in
  let fuel = ref ((n + 1) * 16) in
  for i = n - 1 downto 0 do
    if npreds.(i) = 0 then avail := i :: !avail
  done;
  while !unscheduled > 0 && !fuel > 0 do
    decr fuel;
    (* Same cancellation point as the reference scheduler. *)
    Deadline.check_current ();
    (match Hashtbl.find_opt buckets !current with
    | Some l ->
      avail := List.rev_append l !avail;
      Hashtbl.remove buckets !current;
      occupied := IntSet.remove !current !occupied
    | None -> ());
    let progress = ref true in
    while !progress do
      progress := false;
      let ordered = List.sort (compare_candidates priority) !avail in
      let leftover = ref [] in
      let released = ref [] in
      List.iter
        (fun i ->
          if Resource.available resources ~cycle:!current ops.(i) then begin
            Resource.reserve resources ~cycle:!current ops.(i);
            cycle.(i) <- !current;
            decr unscheduled;
            progress := true;
            List.iter
              (fun (e : Depgraph.edge) ->
                let j = e.Depgraph.dst in
                earliest.(j) <-
                  max earliest.(j) (!current + e.Depgraph.latency);
                npreds.(j) <- npreds.(j) - 1;
                if npreds.(j) = 0 then
                  if earliest.(j) <= !current then released := j :: !released
                  else push_bucket earliest.(j) j)
              (Depgraph.succs graph i)
          end
          else leftover := i :: !leftover)
        ordered;
      avail := List.rev_append !leftover !released
    done;
    (* Advance; when nothing is pending this cycle, jump straight to the
       next release, charging fuel for the cycles skipped. *)
    (match (!avail, IntSet.min_elt_opt !occupied) with
    | [], Some c when c > !current + 1 ->
      fuel := max 0 (!fuel - (c - !current - 1));
      current := c
    | _ -> incr current)
  done;
  if !unscheduled > 0 then
    invalid_arg
      (Printf.sprintf "List_sched: no progress in region %s"
         region.Region.label);
  finish machine region ops cycle

let schedule_prog ?pool ?budget_ms machine prog =
  let liveness = Cpr_analysis.Liveness.analyze prog in
  let one (r : Region.t) =
    (r.Region.label, schedule machine prog liveness r)
  in
  let label (r : Region.t) = r.Region.label in
  match pool with
  | Some p -> Cpr_par.Pool.map ?budget_ms ~label p one (Prog.regions prog)
  | None -> (
    match budget_ms with
    | None -> List.map one (Prog.regions prog)
    | Some ms ->
      (* No pool, but still honor the budget: without a watchdog domain
         the token is only checked (never poisoned) — the elapsed test
         in [check_current] still trips overdue regions. *)
      List.map
        (fun r -> Deadline.with_budget ~label:(label r) ~ms (fun () -> one r))
        (Prog.regions prog))
