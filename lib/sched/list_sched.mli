open Cpr_ir

(** Cycle-based list scheduling for one region.

    Greedy: at each cycle the dependence-ready operations are considered in
    decreasing critical-path priority (ties broken by program order) and
    issued while the machine has free slots of their unit class.  The EPIC
    branch rules (no branch taking inside another taken branch's latency
    window, speculation/anticipation constraints) are entirely encoded in
    the dependence graph, so the scheduler itself is machine-generic. *)

val schedule :
  Cpr_machine.Descr.t -> Prog.t -> Cpr_analysis.Liveness.t -> Region.t
  -> Schedule.t
(** Ready-queue implementation: per-op unplaced-predecessor counters and
    cycle-keyed release buckets replace the full rescan of the reference
    scheduler, preserving its greedy policy (and output) exactly. *)

val schedule_reference :
  Cpr_machine.Descr.t -> Prog.t -> Cpr_analysis.Liveness.t -> Region.t
  -> Schedule.t
(** The original rescan-everything scheduler, kept as the equivalence
    oracle for {!schedule}: both must emit identical cycle arrays on
    every program.  Quadratic per cycle — use only in tests. *)

val schedule_prog :
  ?pool:Cpr_par.Pool.t -> ?budget_ms:float -> Cpr_machine.Descr.t -> Prog.t
  -> (string * Schedule.t) list
(** Schedule every region of the program (computing liveness once);
    association list keyed by region label in layout order.  [?pool]
    distributes regions across domains (results stay in layout order);
    do not pass a pool whose worker is executing the caller.

    [?budget_ms] bounds each region's scheduling time: both schedulers
    checkpoint ({!Cpr_deadline.Deadline.check_current}) once per cycle
    of their main loop and unwind with [Deadline_exceeded] when over
    budget (with a pool, also when the pool watchdog poisons the task).
    Exceptions surface as [Cpr_par.Pool.Task_failed] on the pool path
    and bare on the sequential path. *)
